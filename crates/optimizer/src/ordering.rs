//! Sort orders and join-derived column equivalences.
//!
//! Interesting orders are the backbone of both the Selinger DP and INUM's
//! template plans: a plan property "output sorted by (c₁, c₂, …)" lets the
//! optimizer skip sorts, use merge joins and stream aggregation.  Equi-join
//! predicates make columns interchangeable inside an order (after
//! `o_orderkey = l_orderkey`, order by either column is order by both), which
//! we track with a small union-find over [`ColumnRef`]s.

use cophy_catalog::ColumnRef;
use cophy_workload::Query;
use serde::{Deserialize, Serialize};

/// A sort order: column list, ascending (the IR has no DESC).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ordering(pub Vec<ColumnRef>);

impl Ordering {
    pub fn none() -> Self {
        Ordering(Vec::new())
    }

    pub fn is_none(&self) -> bool {
        self.0.is_empty()
    }

    pub fn single(c: ColumnRef) -> Self {
        Ordering(vec![c])
    }
}

/// Union-find over the column refs of one query, seeded with its join edges.
#[derive(Debug, Clone)]
pub struct EquivClasses {
    cols: Vec<ColumnRef>,
    parent: Vec<usize>,
}

impl EquivClasses {
    /// Build the equivalence classes implied by `q`'s equi-join edges.
    pub fn of_query(q: &Query) -> Self {
        let mut ec = EquivClasses { cols: Vec::new(), parent: Vec::new() };
        for j in &q.joins {
            let a = ec.intern(j.left);
            let b = ec.intern(j.right);
            ec.union(a, b);
        }
        ec
    }

    fn intern(&mut self, c: ColumnRef) -> usize {
        if let Some(i) = self.cols.iter().position(|x| *x == c) {
            i
        } else {
            self.cols.push(c);
            self.parent.push(self.parent.len());
            self.parent.len() - 1
        }
    }

    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Are two columns equivalent under the query's join predicates?
    pub fn equivalent(&self, a: ColumnRef, b: ColumnRef) -> bool {
        if a == b {
            return true;
        }
        let (Some(ia), Some(ib)) =
            (self.cols.iter().position(|x| *x == a), self.cols.iter().position(|x| *x == b))
        else {
            return false;
        };
        self.find(ia) == self.find(ib)
    }

    /// Does `delivered` satisfy `required` as a prefix, modulo equivalences?
    ///
    /// `delivered` satisfies `required` iff for every position `i <
    /// required.len()`, `delivered[i]` is equivalent to `required[i]`.
    pub fn satisfies(&self, delivered: &Ordering, required: &Ordering) -> bool {
        if required.0.len() > delivered.0.len() {
            return false;
        }
        required.0.iter().zip(delivered.0.iter()).all(|(r, d)| self.equivalent(*r, *d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_workload::Join;

    #[test]
    fn join_columns_are_equivalent() {
        let s = TpchGen::default().schema();
        let ok = s.resolve("orders.o_orderkey").unwrap();
        let lk = s.resolve("lineitem.l_orderkey").unwrap();
        let od = s.resolve("orders.o_orderdate").unwrap();
        let q = Query {
            tables: vec![ok.table, lk.table],
            joins: vec![Join::new(ok, lk)],
            ..Default::default()
        };
        let ec = EquivClasses::of_query(&q);
        assert!(ec.equivalent(ok, lk));
        assert!(ec.equivalent(lk, ok));
        assert!(!ec.equivalent(ok, od));
        assert!(ec.equivalent(od, od), "reflexive even for un-interned columns");
    }

    #[test]
    fn transitive_equivalence() {
        let s = TpchGen::default().schema();
        let a = s.resolve("part.p_partkey").unwrap();
        let b = s.resolve("partsupp.ps_partkey").unwrap();
        let c = s.resolve("lineitem.l_partkey").unwrap();
        let q = Query {
            tables: vec![a.table, b.table, c.table],
            joins: vec![Join::new(a, b), Join::new(c, a)],
            ..Default::default()
        };
        let ec = EquivClasses::of_query(&q);
        assert!(ec.equivalent(b, c));
    }

    #[test]
    fn order_satisfaction_prefix_and_equiv() {
        let s = TpchGen::default().schema();
        let ok = s.resolve("orders.o_orderkey").unwrap();
        let lk = s.resolve("lineitem.l_orderkey").unwrap();
        let od = s.resolve("orders.o_orderdate").unwrap();
        let q = Query {
            tables: vec![ok.table, lk.table],
            joins: vec![Join::new(ok, lk)],
            ..Default::default()
        };
        let ec = EquivClasses::of_query(&q);
        let delivered = Ordering(vec![lk, od]);
        assert!(ec.satisfies(&delivered, &Ordering(vec![ok])));
        assert!(ec.satisfies(&delivered, &Ordering(vec![ok, od])));
        assert!(!ec.satisfies(&delivered, &Ordering(vec![od])));
        assert!(ec.satisfies(&delivered, &Ordering::none()));
        assert!(!ec.satisfies(&Ordering::none(), &Ordering(vec![ok])));
    }
}
