//! Record/replay what-if backend.
//!
//! A tuning run only ever sees a backend through its probe answers, so a run
//! can be *recorded* — every `(query, configuration) → ProbeAnswer` pair
//! serialized to text — and later *replayed* with zero optimizer work: the
//! replay backend is a hash-map lookup.  This is the trait-seam analogue of
//! the paper's portability argument (any DBMS behind the interface), and it
//! gives CI a fixture that exercises the whole advisor stack without a live
//! optimizer.
//!
//! The format is a line-oriented text file (the vendored `serde` is a derive
//! stand-in with no runtime, so serialization is hand-rolled).  Costs are
//! stored as IEEE-754 bit patterns in hex, so a replayed tune is
//! **bit-identical** to the recorded one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Mutex;

use cophy_catalog::{ColumnId, Configuration, Index, IndexKind, Schema, TableId};
use cophy_workload::{Query, Statement};

use crate::backend::{
    config_fingerprint, fnv1a, query_fingerprint, statement_fingerprint, BackendError, ProbeAnswer,
    ProbeLeaf, WhatIfBackend,
};
use crate::cost::{CostModel, SystemProfile};

const MAGIC: &str = "COPHY-TRACE v1";

/// Fingerprint of a schema, stored in the trace header so a replay against
/// the wrong schema fails fast instead of producing nonsense costs.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    fnv1a(format!("{schema:?}").as_bytes())
}

/// Record mode: wraps any inner backend and logs every probe answer.
///
/// Accounting is delegated to the inner backend, so a recorded tune reports
/// exactly the call counts the live backend would.
#[derive(Debug)]
pub struct TraceRecorder<'a> {
    inner: &'a dyn WhatIfBackend,
    log: Mutex<TraceLog>,
}

#[derive(Debug, Default)]
struct TraceLog {
    probes: HashMap<(u64, u64), ProbeAnswer>,
    relevant: HashMap<u64, Vec<Index>>,
}

impl<'a> TraceRecorder<'a> {
    pub fn new(inner: &'a dyn WhatIfBackend) -> Self {
        TraceRecorder { inner, log: Mutex::new(TraceLog::default()) }
    }

    /// Serialize everything recorded so far.  Entries are sorted by
    /// fingerprint, so the trace text is deterministic even when probes were
    /// recorded from multiple threads.
    pub fn serialize(&self) -> String {
        let log = self.log.lock().expect("trace log");
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("profile {:?}\n", self.inner.profile()));
        out.push_str(&format!("schema {:016x}\n", schema_fingerprint(self.inner.schema())));
        let mut probes: Vec<_> = log.probes.iter().collect();
        probes.sort_by_key(|(k, _)| **k);
        for (&(qfp, cfp), ans) in probes {
            out.push_str(&format!(
                "probe {qfp:016x} {cfp:016x} {:016x} {:016x}",
                ans.total_cost.to_bits(),
                ans.internal_cost.to_bits()
            ));
            for leaf in &ans.leaves {
                out.push_str(&format!(" {}:{}", leaf.table.0, fmt_cols(&leaf.required)));
            }
            out.push('\n');
        }
        let mut relevant: Vec<_> = log.relevant.iter().collect();
        relevant.sort_by_key(|(k, _)| **k);
        for (&sfp, ixs) in relevant {
            out.push_str(&format!("relevant {sfp:016x}"));
            for ix in ixs {
                out.push_str(&format!(" {}", fmt_index(ix)));
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }
}

impl WhatIfBackend for TraceRecorder<'_> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn profile(&self) -> SystemProfile {
        self.inner.profile()
    }

    fn cost_model(&self) -> &CostModel {
        self.inner.cost_model()
    }

    fn try_probe(&self, q: &Query, config: &Configuration) -> Result<ProbeAnswer, BackendError> {
        let ans = self.inner.try_probe(q, config)?;
        let key = (query_fingerprint(q), config_fingerprint(config));
        self.log.lock().expect("trace log").probes.insert(key, ans.clone());
        Ok(ans)
    }

    fn try_relevant_indexes(&self, stmt: &Statement) -> Result<Vec<Index>, BackendError> {
        let ixs = self.inner.try_relevant_indexes(stmt)?;
        self.log
            .lock()
            .expect("trace log")
            .relevant
            .insert(statement_fingerprint(stmt), ixs.clone());
        Ok(ixs)
    }

    fn what_if_calls(&self) -> u64 {
        self.inner.what_if_calls()
    }

    fn reset_call_counter(&self) {
        self.inner.reset_call_counter()
    }
}

/// Replay mode: answers probes from a recorded trace with **zero** optimizer
/// work — a probe is a hash-map lookup.  Probes outside the trace return
/// [`BackendError::UnrecordedProbe`] through `try_probe` (a replay that
/// silently invented costs would defeat the point, and a replay that
/// *panicked* — as this backend once did — would take down unrelated
/// sessions in a multi-tenant daemon).  The infallible `probe` wrapper still
/// panics, preserving fail-fast behavior for single-tenant callers.
///
/// The schema is supplied by the caller (generators are deterministic, so
/// checking its fingerprint against the header suffices); the cost model is
/// rebuilt from the recorded profile, keeping the analytic update pricing
/// identical to the recording backend's.
#[derive(Debug)]
pub struct TraceReplay {
    schema: Schema,
    cm: CostModel,
    profile: SystemProfile,
    probes: HashMap<(u64, u64), ProbeAnswer>,
    relevant: HashMap<u64, Vec<Index>>,
    calls: AtomicU64,
}

impl TraceReplay {
    /// Parse a trace recorded by [`TraceRecorder::serialize`].
    pub fn parse(schema: Schema, text: &str) -> Result<TraceReplay, String> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(format!("not a {MAGIC} file"));
        }
        let mut profile = None;
        let mut probes = HashMap::new();
        let mut relevant = HashMap::new();
        for line in lines {
            let mut f = line.split_ascii_whitespace();
            match f.next() {
                Some("profile") => {
                    profile = Some(match f.next() {
                        Some("A") => SystemProfile::A,
                        Some("B") => SystemProfile::B,
                        other => return Err(format!("unknown profile {other:?}")),
                    });
                }
                Some("schema") => {
                    let want = parse_hex(f.next().ok_or("missing schema fingerprint")?)?;
                    let got = schema_fingerprint(&schema);
                    if want != got {
                        return Err(format!(
                            "schema fingerprint mismatch: trace {want:016x}, supplied {got:016x}"
                        ));
                    }
                }
                Some("probe") => {
                    let qfp = parse_hex(f.next().ok_or("truncated probe line")?)?;
                    let cfp = parse_hex(f.next().ok_or("truncated probe line")?)?;
                    let total = f64::from_bits(parse_hex(f.next().ok_or("truncated probe line")?)?);
                    let internal =
                        f64::from_bits(parse_hex(f.next().ok_or("truncated probe line")?)?);
                    let leaves = f.map(parse_leaf).collect::<Result<Vec<_>, _>>()?;
                    probes.insert(
                        (qfp, cfp),
                        ProbeAnswer { total_cost: total, internal_cost: internal, leaves },
                    );
                }
                Some("relevant") => {
                    let sfp = parse_hex(f.next().ok_or("truncated relevant line")?)?;
                    let ixs = f.map(parse_index).collect::<Result<Vec<_>, _>>()?;
                    relevant.insert(sfp, ixs);
                }
                Some("end") | None => {}
                Some(other) => return Err(format!("unknown trace record {other:?}")),
            }
        }
        let profile = profile.ok_or("trace has no profile header")?;
        Ok(TraceReplay {
            schema,
            cm: CostModel::profile(profile),
            profile,
            probes,
            relevant,
            calls: AtomicU64::new(0),
        })
    }

    /// Number of distinct probe answers in the trace.
    pub fn n_recorded_probes(&self) -> usize {
        self.probes.len()
    }
}

impl WhatIfBackend for TraceReplay {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn profile(&self) -> SystemProfile {
        self.profile
    }

    fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    fn try_probe(&self, q: &Query, config: &Configuration) -> Result<ProbeAnswer, BackendError> {
        self.calls.fetch_add(1, AtomicOrdering::Relaxed);
        let key = (query_fingerprint(q), config_fingerprint(config));
        self.probes.get(&key).cloned().ok_or(BackendError::UnrecordedProbe {
            query: key.0,
            config: key.1,
            recorded: self.probes.len(),
        })
    }

    fn try_relevant_indexes(&self, stmt: &Statement) -> Result<Vec<Index>, BackendError> {
        let sfp = statement_fingerprint(stmt);
        self.relevant.get(&sfp).cloned().ok_or(BackendError::UnrecordedRelevant { statement: sfp })
    }

    fn what_if_calls(&self) -> u64 {
        self.calls.load(AtomicOrdering::Relaxed)
    }

    fn reset_call_counter(&self) {
        self.calls.store(0, AtomicOrdering::Relaxed);
    }
}

fn fmt_cols(cols: &[ColumnId]) -> String {
    if cols.is_empty() {
        "-".to_string()
    } else {
        cols.iter().map(|c| c.0.to_string()).collect::<Vec<_>>().join(",")
    }
}

fn parse_cols(s: &str) -> Result<Vec<ColumnId>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|c| c.parse::<u32>().map(ColumnId).map_err(|e| format!("bad column id {c:?}: {e}")))
        .collect()
}

/// `table:req` — one probe-leaf field.
fn parse_leaf(s: &str) -> Result<ProbeLeaf, String> {
    let (t, req) = s.split_once(':').ok_or_else(|| format!("bad leaf field {s:?}"))?;
    Ok(ProbeLeaf {
        table: TableId(t.parse::<u32>().map_err(|e| format!("bad table id {t:?}: {e}"))?),
        required: parse_cols(req)?,
    })
}

/// `table/kind/unique/key/include` — one index field.  Public because this
/// is the canonical single-token wire rendering of an index, reused by the
/// `cophy-server` protocol.
pub fn fmt_index(ix: &Index) -> String {
    format!(
        "{}/{}/{}/{}/{}",
        ix.table.0,
        if ix.is_clustered() { "C" } else { "S" },
        u8::from(ix.unique),
        fmt_cols(&ix.key),
        fmt_cols(&ix.include)
    )
}

/// Parse the [`fmt_index`] rendering back into an [`Index`].
pub fn parse_index(s: &str) -> Result<Index, String> {
    let parts: Vec<&str> = s.split('/').collect();
    let [t, kind, unique, key, include] = parts[..] else {
        return Err(format!("bad index field {s:?}"));
    };
    Ok(Index {
        table: TableId(t.parse::<u32>().map_err(|e| format!("bad table id {t:?}: {e}"))?),
        key: parse_cols(key)?,
        include: parse_cols(include)?,
        kind: match kind {
            "C" => IndexKind::Clustered,
            "S" => IndexKind::Secondary,
            other => return Err(format!("bad index kind {other:?}")),
        },
        unique: unique == "1",
    })
}

fn parse_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex field {s:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WhatIfOptimizer;
    use cophy_catalog::TpchGen;
    use cophy_workload::HomGen;

    fn opt() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    #[test]
    fn record_then_replay_is_bit_identical() {
        let o = opt();
        let w = HomGen::new(5).generate(o.schema(), 4);
        let rec = TraceRecorder::new(&o);
        let mut answers = Vec::new();
        for (_, stmt, _) in w.iter() {
            answers.push(rec.probe(stmt.read_shell(), &Configuration::empty()));
            rec.relevant_indexes(stmt);
        }
        let text = rec.serialize();
        let replay = TraceReplay::parse(TpchGen::default().schema(), &text).unwrap();
        assert_eq!(replay.n_recorded_probes(), answers.len());
        for ((_, stmt, _), want) in w.iter().zip(&answers) {
            let got = replay.probe(stmt.read_shell(), &Configuration::empty());
            assert_eq!(got.total_cost.to_bits(), want.total_cost.to_bits());
            assert_eq!(got.internal_cost.to_bits(), want.internal_cost.to_bits());
            assert_eq!(got.leaves, want.leaves);
            assert_eq!(replay.relevant_indexes(stmt), WhatIfBackend::relevant_indexes(&o, stmt));
        }
        assert_eq!(replay.what_if_calls(), w.len() as u64);
    }

    #[test]
    fn replay_counts_calls_without_optimizer_work() {
        let o = opt();
        let li = o.schema().table_by_name("lineitem").unwrap().id;
        let q = Query::scan(li);
        let rec = TraceRecorder::new(&o);
        rec.probe(&q, &Configuration::empty());
        let text = rec.serialize();
        let replay = TraceReplay::parse(TpchGen::default().schema(), &text).unwrap();
        assert_eq!(replay.what_if_calls(), 0);
        let _ = replay.cost_query(&q, &Configuration::empty());
        let _ = replay.cost_query(&q, &Configuration::empty());
        assert_eq!(replay.what_if_calls(), 2);
        replay.reset_call_counter();
        assert_eq!(replay.what_if_calls(), 0);
    }

    #[test]
    fn replay_rejects_wrong_schema() {
        let o = opt();
        let rec = TraceRecorder::new(&o);
        let text = rec.serialize();
        let other = TpchGen { scale: 2.0, ..TpchGen::default() }.schema();
        assert!(TraceReplay::parse(other, &text).is_err());
    }

    #[test]
    fn replay_returns_typed_err_on_unrecorded_probe() {
        let o = opt();
        let rec = TraceRecorder::new(&o);
        let text = rec.serialize();
        let replay = TraceReplay::parse(TpchGen::default().schema(), &text).unwrap();
        let li = replay.schema().table_by_name("lineitem").unwrap().id;
        let q = Query::scan(li);
        let err = replay.try_probe(&q, &Configuration::empty()).unwrap_err();
        assert_eq!(
            err,
            BackendError::UnrecordedProbe {
                query: query_fingerprint(&q),
                config: config_fingerprint(&Configuration::empty()),
                recorded: 0,
            }
        );
        let stmt = Statement::Select(q.clone());
        let err = replay.try_relevant_indexes(&stmt).unwrap_err();
        assert_eq!(
            err,
            BackendError::UnrecordedRelevant { statement: statement_fingerprint(&stmt) }
        );
    }

    #[test]
    #[should_panic(expected = "unrecorded probe")]
    fn infallible_probe_still_panics_on_unrecorded_probe() {
        let o = opt();
        let rec = TraceRecorder::new(&o);
        let text = rec.serialize();
        let replay = TraceReplay::parse(TpchGen::default().schema(), &text).unwrap();
        let li = replay.schema().table_by_name("lineitem").unwrap().id;
        let _ = replay.probe(&Query::scan(li), &Configuration::empty());
    }

    #[test]
    fn index_wire_format_round_trips() {
        let schema = TpchGen::default().schema();
        let li = schema.table_by_name("lineitem").unwrap().id;
        let ix = Index::secondary(li, vec![ColumnId(3), ColumnId(1)]);
        assert_eq!(parse_index(&fmt_index(&ix)).unwrap(), ix);
        let scan = Index::secondary(li, Vec::new());
        assert_eq!(parse_index(&fmt_index(&scan)).unwrap(), scan);
    }
}
