//! The pluggable what-if backend trait.
//!
//! CoPhy's portability claim (§1, §6) is that the advisor is a thin layer
//! over *any* what-if optimizer: everything above the DBMS consumes a narrow
//! costing interface.  [`WhatIfBackend`] is that interface.  A backend must
//! answer three kinds of questions:
//!
//! 1. **probe** — cost a query under a hypothetical configuration and
//!    describe the resulting plan's leaf accesses ([`ProbeAnswer`]), which is
//!    all INUM needs to build template plans;
//! 2. **relevant_indexes** — enumerate candidate indexes the backend
//!    considers relevant to a statement (the syntactic candidate surface);
//! 3. **call accounting** — report how many what-if optimizations were spent,
//!    the scarce resource of Figures 4/5.
//!
//! Update pricing (`ucost`, `base_update_cost`) and workload evaluation are
//! provided methods derived analytically from the backend's schema and cost
//! model, so the §2 update semantics stay identical across backends.
//!
//! [`crate::WhatIfOptimizer`] is the reference implementation; see
//! [`crate::trace`] for a record/replay backend and [`crate::noise`] for a
//! calibrated-noise wrapper.

use std::fmt;

use cophy_catalog::{ColumnId, Configuration, Index, Schema, TableId};
use cophy_workload::{Query, Statement, UpdateStatement, Workload};

use crate::cost::{CostModel, SystemProfile};
use crate::plan::PhysicalPlan;

/// A typed costing failure.
///
/// Backends embedded in long-lived, multi-tenant processes must not panic: a
/// replay miss or an exhausted probe quota is a per-request error, not a
/// process fault.  Fallible callers (INUM preparation, the advisor session
/// API, the `cophy-server` daemon) consume [`WhatIfBackend::try_probe`] and
/// surface this error; the infallible convenience wrappers (`probe`,
/// `cost_query`, …) panic on it, preserving the original single-tenant
/// behavior for code that treats its backend as total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// A replay-style backend was asked for a `(query, configuration)` pair
    /// it has no recorded answer for.
    UnrecordedProbe {
        query: u64,
        config: u64,
        /// How many probe answers the backend does hold (diagnostic).
        recorded: usize,
    },
    /// A replay-style backend was asked for candidate indexes of a statement
    /// it never saw.
    UnrecordedRelevant { statement: u64 },
    /// A metered backend refused the probe because the tenant's what-if
    /// quota is spent.
    QuotaExceeded { spent: u64, limit: u64 },
    /// A transient backend failure (lost connection, optimizer overload, a
    /// fault-injection schedule entry).  Retryable: the same probe may
    /// succeed on a later attempt.
    Transient {
        query: u64,
        config: u64,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// The probe exceeded its deadline.  Retryable like
    /// [`BackendError::Transient`] but accounted separately — a timeout spent
    /// real wall clock, so retry loops must charge it against their budget.
    Timeout { query: u64, config: u64, elapsed_ms: u64 },
}

impl BackendError {
    /// Whether a retry can possibly succeed.  Only the transient fault
    /// classes are retryable; replay misses and spent quotas are permanent
    /// and must surface immediately.
    pub fn is_retryable(&self) -> bool {
        matches!(self, BackendError::Transient { .. } | BackendError::Timeout { .. })
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::UnrecordedProbe { query, config, recorded } => write!(
                f,
                "unrecorded probe: ({query:016x}, {config:016x}) not in trace \
                 ({recorded} probes recorded)"
            ),
            BackendError::UnrecordedRelevant { statement } => {
                write!(f, "unrecorded relevant_indexes({statement:016x})")
            }
            BackendError::QuotaExceeded { spent, limit } => {
                write!(f, "what-if quota exceeded: spent {spent} of {limit} probes")
            }
            BackendError::Transient { query, config, attempt } => write!(
                f,
                "transient what-if failure: probe ({query:016x}, {config:016x}) \
                 attempt {attempt}"
            ),
            BackendError::Timeout { query, config, elapsed_ms } => write!(
                f,
                "what-if probe timed out after {elapsed_ms}ms: \
                 ({query:016x}, {config:016x})"
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// One leaf access of a probed plan: the table it reads and the key-column
/// prefix (in the leaf's *local* columns) the internal plan relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeLeaf {
    pub table: TableId,
    /// Required delivered-order prefix; empty = any access method works.
    pub required: Vec<ColumnId>,
}

/// The answer to one what-if probe — everything INUM's template extraction
/// and the plain costing path need, and nothing plan-shaped that a remote or
/// replayed backend could not supply.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeAnswer {
    /// `cost(q, X)`: total plan cost.
    pub total_cost: f64,
    /// INUM's `β`: cost of the internal operators only.
    pub internal_cost: f64,
    /// One entry per referenced table, in `q.tables` order.
    pub leaves: Vec<ProbeLeaf>,
}

impl ProbeAnswer {
    /// Distill a full [`PhysicalPlan`] into a probe answer.  The required
    /// order may name equivalent columns of *other* tables (e.g. ORDER BY
    /// `o_orderdate` satisfied through a join); the local equivalent is the
    /// leaf's own delivered-order prefix of that length.
    pub fn from_plan(q: &Query, plan: &PhysicalPlan) -> ProbeAnswer {
        let leaves = q
            .tables
            .iter()
            .map(|&t| {
                let leaf = plan.leaf(t).expect("plan covers every referenced table");
                let req_len = leaf.required.0.len().min(leaf.path.order.0.len());
                ProbeLeaf {
                    table: t,
                    required: leaf.path.order.0[..req_len].iter().map(|c| c.column).collect(),
                }
            })
            .collect();
        ProbeAnswer { total_cost: plan.total_cost(), internal_cost: plan.internal_cost(), leaves }
    }
}

/// A pluggable what-if costing service.
///
/// Object safe: the whole stack threads `&dyn WhatIfBackend`, so backends can
/// be swapped at run time (live optimizer, trace replay, noise wrapper, or a
/// remote DBMS adapter).  `Send + Sync` is required because INUM preparation
/// shards probes across OS threads.
pub trait WhatIfBackend: std::fmt::Debug + Send + Sync {
    /// The schema the backend costs against.
    fn schema(&self) -> &Schema;

    /// The cost-model parameterization the backend calibrates to.
    fn profile(&self) -> SystemProfile;

    /// The analytic cost model used for the derived update/heap costing.
    fn cost_model(&self) -> &CostModel;

    /// One what-if optimization: cost `q` under hypothetical configuration
    /// `config`.  Counts one call.  This is the *fallible* probe — the one
    /// required method of the costing surface — so replay misses and quota
    /// rejections surface as typed errors instead of panics.
    fn try_probe(&self, q: &Query, config: &Configuration) -> Result<ProbeAnswer, BackendError>;

    /// Infallible probe for callers that treat the backend as total (a live
    /// optimizer never fails).  Panics on [`BackendError`].
    fn probe(&self, q: &Query, config: &Configuration) -> ProbeAnswer {
        self.try_probe(q, config).unwrap_or_else(|e| panic!("what-if backend error: {e}"))
    }

    /// Number of what-if optimizations performed so far.
    fn what_if_calls(&self) -> u64;

    fn reset_call_counter(&self);

    /// Fallible candidate enumeration.  The default is the syntactic
    /// enumeration over the read shell — sargable predicate columns, the
    /// equality-bound column set, and every interesting order — which never
    /// fails; replay-style backends override it to report unrecorded
    /// statements.
    fn try_relevant_indexes(&self, stmt: &Statement) -> Result<Vec<Index>, BackendError> {
        let q = stmt.read_shell();
        let mut out: Vec<Index> = Vec::new();
        let push = |out: &mut Vec<Index>, ix: Index| {
            if !out.contains(&ix) {
                out.push(ix);
            }
        };
        for &t in &q.tables {
            let eq = q.eq_columns_on(t);
            if !eq.is_empty() {
                push(&mut out, Index::secondary(t, eq));
            }
            for p in q.predicates_on(t) {
                push(&mut out, Index::secondary(t, vec![p.column.column]));
            }
            for o in q.interesting_orders_on(t) {
                push(&mut out, Index::secondary(t, o));
            }
        }
        Ok(out)
    }

    /// Candidate indexes this backend considers relevant to `stmt`.  Panics
    /// on [`BackendError`]; fallible callers use
    /// [`WhatIfBackend::try_relevant_indexes`].
    fn relevant_indexes(&self, stmt: &Statement) -> Vec<Index> {
        self.try_relevant_indexes(stmt).unwrap_or_else(|e| panic!("what-if backend error: {e}"))
    }

    /// `cost(q, X)` for a SELECT (or query shell).
    fn cost_query(&self, q: &Query, config: &Configuration) -> f64 {
        self.probe(q, config).total_cost
    }

    /// Maintenance cost `ucost(a, q)` of index `a` under update `q` (§2):
    /// per-modified-row B-tree maintenance, independent of the rest of the
    /// configuration.
    fn ucost(&self, upd: &UpdateStatement, ix: &Index) -> f64 {
        if !upd.affects(ix) {
            return 0.0;
        }
        let schema = self.schema();
        let rows = crate::cardinality::access_rows(schema, &upd.shell, upd.table());
        self.cost_model().maintain(rows, ix.height(schema))
    }

    /// The fixed `c_q` term: rewriting the base tuples themselves.
    fn base_update_cost(&self, upd: &UpdateStatement) -> f64 {
        let rows = crate::cardinality::access_rows(self.schema(), &upd.shell, upd.table());
        let cm = self.cost_model();
        cm.heap_fetches(rows) + rows * cm.cpu_tuple
    }

    /// Full statement cost under a configuration.
    fn cost_statement(&self, stmt: &Statement, config: &Configuration) -> f64 {
        match stmt {
            Statement::Select(q) => self.cost_query(q, config),
            Statement::Update(u) => {
                let read = self.cost_query(&u.shell, config);
                let maintenance: f64 = config.iter().map(|ix| self.ucost(u, ix)).sum();
                read + maintenance + self.base_update_cost(u)
            }
        }
    }

    /// Weighted workload cost `Σ_q f_q · cost(q, X)`.
    fn cost_workload(&self, w: &Workload, config: &Configuration) -> f64 {
        w.iter().map(|(_, stmt, f)| f * self.cost_statement(stmt, config)).sum()
    }

    /// The §5.1 quality metric:
    /// `perf(X*, W) = 1 − cost(X* ∪ X0, W) / cost(X0, W)`,
    /// where `X0` is the clustered-primary-key baseline.
    fn perf(&self, w: &Workload, x_star: &Configuration) -> f64 {
        let x0 = Configuration::baseline(self.schema());
        let base = self.cost_workload(w, &x0);
        let tuned = self.cost_workload(w, &x_star.union(&x0));
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - tuned / base
    }
}

/// SplitMix64 finalizer — the seeded scrambling primitive shared by the
/// noise and fault-injection wrappers: one pass turns a fingerprint XOR into
/// uniform 64-bit output, so a pair's draw depends only on `(seed, pair)`.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash — the stable fingerprint primitive shared by the trace
/// backend and the noise backend (keyed on `Debug` renderings, which are
/// deterministic for the resolved-id IR).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a query (its full resolved IR).
pub fn query_fingerprint(q: &Query) -> u64 {
    fnv1a(format!("{q:?}").as_bytes())
}

/// Fingerprint of a statement.
pub fn statement_fingerprint(stmt: &Statement) -> u64 {
    fnv1a(format!("{stmt:?}").as_bytes())
}

/// Order-independent fingerprint of a configuration: per-index renderings are
/// sorted before hashing, so set-equal configurations fingerprint equal.
pub fn config_fingerprint(config: &Configuration) -> u64 {
    let mut parts: Vec<String> = config.iter().map(|ix| format!("{ix:?}")).collect();
    parts.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in &parts {
        h = fnv1a(format!("{h:016x}|{p}").as_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WhatIfOptimizer;
    use cophy_catalog::TpchGen;
    use cophy_workload::HomGen;

    fn opt() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    #[test]
    fn trait_object_costs_match_inherent_methods() {
        let o = opt();
        let w = HomGen::new(7).generate(o.schema(), 5);
        let backend: &dyn WhatIfBackend = &o;
        for (_, stmt, _) in w.iter() {
            let via_trait = backend.cost_statement(stmt, &Configuration::empty());
            let direct = o.cost_statement(stmt, &Configuration::empty());
            assert_eq!(via_trait.to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn probe_answer_matches_plan_decomposition() {
        let o = opt();
        let w = HomGen::new(3).generate(o.schema(), 4);
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            let plan = o.optimize(q, &Configuration::empty());
            let ans = ProbeAnswer::from_plan(q, &plan);
            assert_eq!(ans.total_cost.to_bits(), plan.total_cost().to_bits());
            assert_eq!(ans.internal_cost.to_bits(), plan.internal_cost().to_bits());
            assert_eq!(ans.leaves.len(), q.tables.len());
            for (leaf, &t) in ans.leaves.iter().zip(q.tables.iter()) {
                assert_eq!(leaf.table, t);
            }
        }
    }

    #[test]
    fn relevant_indexes_cover_predicates_and_orders() {
        let o = opt();
        let s = o.schema();
        let w = HomGen::new(11).generate(s, 6);
        let backend: &dyn WhatIfBackend = &o;
        for (_, stmt, _) in w.iter() {
            let ixs = backend.relevant_indexes(stmt);
            let q = stmt.read_shell();
            for &t in &q.tables {
                for p in q.predicates_on(t) {
                    assert!(
                        ixs.iter()
                            .any(|ix| ix.table == t && ix.key.first() == Some(&p.column.column)),
                        "predicate column not covered by any relevant index"
                    );
                }
            }
            // No duplicates.
            for (i, a) in ixs.iter().enumerate() {
                assert!(!ixs[i + 1..].contains(a));
            }
        }
    }

    #[test]
    fn fingerprints_are_stable_and_order_independent() {
        let o = opt();
        let s = o.schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let ord = s.table_by_name("orders").unwrap().id;
        let a = Index::secondary(li, vec![ColumnId(0)]);
        let b = Index::secondary(ord, vec![ColumnId(1)]);
        let mut c1 = Configuration::empty();
        c1.insert(a.clone());
        c1.insert(b.clone());
        let mut c2 = Configuration::empty();
        c2.insert(b);
        c2.insert(a);
        assert_eq!(config_fingerprint(&c1), config_fingerprint(&c2));
        assert_ne!(config_fingerprint(&c1), config_fingerprint(&Configuration::empty()));
        let q = Query::scan(li);
        assert_eq!(query_fingerprint(&q), query_fingerprint(&q.clone()));
    }
}
