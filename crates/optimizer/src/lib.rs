//! # cophy-optimizer
//!
//! A cost-based *what-if* query optimizer: the DBMS-side substrate the CoPhy
//! paper assumes.  Commercial systems expose a what-if interface that costs a
//! query under *hypothetical* index configurations without materializing
//! them; INUM and the index advisors only ever consume that interface.  This
//! crate provides:
//!
//! * a System-R-style cost model ([`CostModel`]) with two parameterizations
//!   ([`SystemProfile::A`], [`SystemProfile::B`]) standing in for the paper's
//!   two commercial systems,
//! * cardinality estimation from catalog statistics ([`cardinality`]),
//! * access-path selection over heap scans, index seeks, index scans and
//!   index-only variants ([`access`]),
//! * Selinger-style dynamic-programming join enumeration with *interesting
//!   orders* ([`dp`]) — the plan-space structure INUM's template plans encode,
//! * the what-if facade ([`WhatIfOptimizer`]) with per-call accounting and
//!   update-maintenance costing (`ucost`).
//!
//! Plans expose their leaf *accesses* separately from internal operators
//! (`PhysicalPlan::leaves`), which is exactly the decomposition INUM needs:
//! `total = internal (β) + Σ leaf access costs (γ)`.

pub mod access;
pub mod backend;
pub mod cardinality;
pub mod cost;
pub mod dp;
pub mod fault;
pub mod noise;
pub mod ordering;
pub mod plan;
pub mod trace;
pub mod whatif;

pub use access::{AccessMethod, AccessPath};
pub use backend::{BackendError, ProbeAnswer, ProbeLeaf, WhatIfBackend};
pub use cost::{CostModel, SystemProfile};
pub use fault::{
    probe_with_retry, FaultEvent, FaultInjectingBackend, FaultKind, FaultLog, FaultPlan,
    FaultStatsSnapshot, RetriedProbe, RetryPolicy,
};
pub use noise::NoisyBackend;
pub use ordering::{EquivClasses, Ordering};
pub use plan::{LeafAccess, PhysicalPlan, PlanNode};
pub use trace::{TraceRecorder, TraceReplay};
pub use whatif::WhatIfOptimizer;
