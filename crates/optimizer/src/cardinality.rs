//! Cardinality estimation from catalog statistics.
//!
//! Classic System-R estimators with attribute-independence: predicate
//! selectivities multiply, equi-join selectivity is `1/max(ndv_l, ndv_r)`,
//! group counts are capped products of group-column NDVs.  The advisor does
//! not need perfect estimates — it needs the *same* estimates the what-if
//! optimizer uses, which is what makes `perf(X*, W)` a consistent metric.

use cophy_catalog::{ColumnRef, Schema};
use cophy_workload::{Join, Query};

/// Estimated output rows of accessing `table` under `q`'s local predicates.
pub fn access_rows(schema: &Schema, q: &Query, table: cophy_catalog::TableId) -> f64 {
    let t = schema.table(table);
    (t.rows as f64 * q.local_selectivity(schema, table)).max(1.0)
}

/// NDV of a column, capped by the current row estimate of its relation.
pub fn ndv(schema: &Schema, c: ColumnRef, rows: f64) -> f64 {
    let raw = schema.table(c.table).column(c.column).stats.ndv as f64;
    raw.min(rows.max(1.0)).max(1.0)
}

/// Selectivity of an equi-join edge given current per-side row estimates.
pub fn join_selectivity(schema: &Schema, j: &Join, left_rows: f64, right_rows: f64) -> f64 {
    let nl = ndv(schema, j.left, left_rows);
    let nr = ndv(schema, j.right, right_rows);
    1.0 / nl.max(nr)
}

/// Output rows of joining two sub-plans of `lr` and `rr` rows across `edges`.
pub fn join_rows(schema: &Schema, edges: &[&Join], lr: f64, rr: f64) -> f64 {
    let mut sel = 1.0;
    for j in edges {
        sel *= join_selectivity(schema, j, lr, rr);
    }
    (lr * rr * sel).max(1.0)
}

/// Number of groups produced by GROUP BY over `rows` input rows.
pub fn group_rows(schema: &Schema, group_by: &[ColumnRef], rows: f64) -> f64 {
    if group_by.is_empty() {
        return 1.0; // scalar aggregate
    }
    let mut groups = 1.0;
    for c in group_by {
        groups *= ndv(schema, *c, rows);
    }
    // Squared-correlation damping: real group counts rarely reach the full
    // NDV product; cap at input rows.
    groups.powf(0.9).min(rows).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_workload::Predicate;

    #[test]
    fn access_rows_respects_predicates() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let base = access_rows(&s, &Query::scan(li), li);
        assert_eq!(base, 6_000_000.0);
        let mut q = Query::scan(li);
        q.predicates.push(Predicate::lt(s.resolve("lineitem.l_shipdate").unwrap(), 100.0));
        assert!(access_rows(&s, &q, li) < base);
    }

    #[test]
    fn fk_join_preserves_fact_cardinality() {
        // orders ⋈ lineitem over orderkey: output ≈ |lineitem|.
        let s = TpchGen::default().schema();
        let j = Join::new(
            s.resolve("orders.o_orderkey").unwrap(),
            s.resolve("lineitem.l_orderkey").unwrap(),
        );
        let out = join_rows(&s, &[&j], 1_500_000.0, 6_000_000.0);
        let rel_err = (out - 6_000_000.0).abs() / 6_000_000.0;
        assert!(rel_err < 0.01, "FK join should preserve fact rows, got {out}");
    }

    #[test]
    fn ndv_capped_by_rows() {
        let s = TpchGen::default().schema();
        let ck = s.resolve("customer.c_custkey").unwrap();
        assert_eq!(ndv(&s, ck, 100.0), 100.0);
        assert_eq!(ndv(&s, ck, 1e9), 150_000.0);
    }

    #[test]
    fn group_rows_bounded() {
        let s = TpchGen::default().schema();
        let rf = s.resolve("lineitem.l_returnflag").unwrap();
        let ls = s.resolve("lineitem.l_linestatus").unwrap();
        let g = group_rows(&s, &[rf, ls], 1e6);
        assert!((1.0..=7.0).contains(&g), "3×2 groups expected, got {g}");
        assert_eq!(group_rows(&s, &[], 1e6), 1.0);
        // group count never exceeds input rows
        let ck = s.resolve("customer.c_custkey").unwrap();
        assert!(group_rows(&s, &[ck], 50.0) <= 50.0);
    }
}
