//! Selinger-style dynamic-programming plan enumeration with interesting
//! orders.
//!
//! For every connected subset of the query's tables the DP keeps a small
//! pareto set of sub-plans — the cheapest plan per *useful* delivered order.
//! An order is useful when it is a step toward satisfying one of the query's
//! order requirements: the ORDER BY list, the GROUP BY list (stream
//! aggregation) or a join column (merge join).  This is precisely the plan
//! space INUM's template plans quotient: one template per combination of
//! exploited interesting orders.

use cophy_catalog::{Configuration, Schema};
use cophy_workload::{Join, Query};

use crate::access;
use crate::cardinality;
use crate::cost::CostModel;
use crate::ordering::{EquivClasses, Ordering};
use crate::plan::{PhysicalPlan, PlanNode, SubPlan};

/// Maximum number of table references the DP supports (bitmask width; the
/// workloads top out at six).
pub const MAX_TABLES: usize = 16;

/// Optimize `q` under configuration `config`.
///
/// Panics if `q` references more than [`MAX_TABLES`] tables or fails
/// validation in debug builds.
pub fn optimize(
    schema: &Schema,
    cm: &CostModel,
    q: &Query,
    config: &Configuration,
) -> PhysicalPlan {
    debug_assert!(q.validate().is_ok(), "{:?}", q.validate());
    let n = q.tables.len();
    assert!((1..=MAX_TABLES).contains(&n), "query must reference 1..={MAX_TABLES} tables");

    let ec = EquivClasses::of_query(q);
    let requirements = collect_requirements(q);

    // Per-table access paths as single-table sub-plans.
    let mut best: Vec<Vec<SubPlan>> = vec![Vec::new(); 1usize << n];
    let mut base_rows = vec![0.0f64; n];
    for (i, &t) in q.tables.iter().enumerate() {
        base_rows[i] = cardinality::access_rows(schema, q, t);
        let paths = access::enumerate(schema, cm, q, t, config);
        let plans = paths
            .into_iter()
            .map(|p| SubPlan {
                cost: p.cost,
                rows: p.rows,
                order: normalize(&p.order, &requirements, &ec),
                op: PlanNode::Access(p),
            })
            .collect();
        best[1 << i] = prune(plans);
    }

    // Pre-compute subset cardinalities.
    let rows_of = |mask: usize| -> f64 {
        let mut rows = 1.0;
        for (i, br) in base_rows.iter().enumerate().take(n) {
            if mask & (1 << i) != 0 {
                rows *= br;
            }
        }
        let mut sel = 1.0;
        for j in &q.joins {
            let (Some(li), Some(ri)) = (table_bit(q, j.left.table), table_bit(q, j.right.table))
            else {
                continue;
            };
            if mask & (1 << li) != 0 && mask & (1 << ri) != 0 {
                sel *= cardinality::join_selectivity(schema, j, base_rows[li], base_rows[ri]);
            }
        }
        (rows * sel).max(1.0)
    };

    // Join enumeration over connected splits.
    let full = (1usize << n) - 1;
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let out_rows = rows_of(mask);
        let mut candidates: Vec<SubPlan> = Vec::new();
        // Enumerate proper submask splits.
        let mut l = (mask - 1) & mask;
        while l != 0 {
            let r = mask ^ l;
            if !best[l].is_empty() && !best[r].is_empty() {
                let edges = cross_edges(q, l, r);
                if !edges.is_empty() {
                    for pl in &best[l] {
                        for pr in &best[r] {
                            join_candidates(
                                cm,
                                q,
                                &ec,
                                &requirements,
                                pl,
                                pr,
                                &edges,
                                out_rows,
                                &mut candidates,
                            );
                        }
                    }
                }
            }
            l = (l - 1) & mask;
        }
        best[mask] = prune(candidates);
    }

    let joined = std::mem::take(&mut best[full]);
    assert!(!joined.is_empty(), "no plan found: join graph disconnected? {q:?}");

    finalize(schema, cm, q, &ec, &requirements, joined)
}

/// Bit position of `t` within the query's table list.
fn table_bit(q: &Query, t: cophy_catalog::TableId) -> Option<usize> {
    q.tables.iter().position(|x| *x == t)
}

/// Join edges crossing the (l, r) split.
fn cross_edges(q: &Query, l: usize, r: usize) -> Vec<&Join> {
    q.joins
        .iter()
        .filter(|j| {
            let (Some(li), Some(ri)) = (table_bit(q, j.left.table), table_bit(q, j.right.table))
            else {
                return false;
            };
            (l & (1 << li) != 0 && r & (1 << ri) != 0) || (l & (1 << ri) != 0 && r & (1 << li) != 0)
        })
        .collect()
}

/// All order requirements of the query (for normalization).
fn collect_requirements(q: &Query) -> Vec<Ordering> {
    let mut reqs: Vec<Ordering> = Vec::new();
    if !q.order_by.is_empty() {
        reqs.push(Ordering(q.order_by.clone()));
    }
    if !q.group_by.is_empty() {
        reqs.push(Ordering(q.group_by.clone()));
    }
    for j in &q.joins {
        reqs.push(Ordering::single(j.left));
        reqs.push(Ordering::single(j.right));
    }
    reqs
}

/// Truncate `order` to its longest prefix that fully satisfies some
/// requirement; unusable orders become `none`, collapsing the DP state.
fn normalize(order: &Ordering, reqs: &[Ordering], ec: &EquivClasses) -> Ordering {
    let mut useful = 0;
    for r in reqs {
        if r.0.len() > useful && ec.satisfies(order, r) {
            useful = r.0.len();
        }
    }
    Ordering(order.0[..useful].to_vec())
}

/// Pareto prune: cheapest plan per delivered order; a plan is dominated by a
/// cheaper plan whose order extends its own.
fn prune(mut plans: Vec<SubPlan>) -> Vec<SubPlan> {
    plans.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    let mut kept: Vec<SubPlan> = Vec::new();
    for p in plans {
        let dominated = kept.iter().any(|k| {
            k.cost <= p.cost
                && k.order.0.len() >= p.order.0.len()
                && k.order.0[..p.order.0.len()] == p.order.0[..]
        });
        if !dominated {
            kept.push(p);
        }
    }
    kept
}

/// Wrap `input` in an explicit sort to `order`.
fn sort_to(cm: &CostModel, input: SubPlan, order: Ordering) -> SubPlan {
    let cost = input.cost + cm.sort(input.rows);
    let rows = input.rows;
    SubPlan { cost, rows, order, op: PlanNode::Sort(Box::new(input)) }
}

/// Emit the hash/merge/nested-loop join candidates for one (left, right)
/// sub-plan pair.
#[allow(clippy::too_many_arguments)]
fn join_candidates(
    cm: &CostModel,
    _q: &Query,
    ec: &EquivClasses,
    reqs: &[Ordering],
    pl: &SubPlan,
    pr: &SubPlan,
    edges: &[&Join],
    out_rows: f64,
    out: &mut Vec<SubPlan>,
) {
    let residual = edges.len().saturating_sub(1);

    // Hash join: build on left, probe right (the split enumeration covers the
    // mirrored pair).
    let hj_cost = pl.cost
        + pr.cost
        + cm.hash_join(pl.rows, pr.rows, out_rows)
        + cm.filter(out_rows, residual);
    out.push(SubPlan {
        cost: hj_cost,
        rows: out_rows,
        order: Ordering::none(),
        op: PlanNode::HashJoin(Box::new(pl.clone()), Box::new(pr.clone())),
    });

    // Block nested-loop join: preserves outer order; only plausible for tiny
    // inputs but the cost model prices that in.
    let nl_cost =
        pl.cost + pr.cost + cm.nl_join(pl.rows, pr.rows, out_rows) + cm.filter(out_rows, residual);
    out.push(SubPlan {
        cost: nl_cost,
        rows: out_rows,
        order: pl.order.clone(),
        op: PlanNode::NestLoopJoin(Box::new(pl.clone()), Box::new(pr.clone())),
    });

    // Merge join on the first edge; sorts inserted as needed.
    let edge = edges[0];
    let (lreq, rreq) = if table_on_side(pl, edge.left.table) {
        (Ordering::single(edge.left), Ordering::single(edge.right))
    } else {
        (Ordering::single(edge.right), Ordering::single(edge.left))
    };
    let li = if ec.satisfies(&pl.order, &lreq) {
        pl.clone()
    } else {
        sort_to(cm, pl.clone(), lreq.clone())
    };
    let ri = if ec.satisfies(&pr.order, &rreq) {
        pr.clone()
    } else {
        sort_to(cm, pr.clone(), rreq.clone())
    };
    let mj_cost = li.cost
        + ri.cost
        + cm.merge_join(li.rows, ri.rows, out_rows)
        + cm.filter(out_rows, residual);
    let delivered = normalize(&lreq, reqs, ec);
    out.push(SubPlan {
        cost: mj_cost,
        rows: out_rows,
        order: if delivered.is_none() { lreq } else { delivered },
        op: PlanNode::MergeJoin(Box::new(li), Box::new(ri)),
    });
}

/// Does the sub-plan under `p` contain an access to `t`?  (Cheap recursive
/// check; plans are small trees.)
fn table_on_side(p: &SubPlan, t: cophy_catalog::TableId) -> bool {
    match &p.op {
        PlanNode::Access(a) => a.table == t,
        PlanNode::Sort(c) | PlanNode::HashAgg(c) | PlanNode::StreamAgg(c) => table_on_side(c, t),
        PlanNode::HashJoin(l, r) | PlanNode::MergeJoin(l, r) | PlanNode::NestLoopJoin(l, r) => {
            table_on_side(l, t) || table_on_side(r, t)
        }
    }
}

/// Apply aggregation and final ordering, pick the global winner.
fn finalize(
    schema: &Schema,
    cm: &CostModel,
    q: &Query,
    ec: &EquivClasses,
    reqs: &[Ordering],
    plans: Vec<SubPlan>,
) -> PhysicalPlan {
    let has_agg = !q.aggregates.is_empty() || !q.group_by.is_empty();
    let group_req = Ordering(q.group_by.clone());
    let order_req = Ordering(q.order_by.clone());
    let n_aggs = q.aggregates.len().max(1);

    let mut finished: Vec<SubPlan> = Vec::new();
    for p in plans {
        let mut posts: Vec<SubPlan> = Vec::new();
        if has_agg {
            let groups = cardinality::group_rows(schema, &q.group_by, p.rows);
            if q.group_by.is_empty() {
                // Scalar aggregate: single streaming pass, no order needed.
                let cost = p.cost + cm.stream_agg(p.rows, 1.0, n_aggs);
                posts.push(SubPlan {
                    cost,
                    rows: 1.0,
                    order: Ordering::none(),
                    op: PlanNode::StreamAgg(Box::new(p.clone())),
                });
            } else {
                // Hash aggregation.
                let hcost = p.cost + cm.hash_agg(p.rows, groups, n_aggs);
                posts.push(SubPlan {
                    cost: hcost,
                    rows: groups,
                    order: Ordering::none(),
                    op: PlanNode::HashAgg(Box::new(p.clone())),
                });
                // Stream aggregation over (possibly sorted) input.
                let input = if ec.satisfies(&p.order, &group_req) {
                    p.clone()
                } else {
                    sort_to(cm, p.clone(), group_req.clone())
                };
                let scost = input.cost + cm.stream_agg(input.rows, groups, n_aggs);
                posts.push(SubPlan {
                    cost: scost,
                    rows: groups,
                    order: group_req.clone(),
                    op: PlanNode::StreamAgg(Box::new(input)),
                });
            }
        } else {
            posts.push(p);
        }

        for post in posts {
            let final_plan = if order_req.is_none() || ec.satisfies(&post.order, &order_req) {
                post
            } else {
                sort_to(cm, post, order_req.clone())
            };
            finished.push(final_plan);
        }
    }

    let _ = reqs;
    let winner = finished
        .into_iter()
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .expect("at least one finished plan");
    PhysicalPlan::finish(winner, &order_req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SystemProfile;
    use cophy_catalog::{Index, TpchGen};
    use cophy_workload::{HetGen, HomGen, Predicate};

    fn setup() -> (Schema, CostModel) {
        (TpchGen::default().schema(), CostModel::profile(SystemProfile::A))
    }

    #[test]
    fn single_table_scan_plan() {
        let (s, cm) = setup();
        let li = s.table_by_name("lineitem").unwrap().id;
        let plan = optimize(&s, &cm, &Query::scan(li), &Configuration::empty());
        assert_eq!(plan.leaves.len(), 1);
        assert!(plan.total_cost() > 0.0);
        assert!(plan.internal_cost() < 1e-9, "bare scan has no internal cost");
    }

    #[test]
    fn index_reduces_plan_cost() {
        let (s, cm) = setup();
        let ord = s.table_by_name("orders").unwrap();
        let ck = s.resolve("orders.o_custkey").unwrap();
        let mut q = Query::scan(ord.id);
        q.predicates.push(Predicate::eq(ck, 5.0));
        let base = optimize(&s, &cm, &q, &Configuration::empty());
        let mut cfg = Configuration::empty();
        cfg.insert(Index::secondary(ord.id, vec![ck.column]));
        let with_ix = optimize(&s, &cm, &q, &cfg);
        assert!(with_ix.total_cost() < base.total_cost());
    }

    #[test]
    fn what_if_monotonicity_on_workload() {
        // Adding indexes never increases the optimal plan cost.
        let (s, cm) = setup();
        let w = HomGen::new(3).generate(&s, 30);
        let empty = Configuration::empty();
        let mut cfg = Configuration::empty();
        let li = s.table_by_name("lineitem").unwrap().id;
        cfg.insert(Index::secondary(li, vec![s.resolve("lineitem.l_shipdate").unwrap().column]));
        cfg.insert(Index::secondary(
            s.table_by_name("orders").unwrap().id,
            vec![s.resolve("orders.o_orderdate").unwrap().column],
        ));
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            let c0 = optimize(&s, &cm, q, &empty).total_cost();
            let c1 = optimize(&s, &cm, q, &cfg).total_cost();
            assert!(c1 <= c0 * (1.0 + 1e-9), "index made a plan worse: {c1} > {c0}\n{q:?}");
        }
    }

    #[test]
    fn order_by_index_avoids_sort() {
        let (s, cm) = setup();
        let ord = s.table_by_name("orders").unwrap();
        let od = s.resolve("orders.o_orderdate").unwrap();
        let tp = s.resolve("orders.o_totalprice").unwrap();
        let q = Query {
            tables: vec![ord.id],
            projections: vec![od, tp],
            order_by: vec![od],
            ..Default::default()
        };
        let base = optimize(&s, &cm, &q, &Configuration::empty());
        assert!(base.render().contains("Sort"), "{}", base.render());
        let mut cfg = Configuration::empty();
        cfg.insert(Index::covering(ord.id, vec![od.column], vec![tp.column]));
        let with_ix = optimize(&s, &cm, &q, &cfg);
        assert!(!with_ix.render().contains("Sort"), "{}", with_ix.render());
        assert!(with_ix.total_cost() < base.total_cost());
        // The leaf must carry the order requirement.
        let leaf = with_ix.leaf(ord.id).unwrap();
        assert_eq!(leaf.required.0, vec![od]);
    }

    #[test]
    fn join_plans_cover_all_tables() {
        let (s, cm) = setup();
        let w = HomGen::new(5).generate(&s, 45);
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            let plan = optimize(&s, &cm, q, &Configuration::empty());
            assert_eq!(plan.leaves.len(), q.tables.len(), "{q:?}");
            // every referenced table appears exactly once among leaves
            for t in &q.tables {
                assert_eq!(plan.leaves.iter().filter(|l| l.table == *t).count(), 1);
            }
        }
    }

    #[test]
    fn het_workload_optimizes_without_panic() {
        let (s, cm) = setup();
        let w = HetGen::new(8).generate(&s, 60);
        for (_, stmt, _) in w.iter() {
            let plan = optimize(&s, &cm, stmt.read_shell(), &Configuration::empty());
            assert!(plan.total_cost().is_finite() && plan.total_cost() > 0.0);
        }
    }

    #[test]
    fn merge_join_exploits_sorted_indexes() {
        let (s, cm) = setup();
        let ord = s.table_by_name("orders").unwrap().id;
        let li = s.table_by_name("lineitem").unwrap().id;
        let ok = s.resolve("orders.o_orderkey").unwrap();
        let lk = s.resolve("lineitem.l_orderkey").unwrap();
        let q = Query {
            tables: vec![ord, li],
            projections: vec![ok, lk],
            joins: vec![cophy_workload::Join::new(ok, lk)],
            ..Default::default()
        };
        // Covering indexes sorted on the join keys on both sides.
        let mut cfg = Configuration::empty();
        cfg.insert(Index::secondary(ord, vec![ok.column]));
        cfg.insert(Index::secondary(li, vec![lk.column]));
        let plan = optimize(&s, &cm, &q, &cfg);
        // Whatever wins must be no worse than the no-index plan.
        let base = optimize(&s, &cm, &q, &Configuration::empty());
        assert!(plan.total_cost() <= base.total_cost());
    }

    #[test]
    fn profile_b_differs_from_a() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(9).generate(&s, 20);
        let a = CostModel::profile(SystemProfile::A);
        let b = CostModel::profile(SystemProfile::B);
        let mut differs = false;
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            let ca = optimize(&s, &a, q, &Configuration::empty()).total_cost();
            let cb = optimize(&s, &b, q, &Configuration::empty()).total_cost();
            differs |= (ca - cb).abs() > 1e-6;
        }
        assert!(differs, "profiles must yield different costings");
    }

    #[test]
    fn group_by_index_enables_stream_agg() {
        let (s, cm) = setup();
        let li = s.table_by_name("lineitem").unwrap();
        let rf = s.resolve("lineitem.l_returnflag").unwrap();
        let qty = s.resolve("lineitem.l_quantity").unwrap();
        let q = Query {
            tables: vec![li.id],
            group_by: vec![rf],
            aggregates: vec![cophy_workload::Aggregate {
                func: cophy_workload::AggFunc::Sum,
                column: Some(qty),
            }],
            ..Default::default()
        };
        let mut cfg = Configuration::empty();
        cfg.insert(Index::covering(li.id, vec![rf.column], vec![qty.column]));
        let plan = optimize(&s, &cm, &q, &cfg);
        let base = optimize(&s, &cm, &q, &Configuration::empty());
        assert!(plan.total_cost() <= base.total_cost());
    }
}
