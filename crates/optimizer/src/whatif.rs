//! The what-if optimization facade.
//!
//! This is the interface the paper's architecture diagram draws between the
//! DBMS and everything else: given a statement and a *hypothetical*
//! configuration, return the optimal plan and its cost, without materializing
//! anything.  The facade also:
//!
//! * counts what-if calls — the scarce resource whose consumption separates
//!   INUM-based advisors from optimizer-in-the-loop advisors (Figures 4/5),
//! * prices UPDATE statements per §2:
//!   `cost(q, X) = cost(q_r, X) + Σ_{a ∈ X affected} ucost(a, q) + c_q`,
//! * evaluates whole workloads, which is the ground-truth `perf` metric of
//!   §5.1.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use cophy_catalog::{Configuration, Index, Schema};
use cophy_workload::{Query, Statement, UpdateStatement, Workload};

use crate::backend::{BackendError, ProbeAnswer, WhatIfBackend};
use crate::cost::{CostModel, SystemProfile};
use crate::dp;
use crate::plan::PhysicalPlan;

/// A simulated DBMS what-if optimizer.
#[derive(Debug)]
pub struct WhatIfOptimizer {
    schema: Schema,
    cm: CostModel,
    profile: SystemProfile,
    calls: AtomicU64,
}

impl WhatIfOptimizer {
    pub fn new(schema: Schema, profile: SystemProfile) -> Self {
        WhatIfOptimizer {
            schema,
            cm: CostModel::profile(profile),
            profile,
            calls: AtomicU64::new(0),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn profile(&self) -> SystemProfile {
        self.profile
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    /// Number of what-if optimizations performed so far.
    pub fn what_if_calls(&self) -> u64 {
        self.calls.load(AtomicOrdering::Relaxed)
    }

    pub fn reset_call_counter(&self) {
        self.calls.store(0, AtomicOrdering::Relaxed);
    }

    /// Optimize a SELECT (or query shell) under a hypothetical configuration.
    pub fn optimize(&self, q: &Query, config: &Configuration) -> PhysicalPlan {
        self.calls.fetch_add(1, AtomicOrdering::Relaxed);
        dp::optimize(&self.schema, &self.cm, q, config)
    }

    /// `cost(q, X)` for a SELECT.
    pub fn cost_query(&self, q: &Query, config: &Configuration) -> f64 {
        self.optimize(q, config).total_cost()
    }

    /// Maintenance cost `ucost(a, q)` of index `a` under update `q` (§2):
    /// per-modified-row B-tree maintenance, independent of the rest of the
    /// configuration.
    pub fn ucost(&self, upd: &UpdateStatement, ix: &Index) -> f64 {
        if !upd.affects(ix) {
            return 0.0;
        }
        let rows = crate::cardinality::access_rows(&self.schema, &upd.shell, upd.table());
        self.cm.maintain(rows, ix.height(&self.schema))
    }

    /// The fixed `c_q` term: rewriting the base tuples themselves.
    pub fn base_update_cost(&self, upd: &UpdateStatement) -> f64 {
        let rows = crate::cardinality::access_rows(&self.schema, &upd.shell, upd.table());
        self.cm.heap_fetches(rows) + rows * self.cm.cpu_tuple
    }

    /// Full statement cost under a configuration.
    pub fn cost_statement(&self, stmt: &Statement, config: &Configuration) -> f64 {
        match stmt {
            Statement::Select(q) => self.cost_query(q, config),
            Statement::Update(u) => {
                let read = self.cost_query(&u.shell, config);
                let maintenance: f64 = config.iter().map(|ix| self.ucost(u, ix)).sum();
                read + maintenance + self.base_update_cost(u)
            }
        }
    }

    /// Weighted workload cost `Σ_q f_q · cost(q, X)` — the objective of the
    /// index tuning problem, measured against the real optimizer.
    pub fn cost_workload(&self, w: &Workload, config: &Configuration) -> f64 {
        w.iter().map(|(_, stmt, f)| f * self.cost_statement(stmt, config)).sum()
    }

    /// The §5.1 quality metric:
    /// `perf(X*, W) = 1 − cost(X* ∪ X0, W) / cost(X0, W)`,
    /// where `X0` is the clustered-primary-key baseline.
    pub fn perf(&self, w: &Workload, x_star: &Configuration) -> f64 {
        let x0 = Configuration::baseline(&self.schema);
        let base = self.cost_workload(w, &x0);
        let tuned = self.cost_workload(w, &x_star.union(&x0));
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - tuned / base
    }
}

/// The reference [`WhatIfBackend`]: every probe is a live `dp::optimize`
/// call.  The inherent methods above stay available on the concrete type;
/// the trait impl simply delegates, so a `&WhatIfOptimizer` coerces to
/// `&dyn WhatIfBackend` with identical behavior (bit-for-bit costs).
impl WhatIfBackend for WhatIfOptimizer {
    fn schema(&self) -> &Schema {
        WhatIfOptimizer::schema(self)
    }

    fn profile(&self) -> SystemProfile {
        WhatIfOptimizer::profile(self)
    }

    fn cost_model(&self) -> &CostModel {
        WhatIfOptimizer::cost_model(self)
    }

    fn try_probe(&self, q: &Query, config: &Configuration) -> Result<ProbeAnswer, BackendError> {
        Ok(ProbeAnswer::from_plan(q, &self.optimize(q, config)))
    }

    fn what_if_calls(&self) -> u64 {
        WhatIfOptimizer::what_if_calls(self)
    }

    fn reset_call_counter(&self) {
        WhatIfOptimizer::reset_call_counter(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_workload::{HomGen, Predicate, UpdateGen};

    fn opt() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    #[test]
    fn counts_calls() {
        let o = opt();
        let li = o.schema().table_by_name("lineitem").unwrap().id;
        assert_eq!(o.what_if_calls(), 0);
        let _ = o.cost_query(&Query::scan(li), &Configuration::empty());
        let _ = o.cost_query(&Query::scan(li), &Configuration::empty());
        assert_eq!(o.what_if_calls(), 2);
        o.reset_call_counter();
        assert_eq!(o.what_if_calls(), 0);
    }

    #[test]
    fn update_cost_includes_maintenance() {
        let o = opt();
        let s = o.schema();
        let w = UpdateGen::new(1).generate(s, 1);
        let (_, stmt, _) = w.iter().next().unwrap();
        let Statement::Update(u) = stmt else { panic!() };
        let empty_cost = o.cost_statement(stmt, &Configuration::empty());
        // Add an index on a SET column: cost must rise by its ucost.
        let ix = Index::secondary(u.table(), vec![u.set_columns[0]]);
        let mut cfg = Configuration::empty();
        cfg.insert(ix.clone());
        let with_ix = o.cost_statement(stmt, &cfg);
        let ucost = o.ucost(u, &ix);
        assert!(ucost > 0.0);
        // The shell may get cheaper with the index, but the maintenance term
        // must be present.
        assert!(
            with_ix + 1e-9
                >= empty_cost - o.cost_query(&u.shell, &Configuration::empty())
                    + o.cost_query(&u.shell, &cfg)
                    + ucost
                    - 1e-9
        );
    }

    #[test]
    fn unaffected_index_has_zero_ucost() {
        let o = opt();
        let s = o.schema();
        let w = UpdateGen::new(2).generate(s, 1);
        let (_, stmt, _) = w.iter().next().unwrap();
        let Statement::Update(u) = stmt else { panic!() };
        let other_table = s.tables().iter().find(|t| t.id != u.table()).unwrap().id;
        let ix = Index::secondary(other_table, vec![cophy_catalog::ColumnId(0)]);
        assert_eq!(o.ucost(u, &ix), 0.0);
    }

    #[test]
    fn perf_positive_for_useful_indexes() {
        let o = opt();
        let s = o.schema();
        let ord = s.table_by_name("orders").unwrap().id;
        let ck = s.resolve("orders.o_custkey").unwrap();
        let mut wl = Workload::new();
        for v in 0..10 {
            let mut q = Query::scan(ord);
            q.predicates.push(Predicate::eq(ck, f64::from(v)));
            q.projections.push(s.resolve("orders.o_totalprice").unwrap());
            wl.push(Statement::Select(q));
        }
        let mut cfg = Configuration::empty();
        cfg.insert(Index::secondary(ord, vec![ck.column]));
        let p = o.perf(&wl, &cfg);
        assert!(p > 0.5, "selective index should cut most of the cost, got {p}");
        // Empty configuration yields zero improvement.
        assert!(o.perf(&wl, &Configuration::empty()).abs() < 1e-9);
    }

    #[test]
    fn workload_cost_is_weighted_sum() {
        let o = opt();
        let s = o.schema();
        let w = HomGen::new(4).generate(s, 10);
        let total = o.cost_workload(&w, &Configuration::empty());
        let manual: f64 =
            w.iter().map(|(_, stmt, f)| f * o.cost_statement(stmt, &Configuration::empty())).sum();
        assert!((total - manual).abs() < 1e-6);
    }
}
