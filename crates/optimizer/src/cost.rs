//! The cost model: abstract cost units in the System-R tradition [18].
//!
//! Costs mix I/O (pages, sequential vs random) and CPU (per-tuple work).
//! The absolute unit is irrelevant to the advisor — only *relative* plan
//! costs matter — so we follow the PostgreSQL convention of charging one
//! unit per sequential page.
//!
//! Two [`SystemProfile`]s stand in for the two commercial systems of §5: the
//! profiles differ in random-I/O penalty, sort constants and CPU weights,
//! which shifts plan choices (profile B favors index seeks and sorts more
//! aggressively), producing genuinely different tuning problems on the same
//! workload — as the paper's per-system results do.

use serde::{Deserialize, Serialize};

/// Which simulated DBMS the optimizer models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemProfile {
    /// "System-A": disk-oriented, steep random-I/O penalty.
    A,
    /// "System-B": buffer-pool friendly, milder random-I/O penalty.
    B,
}

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of reading one page sequentially.
    pub seq_page: f64,
    /// Cost of reading one page at a random location.
    pub random_page: f64,
    /// CPU cost of processing one heap tuple.
    pub cpu_tuple: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple: f64,
    /// CPU cost of a generic operator invocation (comparison, hash).
    pub cpu_operator: f64,
    /// Multiplier on `n·log2(n)` comparisons for sorting.
    pub sort_factor: f64,
    /// Per-row cost of building a hash table.
    pub hash_build: f64,
    /// Per-row cost of probing a hash table.
    pub hash_probe: f64,
    /// Fraction of heap fetches that hit already-cached pages (0..1); higher
    /// values soften the non-covering-index penalty.
    pub fetch_cache_hit: f64,
    /// Per-affected-row, per-level cost of maintaining a B-tree on update.
    pub index_maintain: f64,
}

impl CostModel {
    /// Cost model for the given profile.
    pub fn profile(p: SystemProfile) -> Self {
        match p {
            SystemProfile::A => CostModel {
                seq_page: 1.0,
                random_page: 4.0,
                cpu_tuple: 0.01,
                cpu_index_tuple: 0.005,
                cpu_operator: 0.0025,
                sort_factor: 0.0045,
                hash_build: 0.015,
                hash_probe: 0.008,
                fetch_cache_hit: 0.35,
                index_maintain: 0.02,
            },
            SystemProfile::B => CostModel {
                seq_page: 1.0,
                random_page: 2.5,
                cpu_tuple: 0.012,
                cpu_index_tuple: 0.004,
                cpu_operator: 0.002,
                sort_factor: 0.006,
                hash_build: 0.02,
                hash_probe: 0.01,
                fetch_cache_hit: 0.55,
                index_maintain: 0.025,
            },
        }
    }

    /// Sequential scan of a heap: all pages + per-tuple CPU.
    pub fn seq_scan(&self, pages: u64, rows: f64) -> f64 {
        pages as f64 * self.seq_page + rows * self.cpu_tuple
    }

    /// Full scan of a B-tree's leaf level.
    pub fn index_leaf_scan(&self, leaf_pages: u64, entries: f64) -> f64 {
        leaf_pages as f64 * self.seq_page + entries * self.cpu_index_tuple
    }

    /// Descend a B-tree of the given height.
    pub fn btree_descend(&self, height: u32) -> f64 {
        f64::from(height) * self.random_page
    }

    /// Read `frac` of a B-tree's leaves after a descend (range scan).
    pub fn index_range_scan(&self, height: u32, leaf_pages: u64, frac: f64, entries: f64) -> f64 {
        self.btree_descend(height)
            + (leaf_pages as f64 * frac).ceil() * self.seq_page
            + entries * self.cpu_index_tuple
    }

    /// Fetch `rows` heap tuples pointed to by index entries (non-covering
    /// access); fetches are random but partially cached.
    pub fn heap_fetches(&self, rows: f64) -> f64 {
        rows * self.random_page * (1.0 - self.fetch_cache_hit)
    }

    /// Sort `rows` tuples (in-memory n·log₂n model; the advisor's workloads
    /// never sort more than a few million rows).
    pub fn sort(&self, rows: f64) -> f64 {
        if rows <= 1.0 {
            return self.cpu_operator;
        }
        self.sort_factor * rows * rows.log2()
    }

    /// Hash join: build on `build_rows`, probe with `probe_rows`, emit `out`.
    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, out: f64) -> f64 {
        build_rows * self.hash_build + probe_rows * self.hash_probe + out * self.cpu_tuple
    }

    /// Merge join over two sorted inputs.
    pub fn merge_join(&self, left_rows: f64, right_rows: f64, out: f64) -> f64 {
        (left_rows + right_rows) * self.cpu_operator * 2.0 + out * self.cpu_tuple
    }

    /// Block nested-loop join (no index on the inner); only competitive when
    /// one side is tiny, which is exactly when the optimizer picks it.
    pub fn nl_join(&self, outer_rows: f64, inner_rows: f64, out: f64) -> f64 {
        outer_rows * inner_rows * self.cpu_operator + out * self.cpu_tuple
    }

    /// Hash aggregation of `rows` into `groups`.
    pub fn hash_agg(&self, rows: f64, groups: f64, n_aggs: usize) -> f64 {
        rows * (self.hash_probe + n_aggs as f64 * self.cpu_operator) + groups * self.cpu_tuple
    }

    /// Stream (sorted-input) aggregation.
    pub fn stream_agg(&self, rows: f64, groups: f64, n_aggs: usize) -> f64 {
        rows * (self.cpu_operator * (1 + n_aggs) as f64) + groups * self.cpu_tuple
    }

    /// Filter `rows` through `n_preds` residual predicates.
    pub fn filter(&self, rows: f64, n_preds: usize) -> f64 {
        rows * n_preds as f64 * self.cpu_operator
    }

    /// Maintain index of height `h` for `rows` modified entries.
    pub fn maintain(&self, rows: f64, height: u32) -> f64 {
        rows * (self.index_maintain + f64::from(height) * self.random_page * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        let a = CostModel::profile(SystemProfile::A);
        let b = CostModel::profile(SystemProfile::B);
        assert_ne!(a, b);
        assert!(a.random_page > b.random_page);
    }

    #[test]
    fn seq_scan_monotone_in_pages_and_rows() {
        let m = CostModel::profile(SystemProfile::A);
        assert!(m.seq_scan(100, 1000.0) < m.seq_scan(200, 1000.0));
        assert!(m.seq_scan(100, 1000.0) < m.seq_scan(100, 5000.0));
    }

    #[test]
    fn sort_superlinear() {
        let m = CostModel::profile(SystemProfile::A);
        let s1 = m.sort(1_000.0);
        let s2 = m.sort(2_000.0);
        assert!(s2 > 2.0 * s1, "sort must be superlinear: {s1} {s2}");
        assert!(m.sort(0.0) > 0.0, "degenerate sort still costs something");
    }

    #[test]
    fn random_io_dominates_sequential() {
        let m = CostModel::profile(SystemProfile::A);
        assert!(m.heap_fetches(100.0) > 100.0 * m.seq_page * 0.5);
        assert!(m.btree_descend(3) == 3.0 * m.random_page);
    }

    #[test]
    fn stream_agg_cheaper_than_hash_agg() {
        let m = CostModel::profile(SystemProfile::A);
        assert!(m.stream_agg(1e6, 10.0, 2) < m.hash_agg(1e6, 10.0, 2));
    }

    #[test]
    fn nl_join_quadratic() {
        let m = CostModel::profile(SystemProfile::A);
        assert!(m.nl_join(1e3, 1e3, 1e3) < m.nl_join(1e4, 1e4, 1e3));
        // tiny inputs: NL beats hash
        assert!(m.nl_join(5.0, 25.0, 25.0) < m.hash_join(5.0, 25.0, 25.0) + 1.0);
    }
}
