//! Access-path selection for a single table reference.
//!
//! Enumerates the ways one table of a query can be read under a
//! configuration: heap scan (or clustered-index scan), index *seek* (B-tree
//! descend on a sargable prefix) and full index *scan*, with index-only
//! variants when the index covers every referenced column.  The same
//! machinery computes INUM's `γ_qkia` — the cost of instantiating slot `i`
//! with index `a` — via [`path_for_index`].

use cophy_catalog::{ColumnRef, Configuration, Index, Schema, TableId};
use cophy_workload::{PredOp, Query};
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::ordering::Ordering;

/// How a table is physically read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessMethod {
    /// Sequential scan of the heap (or of the clustered index, which *is* the
    /// table). This is INUM's `I∅` access method.
    HeapScan,
    /// B-tree descend on a sargable key prefix, then a bounded leaf range.
    IndexSeek(Index),
    /// Full leaf-level scan of an index (useful for order or covering).
    IndexScan(Index),
}

impl AccessMethod {
    /// The index used, if any.
    pub fn index(&self) -> Option<&Index> {
        match self {
            AccessMethod::HeapScan => None,
            AccessMethod::IndexSeek(ix) | AccessMethod::IndexScan(ix) => Some(ix),
        }
    }
}

/// A costed access path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessPath {
    pub table: TableId,
    pub method: AccessMethod,
    /// Total cost of the access including residual filtering and heap
    /// fetches.
    pub cost: f64,
    /// Rows delivered after all local predicates.
    pub rows: f64,
    /// Sort order of the delivered rows (already normalized: equality-bound
    /// prefix stripped).
    pub order: Ordering,
}

/// Split of `q`'s local predicates on `table` with respect to an index key:
/// `matched_sel` is the selectivity the B-tree range absorbs, `in_index` are
/// residual predicates testable on index columns, `residual` the rest.
struct SargAnalysis {
    matched_sel: f64,
    eq_bound: usize,
    n_in_index: usize,
    n_residual: usize,
    in_index_sel: f64,
}

fn analyze_sargs(schema: &Schema, q: &Query, table: TableId, ix: &Index) -> SargAnalysis {
    let preds: Vec<_> = q.predicates_on(table).collect();
    let mut matched = vec![false; preds.len()];
    let mut matched_sel = 1.0;
    let mut eq_bound = 0;

    // Bind equality predicates along the key prefix.
    for key_col in &ix.key {
        match preds.iter().position(|p| p.column.column == *key_col && p.is_eq()) {
            Some(pi) if !matched[pi] => {
                matched[pi] = true;
                matched_sel *= preds[pi].selectivity(schema);
                eq_bound += 1;
            }
            _ => break,
        }
    }
    // One range predicate on the next key column extends the sargable prefix.
    if eq_bound < ix.key.len() {
        let next = ix.key[eq_bound];
        if let Some(pi) = preds.iter().enumerate().find_map(|(pi, p)| {
            (!matched[pi] && p.column.column == next && !p.is_eq()).then_some(pi)
        }) {
            matched[pi] = true;
            matched_sel *= preds[pi].selectivity(schema);
        }
    }

    // Residuals: applicable before the heap fetch iff on indexed columns.
    let mut n_in_index = 0;
    let mut in_index_sel = 1.0;
    let mut n_residual = 0;
    for (pi, p) in preds.iter().enumerate() {
        if matched[pi] {
            continue;
        }
        if ix.contains(p.column.column) {
            n_in_index += 1;
            in_index_sel *= p.selectivity(schema);
        } else {
            n_residual += 1;
        }
    }
    SargAnalysis { matched_sel, eq_bound, n_in_index, n_residual, in_index_sel }
}

/// Does `q` have a range (non-eq) predicate on column `c` of `table`?
fn has_range_pred(q: &Query, table: TableId, c: cophy_catalog::ColumnId) -> bool {
    q.predicates_on(table).any(|p| {
        p.column.column == c
            && matches!(p.op, PredOp::Lt(_) | PredOp::Gt(_) | PredOp::Between(_, _))
    })
}

/// The heap-scan path (INUM's `I∅`).  If the configuration clusters the table,
/// the "heap" is the clustered index and the scan delivers its key order.
pub fn heap_path(
    schema: &Schema,
    cm: &CostModel,
    q: &Query,
    table: TableId,
    clustered: Option<&Index>,
) -> AccessPath {
    let t = schema.table(table);
    let sel = q.local_selectivity(schema, table);
    let rows_out = (t.rows as f64 * sel).max(1.0);
    let n_preds = q.predicates_on(table).count();
    let cost = cm.seq_scan(t.heap_pages(), t.rows as f64) + cm.filter(t.rows as f64, n_preds);
    let order = match clustered {
        Some(cix) => {
            let eq = q.eq_columns_on(table);
            let bound = cix.eq_prefix_len(&eq);
            Ordering(cix.key[bound..].iter().map(|c| ColumnRef::new(table, *c)).collect())
        }
        None => Ordering::none(),
    };
    AccessPath { table, method: AccessMethod::HeapScan, cost, rows: rows_out, order }
}

/// Best access path that *uses index `ix`* (seek if sargable, else full
/// scan).  Returns `None` when using the index is nonsensical (e.g. a full
/// scan of a non-covering index would re-fetch every heap row *and* the index
/// has no sargable prefix or useful order — such paths are strictly dominated
/// by the heap scan and INUM prunes their `x` variables).
pub fn path_for_index(
    schema: &Schema,
    cm: &CostModel,
    q: &Query,
    table: TableId,
    ix: &Index,
) -> Option<AccessPath> {
    debug_assert_eq!(ix.table, table);
    let t = schema.table(table);
    let rows = t.rows as f64;
    let sel = q.local_selectivity(schema, table);
    let rows_out = (rows * sel).max(1.0);
    let sarg = analyze_sargs(schema, q, table, ix);
    let covering = ix.covers(&q.columns_used_on(table));
    let leaf_pages = ix.size_pages(schema);
    let height = ix.height(schema);

    // Delivered order: key suffix after the equality-bound prefix.
    let eq = q.eq_columns_on(table);
    let bound = ix.eq_prefix_len(&eq);
    let order = Ordering(ix.key[bound..].iter().map(|c| ColumnRef::new(table, *c)).collect());

    let sargable = sarg.matched_sel < 1.0 || sarg.eq_bound > 0 || {
        // A range predicate on the first key column is sargable even when
        // no equality binds a prefix.
        !ix.key.is_empty() && has_range_pred(q, table, ix.key[0])
    };

    let path = if sargable {
        // Seek: descend + bounded leaf range.
        let scanned = rows * sarg.matched_sel;
        let mut cost = cm.index_range_scan(height, leaf_pages, sarg.matched_sel, scanned);
        cost += cm.filter(scanned, sarg.n_in_index);
        let fetch_rows = scanned * sarg.in_index_sel;
        if !covering {
            cost += cm.heap_fetches(fetch_rows) + cm.filter(fetch_rows, sarg.n_residual);
        }
        AccessPath {
            table,
            method: AccessMethod::IndexSeek(ix.clone()),
            cost,
            rows: rows_out,
            order,
        }
    } else {
        // Full index scan: only sensible when covering (index-only) or when
        // the delivered order will be exploited — the caller decides the
        // latter; we only refuse the plainly dominated non-covering case.
        if !covering && order.is_none() {
            return None;
        }
        let mut cost = cm.index_leaf_scan(leaf_pages, rows);
        cost += cm.filter(rows, sarg.n_in_index);
        let fetch_rows = rows * sarg.in_index_sel;
        if !covering {
            cost += cm.heap_fetches(fetch_rows) + cm.filter(fetch_rows, sarg.n_residual);
        }
        AccessPath {
            table,
            method: AccessMethod::IndexScan(ix.clone()),
            cost,
            rows: rows_out,
            order,
        }
    };
    Some(path)
}

/// Enumerate the pareto-useful access paths for `table` under
/// `config ∪ {heap}`: minimum cost per distinct delivered order, always
/// including the overall cheapest.
pub fn enumerate(
    schema: &Schema,
    cm: &CostModel,
    q: &Query,
    table: TableId,
    config: &Configuration,
) -> Vec<AccessPath> {
    let clustered = config.on_table(table).find(|ix| ix.is_clustered());
    let mut paths = vec![heap_path(schema, cm, q, table, clustered)];
    for ix in config.on_table(table) {
        if let Some(p) = path_for_index(schema, cm, q, table, ix) {
            paths.push(p);
        }
    }
    prune_paths(paths)
}

/// Keep the cheapest path per delivered order, dropping orders whose best
/// path costs more than a path delivering an *extension* of that order.
fn prune_paths(mut paths: Vec<AccessPath>) -> Vec<AccessPath> {
    paths.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    let mut kept: Vec<AccessPath> = Vec::new();
    for p in paths {
        let dominated = kept.iter().any(|k| {
            k.cost <= p.cost
                && k.order.0.len() >= p.order.0.len()
                && k.order.0[..p.order.0.len()] == p.order.0[..]
        });
        if !dominated {
            kept.push(p);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SystemProfile;
    use cophy_catalog::TpchGen;
    use cophy_workload::Predicate;

    fn setup() -> (Schema, CostModel) {
        (TpchGen::default().schema(), CostModel::profile(SystemProfile::A))
    }

    #[test]
    fn heap_scan_costs_full_table() {
        let (s, cm) = setup();
        let li = s.table_by_name("lineitem").unwrap().id;
        let q = Query::scan(li);
        let p = heap_path(&s, &cm, &q, li, None);
        assert!(p.cost >= s.table(li).heap_pages() as f64);
        assert!(p.order.is_none());
    }

    #[test]
    fn selective_seek_beats_heap_scan() {
        let (s, cm) = setup();
        let ord = s.table_by_name("orders").unwrap();
        let ck = s.resolve("orders.o_custkey").unwrap();
        let mut q = Query::scan(ord.id);
        q.predicates.push(Predicate::eq(ck, 42.0));
        let ix = Index::secondary(ord.id, vec![ck.column]);
        let seek = path_for_index(&s, &cm, &q, ord.id, &ix).unwrap();
        let heap = heap_path(&s, &cm, &q, ord.id, None);
        assert!(matches!(seek.method, AccessMethod::IndexSeek(_)));
        assert!(seek.cost < heap.cost / 10.0, "seek {} heap {}", seek.cost, heap.cost);
    }

    #[test]
    fn covering_seek_beats_non_covering() {
        let (s, cm) = setup();
        let li = s.table_by_name("lineitem").unwrap();
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let ep = s.resolve("lineitem.l_extendedprice").unwrap();
        let mut q = Query::scan(li.id);
        q.predicates.push(Predicate::between(sd, 100.0, 150.0));
        q.projections.push(ep);
        let plain = Index::secondary(li.id, vec![sd.column]);
        let cov = Index::covering(li.id, vec![sd.column], vec![ep.column]);
        let p_plain = path_for_index(&s, &cm, &q, li.id, &plain).unwrap();
        let p_cov = path_for_index(&s, &cm, &q, li.id, &cov).unwrap();
        assert!(p_cov.cost < p_plain.cost);
    }

    #[test]
    fn eq_bound_prefix_strips_order() {
        let (s, cm) = setup();
        let li = s.table_by_name("lineitem").unwrap();
        let ok = s.resolve("lineitem.l_orderkey").unwrap();
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let mut q = Query::scan(li.id);
        q.predicates.push(Predicate::eq(ok, 7.0));
        let ix = Index::secondary(li.id, vec![ok.column, sd.column]);
        let p = path_for_index(&s, &cm, &q, li.id, &ix).unwrap();
        assert_eq!(p.order, Ordering(vec![sd]), "bound prefix must be stripped");
    }

    #[test]
    fn useless_index_rejected() {
        let (s, cm) = setup();
        let li = s.table_by_name("lineitem").unwrap();
        let cm2 = s.resolve("lineitem.l_comment").unwrap();
        let q = Query {
            tables: vec![li.id],
            projections: vec![s.resolve("lineitem.l_quantity").unwrap()],
            ..Default::default()
        };
        // Index on an unprojected, unfiltered comment column: full scan of it
        // is non-covering with no order value — but it *does* deliver an
        // order, so path_for_index returns a (costly) IndexScan.
        let ix = Index::secondary(li.id, vec![cm2.column]);
        let p = path_for_index(&s, &cm, &q, li.id, &ix).unwrap();
        let heap = heap_path(&s, &cm, &q, li.id, None);
        assert!(p.cost > heap.cost, "useless index must not look cheap");
    }

    #[test]
    fn enumerate_includes_heap_and_prunes() {
        let (s, cm) = setup();
        let li = s.table_by_name("lineitem").unwrap();
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let mut q = Query::scan(li.id);
        q.predicates.push(Predicate::between(sd, 100.0, 130.0));
        let mut cfg = Configuration::empty();
        cfg.insert(Index::secondary(li.id, vec![sd.column]));
        cfg.insert(Index::secondary(li.id, vec![sd.column])); // duplicate ignored
        let paths = enumerate(&s, &cm, &q, li.id, &cfg);
        // The selective seek dominates the heap scan here (cheaper AND
        // delivers a superset order), so pruning may drop the heap.
        assert!(paths.iter().any(|p| p.method.index().is_some()));
        // pruning keeps at most one path per order
        let mut orders: Vec<_> = paths.iter().map(|p| p.order.clone()).collect();
        orders.sort_by_key(|o| o.0.len());
        orders.dedup();
        assert_eq!(orders.len(), paths.len());
        // Without indexes, the heap scan is the only path.
        let bare = enumerate(&s, &cm, &q, li.id, &Configuration::empty());
        assert_eq!(bare.len(), 1);
        assert!(matches!(bare[0].method, AccessMethod::HeapScan));
    }

    #[test]
    fn clustered_scan_delivers_key_order() {
        let (s, cm) = setup();
        let ord = s.table_by_name("orders").unwrap();
        let q = Query::scan(ord.id);
        let cix = Index::clustered(ord.id, ord.primary_key.clone());
        let p = heap_path(&s, &cm, &q, ord.id, Some(&cix));
        assert_eq!(p.order.0.len(), 1);
        assert_eq!(p.order.0[0].column, ord.primary_key[0]);
    }
}
