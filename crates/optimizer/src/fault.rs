//! Deterministic fault injection and retry for the what-if seam.
//!
//! Real deployments sit on a what-if optimizer they do not control: probes
//! fail transiently, time out, and occasionally return garbage.  This module
//! provides the harness the rest of the stack hardens against:
//!
//! * [`FaultPlan`] — a seeded, schedule-driven fault plan.  Every fault
//!   decision is a pure function of `(seed, query fingerprint, configuration
//!   fingerprint, attempt number)`, so a schedule is reproducible across
//!   runs *and independent of probe interleaving*: the serial and sharded
//!   INUM preparation paths see the identical fault pattern.
//! * [`FaultInjectingBackend`] — wraps any [`WhatIfBackend`] and applies the
//!   plan: the first `k` attempts of a scheduled pair fail (transient or
//!   timeout), permanent pairs never succeed, and corrupted pairs return a
//!   deterministically scaled cost.  Injected faults happen *before* the
//!   inner backend is consulted, so they never consume a real what-if call.
//! * [`RetryPolicy`] — capped exponential backoff with seeded jitter, a
//!   per-probe deadline and an overall preparation budget, consumed by
//!   [`probe_with_retry`] (the helper `Inum` threads through its
//!   preparation paths).
//! * [`FaultLog`] — the typed per-preparation fault account the parallel
//!   shards aggregate instead of short-circuiting on the first error.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cophy_catalog::{Configuration, Index, Schema};
use cophy_workload::{Query, Statement};

use crate::backend::{
    config_fingerprint, query_fingerprint, splitmix64, BackendError, ProbeAnswer, WhatIfBackend,
};
use crate::cost::{CostModel, SystemProfile};

/// Uniform `[0, 1)` from one seeded draw.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded, schedule-driven fault plan.  Rates are per `(query, config)`
/// *pair*, not per attempt: a pair scheduled for transient failure fails its
/// first `k` attempts and then succeeds forever, which is what makes retry
/// outcomes independent of thread interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every draw; the same seed reproduces the same schedule.
    pub seed: u64,
    /// Fraction of pairs that fail transiently before succeeding.
    pub transient_rate: f64,
    /// A transiently failing pair fails `1..=max_transient` attempts.
    pub max_transient: u32,
    /// Fraction of *faulted* attempts injected as timeouts instead of
    /// plain transient errors.
    pub timeout_share: f64,
    /// Fraction of pairs that never succeed (every attempt fails) — the
    /// schedule entries that exhaust retries and force degradation.
    pub permanent_rate: f64,
    /// Fraction of pairs whose successful probes are cost-corrupted.
    pub corruption_rate: f64,
    /// Maximum relative corruption, e.g. `0.05` for ±5%.
    pub corruption_amplitude: f64,
}

impl FaultPlan {
    /// The do-nothing schedule: every probe passes through untouched.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            max_transient: 0,
            timeout_share: 0.0,
            permanent_rate: 0.0,
            corruption_rate: 0.0,
            corruption_amplitude: 0.0,
        }
    }

    /// An all-transient schedule: `rate` of pairs fail their first
    /// `1..=max_transient` attempts, then succeed.  With a retry policy
    /// allowing more than `max_transient` attempts, a preparation over this
    /// schedule recovers *everything* — the bit-identity property the fault
    /// tolerance tests lean on.
    pub fn transient_only(seed: u64, rate: f64, max_transient: u32) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(max_transient >= 1, "a transient schedule needs at least one failure");
        FaultPlan {
            seed,
            transient_rate: rate,
            max_transient,
            timeout_share: 0.25,
            permanent_rate: 0.0,
            corruption_rate: 0.0,
            corruption_amplitude: 0.0,
        }
    }

    /// The default chaos schedule of the `chaos_smoke` gate: a third of the
    /// pairs fail transiently (a quarter of those attempts as timeouts), 2%
    /// never succeed (forcing degradation), and 10% return mildly corrupted
    /// costs.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.33,
            max_transient: 2,
            timeout_share: 0.25,
            permanent_rate: 0.02,
            corruption_rate: 0.10,
            corruption_amplitude: 0.05,
        }
    }

    /// True when the schedule can never inject anything.
    pub fn is_zero(&self) -> bool {
        self.transient_rate == 0.0 && self.permanent_rate == 0.0 && self.corruption_rate == 0.0
    }

    /// The deterministic fate of one `(query, config)` pair under this plan.
    pub fn fate(&self, query_fp: u64, config_fp: u64) -> PairFate {
        let h = splitmix64(self.seed ^ query_fp ^ config_fp.rotate_left(32));
        let permanent = unit(splitmix64(h ^ 0x01)) < self.permanent_rate;
        let faults = if permanent {
            u32::MAX
        } else if unit(splitmix64(h ^ 0x02)) < self.transient_rate {
            1 + (splitmix64(h ^ 0x03) % u64::from(self.max_transient.max(1))) as u32
        } else {
            0
        };
        let factor = if unit(splitmix64(h ^ 0x04)) < self.corruption_rate {
            let u = 2.0 * unit(splitmix64(h ^ 0x05)) - 1.0;
            1.0 + self.corruption_amplitude * u
        } else {
            1.0
        };
        PairFate { faults, factor, timeout_salt: splitmix64(h ^ 0x06) }
    }
}

/// What the plan has in store for one probe pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairFate {
    /// How many leading attempts fail (`u32::MAX` = never succeeds).
    pub faults: u32,
    /// Multiplicative cost corruption applied to successful probes.
    pub factor: f64,
    /// Per-pair salt deciding which faulted attempts are timeouts.
    timeout_salt: u64,
}

impl PairFate {
    /// Whether the `attempt`-th (1-based) faulted attempt is a timeout.
    fn is_timeout(&self, plan: &FaultPlan, attempt: u32) -> bool {
        unit(splitmix64(self.timeout_salt ^ u64::from(attempt))) < plan.timeout_share
    }
}

/// Per-fault accounting of a [`FaultInjectingBackend`], cheap enough to keep
/// always-on (atomic counters).
#[derive(Debug, Default)]
pub struct FaultStats {
    pub transient_injected: AtomicU64,
    pub timeouts_injected: AtomicU64,
    pub corrupted_probes: AtomicU64,
    pub probes_passed: AtomicU64,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    pub transient_injected: u64,
    pub timeouts_injected: u64,
    pub corrupted_probes: u64,
    pub probes_passed: u64,
}

impl FaultStats {
    fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            transient_injected: self.transient_injected.load(Ordering::Relaxed),
            timeouts_injected: self.timeouts_injected.load(Ordering::Relaxed),
            corrupted_probes: self.corrupted_probes.load(Ordering::Relaxed),
            probes_passed: self.probes_passed.load(Ordering::Relaxed),
        }
    }
}

/// A backend that injects the plan's faults in front of any inner backend.
///
/// Owns its inner backend (`Box<dyn WhatIfBackend>`) so long-lived hosts —
/// the `cophy-server` daemon wrapping a tenant, the chaos bench harness —
/// can hold it without borrowing.  Fault decisions are keyed per pair and
/// attempt (see [`FaultPlan::fate`]), so two backends over the same plan and
/// seed inject identical faults regardless of probe order.
#[derive(Debug)]
pub struct FaultInjectingBackend {
    inner: Box<dyn WhatIfBackend>,
    plan: FaultPlan,
    stats: FaultStats,
    /// Attempts seen so far per pair — the only mutable schedule state.
    attempts: Mutex<HashMap<(u64, u64), u32>>,
}

impl FaultInjectingBackend {
    pub fn new(inner: Box<dyn WhatIfBackend>, plan: FaultPlan) -> Self {
        FaultInjectingBackend {
            inner,
            plan,
            stats: FaultStats::default(),
            attempts: Mutex::new(HashMap::new()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Per-fault accounting so far.
    pub fn stats(&self) -> FaultStatsSnapshot {
        self.stats.snapshot()
    }

    /// Forget all attempt history (the schedule replays from the start).
    pub fn reset_schedule(&self) {
        self.attempts.lock().unwrap().clear();
    }
}

impl WhatIfBackend for FaultInjectingBackend {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn profile(&self) -> SystemProfile {
        self.inner.profile()
    }

    fn cost_model(&self) -> &CostModel {
        self.inner.cost_model()
    }

    fn try_probe(&self, q: &Query, config: &Configuration) -> Result<ProbeAnswer, BackendError> {
        let qfp = query_fingerprint(q);
        let cfp = config_fingerprint(config);
        let fate = self.plan.fate(qfp, cfp);
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap();
            let n = attempts.entry((qfp, cfp)).or_insert(0);
            *n = n.saturating_add(1);
            *n
        };
        if attempt <= fate.faults {
            // Injected before the inner backend is consulted: a faulted
            // attempt never spends a real what-if call.
            return Err(if fate.is_timeout(&self.plan, attempt) {
                self.stats.timeouts_injected.fetch_add(1, Ordering::Relaxed);
                BackendError::Timeout { query: qfp, config: cfp, elapsed_ms: 0 }
            } else {
                self.stats.transient_injected.fetch_add(1, Ordering::Relaxed);
                BackendError::Transient { query: qfp, config: cfp, attempt }
            });
        }
        let mut ans = self.inner.try_probe(q, config)?;
        if fate.factor != 1.0 {
            self.stats.corrupted_probes.fetch_add(1, Ordering::Relaxed);
            ans.total_cost *= fate.factor;
            ans.internal_cost *= fate.factor;
        }
        self.stats.probes_passed.fetch_add(1, Ordering::Relaxed);
        Ok(ans)
    }

    fn try_relevant_indexes(&self, stmt: &Statement) -> Result<Vec<Index>, BackendError> {
        self.inner.try_relevant_indexes(stmt)
    }

    fn what_if_calls(&self) -> u64 {
        self.inner.what_if_calls()
    }

    fn reset_call_counter(&self) {
        self.inner.reset_call_counter()
    }
}

/// Capped exponential backoff with seeded jitter, a per-probe deadline and
/// an overall preparation budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per probe (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry up to
    /// [`RetryPolicy::max_backoff`].
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Seed of the per-(pair, attempt) jitter draw.
    pub jitter_seed: u64,
    /// Wall-clock budget of one probe *including* its retries and backoffs;
    /// past it the probe gives up with its last error.
    pub probe_deadline: Option<Duration>,
    /// Wall-clock budget of the whole preparation; past it no further
    /// retries are attempted anywhere (first failures still surface).
    pub prep_budget: Option<Duration>,
}

impl Default for RetryPolicy {
    /// The production default: four attempts, 1 ms base backoff capped at
    /// 20 ms, 250 ms per probe, no overall budget.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 0x5EED,
            probe_deadline: Some(Duration::from_millis(250)),
            prep_budget: None,
        }
    }
}

impl RetryPolicy {
    /// No retries at all — every preparation path behaves exactly as before
    /// the fault layer existed (zero extra probes, bit-identical results).
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..Default::default() }
    }

    /// Whether this policy can ever re-attempt a probe.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The backoff before retrying after the `attempt`-th (1-based) failed
    /// attempt: `base · 2^(attempt-1)`, capped, scaled by a deterministic
    /// jitter in `[0.5, 1.0)` drawn from `(jitter_seed, pair, attempt)`.
    pub fn backoff(&self, query_fp: u64, config_fp: u64, attempt: u32) -> Duration {
        let exp =
            self.base_backoff.saturating_mul(1u32 << (attempt - 1).min(16)).min(self.max_backoff);
        let bits = splitmix64(
            self.jitter_seed ^ query_fp ^ config_fp.rotate_left(32) ^ u64::from(attempt),
        );
        exp.mul_f64(0.5 + 0.5 * unit(bits))
    }
}

/// The outcome of one retried probe: the final answer (or the last error
/// once attempts are exhausted) plus how many retries were spent.
#[derive(Debug, Clone, PartialEq)]
pub struct RetriedProbe {
    pub result: Result<ProbeAnswer, BackendError>,
    pub retries: u32,
}

/// Probe with retry: re-attempts retryable failures per `policy`, sleeping
/// the backoff between attempts, until success, a non-retryable error, the
/// per-probe deadline, the preparation deadline (`prep_deadline`, computed
/// once by the caller from [`RetryPolicy::prep_budget`]), or exhaustion.
pub fn probe_with_retry(
    backend: &dyn WhatIfBackend,
    policy: &RetryPolicy,
    q: &Query,
    config: &Configuration,
    prep_deadline: Option<Instant>,
) -> RetriedProbe {
    let started = Instant::now();
    let probe_deadline = policy.probe_deadline.map(|d| started + d);
    let mut retries = 0u32;
    loop {
        match backend.try_probe(q, config) {
            Ok(ans) => return RetriedProbe { result: Ok(ans), retries },
            Err(e) => {
                let attempt = retries + 1;
                let expired = |dl: Option<Instant>| dl.is_some_and(|dl| Instant::now() >= dl);
                if !e.is_retryable()
                    || attempt >= policy.max_attempts
                    || expired(probe_deadline)
                    || expired(prep_deadline)
                {
                    return RetriedProbe { result: Err(e), retries };
                }
                let (qfp, cfp) = match e {
                    BackendError::Transient { query, config, .. }
                    | BackendError::Timeout { query, config, .. } => (query, config),
                    _ => unreachable!("non-retryable errors returned above"),
                };
                std::thread::sleep(policy.backoff(qfp, cfp, attempt));
                retries += 1;
            }
        }
    }
}

/// What kind of fault a [`FaultEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Transient,
    Timeout,
    /// Non-retryable (replay miss, spent quota).
    Hard,
}

impl From<&BackendError> for FaultKind {
    fn from(e: &BackendError) -> Self {
        match e {
            BackendError::Transient { .. } => FaultKind::Transient,
            BackendError::Timeout { .. } => FaultKind::Timeout,
            _ => FaultKind::Hard,
        }
    }
}

/// One probe that failed at least once during preparation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Fingerprint of the statement whose preparation hit the fault.
    pub statement: u64,
    /// The final (or only) error's class.
    pub kind: FaultKind,
    /// Total attempts spent on the probe.
    pub attempts: u32,
    /// Whether a retry eventually succeeded.
    pub recovered: bool,
}

/// The typed fault account of one preparation run.  Parallel shards build
/// independent logs and [`FaultLog::absorb`] them in statement order, so the
/// merged log is deterministic for a fixed workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    /// Probes that returned an answer on the first attempt.
    pub probes_clean: u64,
    /// Retries spent across all probes.
    pub retries: u64,
    /// Probes that failed at least once but recovered via retry.
    pub probes_recovered: u64,
    /// Probes that exhausted retries (or failed hard) and were degraded.
    pub probes_exhausted: u64,
    /// Per-failure records, in preparation order.
    pub events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Record one retried probe's outcome against `statement_fp`.
    pub fn record(&mut self, statement_fp: u64, probe: &RetriedProbe) {
        match &probe.result {
            Ok(_) if probe.retries == 0 => self.probes_clean += 1,
            Ok(_) => {
                self.retries += u64::from(probe.retries);
                self.probes_recovered += 1;
                self.events.push(FaultEvent {
                    statement: statement_fp,
                    kind: FaultKind::Transient,
                    attempts: probe.retries + 1,
                    recovered: true,
                });
            }
            Err(e) => {
                self.retries += u64::from(probe.retries);
                self.probes_exhausted += 1;
                self.events.push(FaultEvent {
                    statement: statement_fp,
                    kind: FaultKind::from(e),
                    attempts: probe.retries + 1,
                    recovered: false,
                });
            }
        }
    }

    /// Fold another shard's log into this one.
    pub fn absorb(&mut self, other: FaultLog) {
        self.probes_clean += other.probes_clean;
        self.retries += other.retries;
        self.probes_recovered += other.probes_recovered;
        self.probes_exhausted += other.probes_exhausted;
        self.events.extend(other.events);
    }

    /// True when nothing ever failed — preparation ran exactly as it would
    /// have without the fault layer.
    pub fn is_clean(&self) -> bool {
        self.probes_recovered == 0 && self.probes_exhausted == 0
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} clean, {} recovered ({} retries), {} exhausted",
            self.probes_clean, self.probes_recovered, self.retries, self.probes_exhausted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WhatIfOptimizer;
    use cophy_catalog::TpchGen;
    use cophy_workload::HomGen;

    fn opt() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    fn fast_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            ..Default::default()
        }
    }

    #[test]
    fn zero_plan_is_bit_identical_passthrough() {
        let clean = opt();
        let faulty = FaultInjectingBackend::new(Box::new(opt()), FaultPlan::none(7));
        let w = HomGen::new(5).generate(clean.schema(), 8);
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            let a = clean.try_probe(q, &Configuration::empty()).unwrap();
            let b = faulty.try_probe(q, &Configuration::empty()).unwrap();
            assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
            assert_eq!(a.internal_cost.to_bits(), b.internal_cost.to_bits());
            assert_eq!(a.leaves, b.leaves);
        }
        assert_eq!(faulty.stats().transient_injected, 0);
        assert_eq!(faulty.stats().corrupted_probes, 0);
    }

    #[test]
    fn transient_pairs_fail_then_succeed_deterministically() {
        let plan = FaultPlan::transient_only(42, 1.0, 3);
        let faulty = FaultInjectingBackend::new(Box::new(opt()), plan.clone());
        let li = faulty.schema().table_by_name("lineitem").unwrap().id;
        let q = Query::scan(li);
        let fate = plan.fate(query_fingerprint(&q), config_fingerprint(&Configuration::empty()));
        assert!((1..=3).contains(&fate.faults));
        for attempt in 1..=fate.faults {
            let err = faulty.try_probe(&q, &Configuration::empty()).unwrap_err();
            assert!(err.is_retryable(), "attempt {attempt} must inject a retryable fault");
        }
        assert!(faulty.try_probe(&q, &Configuration::empty()).is_ok());
        // No real what-if call was spent on the faulted attempts.
        assert_eq!(faulty.what_if_calls(), 1);
    }

    #[test]
    fn retry_recovers_all_transient_schedules() {
        let plan = FaultPlan::transient_only(9, 1.0, 3);
        let clean = opt();
        let faulty = FaultInjectingBackend::new(Box::new(opt()), plan);
        let w = HomGen::new(2).generate(clean.schema(), 6);
        let policy = fast_retry(4);
        let mut log = FaultLog::default();
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            let probe = probe_with_retry(&faulty, &policy, q, &Configuration::empty(), None);
            log.record(crate::backend::statement_fingerprint(stmt), &probe);
            let want = clean.try_probe(q, &Configuration::empty()).unwrap();
            assert_eq!(probe.result.unwrap().total_cost.to_bits(), want.total_cost.to_bits());
        }
        assert_eq!(log.probes_exhausted, 0);
        assert!(log.probes_recovered > 0, "an all-pairs schedule must have injected faults");
        assert!(log.retries >= log.probes_recovered);
    }

    #[test]
    fn permanent_pairs_exhaust_retries() {
        let mut plan = FaultPlan::none(3);
        plan.permanent_rate = 1.0;
        let faulty = FaultInjectingBackend::new(Box::new(opt()), plan);
        let li = faulty.schema().table_by_name("lineitem").unwrap().id;
        let probe = probe_with_retry(
            &faulty,
            &fast_retry(3),
            &Query::scan(li),
            &Configuration::empty(),
            None,
        );
        assert!(probe.result.is_err());
        assert_eq!(probe.retries, 2, "3 attempts = 2 retries");
        assert_eq!(faulty.what_if_calls(), 0);
    }

    #[test]
    fn hard_errors_are_not_retried() {
        // A quota of zero makes the metered inner fail hard on attempt one.
        let err = BackendError::QuotaExceeded { spent: 1, limit: 1 };
        assert!(!err.is_retryable());
        let err = BackendError::UnrecordedProbe { query: 1, config: 2, recorded: 0 };
        assert!(!err.is_retryable());
        assert!(BackendError::Transient { query: 1, config: 2, attempt: 1 }.is_retryable());
        assert!(BackendError::Timeout { query: 1, config: 2, elapsed_ms: 5 }.is_retryable());
    }

    #[test]
    fn corruption_is_deterministic_and_bounded() {
        let mut plan = FaultPlan::none(11);
        plan.corruption_rate = 1.0;
        plan.corruption_amplitude = 0.05;
        let clean = opt();
        let faulty = FaultInjectingBackend::new(Box::new(opt()), plan);
        let w = HomGen::new(4).generate(clean.schema(), 6);
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            let base = clean.try_probe(q, &Configuration::empty()).unwrap().total_cost;
            let a = faulty.try_probe(q, &Configuration::empty()).unwrap().total_cost;
            let b = faulty.try_probe(q, &Configuration::empty()).unwrap().total_cost;
            assert_eq!(a.to_bits(), b.to_bits(), "corruption must be deterministic per pair");
            assert!((a / base - 1.0).abs() <= 0.05 + 1e-12);
        }
    }

    #[test]
    fn backoff_grows_capped_with_seeded_jitter() {
        let policy = RetryPolicy::default();
        let b1 = policy.backoff(1, 2, 1);
        let b2 = policy.backoff(1, 2, 2);
        let b9 = policy.backoff(1, 2, 9);
        assert!(b1 >= policy.base_backoff / 2);
        assert!(b2 <= policy.max_backoff);
        assert!(b9 <= policy.max_backoff, "backoff must stay capped");
        assert_eq!(policy.backoff(1, 2, 1), b1, "jitter must be deterministic");
        assert_ne!(policy.backoff(1, 3, 1), b1, "different pairs draw different jitter");
    }

    #[test]
    fn fault_log_absorbs_shards() {
        let mut a =
            FaultLog { probes_clean: 3, retries: 2, probes_recovered: 1, ..Default::default() };
        let b = FaultLog {
            probes_clean: 1,
            retries: 4,
            probes_recovered: 1,
            probes_exhausted: 1,
            events: vec![FaultEvent {
                statement: 7,
                kind: FaultKind::Timeout,
                attempts: 4,
                recovered: false,
            }],
        };
        a.absorb(b);
        assert_eq!(a.probes_clean, 4);
        assert_eq!(a.retries, 6);
        assert_eq!(a.probes_recovered, 2);
        assert_eq!(a.probes_exhausted, 1);
        assert_eq!(a.events.len(), 1);
        assert!(!a.is_clean());
    }
}
