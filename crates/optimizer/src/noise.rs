//! Calibrated-noise backend for robustness studies.
//!
//! Wraps any inner [`WhatIfBackend`] and perturbs probe costs by a bounded
//! multiplicative factor — the standard model for what-if optimizer
//! estimation error.  The noise is **deterministic** per
//! `(query, configuration)` pair (hashed with a seed), so repeated probes of
//! the same pair agree, configurations stay comparable within one run, and
//! experiments are reproducible: the same seed reproduces the same perturbed
//! cost surface.

use cophy_catalog::{Configuration, Index, Schema};
use cophy_workload::{Query, Statement};

use crate::backend::{
    config_fingerprint, query_fingerprint, splitmix64, BackendError, ProbeAnswer, WhatIfBackend,
};
use crate::cost::{CostModel, SystemProfile};

/// A backend whose probe costs are scaled by `1 + amplitude · u`, with
/// `u ∈ [-1, 1)` drawn deterministically per `(query, configuration)`.
#[derive(Debug)]
pub struct NoisyBackend<'a> {
    inner: &'a dyn WhatIfBackend,
    amplitude: f64,
    seed: u64,
}

impl<'a> NoisyBackend<'a> {
    /// `amplitude` is the maximum relative error, e.g. `0.2` for ±20%.
    pub fn new(inner: &'a dyn WhatIfBackend, amplitude: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0, 1)");
        NoisyBackend { inner, amplitude, seed }
    }

    /// The multiplicative factor applied to probes of this pair.
    pub fn factor(&self, q: &Query, config: &Configuration) -> f64 {
        let bits = splitmix64(
            self.seed ^ query_fingerprint(q) ^ config_fingerprint(config).rotate_left(32),
        );
        // 53 uniform mantissa bits → u ∈ [0, 1) → [-1, 1).
        let u = 2.0 * ((bits >> 11) as f64 / (1u64 << 53) as f64) - 1.0;
        1.0 + self.amplitude * u
    }
}

impl WhatIfBackend for NoisyBackend<'_> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn profile(&self) -> SystemProfile {
        self.inner.profile()
    }

    fn cost_model(&self) -> &CostModel {
        self.inner.cost_model()
    }

    fn try_probe(&self, q: &Query, config: &Configuration) -> Result<ProbeAnswer, BackendError> {
        let mut ans = self.inner.try_probe(q, config)?;
        let f = self.factor(q, config);
        ans.total_cost *= f;
        ans.internal_cost *= f;
        Ok(ans)
    }

    fn try_relevant_indexes(&self, stmt: &Statement) -> Result<Vec<Index>, BackendError> {
        self.inner.try_relevant_indexes(stmt)
    }

    fn what_if_calls(&self) -> u64 {
        self.inner.what_if_calls()
    }

    fn reset_call_counter(&self) {
        self.inner.reset_call_counter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WhatIfOptimizer;
    use cophy_catalog::TpchGen;
    use cophy_workload::HomGen;

    fn opt() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let o = opt();
        let noisy = NoisyBackend::new(&o, 0.2, 42);
        let w = HomGen::new(9).generate(o.schema(), 6);
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            let clean = o.cost_query(q, &Configuration::empty());
            let a = noisy.cost_query(q, &Configuration::empty());
            let b = noisy.cost_query(q, &Configuration::empty());
            assert_eq!(a.to_bits(), b.to_bits(), "noise must be deterministic per pair");
            assert!((a / clean - 1.0).abs() <= 0.2 + 1e-12, "noise out of amplitude bounds");
        }
    }

    #[test]
    fn different_seeds_give_different_surfaces() {
        let o = opt();
        let w = HomGen::new(9).generate(o.schema(), 8);
        let n1 = NoisyBackend::new(&o, 0.3, 1);
        let n2 = NoisyBackend::new(&o, 0.3, 2);
        let differs = w.iter().any(|(_, stmt, _)| {
            let q = stmt.read_shell();
            n1.cost_query(q, &Configuration::empty()).to_bits()
                != n2.cost_query(q, &Configuration::empty()).to_bits()
        });
        assert!(differs);
    }

    #[test]
    fn accounting_passes_through_to_inner() {
        let o = opt();
        let noisy = NoisyBackend::new(&o, 0.1, 7);
        let li = o.schema().table_by_name("lineitem").unwrap().id;
        let _ = noisy.cost_query(&Query::scan(li), &Configuration::empty());
        assert_eq!(noisy.what_if_calls(), 1);
        assert_eq!(o.what_if_calls(), 1);
        noisy.reset_call_counter();
        assert_eq!(o.what_if_calls(), 0);
    }
}
