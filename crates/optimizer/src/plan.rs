//! Physical plans.
//!
//! A plan is a tree of operators whose leaves are table *accesses*.  The
//! INUM decomposition needs exactly two things from a plan:
//!
//! 1. the cost and delivered order of each leaf access ([`LeafAccess`]), and
//! 2. the *required* order at each leaf — the order property the internal
//!    operators actually exploit (merge joins, stream aggregation, final
//!    ORDER BY without a sort).  A slot's required order determines which
//!    indexes may instantiate it (`γ = ∞` otherwise, Appendix A).
//!
//! [`PhysicalPlan::internal_cost`] is the paper's `β` (internal plan cost):
//! total cost minus the leaf access costs.

use cophy_catalog::TableId;
use serde::{Deserialize, Serialize};

use crate::access::AccessPath;
use crate::ordering::Ordering;

/// A plan operator with cumulative cost and output estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubPlan {
    pub op: PlanNode,
    /// Cumulative cost including all children.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Delivered output order.
    pub order: Ordering,
}

/// Operator variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanNode {
    /// Leaf: access one table.
    Access(AccessPath),
    /// Explicit sort to `order`.
    Sort(Box<SubPlan>),
    /// Hash join (build = left, probe = right); destroys order.
    HashJoin(Box<SubPlan>, Box<SubPlan>),
    /// Merge join; requires both inputs sorted on the join columns,
    /// preserves the left order.
    MergeJoin(Box<SubPlan>, Box<SubPlan>),
    /// Block nested-loop join; preserves the outer (left) order.
    NestLoopJoin(Box<SubPlan>, Box<SubPlan>),
    /// Hash aggregation; destroys order.
    HashAgg(Box<SubPlan>),
    /// Stream aggregation; requires input sorted on the group columns and
    /// preserves that order.
    StreamAgg(Box<SubPlan>),
}

impl SubPlan {
    /// Children of this operator.
    fn children(&self) -> Vec<&SubPlan> {
        match &self.op {
            PlanNode::Access(_) => vec![],
            PlanNode::Sort(c) | PlanNode::HashAgg(c) | PlanNode::StreamAgg(c) => vec![c],
            PlanNode::HashJoin(l, r) | PlanNode::MergeJoin(l, r) | PlanNode::NestLoopJoin(l, r) => {
                vec![l, r]
            }
        }
    }

    /// Number of operators in the subtree.
    pub fn n_ops(&self) -> usize {
        1 + self.children().iter().map(|c| c.n_ops()).sum::<usize>()
    }

    /// One-line operator name, for plan rendering.
    fn name(&self) -> &'static str {
        match &self.op {
            PlanNode::Access(p) => match p.method {
                crate::access::AccessMethod::HeapScan => "SeqScan",
                crate::access::AccessMethod::IndexSeek(_) => "IndexSeek",
                crate::access::AccessMethod::IndexScan(_) => "IndexScan",
            },
            PlanNode::Sort(_) => "Sort",
            PlanNode::HashJoin(..) => "HashJoin",
            PlanNode::MergeJoin(..) => "MergeJoin",
            PlanNode::NestLoopJoin(..) => "NestLoop",
            PlanNode::HashAgg(_) => "HashAgg",
            PlanNode::StreamAgg(_) => "StreamAgg",
        }
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{:indent$}{} (cost={:.1} rows={:.0})",
            "",
            self.name(),
            self.cost,
            self.rows,
            indent = depth * 2
        );
        for c in self.children() {
            c.render_into(depth + 1, out);
        }
    }
}

/// One leaf access of a finished plan, with the order requirement the plan
/// imposes on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafAccess {
    pub table: TableId,
    pub path: AccessPath,
    /// The order property the internal plan relies on at this slot
    /// (empty = any access method may instantiate the slot).
    pub required: Ordering,
}

/// A complete optimized plan for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    pub root: SubPlan,
    pub leaves: Vec<LeafAccess>,
}

impl PhysicalPlan {
    /// Build from a root, deriving the per-leaf order requirements by a
    /// top-down traversal: sorts and hash operators absorb requirements,
    /// merge joins impose join-column order on both children, stream
    /// aggregation imposes the group order, nested loops pass requirements to
    /// the outer side.
    pub fn finish(root: SubPlan, final_requirement: &Ordering) -> PhysicalPlan {
        let mut leaves = Vec::new();
        collect(&root, final_requirement.clone(), &mut leaves);
        PhysicalPlan { root, leaves }
    }

    pub fn total_cost(&self) -> f64 {
        self.root.cost
    }

    /// INUM's `β`: cost of the internal operators only.
    pub fn internal_cost(&self) -> f64 {
        (self.root.cost - self.leaves.iter().map(|l| l.path.cost).sum::<f64>()).max(0.0)
    }

    /// The leaf for `table`, if that table is referenced.
    pub fn leaf(&self, table: TableId) -> Option<&LeafAccess> {
        self.leaves.iter().find(|l| l.table == table)
    }

    /// Pretty-printed operator tree.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.root.render_into(0, &mut s);
        s
    }
}

fn collect(plan: &SubPlan, requirement: Ordering, leaves: &mut Vec<LeafAccess>) {
    match &plan.op {
        PlanNode::Access(path) => {
            leaves.push(LeafAccess {
                table: path.table,
                path: path.clone(),
                required: requirement,
            });
        }
        PlanNode::Sort(c) => collect(c, Ordering::none(), leaves),
        PlanNode::HashAgg(c) => collect(c, Ordering::none(), leaves),
        PlanNode::StreamAgg(c) => {
            // The stream agg itself needed its input sorted by its own
            // delivered order (group columns); that requirement dominates
            // whatever was above (the builder guarantees compatibility).
            collect(c, plan.order.clone(), leaves);
        }
        PlanNode::HashJoin(l, r) => {
            collect(l, Ordering::none(), leaves);
            collect(r, Ordering::none(), leaves);
        }
        PlanNode::MergeJoin(l, r) => {
            // Both children must deliver the merge order; their delivered
            // orders are recorded as the requirement (builder checked them).
            let lo = truncate_to_merge_keys(l, plan);
            let ro = truncate_to_merge_keys(r, plan);
            collect(l, lo, leaves);
            collect(r, ro, leaves);
        }
        PlanNode::NestLoopJoin(l, r) => {
            collect(l, requirement, leaves);
            collect(r, Ordering::none(), leaves);
        }
    }
}

/// For a merge join, the requirement on a child is the prefix of the child's
/// delivered order with the merge arity; the builder stores the merge key
/// count implicitly as the parent's order length (left side order).
fn truncate_to_merge_keys(child: &SubPlan, parent: &SubPlan) -> Ordering {
    let n = parent.order.0.len().max(1).min(child.order.0.len());
    Ordering(child.order.0[..n].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMethod, AccessPath};
    use cophy_catalog::ColumnRef;

    fn leaf(table: u32, cost: f64, order: Vec<ColumnRef>) -> SubPlan {
        let path = AccessPath {
            table: TableId(table),
            method: AccessMethod::HeapScan,
            cost,
            rows: 100.0,
            order: Ordering(order),
        };
        SubPlan { op: PlanNode::Access(path), cost, rows: 100.0, order: Ordering::none() }
    }

    use cophy_catalog::TableId;

    #[test]
    fn internal_cost_is_total_minus_leaves() {
        let l = leaf(0, 10.0, vec![]);
        let r = leaf(1, 20.0, vec![]);
        let join = SubPlan {
            cost: 50.0,
            rows: 100.0,
            order: Ordering::none(),
            op: PlanNode::HashJoin(Box::new(l), Box::new(r)),
        };
        let plan = PhysicalPlan::finish(join, &Ordering::none());
        assert_eq!(plan.leaves.len(), 2);
        assert!((plan.internal_cost() - 20.0).abs() < 1e-9);
        assert!(plan.leaf(TableId(0)).is_some());
        assert!(plan.leaf(TableId(7)).is_none());
    }

    #[test]
    fn hash_join_absorbs_requirements() {
        let l = leaf(0, 10.0, vec![]);
        let r = leaf(1, 20.0, vec![]);
        let join = SubPlan {
            cost: 50.0,
            rows: 100.0,
            order: Ordering::none(),
            op: PlanNode::HashJoin(Box::new(l), Box::new(r)),
        };
        let c = ColumnRef::new(TableId(0), cophy_catalog::ColumnId(0));
        // Even with a final requirement, hash join children see none.
        let plan = PhysicalPlan::finish(join, &Ordering(vec![c]));
        assert!(plan.leaves.iter().all(|l| l.required.is_none()));
    }

    #[test]
    fn final_requirement_reaches_single_leaf() {
        let c = ColumnRef::new(TableId(0), cophy_catalog::ColumnId(0));
        let l = leaf(0, 10.0, vec![c]);
        let plan = PhysicalPlan::finish(l, &Ordering(vec![c]));
        assert_eq!(plan.leaves[0].required, Ordering(vec![c]));
    }

    #[test]
    fn sort_absorbs_requirement() {
        let c = ColumnRef::new(TableId(0), cophy_catalog::ColumnId(0));
        let l = leaf(0, 10.0, vec![]);
        let sort = SubPlan {
            cost: 30.0,
            rows: 100.0,
            order: Ordering(vec![c]),
            op: PlanNode::Sort(Box::new(l)),
        };
        let plan = PhysicalPlan::finish(sort, &Ordering(vec![c]));
        assert!(plan.leaves[0].required.is_none());
        assert!((plan.internal_cost() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_operators() {
        let l = leaf(0, 10.0, vec![]);
        let plan = PhysicalPlan::finish(l, &Ordering::none());
        assert!(plan.render().contains("SeqScan"));
    }
}
