NAME          cophy_small
* x0 = z[ix_lineitem(l_sk,l_qty)]
* x1 = z[ix_orders(o_odate)]
* x2 = y[q0,k0]
ROWS
 N  COST
 L  c0
 L  c1
 E  c2
COLUMNS
    MARK0000  'MARKER'                 'INTORG'
    x0  COST  4.25
    x0  c0  320
    x0  c1  -1
    x1  COST  0.5
    x1  c0  144
    x2  COST  -10
    x2  c1  1
    x2  c2  1
    MARK0001  'MARKER'                 'INTEND'
RHS
    RHS  c0  400
    RHS  c2  1
BOUNDS
 BV BND  x0
 BV BND  x1
 BV BND  x2
ENDATA
