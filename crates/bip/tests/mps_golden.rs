//! Golden-file coverage for the MPS writer: the exported text of a small,
//! fixed BIP is checked in at `tests/data/small.mps`, so any drift in the
//! format (field layout, float rendering, section order) shows up as a diff
//! instead of silently breaking external-solver interop.

use cophy_bip::{lint_mps, parse_mps, write_mps, BranchBound, LinExpr, Model, Sense, SolveOptions};

const GOLDEN: &str = include_str!("data/small.mps");

/// The fixed model behind the golden file: a miniature Theorem-1 shape with
/// two index variables, one plan variable, a storage row, a coupling row and
/// an assignment row.
fn golden_model() -> Model {
    let mut m = Model::new();
    let z0 = m.add_var("z[ix_lineitem(l_sk,l_qty)]", 4.25);
    let z1 = m.add_var("z[ix_orders(o_odate)]", 0.5);
    let y = m.add_var("y[q0,k0]", -10.0);
    m.add_constraint(LinExpr::new().term(z0, 320.0).term(z1, 144.0), Sense::Le, 400.0);
    m.add_constraint(LinExpr::new().term(y, 1.0).term(z0, -1.0), Sense::Le, 0.0);
    m.add_constraint(LinExpr::new().term(y, 1.0), Sense::Eq, 1.0);
    m
}

#[test]
fn exported_mps_matches_the_golden_file() {
    let text = write_mps(&golden_model(), "cophy_small");
    assert_eq!(
        text, GOLDEN,
        "MPS writer output drifted from tests/data/small.mps; \
         if the change is intentional, regenerate via `regenerate_golden_file`"
    );
}

#[test]
fn golden_file_passes_the_format_lint() {
    assert_eq!(lint_mps(GOLDEN).expect("golden file lints"), (3, 3));
}

#[test]
fn golden_file_reimports_and_solves_to_the_native_objective() {
    let native = golden_model();
    let imported = parse_mps(GOLDEN).expect("golden file parses");
    let opts = SolveOptions::default();
    let a = BranchBound::new().solve(&native, &opts);
    let b = BranchBound::new().solve(&imported, &opts);
    // Same model, same engine: identical answers, no gap slack needed here.
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    assert_eq!(a.x, b.x);
    // Sanity: the optimum picks the plan and its coupled index.
    assert_eq!(b.x, vec![1.0, 0.0, 1.0]);
}

/// Regenerate `tests/data/small.mps` after an intentional format change:
/// `cargo test -p cophy-bip --test mps_golden regenerate -- --ignored`.
#[test]
#[ignore = "writes the golden file; run explicitly after format changes"]
fn regenerate_golden_file() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/small.mps");
    std::fs::write(path, write_mps(&golden_model(), "cophy_small")).expect("write golden");
}
