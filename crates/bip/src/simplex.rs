//! Two-phase bounded-variable **sparse revised** primal simplex.
//!
//! Solves the LP relaxation `min cᵀx, Ax {≤,=,≥} b, lo ≤ x ≤ hi` of a
//! [`Model`](crate::model::Model).  Design notes:
//!
//! * **Bounded variables** — nonbasic variables rest at either bound, so
//!   branch-and-bound can fix binaries by pinching `[lo, hi]` without adding
//!   rows.
//! * **Phase 1 with artificials** — every row gets an artificial variable
//!   signed to make the initial basis feasible; minimizing their sum either
//!   reaches zero (feasible) or proves infeasibility.
//! * **Sparse LU basis factorization** — the basis is factorized by the
//!   left-looking sparse LU in the `factor` module (Markowitz-style column
//!   ordering, threshold partial pivoting) and kept current between
//!   refactorizations with a product-form **eta file**: each pivot appends
//!   one sparse eta vector, and the factors are rebuilt from scratch every
//!   `REFACTOR_EVERY` pivots for numerical hygiene.  `ftran`/`btran` cost
//!   O(nnz) instead of the O(m²) row sweeps of the dense explicit `B⁻¹` the
//!   engine used before (retained verbatim as the [`LpEngine::Dense`]
//!   reference oracle in the `dense` module).
//! * **Devex pricing** — nonbasic columns are scored `d² / γ_j` against
//!   reference-framework weights updated from each pivot row; when the
//!   weights overflow their stable range they are reset to 1 (counted in
//!   [`LpResult::devex_resets`]), which degrades gracefully to Dantzig
//!   pricing until the weights re-learn the geometry.  A Bland rule still
//!   takes over after a long degenerate run, guaranteeing termination.
//! * **Basis snapshots** — an optimal solve captures its [`Basis`] (variable
//!   states + basic set + phase-1 artificial signs) in the [`LpResult`], so
//!   branch-and-bound can re-solve a child LP with the
//!   [`dual`](crate::dual) simplex after a bound pinch instead of paying a
//!   fresh two-phase solve.  After a pure *objective* change the basis stays
//!   primal feasible instead, and [`SimplexSolver::warm_solve`] restarts
//!   phase 2 directly from it (the soft-constraint λ-sweep path).

// The pivot kernels below intentionally use index loops; iterator chains
// obscure the pivot arithmetic.
#![allow(clippy::needless_range_loop)]

use crate::factor::{Eta, LuFactors};
use crate::model::{Model, Sense};

/// Solver outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    Optimal,
    Infeasible,
    Unbounded,
    /// Iteration limit hit; `x` is the best feasible point found (phase 2)
    /// or meaningless (phase 1).
    IterLimit,
    /// The basis matrix went numerically singular mid-solve (a failed
    /// refactorization, or an ftran/pricing disagreement beyond tolerance).
    /// Distinct from [`LpStatus::IterLimit`] so callers recover — a cold
    /// re-solve on the other kernel — instead of treating the abort as an
    /// exhausted budget.
    Singular,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpResult {
    pub status: LpStatus,
    /// Values of the *structural* variables.
    pub x: Vec<f64>,
    pub objective: f64,
    pub iterations: usize,
    /// Snapshot of the optimal basis (present only on
    /// [`LpStatus::Optimal`]), the warm-start handle for
    /// [`DualSimplex::resolve`](crate::dual::DualSimplex::resolve).
    pub basis: Option<Basis>,
    /// Number of from-scratch LU (or dense inverse) factorizations paid.
    pub refactorizations: usize,
    /// Number of Devex reference-framework resets (0 on the dense engine).
    pub devex_resets: usize,
    /// Singular-basis events this solve recovered from by falling back to
    /// a cold two-phase solve on the other kernel (see
    /// [`LpStatus::Singular`]).
    pub factor_recoveries: usize,
}

impl LpResult {
    /// An immediate abort (expired deadline before any factorization).
    pub(crate) fn aborted(n: usize) -> LpResult {
        LpResult {
            status: LpStatus::IterLimit,
            x: vec![0.0; n],
            objective: f64::INFINITY,
            iterations: 0,
            basis: None,
            refactorizations: 0,
            devex_resets: 0,
            factor_recoveries: 0,
        }
    }
}

/// Which simplex kernel backs a solve.
///
/// [`LpEngine::Sparse`] is the production path: sparse LU factorization with
/// eta-file updates and Devex pricing.  [`LpEngine::Dense`] is the previous
/// dense explicit-`B⁻¹` engine, retained verbatim as a differential-testing
/// oracle and as the PR-6 performance baseline in the solver benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpEngine {
    #[default]
    Sparse,
    Dense,
}

/// A reusable snapshot of a simplex basis over the standard-form column
/// space (structural + slack + artificial variables).  Opaque outside the
/// crate: it is only produced by an optimal solve and only consumed by the
/// dual-simplex warm re-solve after a bound change on the same model.
/// Snapshots are engine-agnostic — either [`LpEngine`] can restore a basis
/// captured by the other.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Per-column variable state (length: structural + slack + artificial).
    pub(crate) state: Vec<VarState>,
    /// Basic column per row.
    pub(crate) basis: Vec<usize>,
    /// Signs given to the artificial columns at phase-1 initialization.
    pub(crate) art_sigma: Vec<f64>,
    pub(crate) n_structural: usize,
}

impl Basis {
    /// Extend this snapshot to the same model after rows were **appended**
    /// (the [`ModelDelta::AddRow`](crate::ModelDelta::AddRow) path).  Old
    /// columns keep their states — structural and slack indices are
    /// unchanged, the artificial block shifts past the new rows' slacks —
    /// and every appended row enters the basis through its own slack (its
    /// pinned artificial for an equality row).  The extended basis matrix is
    /// block triangular `[[B, 0], [C, ±I]]`, hence still invertible, and the
    /// new rows' dual values are zero, so every old reduced cost — and with
    /// it dual feasibility — survives verbatim.  A dual-simplex re-solve
    /// from the extension therefore only repairs the primal violations the
    /// new rows introduce, instead of paying a cold two-phase root.
    ///
    /// Returns `None` when the snapshot cannot have come from a row-append
    /// history of `model` (different variable count, fewer rows than the
    /// snapshot, or a sense change among the old rows).
    pub fn extended_to(&self, model: &Model) -> Option<Basis> {
        let n = self.n_structural;
        let old_m = self.basis.len();
        let new_m = model.n_constraints();
        if model.n_vars() != n || new_m < old_m || self.state.len() < n + old_m {
            return None;
        }
        let s_old = self.state.len() - n - old_m;
        let rows = model.constraints();
        if rows[..old_m].iter().filter(|c| c.sense != Sense::Eq).count() != s_old {
            return None;
        }
        let s_new = rows[old_m..].iter().filter(|c| c.sense != Sense::Eq).count();

        // New column layout:
        // [0, n)                structural           (states copied)
        // [n, n+s_old)          old slacks           (states copied)
        // [n+s_old, n+s_old+s_new)  new slacks       (basic, patched below)
        // [.., ..+old_m)        old artificials      (states copied, shifted)
        // [.., ..+new_m-old_m)  new artificials      (nonbasic unless Eq row)
        let mut state = Vec::with_capacity(n + s_old + s_new + new_m);
        state.extend_from_slice(&self.state[..n + s_old]);
        state.resize(n + s_old + s_new, VarState::Lower);
        state.extend_from_slice(&self.state[n + s_old..]);
        state.resize(n + s_old + s_new + new_m, VarState::Lower);
        let mut basis: Vec<usize> =
            self.basis.iter().map(|&b| if b < n + s_old { b } else { b + s_new }).collect();
        let mut art_sigma = self.art_sigma.clone();
        let art_start = n + s_old + s_new;
        let mut next_slack = n + s_old;
        for (i, c) in rows.iter().enumerate().skip(old_m) {
            let enter = if c.sense == Sense::Eq {
                art_start + i
            } else {
                let slack = next_slack;
                next_slack += 1;
                slack
            };
            state[enter] = VarState::Basic;
            basis.push(enter);
            art_sigma.push(1.0);
        }
        Some(Basis { state, basis, art_sigma, n_structural: n })
    }
}

/// The simplex engine.
#[derive(Debug, Clone)]
pub struct SimplexSolver {
    pub max_iters: usize,
    pub tol: f64,
    /// Abandon the solve (status [`LpStatus::IterLimit`]) once this instant
    /// passes — checked before any factorization and every
    /// [`DEADLINE_CHECK_INTERVAL`] pivots, so a single large LP cannot blow
    /// through a caller's wall-clock budget.
    pub deadline: Option<std::time::Instant>,
    /// Which kernel to run on (sparse LU by default).
    pub engine: LpEngine,
}

/// Pivots between wall-clock deadline checks, shared by the primal and
/// [`dual`](crate::dual) simplex loops.  Sparse pivots cost O(nnz) rather
/// than the O(m²) of the old dense engine, so the interval is tuned small
/// enough (16) that even a rich full-scale BIP stays within ~100ms of its
/// wall-clock budget.  The check also runs before the first pivot — and
/// before the first factorization at solve entry — so an already-expired
/// deadline aborts without touching the basis.
pub const DEADLINE_CHECK_INTERVAL: usize = 16;

impl Default for SimplexSolver {
    fn default() -> Self {
        SimplexSolver { max_iters: 50_000, tol: 1e-7, deadline: None, engine: LpEngine::Sparse }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    Basic,
    Lower,
    Upper,
}

/// Internal standard-form workspace on the sparse kernel, shared with the
/// [`dual`](crate::dual) simplex.
pub(crate) struct Tableau {
    /// Sparse columns for every variable (structural, slack, artificial).
    pub(crate) cols: Vec<Vec<(usize, f64)>>,
    pub(crate) lo: Vec<f64>,
    pub(crate) hi: Vec<f64>,
    pub(crate) rhs: Vec<f64>,
    pub(crate) n_structural: usize,
    pub(crate) n_artificial_start: usize,
    pub(crate) m: usize,
    // state
    pub(crate) state: Vec<VarState>,
    pub(crate) basis: Vec<usize>,
    pub(crate) xb: Vec<f64>,
    /// Current LU factors of the basis (`None` until the first refactor).
    lu: Option<LuFactors>,
    /// Product-form updates accumulated since the last refactorization.
    etas: Vec<Eta>,
    // scratch (rowbuf is kept all-zero between calls — the LU ftran is
    // self-cleaning)
    rowbuf: Vec<f64>,
    posbuf: Vec<f64>,
    zbuf: Vec<f64>,
    // counters surfaced through LpResult
    pub(crate) refactorizations: usize,
    pub(crate) devex_resets: usize,
}

pub(crate) const PIVOT_TOL: f64 = 1e-9;
pub(crate) const REFACTOR_EVERY: usize = 128;
/// Devex weights above this trigger a reference-framework reset.
pub(crate) const DEVEX_RESET_LIMIT: f64 = 1e7;
/// Entries below this are dropped from eta vectors.
pub(crate) const ETA_DROP_TOL: f64 = 1e-12;

impl Tableau {
    pub(crate) fn build(model: &Model, lo: &[f64], hi: &[f64]) -> Tableau {
        let n = model.n_vars();
        let m = model.n_constraints();
        assert_eq!(lo.len(), n);
        assert_eq!(hi.len(), n);

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut rhs = Vec::with_capacity(m);
        for (i, c) in model.constraints().iter().enumerate() {
            for &(v, a) in &c.expr.terms {
                cols[v.0 as usize].push((i, a));
            }
            rhs.push(c.rhs);
        }
        let mut lo = lo.to_vec();
        let mut hi = hi.to_vec();

        // Slacks.
        for (i, c) in model.constraints().iter().enumerate() {
            let coeff = match c.sense {
                Sense::Le => 1.0,
                Sense::Ge => -1.0,
                Sense::Eq => continue,
            };
            cols.push(vec![(i, coeff)]);
            lo.push(0.0);
            hi.push(f64::INFINITY);
        }
        let n_artificial_start = cols.len();

        // One artificial per row; sign fixed at init_basis time.
        for i in 0..m {
            cols.push(vec![(i, 1.0)]);
            lo.push(0.0);
            hi.push(f64::INFINITY);
        }

        let total = cols.len();
        Tableau {
            cols,
            lo,
            hi,
            rhs,
            n_structural: n,
            n_artificial_start,
            m,
            state: vec![VarState::Lower; total],
            basis: Vec::new(),
            xb: vec![0.0; m],
            lu: None,
            etas: Vec::new(),
            rowbuf: vec![0.0; m],
            posbuf: vec![0.0; m],
            zbuf: vec![0.0; m],
            refactorizations: 0,
            devex_resets: 0,
        }
    }

    /// Nonbasic value of variable `j` per its state.
    pub(crate) fn nb_value(&self, j: usize) -> f64 {
        match self.state[j] {
            VarState::Lower => self.lo[j],
            VarState::Upper => self.hi[j],
            VarState::Basic => unreachable!("basic variable has no bound value"),
        }
    }

    /// Capture the current basis for later warm re-solves.
    pub(crate) fn snapshot(&self) -> Basis {
        Basis {
            state: self.state.clone(),
            basis: self.basis.clone(),
            art_sigma: (0..self.m).map(|i| self.cols[self.n_artificial_start + i][0].1).collect(),
            n_structural: self.n_structural,
        }
    }

    /// Rebuild the tableau state from a basis snapshot taken on the same
    /// model (possibly under different variable bounds).  Artificials stay
    /// pinned to zero (the phase-2 convention the snapshot was taken under).
    /// Returns `false` when the snapshot does not fit this tableau or the
    /// basis matrix is numerically singular — callers then fall back to a
    /// cold two-phase solve.
    pub(crate) fn restore(&mut self, b: &Basis) -> bool {
        if b.n_structural != self.n_structural
            || b.state.len() != self.cols.len()
            || b.basis.len() != self.m
            || b.art_sigma.len() != self.m
        {
            return false;
        }
        self.state.copy_from_slice(&b.state);
        self.basis.clone_from(&b.basis);
        for (i, &sigma) in b.art_sigma.iter().enumerate() {
            self.cols[self.n_artificial_start + i][0].1 = sigma;
        }
        for j in self.n_artificial_start..self.cols.len() {
            self.hi[j] = 0.0;
        }
        self.refactor()
    }

    /// Start from the all-artificial basis.
    pub(crate) fn init_basis(&mut self) {
        // Residual with every non-artificial variable at its lower bound
        // (fixed vars sit at lo == hi).
        let mut r = self.rhs.clone();
        for j in 0..self.n_artificial_start {
            let v = self.lo[j];
            if v != 0.0 {
                for &(i, a) in &self.cols[j] {
                    r[i] -= a * v;
                }
            }
            self.state[j] = VarState::Lower;
        }
        self.basis = (0..self.m).map(|i| self.n_artificial_start + i).collect();
        for i in 0..self.m {
            let art = self.n_artificial_start + i;
            let sigma = if r[i] >= 0.0 { 1.0 } else { -1.0 };
            self.cols[art][0].1 = sigma;
            self.state[art] = VarState::Basic;
        }
        // The all-artificial basis is a signed identity; factorization is
        // trivial but keeps a single code path (and sets xb = |r|).
        let ok = self.refactor();
        debug_assert!(ok, "signed identity basis cannot be singular");
    }

    /// `w = B⁻¹ · col_j` (LU solve plus the eta file).
    pub(crate) fn ftran(&mut self, j: usize, w: &mut [f64]) {
        w.fill(0.0);
        let Tableau { cols, lu, etas, rowbuf, .. } = self;
        for &(r, a) in &cols[j] {
            rowbuf[r] += a;
        }
        lu.as_ref().expect("factorized").ftran(rowbuf, w);
        for eta in etas.iter() {
            eta.apply_ftran(w);
        }
    }

    /// `w = B⁻¹ · v` for an arbitrary row-space vector `v` (consumed:
    /// zeroed on exit).  Used by the bound-flipping ratio test to apply all
    /// flips of one dual iteration with a single solve.
    pub(crate) fn ftran_vec(&mut self, v: &mut [f64], w: &mut [f64]) {
        w.fill(0.0);
        let Tableau { lu, etas, .. } = self;
        lu.as_ref().expect("factorized").ftran(v, w);
        for eta in etas.iter() {
            eta.apply_ftran(w);
        }
    }

    /// Row `r` of `B⁻¹` in row space: `ρ = eᵣᵀ B⁻¹`, the pricing vector for
    /// `α_j = ρ · a_j`.
    pub(crate) fn btran_row(&mut self, r: usize, rho: &mut [f64]) {
        let Tableau { lu, etas, posbuf, zbuf, .. } = self;
        posbuf.fill(0.0);
        posbuf[r] = 1.0;
        for eta in etas.iter().rev() {
            eta.apply_btran(posbuf);
        }
        lu.as_ref().expect("factorized").btran(posbuf, rho, zbuf);
    }

    /// Dual vector `y = c_Bᵀ · B⁻¹` for the given phase costs.
    pub(crate) fn duals(&mut self, cost: &[f64], y: &mut [f64]) {
        let Tableau { lu, etas, posbuf, zbuf, basis, .. } = self;
        for (k, &bv) in basis.iter().enumerate() {
            posbuf[k] = cost[bv];
        }
        for eta in etas.iter().rev() {
            eta.apply_btran(posbuf);
        }
        lu.as_ref().expect("factorized").btran(posbuf, y, zbuf);
    }

    pub(crate) fn reduced_cost(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let mut d = cost[j];
        for &(i, a) in &self.cols[j] {
            d -= y[i] * a;
        }
        d
    }

    /// Refactorize the basis from scratch: fresh sparse LU, eta file
    /// cleared, `x_B` recomputed.  Returns false if the basis matrix is
    /// numerically singular.
    pub(crate) fn refactor(&mut self) -> bool {
        let bcols: Vec<&[(usize, f64)]> =
            self.basis.iter().map(|&bv| self.cols[bv].as_slice()).collect();
        let Some(lu) = LuFactors::factorize(self.m, &bcols) else {
            return false;
        };
        self.lu = Some(lu);
        self.etas.clear();
        self.refactorizations += 1;
        self.recompute_xb();
        true
    }

    /// `x_B = B⁻¹ (b − N x_N)`.
    pub(crate) fn recompute_xb(&mut self) {
        let mut r = self.rhs.clone();
        for j in 0..self.cols.len() {
            if self.state[j] == VarState::Basic {
                continue;
            }
            let v = self.nb_value(j);
            if v != 0.0 && v.is_finite() {
                for &(i, a) in &self.cols[j] {
                    r[i] -= a * v;
                }
            }
        }
        let mut xb = std::mem::take(&mut self.xb);
        self.ftran_vec(&mut r, &mut xb);
        self.xb = xb;
    }

    /// Record a basis change at row `r` with ftran'd entering column `w`:
    /// append the product-form eta and refactorize on cadence.  Returns
    /// false on a singular refactorization (caller aborts with
    /// [`LpStatus::Singular`] so the solve can recover on the other kernel).
    #[must_use]
    pub(crate) fn update_factors(
        &mut self,
        r: usize,
        w: &[f64],
        since_refactor: &mut usize,
    ) -> bool {
        self.etas.push(Eta::from_pivot(r, w, ETA_DROP_TOL));
        *since_refactor += 1;
        if *since_refactor >= REFACTOR_EVERY {
            *since_refactor = 0;
            return self.refactor();
        }
        true
    }

    /// Run the primal simplex on the given phase costs with Devex pricing.
    /// Returns (status, iterations).
    pub(crate) fn run(
        &mut self,
        cost: &[f64],
        tol: f64,
        max_iters: usize,
        deadline: Option<std::time::Instant>,
    ) -> (LpStatus, usize) {
        let m = self.m;
        let ncols = self.cols.len();
        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut rho = vec![0.0; m];
        // Devex reference weights, one per column; reset = Dantzig pricing.
        let mut gamma = vec![1.0f64; ncols];
        let mut degenerate_run = 0usize;
        let mut since_refactor = 0usize;

        for iter in 0..max_iters {
            if iter % DEADLINE_CHECK_INTERVAL == 0 {
                if let Some(dl) = deadline {
                    if std::time::Instant::now() >= dl {
                        return (LpStatus::IterLimit, iter);
                    }
                }
            }
            self.duals(cost, &mut y);

            // Pricing: Devex normally, Bland when cycling is suspected.
            let bland = degenerate_run > 2 * (m + 16);
            let mut entering: Option<(usize, f64, f64)> = None; // (j, d, score)
            for j in 0..ncols {
                if self.state[j] == VarState::Basic || self.lo[j] >= self.hi[j] {
                    continue;
                }
                let d = self.reduced_cost(cost, &y, j);
                let improving = match self.state[j] {
                    VarState::Lower => d < -tol,
                    VarState::Upper => d > tol,
                    VarState::Basic => false,
                };
                if !improving {
                    continue;
                }
                if bland {
                    entering = Some((j, d, d.abs()));
                    break;
                }
                let score = d * d / gamma[j];
                if entering.as_ref().is_none_or(|(_, _, s)| score > *s) {
                    entering = Some((j, d, score));
                }
            }
            let Some((j, _d, _)) = entering else {
                return (LpStatus::Optimal, iter);
            };

            let sigma = if self.state[j] == VarState::Lower { 1.0 } else { -1.0 };
            self.ftran(j, &mut w);

            // Ratio test.
            let mut t_max = self.hi[j] - self.lo[j]; // bound flip distance
            let mut leaving: Option<(usize, VarState)> = None;
            for i in 0..m {
                let delta = sigma * w[i];
                let bv = self.basis[i];
                if delta > PIVOT_TOL {
                    // basic variable decreases toward its lower bound
                    let room = self.xb[i] - self.lo[bv];
                    let limit = (room / delta).max(0.0);
                    if limit < t_max - 1e-12 || (bland && limit <= t_max && leaving.is_none()) {
                        t_max = limit;
                        leaving = Some((i, VarState::Lower));
                    }
                } else if delta < -PIVOT_TOL {
                    // basic variable increases toward its upper bound
                    if self.hi[bv].is_finite() {
                        let room = self.hi[bv] - self.xb[i];
                        let limit = (room / -delta).max(0.0);
                        if limit < t_max - 1e-12 {
                            t_max = limit;
                            leaving = Some((i, VarState::Upper));
                        }
                    }
                }
            }

            if t_max.is_infinite() {
                return (LpStatus::Unbounded, iter);
            }
            degenerate_run = if t_max <= 1e-10 { degenerate_run + 1 } else { 0 };

            // Apply the step.
            for i in 0..m {
                self.xb[i] -= sigma * t_max * w[i];
            }
            match leaving {
                None => {
                    // Bound flip.
                    self.state[j] = if self.state[j] == VarState::Lower {
                        VarState::Upper
                    } else {
                        VarState::Lower
                    };
                }
                Some((r, leave_to)) => {
                    let old = self.basis[r];
                    let entering_val = match self.state[j] {
                        VarState::Lower => self.lo[j] + t_max,
                        VarState::Upper => self.hi[j] - t_max,
                        VarState::Basic => unreachable!(),
                    };
                    let piv = w[r];
                    debug_assert!(piv.abs() > PIVOT_TOL * 0.1);

                    // Devex update against the pre-pivot pivot row
                    // ρ = eᵣᵀB⁻¹: γ_k ← max(γ_k, (α_k/α_q)² γ_q) for every
                    // nonbasic k, and the leaving column re-enters the
                    // framework with γ ← max(γ_q/α_q², 1).
                    self.btran_row(r, &mut rho);
                    let gamma_q = gamma[j];
                    let inv_piv2 = 1.0 / (piv * piv);
                    let mut gmax = 1.0f64;
                    for k in 0..ncols {
                        if self.state[k] == VarState::Basic || k == j || self.lo[k] >= self.hi[k] {
                            continue;
                        }
                        let mut alpha = 0.0;
                        for &(i, a) in &self.cols[k] {
                            alpha += rho[i] * a;
                        }
                        if alpha != 0.0 {
                            let cand = alpha * alpha * inv_piv2 * gamma_q;
                            if cand > gamma[k] {
                                gamma[k] = cand;
                            }
                            if gamma[k] > gmax {
                                gmax = gamma[k];
                            }
                        }
                    }
                    gamma[old] = (gamma_q * inv_piv2).max(1.0);
                    if gamma[old] > gmax {
                        gmax = gamma[old];
                    }
                    if gmax > DEVEX_RESET_LIMIT {
                        gamma.fill(1.0);
                        self.devex_resets += 1;
                    }

                    self.state[old] = leave_to;
                    self.state[j] = VarState::Basic;
                    self.basis[r] = j;
                    self.xb[r] = entering_val;

                    if !self.update_factors(r, &w, &mut since_refactor) {
                        return (LpStatus::Singular, iter);
                    }
                }
            }
        }
        (LpStatus::IterLimit, max_iters)
    }

    /// Structural-variable values of the current basis.
    pub(crate) fn structural_x(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_structural];
        for (j, xi) in x.iter_mut().enumerate() {
            *xi = match self.state[j] {
                VarState::Lower => self.lo[j],
                VarState::Upper => self.hi[j],
                VarState::Basic => {
                    let r = self.basis.iter().position(|&b| b == j).expect("basic var in basis");
                    self.xb[r]
                }
            };
        }
        x
    }
}

impl SimplexSolver {
    pub fn new() -> Self {
        Self::default()
    }

    /// True once the wall-clock deadline (if armed) has passed.
    fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|dl| std::time::Instant::now() >= dl)
    }

    /// Solve the LP relaxation of `model` with per-variable bounds.
    pub fn solve(&self, model: &Model, lo: &[f64], hi: &[f64]) -> LpResult {
        let n = model.n_vars();
        // Trivial: no constraints → bound-minimize each variable.
        if model.n_constraints() == 0 {
            let x: Vec<f64> = model
                .objective()
                .iter()
                .enumerate()
                .map(|(j, &c)| if c > 0.0 { lo[j] } else { hi[j] })
                .collect();
            let objective = model.objective_value(&x);
            return LpResult {
                status: LpStatus::Optimal,
                x,
                objective,
                iterations: 0,
                basis: None,
                refactorizations: 0,
                devex_resets: 0,
                factor_recoveries: 0,
            };
        }
        // An already-expired deadline aborts before the first factorization.
        if self.deadline_expired() {
            return LpResult::aborted(n);
        }
        let first = match self.engine {
            LpEngine::Sparse => self.solve_sparse(model, lo, hi),
            LpEngine::Dense => crate::dense::dense_solve(self, model, lo, hi),
        };
        if first.status != LpStatus::Singular {
            return first;
        }
        // A singular basis is a property of this kernel's pivot path — a
        // deterministic identical retry would break down at the same pivot.
        // Recover with a cold two-phase solve on the *other* kernel
        // (threshold vs plain partial pivoting take different elimination
        // paths), folding the abandoned attempt's work into the result.
        let mut second = match self.engine {
            LpEngine::Sparse => crate::dense::dense_solve(self, model, lo, hi),
            LpEngine::Dense => self.solve_sparse(model, lo, hi),
        };
        second.iterations += first.iterations;
        second.refactorizations += first.refactorizations;
        second.devex_resets += first.devex_resets;
        second.factor_recoveries += first.factor_recoveries + 1;
        second
    }

    fn solve_sparse(&self, model: &Model, lo: &[f64], hi: &[f64]) -> LpResult {
        let n = model.n_vars();
        let mut t = Tableau::build(model, lo, hi);
        t.init_basis();

        // Phase 1: minimize the artificial sum.
        let mut phase1_cost = vec![0.0; t.cols.len()];
        for j in t.n_artificial_start..t.cols.len() {
            phase1_cost[j] = 1.0;
        }
        let (s1, it1) = t.run(&phase1_cost, self.tol, self.max_iters, self.deadline);
        if matches!(s1, LpStatus::IterLimit | LpStatus::Singular) {
            return LpResult {
                status: s1,
                x: vec![0.0; n],
                objective: f64::INFINITY,
                iterations: it1,
                basis: None,
                refactorizations: t.refactorizations,
                devex_resets: t.devex_resets,
                factor_recoveries: 0,
            };
        }
        let infeas: f64 = t
            .basis
            .iter()
            .enumerate()
            .filter(|(_, &bv)| bv >= t.n_artificial_start)
            .map(|(i, _)| t.xb[i].max(0.0))
            .sum();
        if infeas > 1e-6 {
            return LpResult {
                status: LpStatus::Infeasible,
                x: vec![0.0; n],
                objective: f64::INFINITY,
                iterations: it1,
                basis: None,
                refactorizations: t.refactorizations,
                devex_resets: t.devex_resets,
                factor_recoveries: 0,
            };
        }

        // Phase 2: pin artificials to zero, restore the real objective.
        for j in t.n_artificial_start..t.cols.len() {
            t.hi[j] = 0.0;
            if t.state[j] != VarState::Basic {
                t.state[j] = VarState::Lower;
            }
        }
        let mut phase2_cost = vec![0.0; t.cols.len()];
        phase2_cost[..n].copy_from_slice(model.objective());
        let (s2, it2) = t.run(&phase2_cost, self.tol, self.max_iters, self.deadline);

        let x = t.structural_x();
        let objective = model.objective_value(&x);
        let basis = (s2 == LpStatus::Optimal).then(|| t.snapshot());
        LpResult {
            status: s2,
            x,
            objective,
            iterations: it1 + it2,
            basis,
            refactorizations: t.refactorizations,
            devex_resets: t.devex_resets,
            factor_recoveries: 0,
        }
    }

    /// Warm-start **phase 2** from a basis snapshot of the *same model and
    /// bounds* after a pure objective change.  Bound and RHS edits keep a
    /// basis dual feasible (the [`DualSimplex`](crate::dual::DualSimplex)
    /// territory); an objective edit instead keeps it **primal** feasible,
    /// so the correct warm restart is the primal phase 2 — a dual re-solve
    /// here would accept a suboptimal point.  Used by the soft-constraint
    /// λ-sweep, where only the objective weights move between points.
    ///
    /// Returns `None` when the snapshot does not fit, its basis is
    /// singular, or the restored point violates the current bounds — the
    /// caller then pays a cold two-phase solve.
    pub fn warm_solve(
        &self,
        model: &Model,
        lo: &[f64],
        hi: &[f64],
        basis: &Basis,
    ) -> Option<LpResult> {
        let n = model.n_vars();
        if model.n_constraints() == 0 {
            return None;
        }
        if self.deadline_expired() {
            return Some(LpResult::aborted(n));
        }
        let mut t = Tableau::build(model, lo, hi);
        if !t.restore(basis) {
            return None;
        }
        // The restart is only sound from a primal-feasible point.
        let feas_tol = self.tol.max(1e-7);
        for i in 0..t.m {
            let bv = t.basis[i];
            if t.xb[i] < t.lo[bv] - feas_tol || t.xb[i] > t.hi[bv] + feas_tol {
                return None;
            }
        }
        let mut cost = vec![0.0; t.cols.len()];
        cost[..n].copy_from_slice(model.objective());
        let (status, iterations) = t.run(&cost, self.tol, self.max_iters, self.deadline);
        let x = t.structural_x();
        let objective = model.objective_value(&x);
        let snap = (status == LpStatus::Optimal).then(|| t.snapshot());
        Some(LpResult {
            status,
            x,
            objective,
            iterations,
            basis: snap,
            refactorizations: t.refactorizations,
            devex_resets: t.devex_resets,
            factor_recoveries: 0,
        })
    }

    /// Feasibility check only (phase 1): is the relaxed polytope non-empty?
    pub fn is_feasible(&self, model: &Model, lo: &[f64], hi: &[f64]) -> bool {
        if model.n_constraints() == 0 {
            return true;
        }
        self.solve(model, lo, hi).status != LpStatus::Infeasible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    fn bounds(n: usize) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; n], vec![1.0; n])
    }

    #[test]
    fn textbook_lp() {
        // min −x − 2y s.t. x + y ≤ 1.5, x,y ∈ [0,1] → x=0.5,y=1, obj −2.5.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        let (lo, hi) = bounds(2);
        let r = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - (-2.5)).abs() < 1e-6, "{}", r.objective);
        assert!((r.x[0] - 0.5).abs() < 1e-6);
        assert!((r.x[1] - 1.0).abs() < 1e-6);
        assert!(r.refactorizations >= 1, "cold solve factorizes at least once");
        assert_eq!(r.factor_recoveries, 0, "clean solve must not report recoveries");
    }

    #[test]
    fn singular_snapshot_rejected_by_warm_solve() {
        // Two rows so a duplicated basis column makes B genuinely singular.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        m.add_constraint(LinExpr::new().term(x, 1.0), Sense::Le, 0.8);
        let (lo, hi) = bounds(2);
        let solver = SimplexSolver::new();
        let r = solver.solve(&m, &lo, &hi);
        assert_eq!(r.status, LpStatus::Optimal);
        let mut bad = r.basis.clone().expect("optimal solve snapshots its basis");
        bad.basis[1] = bad.basis[0];
        assert!(
            solver.warm_solve(&m, &lo, &hi, &bad).is_none(),
            "a singular snapshot must be rejected so the caller re-solves cold"
        );
    }

    #[test]
    fn forced_refactorization_on_singular_basis_reports_failure() {
        // A corrupted basis (duplicate column) must surface as a false
        // return from the cadence refactorization — the hook [`Tableau::run`]
        // turns into [`LpStatus::Singular`] so the solve recovers on the
        // other kernel instead of pretending the pivot budget ran out.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        m.add_constraint(LinExpr::new().term(y, 1.0), Sense::Le, 0.9);
        let (lo, hi) = bounds(2);
        let mut t = Tableau::build(&m, &lo, &hi);
        t.init_basis();
        t.basis[1] = t.basis[0];
        let w = vec![1.0, 0.0];
        let mut since = REFACTOR_EVERY - 1;
        assert!(
            !t.update_factors(0, &w, &mut since),
            "refactorizing a singular basis must report failure, not succeed"
        );
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 1 → obj 1.
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Eq, 1.0);
        let (lo, hi) = bounds(2);
        let r = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_and_infeasibility() {
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0), Sense::Ge, 0.75);
        let (lo, hi) = bounds(1);
        let r = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.x[0] - 0.75).abs() < 1e-6);

        // x ≥ 2 is impossible for x ∈ [0,1].
        let mut m2 = Model::new();
        let x2 = m2.add_var("x", 1.0);
        m2.add_constraint(LinExpr::new().term(x2, 1.0), Sense::Ge, 2.0);
        let r2 = SimplexSolver::new().solve(&m2, &lo, &hi);
        assert_eq!(r2.status, LpStatus::Infeasible);
        assert!(!SimplexSolver::new().is_feasible(&m2, &lo, &hi));
    }

    #[test]
    fn fixed_variables_via_bounds() {
        // Fixing x=1 through bounds must propagate: min y s.t. x + y ≥ 1.5.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Ge, 1.5);
        let r = SimplexSolver::new().solve(&m, &[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.x[0] - 1.0).abs() < 1e-9);
        assert!((r.x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_shortcut() {
        let mut m = Model::new();
        m.add_var("a", 2.0);
        m.add_var("b", -3.0);
        let (lo, hi) = bounds(2);
        let r = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_eq!(r.x, vec![0.0, 1.0]);
        assert_eq!(r.objective, -3.0);
    }

    #[test]
    fn lp_bound_never_exceeds_binary_optimum() {
        // LP relaxation ≤ BIP optimum on a random-ish knapsack family.
        for seed in 0..20u64 {
            let mut m = Model::new();
            let n = 8;
            let mut expr = LinExpr::new();
            for j in 0..n {
                let c = -(((seed * 37 + j as u64 * 13) % 19 + 1) as f64);
                let v = m.add_var(format!("v{j}"), c);
                let wsz = ((seed * 61 + j as u64 * 29) % 9 + 1) as f64;
                expr.add(v, wsz);
            }
            m.add_constraint(expr, Sense::Le, 15.0);
            let (lo, hi) = bounds(n);
            let r = SimplexSolver::new().solve(&m, &lo, &hi);
            assert_eq!(r.status, LpStatus::Optimal, "seed {seed}");
            let (bin_opt, _) = m.brute_force().expect("knapsack always feasible");
            assert!(
                r.objective <= bin_opt + 1e-6,
                "LP bound {} must be ≤ binary optimum {} (seed {seed})",
                r.objective,
                bin_opt
            );
            // Fractional knapsack has at most one fractional variable.
            let frac = r.x.iter().filter(|v| **v > 1e-6 && **v < 1.0 - 1e-6).count();
            assert!(frac <= 1, "knapsack LP has ≤1 fractional var, got {frac}");
        }
    }

    #[test]
    fn expired_deadline_aborts_before_first_factorization() {
        // The deadline check runs at solve entry, so an already-expired
        // deadline returns IterLimit with zero iterations AND zero
        // factorizations — no LU work may start past the wall clock.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        let (lo, hi) = bounds(2);
        for engine in [LpEngine::Sparse, LpEngine::Dense] {
            let solver = SimplexSolver {
                deadline: Some(std::time::Instant::now()),
                engine,
                ..Default::default()
            };
            let r = solver.solve(&m, &lo, &hi);
            assert_eq!(r.status, LpStatus::IterLimit);
            assert_eq!(r.iterations, 0, "no pivot may run past an expired deadline");
            assert_eq!(r.refactorizations, 0, "no factorization past an expired deadline");
        }
    }

    #[test]
    fn optimal_solve_captures_a_basis() {
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        let (lo, hi) = bounds(2);
        let r = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(r.status, LpStatus::Optimal);
        let b = r.basis.expect("optimal solve snapshots its basis");
        assert_eq!(b.n_structural, 2);
        assert_eq!(b.basis.len(), m.n_constraints());
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints through the same vertex.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -1.0);
        for _ in 0..6 {
            m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.0);
        }
        m.add_constraint(LinExpr::new().term(x, 1.0), Sense::Le, 1.0);
        m.add_constraint(LinExpr::new().term(y, 1.0), Sense::Le, 1.0);
        let (lo, hi) = bounds(2);
        let r = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn duality_sanity_on_transport_like_lp() {
        // min Σ costs subject to supply/demand equalities.
        // 2 sources (cap 1 each as vars scaled), 2 sinks needing 0.5 each.
        let mut m = Model::new();
        let x11 = m.add_var("x11", 4.0);
        let x12 = m.add_var("x12", 1.0);
        let x21 = m.add_var("x21", 2.0);
        let x22 = m.add_var("x22", 3.0);
        m.add_constraint(LinExpr::new().term(x11, 1.0).term(x21, 1.0), Sense::Eq, 0.5);
        m.add_constraint(LinExpr::new().term(x12, 1.0).term(x22, 1.0), Sense::Eq, 0.5);
        let (lo, hi) = bounds(4);
        let r = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(r.status, LpStatus::Optimal);
        // best: x21=0.5 (cost 1), x12=0.5 (cost 0.5) → 1.5
        assert!((r.objective - 1.5).abs() < 1e-6, "{}", r.objective);
    }

    #[test]
    fn engines_agree_on_random_knapsacks() {
        // The dense oracle and the sparse production engine must agree on
        // status and objective across a small random family.
        for seed in 0..12u64 {
            let mut m = Model::new();
            let n = 7;
            let mut expr = LinExpr::new();
            for j in 0..n {
                let c = -(((seed * 41 + j as u64 * 17) % 23 + 1) as f64);
                let v = m.add_var(format!("v{j}"), c);
                expr.add(v, ((seed * 53 + j as u64 * 31) % 7 + 1) as f64);
            }
            m.add_constraint(expr, Sense::Le, 11.0);
            let (lo, hi) = bounds(n);
            let sparse = SimplexSolver::new().solve(&m, &lo, &hi);
            let dense =
                SimplexSolver { engine: LpEngine::Dense, ..Default::default() }.solve(&m, &lo, &hi);
            assert_eq!(sparse.status, dense.status, "seed {seed}");
            assert!(
                (sparse.objective - dense.objective).abs() < 1e-6,
                "seed {seed}: sparse {} vs dense {}",
                sparse.objective,
                dense.objective
            );
            assert_eq!(dense.devex_resets, 0, "dense engine never prices with Devex");
        }
    }

    #[test]
    fn warm_solve_tracks_objective_changes() {
        // Re-solving after an objective flip from the old optimal basis must
        // match a cold solve of the new objective.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        let (lo, hi) = bounds(2);
        let root = SimplexSolver::new().solve(&m, &lo, &hi);
        let basis = root.basis.expect("root basis");
        // Flip the preference: y becomes expensive, x cheap.
        m.set_objective(x, -5.0);
        m.set_objective(y, 1.0);
        let warm = SimplexSolver::new().warm_solve(&m, &lo, &hi, &basis).expect("basis fits");
        let cold = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert!(warm.basis.is_some(), "warm optimum snapshots a basis for the next λ point");
    }
}
