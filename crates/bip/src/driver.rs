//! The shared anytime solve engine.
//!
//! Both BIP backends — the simplex-based [`BranchBound`](crate::BranchBound)
//! and the [`LagrangianSolver`](crate::LagrangianSolver) — used to hand-roll
//! their own `Instant` arithmetic, gap bookkeeping and trace vectors.  The
//! [`SolveDriver`] centralizes that contract so every solver offers the same
//! observables through one type:
//!
//! * **deadline / limits** — one [`SolveBudget`] carries the relative-gap
//!   target, the wall-clock limit and the node/iteration limit; the driver
//!   turns them into a single [`SolveDriver::stop_status`] decision;
//! * **incumbent stream** — feasible solutions are *offered*; improvements
//!   are kept, recorded in the trace and pushed through the progress
//!   callback (the paper's "continuous feedback", Figure 6a);
//! * **bound stream** — dual/relaxation bounds are raised monotonically;
//! * **gap tracking** — the reported gap is the best gap *proven so far*
//!   (incumbents only improve and bounds only rise, so an earlier proof
//!   stays valid), which makes every anytime gap series monotonically
//!   non-increasing by construction;
//! * **accounting** — `ticks` counts B&B nodes or subgradient iterations,
//!   so budget semantics are uniform across backends.
//!
//! The driver is generic over the solution payload `S` (`Vec<f64>` for the
//! generic BIP, `Vec<bool>` selections for the block-angular form), so future
//! backends — e.g. parallel node evaluation — plug in without re-deriving the
//! anytime contract.

use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle for an in-flight solve.
///
/// Cloning shares the flag; any holder may [`cancel`](CancelToken::cancel),
/// and the solve observes it at its next [`SolveDriver::stop_status`] check
/// (between B&B nodes / subgradient iterations — latency is bounded by one
/// node LP).  Cancellation is wired through the budget's deadline semantics:
/// a fired token behaves exactly like a `time_limit` brought forward to
/// *now*, so the solve ends with [`MipStatus::TimeLimit`] and whatever
/// incumbent/bound it had — the anytime contract holds.  This is how the
/// `cophy-server` daemon aborts solves whose client disconnected.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.0.store(true, AtomicOrdering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(AtomicOrdering::Relaxed)
    }
}

/// Termination reason of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// Proven optimal (gap 0 within tolerance).
    Optimal,
    /// Stopped because the relative gap reached the budget's `gap_limit`.
    GapReached,
    /// Stopped on the time limit.
    TimeLimit,
    /// Stopped on the node/iteration limit (or, in B&B, because stalled
    /// node relaxations forced subtrees to be abandoned — optimality can
    /// then no longer be proven by exhaustion).
    NodeLimit,
    /// The relaxation (and hence the BIP) is infeasible.
    Infeasible,
}

/// One point of the anytime gap trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapPoint {
    pub at: Duration,
    pub incumbent: f64,
    pub bound: f64,
    pub gap: f64,
}

/// Relative optimality gap, safe for zero incumbents.
pub fn relative_gap(incumbent: f64, bound: f64) -> f64 {
    if !incumbent.is_finite() {
        return f64::INFINITY;
    }
    let denom = incumbent.abs().max(1e-12);
    ((incumbent - bound) / denom).max(0.0)
}

/// The resource budget of one solve, shared by every backend.
///
/// `node_limit` counts branch-and-bound nodes on the generic backend and
/// subgradient iterations on the Lagrangian backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveBudget {
    /// Stop when the proven relative gap falls to this value.
    pub gap_limit: f64,
    pub time_limit: Option<Duration>,
    /// B&B node limit / Lagrangian iteration limit.
    pub node_limit: Option<usize>,
    /// Worker threads per search round: frontier nodes evaluated
    /// concurrently on the branch-and-bound backend, block subproblems
    /// solved concurrently per subgradient iteration on the Lagrangian
    /// backend (OS threads; `1` = serial).  Both backends fold partial
    /// results in deterministic order, so the solve is bit-for-bit
    /// identical at any thread count.
    pub parallelism: usize,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget { gap_limit: 1e-9, time_limit: None, node_limit: None, parallelism: 1 }
    }
}

impl SolveBudget {
    /// Prove optimality (no limits).
    pub fn exact() -> Self {
        SolveBudget::default()
    }

    /// Terminate at the given relative gap.
    pub fn within(gap_limit: f64) -> Self {
        SolveBudget { gap_limit, ..Default::default() }
    }

    /// The paper's interactive operating point: 5% gap, bounded wall clock.
    pub fn interactive() -> Self {
        SolveBudget {
            gap_limit: 0.05,
            time_limit: Some(Duration::from_secs(60)),
            ..Default::default()
        }
    }

    /// Builder: wall-clock limit.
    pub fn with_time(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Builder: node/iteration limit.
    pub fn with_nodes(mut self, limit: usize) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Builder: concurrent frontier nodes per branch-and-bound round
    /// (clamped to at least 1).
    pub fn with_parallelism(mut self, k: usize) -> Self {
        self.parallelism = k.max(1);
        self
    }
}

/// Progress of a block-decomposed solve: how far the per-block subproblem
/// shard and the coordinating multiplier loop have come.  Reported by the
/// Lagrangian backend (`None` on backends without a decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompositionProgress {
    /// Cumulative block subproblems solved across all outer iterations.
    pub blocks_done: usize,
    /// Width of the decomposition: blocks per outer iteration.
    pub blocks_total: usize,
    /// Outer (subgradient multiplier) iterations completed.
    pub outer_iter: usize,
}

/// One progress event of an anytime solve — the unified observable both
/// backends report and every consumer (advisor facade, tuning session,
/// bench harness) receives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveProgress {
    /// Wall-clock time since the solve started.
    pub at: Duration,
    /// Best feasible objective so far (`∞` while none is known).
    pub incumbent: f64,
    /// Best proven lower bound so far (`−∞` while none is known).
    pub bound: f64,
    /// Best *proven* relative gap so far (monotone non-increasing).
    pub gap: f64,
    /// Nodes (B&B) or iterations (Lagrangian) completed.
    pub ticks: usize,
    /// Cumulative simplex pivots across node LPs (0 for backends that do
    /// not run the simplex).  `pivots / ticks` is the per-node pivot count
    /// the warm-started dual re-solve drives down.
    pub pivots: usize,
    /// Block-decomposition progress (`None` on non-decomposed backends or
    /// before the first outer iteration).
    pub decomposition: Option<DecompositionProgress>,
}

/// Callback invoked on every incumbent or bound improvement.  The second
/// argument carries the improving solution when the event is an incumbent
/// improvement (`None` for pure bound moves).
pub type ProgressFn<'cb, S> = dyn FnMut(&SolveProgress, Option<&S>) + 'cb;

/// Everything a backend hands back when its search loop ends.
#[derive(Debug, Clone)]
pub struct DriverResult<S> {
    /// Best `(objective, solution)` found, if any.
    pub incumbent: Option<(f64, S)>,
    pub bound: f64,
    /// Best proven relative gap.
    pub gap: f64,
    pub ticks: usize,
    /// Cumulative simplex pivots reported via [`SolveDriver::add_pivots`].
    pub pivots: usize,
    pub trace: Vec<GapPoint>,
}

/// The shared engine state: deadline, incumbent, bound, gap, trace.
pub struct SolveDriver<'cb, S> {
    budget: SolveBudget,
    started: Instant,
    incumbent: Option<(f64, S)>,
    bound: f64,
    best_gap: f64,
    ticks: usize,
    pivots: usize,
    decomposition: Option<DecompositionProgress>,
    trace: Vec<GapPoint>,
    cancel: Option<CancelToken>,
    on_progress: Box<ProgressFn<'cb, S>>,
}

impl<S> std::fmt::Debug for SolveDriver<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveDriver")
            .field("budget", &self.budget)
            .field("elapsed", &self.started.elapsed())
            .field("incumbent", &self.incumbent.as_ref().map(|(obj, _)| *obj))
            .field("bound", &self.bound)
            .field("best_gap", &self.best_gap)
            .field("ticks", &self.ticks)
            .finish()
    }
}

impl<S> SolveDriver<'static, S> {
    /// Driver with no progress consumer.
    pub fn new(budget: SolveBudget) -> Self {
        SolveDriver::with_progress(budget, |_, _| {})
    }
}

impl<'cb, S> SolveDriver<'cb, S> {
    /// Driver streaming every improvement to `on_progress`.
    pub fn with_progress(
        budget: SolveBudget,
        on_progress: impl FnMut(&SolveProgress, Option<&S>) + 'cb,
    ) -> Self {
        SolveDriver {
            budget,
            started: Instant::now(),
            incumbent: None,
            bound: f64::NEG_INFINITY,
            best_gap: f64::INFINITY,
            ticks: 0,
            pivots: 0,
            decomposition: None,
            trace: Vec::new(),
            cancel: None,
            on_progress: Box::new(on_progress),
        }
    }

    /// Arm cooperative cancellation: once `token` fires, `stop_status`
    /// reports [`MipStatus::TimeLimit`] (the deadline brought forward).
    pub fn set_cancel(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    pub fn budget(&self) -> &SolveBudget {
        &self.budget
    }

    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Best proven relative gap so far.
    pub fn gap(&self) -> f64 {
        self.best_gap
    }

    pub fn bound(&self) -> f64 {
        self.bound
    }

    pub fn has_incumbent(&self) -> bool {
        self.incumbent.is_some()
    }

    /// Objective of the best incumbent (`∞` if none).
    pub fn incumbent_objective(&self) -> f64 {
        self.incumbent.as_ref().map_or(f64::INFINITY, |(obj, _)| *obj)
    }

    /// Best `(objective, solution)` so far.
    pub fn incumbent(&self) -> Option<&(f64, S)> {
        self.incumbent.as_ref()
    }

    /// Count one unit of search work (a node or an iteration).
    pub fn tick(&mut self) {
        self.ticks += 1;
    }

    /// Account simplex pivots spent on node LPs (warm or cold).
    pub fn add_pivots(&mut self, n: usize) {
        self.pivots += n;
    }

    /// Cumulative simplex pivots accounted so far.
    pub fn pivots(&self) -> usize {
        self.pivots
    }

    /// Record the current decomposition state; every subsequent progress
    /// event carries it (decomposed backends update this once per outer
    /// iteration, before offering incumbents or raising bounds).
    pub fn set_decomposition(&mut self, d: DecompositionProgress) {
        self.decomposition = Some(d);
    }

    /// The latest decomposition state, if the backend reported one.
    pub fn decomposition(&self) -> Option<DecompositionProgress> {
        self.decomposition
    }

    fn snapshot(&self) -> SolveProgress {
        SolveProgress {
            at: self.started.elapsed(),
            incumbent: self.incumbent_objective(),
            bound: self.bound,
            gap: self.best_gap,
            ticks: self.ticks,
            pivots: self.pivots,
            decomposition: self.decomposition,
        }
    }

    fn refresh_gap(&mut self) {
        let g = relative_gap(self.incumbent_objective(), self.bound);
        if g < self.best_gap {
            self.best_gap = g;
        }
    }

    /// Offer a feasible solution; keep it (and emit progress) if it improves
    /// the incumbent.  Returns whether it was accepted.
    pub fn offer_incumbent(&mut self, objective: f64, solution: S) -> bool {
        if objective >= self.incumbent_objective() - 1e-9 {
            return false;
        }
        self.incumbent = Some((objective, solution));
        self.refresh_gap();
        let p = self.snapshot();
        self.trace.push(GapPoint { at: p.at, incumbent: p.incumbent, bound: p.bound, gap: p.gap });
        let sol = self.incumbent.as_ref().map(|(_, s)| s);
        (self.on_progress)(&p, sol);
        true
    }

    /// Raise the global lower bound (monotone).  Emits progress when the
    /// proven gap improves meaningfully.  Returns whether the bound moved.
    ///
    /// The bound is capped at the incumbent objective: a relaxation bound
    /// above the best feasible point just proves that incumbent optimal, and
    /// the true global bound `min(open-node bounds, incumbent)` never
    /// exceeds it.
    pub fn raise_bound(&mut self, bound: f64) -> bool {
        let bound = bound.min(self.incumbent_objective());
        // NaN-safe: only a strict, finite improvement moves the bound.
        if bound <= self.bound + 1e-12 || bound.is_nan() {
            return false;
        }
        self.bound = bound;
        let before = self.best_gap;
        self.refresh_gap();
        // Trace resolution: record bound moves only when they change the
        // proven gap visibly, so B&B's per-node bound creep does not flood
        // the trace.
        let visible = self.best_gap.is_finite()
            && (!before.is_finite()
                || before - self.best_gap > 1e-4
                || (self.best_gap <= self.budget.gap_limit && before > self.budget.gap_limit));
        if visible {
            let p = self.snapshot();
            self.trace.push(GapPoint {
                at: p.at,
                incumbent: p.incumbent,
                bound: p.bound,
                gap: p.gap,
            });
            (self.on_progress)(&p, None);
        }
        true
    }

    /// Has the proven gap reached the budget's target?
    pub fn gap_reached(&self) -> bool {
        self.best_gap <= self.budget.gap_limit
    }

    /// The stop decision: gap target, wall clock, then node budget.
    /// `None` means keep searching.
    pub fn stop_status(&self) -> Option<MipStatus> {
        if self.has_incumbent() && self.gap_reached() {
            return Some(if self.best_gap <= 1e-9 {
                MipStatus::Optimal
            } else {
                MipStatus::GapReached
            });
        }
        if let Some(tl) = self.budget.time_limit {
            if self.started.elapsed() >= tl {
                return Some(MipStatus::TimeLimit);
            }
        }
        // A fired cancel token is the time limit brought forward to now.
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(MipStatus::TimeLimit);
        }
        if let Some(nl) = self.budget.node_limit {
            if self.ticks >= nl {
                return Some(MipStatus::NodeLimit);
            }
        }
        None
    }

    /// Close the gap after an exhausted search: with no open work left, the
    /// incumbent is optimal, so the bound snaps to it.
    pub fn close_exhausted(&mut self) {
        if let Some((obj, _)) = &self.incumbent {
            let obj = *obj;
            if obj > self.bound {
                self.raise_bound(obj);
            }
            self.best_gap = 0.0;
        }
    }

    /// Tear down into the final result, recording a terminal trace point.
    pub fn finish(mut self) -> DriverResult<S> {
        if self.has_incumbent() {
            let p = self.snapshot();
            let last = self.trace.last();
            if last.is_none_or(|lp| {
                lp.incumbent != p.incumbent || lp.bound != p.bound || lp.gap != p.gap
            }) {
                self.trace.push(GapPoint {
                    at: p.at,
                    incumbent: p.incumbent,
                    bound: p.bound,
                    gap: p.gap,
                });
                (self.on_progress)(&p, self.incumbent.as_ref().map(|(_, s)| s));
            }
        }
        DriverResult {
            incumbent: self.incumbent,
            bound: self.bound,
            gap: self.best_gap,
            ticks: self.ticks,
            pivots: self.pivots,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offers_keep_only_improvements() {
        let mut d: SolveDriver<'_, Vec<f64>> = SolveDriver::new(SolveBudget::exact());
        assert!(d.offer_incumbent(10.0, vec![1.0]));
        assert!(!d.offer_incumbent(10.0, vec![0.0]), "equal objective is not an improvement");
        assert!(!d.offer_incumbent(12.0, vec![0.0]));
        assert!(d.offer_incumbent(8.0, vec![0.5]));
        assert_eq!(d.incumbent_objective(), 8.0);
        assert_eq!(d.incumbent().unwrap().1, vec![0.5]);
    }

    #[test]
    fn bound_is_monotone_and_gap_non_increasing() {
        let mut events: Vec<SolveProgress> = Vec::new();
        {
            let mut d: SolveDriver<'_, ()> =
                SolveDriver::with_progress(SolveBudget::exact(), |p, _| events.push(*p));
            d.offer_incumbent(10.0, ());
            d.raise_bound(5.0);
            assert!(!d.raise_bound(4.0), "bound must not regress");
            assert_eq!(d.bound(), 5.0);
            d.raise_bound(9.0);
            d.offer_incumbent(9.2, ());
            let _ = d.finish();
        }
        let mut prev = f64::INFINITY;
        for e in &events {
            assert!(e.gap <= prev + 1e-12, "gap series must be non-increasing: {events:?}");
            prev = e.gap;
        }
    }

    #[test]
    fn reported_gap_survives_denominator_shrink() {
        // inc 10 → 6 with bound −2: the raw relative gap would *rise*
        // (1.2 → 1.33); the proven gap must not.
        let mut d: SolveDriver<'_, ()> = SolveDriver::new(SolveBudget::exact());
        d.offer_incumbent(10.0, ());
        d.raise_bound(-2.0);
        let g1 = d.gap();
        d.offer_incumbent(6.0, ());
        assert!(d.gap() <= g1 + 1e-12);
    }

    #[test]
    fn stop_decision_order() {
        let mut d: SolveDriver<'_, ()> = SolveDriver::new(SolveBudget::within(0.5).with_nodes(3));
        assert_eq!(d.stop_status(), None);
        d.tick();
        d.tick();
        d.tick();
        assert_eq!(d.stop_status(), Some(MipStatus::NodeLimit));
        // Gap satisfaction dominates the node limit.
        d.offer_incumbent(10.0, ());
        d.raise_bound(8.0);
        assert_eq!(d.stop_status(), Some(MipStatus::GapReached));
        d.raise_bound(10.0);
        assert_eq!(d.stop_status(), Some(MipStatus::Optimal));
    }

    #[test]
    fn time_limit_observed() {
        let d: SolveDriver<'_, ()> =
            SolveDriver::new(SolveBudget::exact().with_time(Duration::ZERO));
        assert_eq!(d.stop_status(), Some(MipStatus::TimeLimit));
    }

    #[test]
    fn exhausted_search_closes_gap() {
        let mut d: SolveDriver<'_, ()> = SolveDriver::new(SolveBudget::exact());
        d.offer_incumbent(7.0, ());
        d.raise_bound(5.0);
        d.close_exhausted();
        assert_eq!(d.gap(), 0.0);
        assert_eq!(d.bound(), 7.0);
        let r = d.finish();
        assert_eq!(r.gap, 0.0);
        assert!(!r.trace.is_empty());
    }

    #[test]
    fn cancel_token_acts_as_deadline() {
        let mut d: SolveDriver<'_, ()> = SolveDriver::new(SolveBudget::exact());
        let token = CancelToken::new();
        d.set_cancel(Some(token.clone()));
        assert_eq!(d.stop_status(), None);
        token.cancel();
        assert_eq!(d.stop_status(), Some(MipStatus::TimeLimit));
        // Gap satisfaction still dominates: a finished solve reports its
        // real status even if the client gave up at the same moment.
        d.offer_incumbent(10.0, ());
        d.raise_bound(10.0);
        assert_eq!(d.stop_status(), Some(MipStatus::Optimal));
        // Clones share the flag.
        let t2 = CancelToken::new();
        assert!(!t2.is_cancelled());
        t2.clone().cancel();
        assert!(t2.is_cancelled());
    }

    #[test]
    fn relative_gap_basics() {
        assert_eq!(relative_gap(f64::INFINITY, 0.0), f64::INFINITY);
        assert!(relative_gap(10.0, 10.0).abs() < 1e-12);
        assert!((relative_gap(10.0, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(relative_gap(10.0, 12.0), 0.0, "bound above incumbent clamps to 0");
    }
}
