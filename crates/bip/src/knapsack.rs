//! Knapsack helpers.
//!
//! The storage-budget constraint `Σ size_a · z_a ≤ M` gives index-tuning BIPs
//! a knapsack core.  The Lagrangian `z`-subproblem is a *continuous* knapsack
//! (solvable greedily by ratio — a valid lower bound on the binary version),
//! and the primal heuristics need fast 0/1 repairs.

/// Solve `min Σ cost_j · z_j  s.t.  Σ size_j · z_j ≤ budget, z ∈ [0,1]`.
///
/// Only items with negative cost are worth taking; they are taken greedily by
/// `cost/size` ratio (most negative per unit first), fractionally at the end.
/// Returns `(objective, z)`.
pub fn continuous_min(cost: &[f64], size: &[f64], budget: f64) -> (f64, Vec<f64>) {
    debug_assert_eq!(cost.len(), size.len());
    let mut z = vec![0.0; cost.len()];
    // Zero-size bargains are free.
    let mut order: Vec<usize> = (0..cost.len()).filter(|&j| cost[j] < 0.0).collect();
    let mut obj = 0.0;
    let mut remaining = budget;
    for &j in &order {
        if size[j] <= 0.0 {
            z[j] = 1.0;
            obj += cost[j];
        }
    }
    order.retain(|&j| size[j] > 0.0);
    order.sort_by(|&a, &b| (cost[a] / size[a]).total_cmp(&(cost[b] / size[b])));
    for j in order {
        if remaining <= 0.0 {
            break;
        }
        let take = (remaining / size[j]).min(1.0);
        z[j] = take;
        obj += cost[j] * take;
        remaining -= size[j] * take;
    }
    (obj, z)
}

/// Greedy 0/1 variant of [`continuous_min`] (no fractional item). An upper
/// bound on the continuous optimum's magnitude but always integral.
pub fn greedy_binary_min(cost: &[f64], size: &[f64], budget: f64) -> (f64, Vec<bool>) {
    let mut z = vec![false; cost.len()];
    let mut order: Vec<usize> = (0..cost.len()).filter(|&j| cost[j] < 0.0).collect();
    order.sort_by(|&a, &b| {
        let ra = cost[a] / size[a].max(1e-12);
        let rb = cost[b] / size[b].max(1e-12);
        ra.total_cmp(&rb)
    });
    let mut obj = 0.0;
    let mut remaining = budget;
    for j in order {
        if size[j] <= remaining {
            z[j] = true;
            obj += cost[j];
            remaining -= size[j];
        }
    }
    (obj, z)
}

/// Drop items (largest size first among the worst ratios) until the selection
/// fits the budget.  Used to repair heuristic solutions.
pub fn repair_to_budget(selected: &mut [bool], value: &[f64], size: &[f64], budget: f64) {
    let mut used: f64 = (0..selected.len()).filter(|&j| selected[j]).map(|j| size[j]).sum();
    while used > budget {
        // Drop the selected item with the worst value-per-size.
        let worst =
            (0..selected.len()).filter(|&j| selected[j] && size[j] > 0.0).min_by(|&a, &b| {
                let ra = value[a] / size[a];
                let rb = value[b] / size[b];
                ra.total_cmp(&rb)
            });
        match worst {
            Some(j) => {
                selected[j] = false;
                used -= size[j];
            }
            None => break, // only zero-size items left; budget must be < 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_takes_best_ratio_first() {
        // item 0: cost −10 size 5 (ratio −2); item 1: cost −6 size 2 (−3).
        let (obj, z) = continuous_min(&[-10.0, -6.0], &[5.0, 2.0], 4.0);
        assert_eq!(z[1], 1.0);
        assert!((z[0] - 0.4).abs() < 1e-9);
        assert!((obj - (-6.0 - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn continuous_ignores_positive_cost() {
        let (obj, z) = continuous_min(&[3.0, -1.0], &[1.0, 1.0], 10.0);
        assert_eq!(z[0], 0.0);
        assert_eq!(z[1], 1.0);
        assert_eq!(obj, -1.0);
    }

    #[test]
    fn continuous_zero_budget() {
        let (obj, z) = continuous_min(&[-5.0], &[2.0], 0.0);
        assert_eq!(obj, 0.0);
        assert_eq!(z[0], 0.0);
    }

    #[test]
    fn continuous_bound_dominates_binary() {
        // LP knapsack optimum ≤ greedy binary (both minimizing).
        let cost = [-7.0, -4.0, -9.0, -2.0, -5.0];
        let size = [3.0, 2.0, 5.0, 1.0, 4.0];
        for budget in [0.0, 2.5, 5.0, 8.0, 100.0] {
            let (c_obj, _) = continuous_min(&cost, &size, budget);
            let (b_obj, sel) = greedy_binary_min(&cost, &size, budget);
            assert!(c_obj <= b_obj + 1e-9, "budget {budget}: {c_obj} > {b_obj}");
            let used: f64 = (0..sel.len()).filter(|&j| sel[j]).map(|j| size[j]).sum();
            assert!(used <= budget + 1e-9);
        }
    }

    #[test]
    fn repair_enforces_budget() {
        let value = [10.0, 3.0, 8.0];
        let size = [5.0, 5.0, 5.0];
        let mut sel = [true, true, true];
        repair_to_budget(&mut sel, &value, &size, 10.0);
        let used: f64 = (0..3).filter(|&j| sel[j]).map(|j| size[j]).sum();
        assert!(used <= 10.0);
        // the low-value item goes first
        assert!(!sel[1]);
        assert!(sel[0] && sel[2]);
    }

    #[test]
    fn zero_size_items_always_taken() {
        let (obj, z) = continuous_min(&[-5.0, -1.0], &[0.0, 1.0], 0.0);
        assert_eq!(z[0], 1.0);
        assert_eq!(z[1], 0.0);
        assert_eq!(obj, -5.0);
    }
}
