//! Knapsack helpers.
//!
//! The storage-budget constraint `Σ size_a · z_a ≤ M` gives index-tuning BIPs
//! a knapsack core.  The Lagrangian `z`-subproblem is a *continuous* knapsack
//! (solvable greedily by ratio — a valid lower bound on the binary version),
//! and the primal heuristics need fast 0/1 repairs.

/// Solve `min Σ cost_j · z_j  s.t.  Σ size_j · z_j ≤ budget, z ∈ [0,1]`.
///
/// Only items with negative cost are worth taking; they are taken greedily by
/// `cost/size` ratio (most negative per unit first), fractionally at the end.
/// Returns `(objective, z)`.
pub fn continuous_min(cost: &[f64], size: &[f64], budget: f64) -> (f64, Vec<f64>) {
    debug_assert_eq!(cost.len(), size.len());
    let mut z = vec![0.0; cost.len()];
    // Zero-size bargains are free.
    let mut order: Vec<usize> = (0..cost.len()).filter(|&j| cost[j] < 0.0).collect();
    let mut obj = 0.0;
    let mut remaining = budget;
    for &j in &order {
        if size[j] <= 0.0 {
            z[j] = 1.0;
            obj += cost[j];
        }
    }
    order.retain(|&j| size[j] > 0.0);
    order.sort_by(|&a, &b| (cost[a] / size[a]).total_cmp(&(cost[b] / size[b])));
    for j in order {
        if remaining <= 0.0 {
            break;
        }
        let take = (remaining / size[j]).min(1.0);
        z[j] = take;
        obj += cost[j] * take;
        remaining -= size[j] * take;
    }
    (obj, z)
}

/// Greedy 0/1 variant of [`continuous_min`] (no fractional item). An upper
/// bound on the continuous optimum's magnitude but always integral.
pub fn greedy_binary_min(cost: &[f64], size: &[f64], budget: f64) -> (f64, Vec<bool>) {
    let mut z = vec![false; cost.len()];
    let mut order: Vec<usize> = (0..cost.len()).filter(|&j| cost[j] < 0.0).collect();
    order.sort_by(|&a, &b| {
        let ra = cost[a] / size[a].max(1e-12);
        let rb = cost[b] / size[b].max(1e-12);
        ra.total_cmp(&rb)
    });
    let mut obj = 0.0;
    let mut remaining = budget;
    for j in order {
        if size[j] <= remaining {
            z[j] = true;
            obj += cost[j];
            remaining -= size[j];
        }
    }
    (obj, z)
}

/// Greedy covering: pick items by cost-per-unit-gain (ascending, so
/// objective-improving flips go first) until the accumulated gain covers
/// `need`.  Items are `(cost, gain)` pairs with `gain > 0` (non-positive
/// gains are ignored).  Returns indices into `items`, or `None` when even
/// taking everything falls short.
///
/// This is the selection core shared by the budget repairs below and by the
/// branch-and-bound rounding heuristic's row repair (violated AT-MOST /
/// storage rows are exactly a covering knapsack over candidate flips).
pub fn greedy_cover(need: f64, items: &[(f64, f64)]) -> Option<Vec<usize>> {
    let mut order: Vec<usize> = (0..items.len()).filter(|&i| items[i].1 > 0.0).collect();
    let total: f64 = order.iter().map(|&i| items[i].1).sum();
    if total + 1e-9 < need {
        return None;
    }
    order.sort_by(|&a, &b| {
        let ra = items[a].0 / items[a].1;
        let rb = items[b].0 / items[b].1;
        ra.total_cmp(&rb)
    });
    let mut out = Vec::new();
    let mut got = 0.0;
    for i in order {
        if got + 1e-9 >= need {
            break;
        }
        out.push(i);
        got += items[i].1;
    }
    if got + 1e-9 >= need {
        Some(out)
    } else {
        None
    }
}

/// Drop items (largest size first among the worst ratios) until the selection
/// fits the budget.  Used to repair heuristic solutions.
pub fn repair_to_budget(selected: &mut [bool], value: &[f64], size: &[f64], budget: f64) {
    let mut used: f64 = (0..selected.len()).filter(|&j| selected[j]).map(|j| size[j]).sum();
    while used > budget {
        // Drop the selected item with the worst value-per-size.
        let worst =
            (0..selected.len()).filter(|&j| selected[j] && size[j] > 0.0).min_by(|&a, &b| {
                let ra = value[a] / size[a];
                let rb = value[b] / size[b];
                ra.total_cmp(&rb)
            });
        match worst {
            Some(j) => {
                selected[j] = false;
                used -= size[j];
            }
            None => break, // only zero-size items left; budget must be < 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_takes_best_ratio_first() {
        // item 0: cost −10 size 5 (ratio −2); item 1: cost −6 size 2 (−3).
        let (obj, z) = continuous_min(&[-10.0, -6.0], &[5.0, 2.0], 4.0);
        assert_eq!(z[1], 1.0);
        assert!((z[0] - 0.4).abs() < 1e-9);
        assert!((obj - (-6.0 - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn continuous_ignores_positive_cost() {
        let (obj, z) = continuous_min(&[3.0, -1.0], &[1.0, 1.0], 10.0);
        assert_eq!(z[0], 0.0);
        assert_eq!(z[1], 1.0);
        assert_eq!(obj, -1.0);
    }

    #[test]
    fn continuous_zero_budget() {
        let (obj, z) = continuous_min(&[-5.0], &[2.0], 0.0);
        assert_eq!(obj, 0.0);
        assert_eq!(z[0], 0.0);
    }

    #[test]
    fn continuous_bound_dominates_binary() {
        // LP knapsack optimum ≤ greedy binary (both minimizing).
        let cost = [-7.0, -4.0, -9.0, -2.0, -5.0];
        let size = [3.0, 2.0, 5.0, 1.0, 4.0];
        for budget in [0.0, 2.5, 5.0, 8.0, 100.0] {
            let (c_obj, _) = continuous_min(&cost, &size, budget);
            let (b_obj, sel) = greedy_binary_min(&cost, &size, budget);
            assert!(c_obj <= b_obj + 1e-9, "budget {budget}: {c_obj} > {b_obj}");
            let used: f64 = (0..sel.len()).filter(|&j| sel[j]).map(|j| size[j]).sum();
            assert!(used <= budget + 1e-9);
        }
    }

    #[test]
    fn repair_enforces_budget() {
        let value = [10.0, 3.0, 8.0];
        let size = [5.0, 5.0, 5.0];
        let mut sel = [true, true, true];
        repair_to_budget(&mut sel, &value, &size, 10.0);
        let used: f64 = (0..3).filter(|&j| sel[j]).map(|j| size[j]).sum();
        assert!(used <= 10.0);
        // the low-value item goes first
        assert!(!sel[1]);
        assert!(sel[0] && sel[2]);
    }

    #[test]
    fn greedy_cover_prefers_cheap_ratios() {
        // Covering 3 units: item 1 has the best cost/gain ratio, item 0 the
        // next; item 2 is never needed.
        let items = [(4.0, 2.0), (1.0, 2.0), (9.0, 1.0)];
        let chosen = greedy_cover(3.0, &items).unwrap();
        assert_eq!(chosen, vec![1, 0]);
        // Improving (negative-cost) flips always go first.
        let improving = [(5.0, 1.0), (-2.0, 1.0)];
        assert_eq!(greedy_cover(1.0, &improving).unwrap(), vec![1]);
        // Short supply is reported, not silently mangled.
        assert!(greedy_cover(10.0, &items).is_none());
        // Nothing needed → nothing chosen.
        assert!(greedy_cover(0.0, &items).unwrap().is_empty());
    }

    #[test]
    fn zero_size_items_always_taken() {
        let (obj, z) = continuous_min(&[-5.0, -1.0], &[0.0, 1.0], 0.0);
        assert_eq!(z[0], 1.0);
        assert_eq!(z[1], 0.0);
        assert_eq!(obj, -5.0);
    }
}
