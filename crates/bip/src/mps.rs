//! MPS export/import for BIP [`Model`]s.
//!
//! The paper hands its BIP to an off-the-shelf solver (CPLEX); the portable
//! hand-off format of that world is MPS.  [`write_mps`] renders a model as
//! free-format MPS text (minimization, all variables binary via `BV` bounds
//! inside an `INTORG`/`INTEND` block) so external solvers can cross-check the
//! built-in engines, and [`parse_mps`] reads the same dialect back, closing
//! the loop for round-trip tests.
//!
//! Variable and row names are sanitized to `x{j}` / `c{i}` — model names come
//! from [`Model::var_name`] renderings like `z[ix_lineitem(l_sk,l_qty)]`,
//! whose parentheses and commas would break whitespace-delimited MPS fields.
//! The original names ride along as `*` comment lines, so an exported file
//! remains human-mappable.  Coefficients use Rust's shortest round-trip float
//! formatting: `parse_mps(write_mps(m))` reproduces every coefficient
//! bit-for-bit.

use crate::model::{LinExpr, Model, Sense, VarId};

/// Objective row name used by the writer.
const OBJ_ROW: &str = "COST";

/// Render `model` as free-format MPS text.
pub fn write_mps(model: &Model, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("NAME          {name}\n"));
    // Original variable names as comments (MPS-safe ids follow).
    for j in 0..model.n_vars() {
        let original = model.var_name(VarId(j as u32));
        if !original.is_empty() {
            out.push_str(&format!("* x{j} = {original}\n"));
        }
    }
    out.push_str("ROWS\n");
    out.push_str(&format!(" N  {OBJ_ROW}\n"));
    for (i, c) in model.constraints().iter().enumerate() {
        let sense = match c.sense {
            Sense::Le => 'L',
            Sense::Ge => 'G',
            Sense::Eq => 'E',
        };
        out.push_str(&format!(" {sense}  c{i}\n"));
    }
    // Column-major coefficients: collect each variable's constraint terms.
    let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); model.n_vars()];
    for (i, c) in model.constraints().iter().enumerate() {
        for &(v, coeff) in &c.expr.terms {
            columns[v.0 as usize].push((i, coeff));
        }
    }
    out.push_str("COLUMNS\n");
    out.push_str("    MARK0000  'MARKER'                 'INTORG'\n");
    for (j, terms) in columns.iter().enumerate() {
        // The objective entry is always emitted (even when 0) so every
        // variable appears in COLUMNS — otherwise a term-free variable would
        // vanish from the file and shift every id on re-import.
        out.push_str(&format!("    x{j}  {OBJ_ROW}  {}\n", model.objective()[j]));
        for &(i, coeff) in terms {
            out.push_str(&format!("    x{j}  c{i}  {coeff}\n"));
        }
    }
    out.push_str("    MARK0001  'MARKER'                 'INTEND'\n");
    out.push_str("RHS\n");
    for (i, c) in model.constraints().iter().enumerate() {
        if c.rhs != 0.0 {
            out.push_str(&format!("    RHS  c{i}  {}\n", c.rhs));
        }
    }
    out.push_str("BOUNDS\n");
    for j in 0..model.n_vars() {
        out.push_str(&format!(" BV BND  x{j}\n"));
    }
    out.push_str("ENDATA\n");
    out
}

/// The sections of an MPS file, in required order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Section {
    Start,
    Name,
    Rows,
    Columns,
    Rhs,
    Bounds,
    End,
}

/// Parse free-format MPS text (the dialect [`write_mps`] emits: minimization,
/// binary variables, `N`/`L`/`G`/`E` rows) back into a [`Model`].
///
/// Enforced on the way in: sections appear in order, every referenced row and
/// column is declared, all variables are integral (`INTORG` block) *and*
/// binary (`BV` bound), and `ENDATA` terminates the file — so this doubles as
/// the format lint ([`lint_mps`]).
pub fn parse_mps(text: &str) -> Result<Model, String> {
    let mut section = Section::Start;
    let mut obj_row: Option<String> = None;
    // Declared constraint rows, in order: (name, sense).
    let mut rows: Vec<(String, Sense)> = Vec::new();
    // Column order of first appearance: (name, objective coefficient).
    let mut cols: Vec<(String, f64)> = Vec::new();
    // Per-row sparse terms (column index, coefficient).
    let mut terms: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut rhs: Vec<f64> = Vec::new();
    let mut binary: Vec<bool> = Vec::new();
    let mut in_integer_block = false;

    let row_index = |rows: &[(String, Sense)], name: &str| -> Option<usize> {
        rows.iter().position(|(n, _)| n == name)
    };

    for (lineno, raw) in text.lines().enumerate() {
        let n = lineno + 1;
        if raw.starts_with('*') || raw.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split_whitespace().collect();
        // Section headers start in column 1 (no leading whitespace).
        if !raw.starts_with(' ') && !raw.starts_with('\t') {
            let next = match fields[0] {
                "NAME" => Section::Name,
                "ROWS" => Section::Rows,
                "COLUMNS" => Section::Columns,
                "RHS" => Section::Rhs,
                "RANGES" => return Err(format!("line {n}: RANGES section is not supported")),
                "BOUNDS" => Section::Bounds,
                "ENDATA" => Section::End,
                other => return Err(format!("line {n}: unknown section `{other}`")),
            };
            if next <= section {
                return Err(format!("line {n}: section {next:?} out of order"));
            }
            section = next;
            continue;
        }
        match section {
            Section::Start | Section::Name | Section::End => {
                return Err(format!("line {n}: data outside of a section"));
            }
            Section::Rows => {
                let [sense, name] = fields[..] else {
                    return Err(format!("line {n}: ROWS lines are `<sense> <name>`"));
                };
                match sense {
                    "N" => {
                        if obj_row.replace(name.to_string()).is_some() {
                            return Err(format!("line {n}: second objective (N) row"));
                        }
                    }
                    "L" => rows.push((name.to_string(), Sense::Le)),
                    "G" => rows.push((name.to_string(), Sense::Ge)),
                    "E" => rows.push((name.to_string(), Sense::Eq)),
                    other => return Err(format!("line {n}: unknown row sense `{other}`")),
                }
            }
            Section::Columns => {
                if fields.len() >= 3 && fields[1] == "'MARKER'" {
                    match *fields.last().expect("non-empty") {
                        "'INTORG'" => in_integer_block = true,
                        "'INTEND'" => in_integer_block = false,
                        other => return Err(format!("line {n}: unknown marker {other}")),
                    }
                    continue;
                }
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(format!("line {n}: COLUMNS lines are `<col> (<row> <val>)+`"));
                }
                let col = fields[0];
                let j = match cols.iter().position(|(c, _)| c == col) {
                    Some(j) => j,
                    None => {
                        if !in_integer_block {
                            return Err(format!(
                                "line {n}: continuous column `{col}` (BIP models are all-binary)"
                            ));
                        }
                        cols.push((col.to_string(), 0.0));
                        binary.push(false);
                        cols.len() - 1
                    }
                };
                for pair in fields[1..].chunks(2) {
                    let val: f64 = pair[1]
                        .parse()
                        .map_err(|_| format!("line {n}: bad coefficient `{}`", pair[1]))?;
                    if Some(pair[0]) == obj_row.as_deref() {
                        cols[j].1 = val;
                    } else {
                        let i = row_index(&rows, pair[0])
                            .ok_or_else(|| format!("line {n}: unknown row `{}`", pair[0]))?;
                        terms.resize(rows.len().max(terms.len()), Vec::new());
                        terms[i].push((j, val));
                    }
                }
            }
            Section::Rhs => {
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(format!("line {n}: RHS lines are `<set> (<row> <val>)+`"));
                }
                for pair in fields[1..].chunks(2) {
                    let i = row_index(&rows, pair[0])
                        .ok_or_else(|| format!("line {n}: unknown row `{}`", pair[0]))?;
                    let val: f64 =
                        pair[1].parse().map_err(|_| format!("line {n}: bad RHS `{}`", pair[1]))?;
                    rhs.resize(rows.len(), 0.0);
                    rhs[i] = val;
                }
            }
            Section::Bounds => {
                let [kind, _set, col] = fields[..] else {
                    return Err(format!("line {n}: BOUNDS lines are `<type> <set> <col>`"));
                };
                if kind != "BV" {
                    return Err(format!("line {n}: only BV bounds are supported, got `{kind}`"));
                }
                let j = cols
                    .iter()
                    .position(|(c, _)| c == col)
                    .ok_or_else(|| format!("line {n}: unknown column `{col}`"))?;
                binary[j] = true;
            }
        }
    }
    if section != Section::End {
        return Err("missing ENDATA".into());
    }
    if obj_row.is_none() {
        return Err("missing objective (N) row".into());
    }
    if let Some(j) = binary.iter().position(|b| !b) {
        return Err(format!("column `{}` has no BV bound (BIP models are all-binary)", cols[j].0));
    }

    let mut model = Model::new();
    for (name, obj) in &cols {
        model.add_var(name.clone(), *obj);
    }
    terms.resize(rows.len(), Vec::new());
    rhs.resize(rows.len(), 0.0);
    for (i, (_, sense)) in rows.iter().enumerate() {
        let mut expr = LinExpr::new();
        for &(j, coeff) in &terms[i] {
            expr.add(VarId(j as u32), coeff);
        }
        model.add_constraint(expr, *sense, rhs[i]);
    }
    Ok(model)
}

/// Strict format check: `Ok` iff the text parses as the MPS dialect this
/// module writes.  Returns `(n_vars, n_constraints)` for harness output.
pub fn lint_mps(text: &str) -> Result<(usize, usize), String> {
    let m = parse_mps(text)?;
    Ok((m.n_vars(), m.n_constraints()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::{BranchBound, SolveOptions};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn small_model() -> Model {
        // min −2x − 3y + z   s.t.  x + y + z ≤ 2,  y − z ≥ 0,  x + z = 1.
        let mut m = Model::new();
        let x = m.add_var("z[ix_a(c1,c2)]", -2.0);
        let y = m.add_var("z[ix_b(c3)]", -3.0);
        let z = m.add_var("y[q0,k1]", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0).term(z, 1.0), Sense::Le, 2.0);
        m.add_constraint(LinExpr::new().term(y, 1.0).term(z, -1.0), Sense::Ge, 0.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(z, 1.0), Sense::Eq, 1.0);
        m
    }

    #[test]
    fn round_trip_is_exact() {
        let m = small_model();
        let text = write_mps(&m, "small");
        let back = parse_mps(&text).expect("round trip parses");
        assert_eq!(back.n_vars(), m.n_vars());
        assert_eq!(back.n_constraints(), m.n_constraints());
        for j in 0..m.n_vars() {
            assert_eq!(back.objective()[j].to_bits(), m.objective()[j].to_bits());
        }
        for (a, b) in back.constraints().iter().zip(m.constraints()) {
            assert_eq!(a.sense, b.sense);
            assert_eq!(a.rhs.to_bits(), b.rhs.to_bits());
            assert_eq!(a.expr.terms, b.expr.terms);
        }
    }

    #[test]
    fn random_models_round_trip_and_solve_identically() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..10 {
            let n = rng.gen_range(3..10);
            let mut m = Model::new();
            for j in 0..n {
                m.add_var(format!("v{j}"), rng.gen_range(-5.0..5.0));
            }
            for _ in 0..rng.gen_range(1..6) {
                let mut e = LinExpr::new();
                for j in 0..n {
                    if rng.gen_bool(0.5) {
                        e.add(VarId(j as u32), rng.gen_range(-3.0..3.0));
                    }
                }
                let sense = [Sense::Le, Sense::Ge][rng.gen_range(0..2)];
                m.add_constraint(e, sense, rng.gen_range(-2.0..4.0));
            }
            let back = parse_mps(&write_mps(&m, "rand")).expect("parses");
            let native = m.brute_force();
            let imported = back.brute_force();
            match (native, imported) {
                (Some((a, _)), Some((b, _))) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn reimported_model_solves_to_native_objective() {
        let m = small_model();
        let back = parse_mps(&write_mps(&m, "small")).unwrap();
        let opts = SolveOptions::default();
        let native = BranchBound::new().solve(&m, &opts);
        let imported = BranchBound::new().solve(&back, &opts);
        assert_eq!(native.objective.to_bits(), imported.objective.to_bits());
        assert_eq!(native.x, imported.x);
    }

    #[test]
    fn lint_accepts_written_and_rejects_malformed() {
        let text = write_mps(&small_model(), "small");
        assert_eq!(lint_mps(&text).unwrap(), (3, 3));
        // Truncated file: no ENDATA.
        let truncated = text.replace("ENDATA\n", "");
        assert!(lint_mps(&truncated).unwrap_err().contains("ENDATA"));
        // Out-of-order sections.
        let reordered = "NAME t\nCOLUMNS\nROWS\nENDATA\n";
        assert!(lint_mps(reordered).unwrap_err().contains("out of order"));
        // Continuous variable (outside the INTORG block).
        let continuous = "NAME t\nROWS\n N  COST\nCOLUMNS\n    x0  COST  1\nRHS\nBOUNDS\nENDATA\n";
        assert!(lint_mps(continuous).unwrap_err().contains("continuous"));
        // Missing BV bound.
        let unbounded = "NAME t\nROWS\n N  COST\nCOLUMNS\n    MARK0000  'MARKER'  'INTORG'\n    x0  COST  1\n    MARK0001  'MARKER'  'INTEND'\nRHS\nBOUNDS\nENDATA\n";
        assert!(lint_mps(unbounded).unwrap_err().contains("BV"));
    }

    #[test]
    fn relaxed_rows_survive_export() {
        let mut m = small_model();
        m.relax_constraint(crate::model::ConstrId(1));
        let back = parse_mps(&write_mps(&m, "relaxed")).unwrap();
        assert_eq!(back.n_constraints(), 3);
        assert!(back.constraints()[1].expr.terms.is_empty());
        assert_eq!(back.constraints()[1].rhs, 0.0);
    }
}
