//! Sparse LU factorization and eta-file updates for the revised simplex.
//!
//! The basis matrix `B` is factorized as `P·B = L·U` with a left-looking
//! (Gilbert–Peierls style) sparse elimination. Columns are eliminated in
//! ascending-nonzero order (a static approximation of Markowitz ordering) and
//! pivots are chosen by threshold partial pivoting: any row whose magnitude is
//! within a factor `PIVOT_THRESHOLD` of the column maximum is eligible, and
//! among the eligible rows the one with the smallest original row count (a
//! Markowitz-style sparsity tiebreak) wins.
//!
//! Between refactorizations the inverse is maintained as a product-form eta
//! file: each basis change appends one [`Eta`] vector, and `ftran`/`btran`
//! apply the eta transformations after (resp. before) the triangular solves.
//! The caller refactorizes periodically to bound fill-in and drift.

/// Relative threshold for partial pivoting: a row is an eligible pivot if its
/// magnitude is at least this fraction of the column maximum.
const PIVOT_THRESHOLD: f64 = 0.1;

/// A column of the matrix is declared singular when its largest eliminable
/// entry falls below this magnitude.
const SINGULAR_TOL: f64 = 1e-11;

/// Sparse LU factors of a basis matrix, `P·B = L·U`.
///
/// `L` is unit lower triangular and stored by elimination step: `l_cols[k]`
/// holds the below-diagonal multipliers of step `k`, indexed by *original* row.
/// `U` is stored column-wise in *step* space: `u_cols[k]` holds the
/// above-diagonal entries of the column eliminated at step `k`, indexed by the
/// step whose pivot row they live in, and `u_diag[k]` is the pivot itself.
#[derive(Debug, Clone)]
pub(crate) struct LuFactors {
    m: usize,
    /// `pivot_row[k]` = original row chosen as pivot at elimination step `k`.
    pivot_row: Vec<usize>,
    /// `pivot_pos[k]` = basis position of the column eliminated at step `k`.
    pivot_pos: Vec<usize>,
    /// Below-diagonal multipliers of `L`, per step, indexed by original row.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Above-diagonal entries of `U`, per step, indexed by pivot step.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal (pivot) entries of `U`, per step.
    u_diag: Vec<f64>,
}

impl LuFactors {
    /// Factorize the `m × m` basis whose columns are given in sparse
    /// `(row, value)` form. Returns `None` if the basis is numerically
    /// singular.
    pub(crate) fn factorize(m: usize, cols: &[&[(usize, f64)]]) -> Option<LuFactors> {
        debug_assert_eq!(cols.len(), m);
        // Original row counts, used as the Markowitz sparsity tiebreak.
        let mut row_count = vec![0usize; m];
        for col in cols {
            for &(r, _) in *col {
                row_count[r] += 1;
            }
        }
        // Eliminate columns in ascending-nonzero order (static Markowitz).
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&p| (cols[p].len(), p));

        let mut lu = LuFactors {
            m,
            pivot_row: Vec::with_capacity(m),
            pivot_pos: Vec::with_capacity(m),
            l_cols: Vec::with_capacity(m),
            u_cols: Vec::with_capacity(m),
            u_diag: Vec::with_capacity(m),
        };
        // step_of[r] = Some(k) once original row r became the pivot of step k.
        let mut step_of: Vec<Option<usize>> = vec![None; m];
        let mut work = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);

        for (k, &pos) in order.iter().enumerate() {
            // Scatter the column into the dense work vector.
            touched.clear();
            for &(r, v) in cols[pos] {
                if work[r] == 0.0 {
                    touched.push(r);
                }
                work[r] += v;
            }
            // Left-looking forward solve against the already-computed steps.
            // l_cols[t] only references rows pivoted at steps > t or not yet
            // pivoted, so visiting steps in order is an exact solve.
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            for t in 0..k {
                let x = work[lu.pivot_row[t]];
                if x == 0.0 {
                    continue;
                }
                ucol.push((t, x));
                for &(r, v) in &lu.l_cols[t] {
                    if work[r] == 0.0 {
                        touched.push(r);
                    }
                    work[r] -= x * v;
                }
            }
            // Threshold partial pivot among the not-yet-pivoted rows.
            let mut vmax = 0.0f64;
            for &r in &touched {
                if step_of[r].is_none() {
                    let a = work[r].abs();
                    if a > vmax {
                        vmax = a;
                    }
                }
            }
            if vmax < SINGULAR_TOL {
                // Singular: clean up the work vector before bailing.
                for &r in &touched {
                    work[r] = 0.0;
                }
                return None;
            }
            let threshold = PIVOT_THRESHOLD * vmax;
            let mut pivot: Option<usize> = None;
            let mut pivot_key = (usize::MAX, usize::MAX);
            for &r in &touched {
                if step_of[r].is_none() && work[r].abs() >= threshold {
                    let key = (row_count[r], r);
                    if key < pivot_key {
                        pivot_key = key;
                        pivot = Some(r);
                    }
                }
            }
            let prow = pivot.expect("eligible pivot row exists when vmax >= tol");
            let piv = work[prow];
            // Consume the work vector: pivot row -> diagonal, remaining
            // unpivoted rows -> L multipliers. Zeroing as we go makes repeat
            // entries in `touched` harmless and leaves `work` clean.
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &r in &touched {
                let v = work[r];
                if v == 0.0 {
                    continue;
                }
                work[r] = 0.0;
                if r == prow || step_of[r].is_some() {
                    continue;
                }
                lcol.push((r, v / piv));
            }
            step_of[prow] = Some(k);
            lu.pivot_row.push(prow);
            lu.pivot_pos.push(pos);
            lu.l_cols.push(lcol);
            lu.u_cols.push(ucol);
            lu.u_diag.push(piv);
        }
        Some(lu)
    }

    /// Solve `B·x = b`. On entry `rhs` holds `b` in original-row space; on
    /// exit it is fully zeroed (self-cleaning) and `out` holds `x` indexed by
    /// basis position. Only positions corresponding to nonzero solution
    /// entries are written — the caller must pre-zero `out`.
    pub(crate) fn ftran(&self, rhs: &mut [f64], out: &mut [f64]) {
        // Forward solve L·y = b, in step order.
        for k in 0..self.m {
            let x = rhs[self.pivot_row[k]];
            if x == 0.0 {
                continue;
            }
            for &(r, v) in &self.l_cols[k] {
                rhs[r] -= x * v;
            }
        }
        // Back substitution U·x = y, column-oriented, in reverse step order.
        for k in (0..self.m).rev() {
            let prow = self.pivot_row[k];
            let num = rhs[prow];
            rhs[prow] = 0.0;
            if num == 0.0 {
                continue;
            }
            let z = num / self.u_diag[k];
            for &(t, v) in &self.u_cols[k] {
                rhs[self.pivot_row[t]] -= v * z;
            }
            out[self.pivot_pos[k]] = z;
        }
    }

    /// Solve `Bᵀ·y = c`. `cpos` is the right-hand side indexed by basis
    /// position; `y` receives the solution in original-row space (fully
    /// written). `zscratch` must have length `m`.
    pub(crate) fn btran(&self, cpos: &[f64], y: &mut [f64], zscratch: &mut [f64]) {
        // Forward solve Uᵀ·z = c in step space.
        for k in 0..self.m {
            let mut acc = cpos[self.pivot_pos[k]];
            for &(t, v) in &self.u_cols[k] {
                acc -= v * zscratch[t];
            }
            zscratch[k] = acc / self.u_diag[k];
        }
        // Backward solve Lᵀ·y = z back into original-row space.
        for k in (0..self.m).rev() {
            let mut acc = zscratch[k];
            for &(r, v) in &self.l_cols[k] {
                acc -= v * y[r];
            }
            y[self.pivot_row[k]] = acc;
        }
    }
}

/// One product-form update: after column `q` replaces the basic variable in
/// row `r`, `B_new⁻¹ = E·B_old⁻¹` where `E` differs from the identity only in
/// column `r`. `col` stores that column sparsely, *including* the diagonal
/// entry `(r, 1/w_r)`; off-diagonal entries are `(i, -w_i/w_r)` where `w` is
/// the ftran'd entering column.
#[derive(Debug, Clone)]
pub(crate) struct Eta {
    pub(crate) r: usize,
    pub(crate) col: Vec<(usize, f64)>,
}

impl Eta {
    /// Build the eta vector for pivot row `r` from the ftran'd entering
    /// column `w` (dense, basis-position space). `w[r]` must be the pivot.
    pub(crate) fn from_pivot(r: usize, w: &[f64], drop_tol: f64) -> Eta {
        let piv = w[r];
        let inv = 1.0 / piv;
        let mut col: Vec<(usize, f64)> = Vec::new();
        for (i, &wi) in w.iter().enumerate() {
            if i == r {
                col.push((r, inv));
            } else if wi.abs() > drop_tol {
                col.push((i, -wi * inv));
            }
        }
        Eta { r, col }
    }

    /// Apply `x ← E·x` (ftran direction).
    pub(crate) fn apply_ftran(&self, x: &mut [f64]) {
        let t = x[self.r];
        if t == 0.0 {
            return;
        }
        for &(i, v) in &self.col {
            if i == self.r {
                x[self.r] = v * t;
            } else {
                x[i] += v * t;
            }
        }
    }

    /// Apply `c ← Eᵀ·c` (btran direction).
    pub(crate) fn apply_btran(&self, c: &mut [f64]) {
        let mut acc = 0.0;
        for &(i, v) in &self.col {
            acc += c[i] * v;
        }
        c[self.r] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mul(m: usize, cols: &[Vec<(usize, f64)>], x: &[f64]) -> Vec<f64> {
        let mut b = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                b[r] += v * x[j];
            }
        }
        b
    }

    fn check_roundtrip(m: usize, cols: Vec<Vec<(usize, f64)>>, x: Vec<f64>) {
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
        let lu = LuFactors::factorize(m, &refs).expect("nonsingular");
        // ftran: solve B·y = B·x, expect y == x.
        let mut rhs = dense_mul(m, &cols, &x);
        let mut out = vec![0.0; m];
        lu.ftran(&mut rhs, &mut out);
        for i in 0..m {
            assert!((out[i] - x[i]).abs() < 1e-9, "ftran mismatch at {i}");
            assert_eq!(rhs[i], 0.0, "rhs not self-cleaned at {i}");
        }
        // btran: solve Bᵀ·y = c, check Bᵀ·y == c by columns.
        let c: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
        let mut y = vec![0.0; m];
        let mut z = vec![0.0; m];
        lu.btran(&c, &mut y, &mut z);
        for (j, col) in cols.iter().enumerate() {
            let dot: f64 = col.iter().map(|&(r, v)| v * y[r]).sum();
            assert!((dot - c[j]).abs() < 1e-9, "btran mismatch at col {j}");
        }
    }

    #[test]
    fn identity_roundtrip() {
        let m = 4;
        let cols: Vec<Vec<(usize, f64)>> = (0..m).map(|i| vec![(i, 1.0)]).collect();
        check_roundtrip(m, cols, vec![1.0, -2.0, 3.0, 0.5]);
    }

    #[test]
    fn dense_small_roundtrip() {
        let cols = vec![
            vec![(0, 2.0), (1, 1.0), (2, -1.0)],
            vec![(0, 1.0), (1, 3.0)],
            vec![(1, -1.0), (2, 4.0)],
        ];
        check_roundtrip(3, cols, vec![0.7, -1.2, 2.5]);
    }

    #[test]
    fn permutation_and_sparse_roundtrip() {
        // A permuted, scaled identity plus a couple of off-diagonal entries.
        let cols = vec![
            vec![(3, 2.0)],
            vec![(0, -1.5), (3, 0.5)],
            vec![(1, 4.0), (0, 0.25)],
            vec![(2, 1.0), (1, -0.75)],
            vec![(4, -3.0)],
        ];
        check_roundtrip(5, cols, vec![1.0, 2.0, -3.0, 0.0, 4.5]);
    }

    #[test]
    fn singular_matrix_rejected() {
        // Two identical columns.
        let cols = [vec![(0, 1.0), (1, 2.0)], vec![(0, 1.0), (1, 2.0)]];
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
        assert!(LuFactors::factorize(2, &refs).is_none());
    }

    #[test]
    fn eta_matches_refactorization() {
        // Basis = identity, replace position 1 with column [1, 2, 1]^T.
        let m = 3;
        let w = vec![1.0, 2.0, 1.0];
        let eta = Eta::from_pivot(1, &w, 1e-12);
        // ftran of b through E must equal solving the updated basis directly.
        let new_cols = [vec![(0, 1.0)], vec![(0, 1.0), (1, 2.0), (2, 1.0)], vec![(2, 1.0)]];
        let refs: Vec<&[(usize, f64)]> = new_cols.iter().map(|c| c.as_slice()).collect();
        let lu = LuFactors::factorize(m, &refs).unwrap();
        let b = vec![3.0, 1.0, -2.0];
        let mut direct = vec![0.0; m];
        let mut rhs = b.clone();
        lu.ftran(&mut rhs, &mut direct);
        let mut via_eta = b.clone();
        eta.apply_ftran(&mut via_eta);
        for i in 0..m {
            assert!((direct[i] - via_eta[i]).abs() < 1e-9, "ftran eta mismatch at {i}");
        }
        // btran direction.
        let c = vec![0.5, -1.0, 2.0];
        let mut direct_y = vec![0.0; m];
        let mut z = vec![0.0; m];
        lu.btran(&c, &mut direct_y, &mut z);
        let mut via_eta_c = c.clone();
        eta.apply_btran(&mut via_eta_c);
        for i in 0..m {
            assert!((direct_y[i] - via_eta_c[i]).abs() < 1e-9, "btran eta mismatch at {i}");
        }
    }
}
