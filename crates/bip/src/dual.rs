//! Bounded-variable dual simplex for warm-started re-solves, on the sparse
//! revised kernel.
//!
//! Branch-and-bound creates child LPs by pinching a single variable's
//! `[lo, hi]` interval.  The parent's optimal basis stays **dual feasible**
//! under any bound change (reduced costs do not depend on the bounds), so
//! instead of rebuilding phase-1 artificials and paying a full two-phase
//! primal solve, a child LP can restart from the parent's [`Basis`] snapshot
//! and run dual pivots until primal feasibility is restored — typically a
//! handful of pivots, which is what turns node throughput from "one LP per
//! tens of seconds" into hundreds of nodes per budget on the rich
//! 24-statement models (ROADMAP, "Next candidates for the solve path").
//!
//! The algorithm is the bounded-variable dual simplex on the same sparse
//! [`Tableau`] workspace the primal uses (LU factors + eta file):
//!
//! 1. **Leaving row** — picked by **dual Devex**: maximize
//!    `violation² / dw_i` against reference-framework row weights updated
//!    from each pivot column (reset to 1 — plain most-violated — when they
//!    overflow, counted in [`LpResult::devex_resets`]); none ⇒ the basis is
//!    primal feasible and, being dual feasible by invariant, optimal.
//! 2. **Bound-flipping (long-step) ratio test** — eligible nonbasic columns
//!    are sorted by dual ratio `|d_j| / |α_j|`; walking the breakpoints in
//!    order, every *boxed* column whose full `lo↔hi` flip still leaves the
//!    leaving row violated is flipped (no pivot, no factorization update —
//!    exactly how box-constrained binaries should move), and the first
//!    breakpoint that cannot be stepped over becomes the entering column.
//!    All flips of one iteration are applied with a single collective
//!    `ftran`.  Exhausting the breakpoints with violation left ⇒ the dual is
//!    unbounded ⇒ the pinched polytope is empty (`Infeasible`) — decided
//!    before any flip is applied.
//! 3. **Pivot** — appends a product-form eta shared with the primal,
//!    refactorized every [`REFACTOR_EVERY`] pivots.
//!
//! Soundness: callers treat anything other than `Optimal`/`Infeasible` as
//! "fall back to a cold two-phase solve", and the branch-and-bound
//! additionally validates a warm-optimal point against the model rows before
//! trusting its objective as a node bound.  Note the dual restart is sound
//! for *bound/RHS* deltas only; after an **objective** change the basis is
//! primal- but not dual-feasible, and the right warm restart is
//! [`SimplexSolver::warm_solve`](crate::SimplexSolver::warm_solve).

#![allow(clippy::needless_range_loop)]

use crate::model::Model;
use crate::simplex::{
    Basis, LpEngine, LpResult, LpStatus, Tableau, VarState, DEADLINE_CHECK_INTERVAL,
    DEVEX_RESET_LIMIT, PIVOT_TOL,
};

/// The dual-simplex engine.  Mirrors [`SimplexSolver`](crate::SimplexSolver)
/// knobs so branch-and-bound can arm both with the same tolerance,
/// wall-clock deadline and kernel.
#[derive(Debug, Clone)]
pub struct DualSimplex {
    pub max_iters: usize,
    pub tol: f64,
    /// Abandon the re-solve (status [`LpStatus::IterLimit`]) once this
    /// instant passes — checked before the first factorization and every
    /// [`DEADLINE_CHECK_INTERVAL`] pivots, same contract as the primal.
    pub deadline: Option<std::time::Instant>,
    /// Which kernel to run on (sparse LU by default).
    pub engine: LpEngine,
}

impl Default for DualSimplex {
    fn default() -> Self {
        DualSimplex { max_iters: 50_000, tol: 1e-7, deadline: None, engine: LpEngine::Sparse }
    }
}

impl DualSimplex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-solve `model` under new per-variable bounds, warm-starting from a
    /// basis snapshot taken by an optimal solve of the *same model* (only
    /// the bounds may differ).  Returns `None` when the snapshot does not
    /// fit the model or its basis matrix is singular — the caller then pays
    /// the cold two-phase solve instead.
    pub fn resolve(
        &self,
        model: &Model,
        lo: &[f64],
        hi: &[f64],
        basis: &Basis,
    ) -> Option<LpResult> {
        if model.n_constraints() == 0 {
            // The bound-minimization shortcut in the primal is already free.
            return None;
        }
        // An already-expired deadline aborts before the first factorization.
        if self.deadline.is_some_and(|dl| std::time::Instant::now() >= dl) {
            return Some(LpResult::aborted(model.n_vars()));
        }
        if self.engine == LpEngine::Dense {
            return crate::dense::dense_resolve(self, model, lo, hi, basis);
        }
        let mut t = Tableau::build(model, lo, hi);
        if !t.restore(basis) {
            return None;
        }
        let n = model.n_vars();
        let mut cost = vec![0.0; t.cols.len()];
        cost[..n].copy_from_slice(model.objective());
        let (status, iterations) = self.run_dual(&mut t, &cost);
        let x = t.structural_x();
        let objective = model.objective_value(&x);
        let basis = (status == LpStatus::Optimal).then(|| t.snapshot());
        Some(LpResult {
            status,
            x,
            objective,
            iterations,
            basis,
            refactorizations: t.refactorizations,
            devex_resets: t.devex_resets,
            factor_recoveries: 0,
        })
    }

    /// The dual pivot loop.  Invariant: the basis is dual feasible (reduced
    /// costs correctly signed per nonbasic state, within tolerance) on
    /// entry and after every pivot.
    fn run_dual(&self, t: &mut Tableau, cost: &[f64]) -> (LpStatus, usize) {
        let m = t.m;
        let ncols = t.cols.len();
        let mut y = vec![0.0; m];
        let mut rho = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut flip_rhs = vec![0.0; m];
        let mut flip_w = vec![0.0; m];
        // Dual Devex reference weights, one per row.
        let mut dw = vec![1.0f64; m];
        let mut since_refactor = 0usize;
        // (j, priced α_j, dual ratio) breakpoints of the current iteration.
        let mut cands: Vec<(usize, f64, f64)> = Vec::new();

        for iter in 0..self.max_iters {
            if iter % DEADLINE_CHECK_INTERVAL == 0 {
                if let Some(dl) = self.deadline {
                    if std::time::Instant::now() >= dl {
                        return (LpStatus::IterLimit, iter);
                    }
                }
            }

            // Leaving row by dual Devex: largest violation²/weight.
            let mut leave: Option<(usize, f64, VarState)> = None; // (i, score, to)
            for i in 0..m {
                let bv = t.basis[i];
                let below = t.lo[bv] - t.xb[i];
                let above = t.xb[i] - t.hi[bv];
                if below > self.tol {
                    let score = below * below / dw[i];
                    if leave.as_ref().is_none_or(|&(_, s, _)| score > s) {
                        leave = Some((i, score, VarState::Lower));
                    }
                }
                if above > self.tol {
                    let score = above * above / dw[i];
                    if leave.as_ref().is_none_or(|&(_, s, _)| score > s) {
                        leave = Some((i, score, VarState::Upper));
                    }
                }
            }
            let Some((r, _, leave_to)) = leave else {
                return (LpStatus::Optimal, iter);
            };

            // Row r of B⁻¹ prices every nonbasic column: α_j = ρ · a_j.
            t.btran_row(r, &mut rho);
            t.duals(cost, &mut y);

            // Breakpoint collection.  `increase` ⟺ the leaving variable
            // sits below its lower bound and must rise toward it.
            let increase = leave_to == VarState::Lower;
            cands.clear();
            for j in 0..ncols {
                if t.state[j] == VarState::Basic || t.lo[j] >= t.hi[j] {
                    continue;
                }
                let mut alpha = 0.0;
                for &(i, a) in &t.cols[j] {
                    alpha += rho[i] * a;
                }
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                // Entering from Lower moves up, from Upper moves down; the
                // induced change on x_B[r] is −t·α_j, so eligibility pairs
                // the state with the sign of α_j.
                let eligible = match (t.state[j], increase) {
                    (VarState::Lower, true) | (VarState::Upper, false) => alpha < 0.0,
                    (VarState::Upper, true) | (VarState::Lower, false) => alpha > 0.0,
                    (VarState::Basic, _) => false,
                };
                if !eligible {
                    continue;
                }
                let d = t.reduced_cost(cost, &y, j);
                // Dual feasibility magnitude: d ≥ 0 at Lower, ≤ 0 at Upper;
                // clamp small drift to zero.
                let dmag = match t.state[j] {
                    VarState::Lower => d.max(0.0),
                    VarState::Upper => (-d).max(0.0),
                    VarState::Basic => unreachable!(),
                };
                cands.push((j, alpha, dmag / alpha.abs()));
            }
            if cands.is_empty() {
                // Dual unbounded: no column can absorb the violation, so
                // the pinched primal polytope is empty.
                return (LpStatus::Infeasible, iter);
            }

            // Bound-flipping walk over the breakpoints in dual-ratio order
            // (ties to the lowest index, keeping re-solves deterministic).
            // A boxed column whose full flip still leaves the row violated
            // is stepped over; the first that cannot be enters the basis.
            cands.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite ratios").then(a.0.cmp(&b.0)));
            let bv = t.basis[r];
            let mut remaining = match leave_to {
                VarState::Lower => t.lo[bv] - t.xb[r],
                VarState::Upper => t.xb[r] - t.hi[bv],
                VarState::Basic => unreachable!(),
            };
            let mut entering: Option<usize> = None;
            let mut n_flips = 0usize;
            for &(j, alpha, _) in cands.iter() {
                let range = t.hi[j] - t.lo[j];
                if range.is_finite() && remaining - alpha.abs() * range > self.tol {
                    n_flips += 1;
                    remaining -= alpha.abs() * range;
                } else {
                    entering = Some(j);
                    break;
                }
            }
            let Some(q) = entering else {
                // Every breakpoint exhausted with violation left: flipping
                // the whole box cannot restore feasibility ⇒ dual unbounded
                // ⇒ Infeasible (no flip has been applied yet).
                return (LpStatus::Infeasible, iter);
            };

            // Apply all flips with one collective ftran.
            if n_flips > 0 {
                for &(j, _, _) in cands.iter().take(n_flips) {
                    let (dv, flipped) = match t.state[j] {
                        VarState::Lower => (t.hi[j] - t.lo[j], VarState::Upper),
                        VarState::Upper => (t.lo[j] - t.hi[j], VarState::Lower),
                        VarState::Basic => unreachable!(),
                    };
                    t.state[j] = flipped;
                    for &(i, a) in &t.cols[j] {
                        flip_rhs[i] += a * dv;
                    }
                }
                t.ftran_vec(&mut flip_rhs, &mut flip_w);
                for i in 0..m {
                    t.xb[i] -= flip_w[i];
                }
            }

            // Pivot: the entering variable moves off its bound by
            // t_e = δ / α_q where δ = x_B[r] − violated bound (recomputed
            // after the flips), landing the leaving variable on that bound.
            let delta = match leave_to {
                VarState::Lower => t.xb[r] - t.lo[bv],
                VarState::Upper => t.xb[r] - t.hi[bv],
                VarState::Basic => unreachable!(),
            };
            t.ftran(q, &mut w);
            let alpha = w[r];
            if alpha.abs() <= PIVOT_TOL {
                // Priced α and the ftran disagree beyond tolerance —
                // numerical trouble; let the caller fall back cold.
                return (LpStatus::Singular, iter);
            }
            let t_e = delta / alpha;
            let enter_val = t.nb_value(q) + t_e;
            for i in 0..m {
                if i != r {
                    t.xb[i] -= t_e * w[i];
                }
            }
            t.state[bv] = leave_to;
            t.state[q] = VarState::Basic;
            t.basis[r] = q;
            t.xb[r] = enter_val;

            // Dual Devex weight update from the pivot column.
            let dw_r = dw[r];
            let inv_a2 = 1.0 / (alpha * alpha);
            let mut dmax = 1.0f64;
            for i in 0..m {
                if i == r {
                    continue;
                }
                let cand = w[i] * w[i] * inv_a2 * dw_r;
                if cand > dw[i] {
                    dw[i] = cand;
                }
                if dw[i] > dmax {
                    dmax = dw[i];
                }
            }
            dw[r] = (dw_r * inv_a2).max(1.0);
            if dw[r] > dmax {
                dmax = dw[r];
            }
            if dmax > DEVEX_RESET_LIMIT {
                dw.fill(1.0);
                t.devex_resets += 1;
            }

            if !t.update_factors(r, &w, &mut since_refactor) {
                return (LpStatus::Singular, iter);
            }
        }
        (LpStatus::IterLimit, self.max_iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};
    use crate::simplex::SimplexSolver;

    fn pinch(lo: &mut [f64], hi: &mut [f64], j: usize, v: f64) {
        lo[j] = v;
        hi[j] = v;
    }

    #[test]
    fn singular_snapshot_resolve_returns_none() {
        // A corrupted (duplicate-column, hence singular) snapshot must make
        // the warm re-solve bow out with `None` — the caller then pays a
        // cold two-phase solve — rather than pivot on a broken basis.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        m.add_constraint(LinExpr::new().term(x, 1.0), Sense::Le, 0.8);
        let root = SimplexSolver::new().solve(&m, &[0.0, 0.0], &[1.0, 1.0]);
        let mut bad = root.basis.clone().expect("root basis");
        bad.basis[1] = bad.basis[0];
        let _ = (x, y);
        assert!(DualSimplex::new().resolve(&m, &[0.0, 0.0], &[1.0, 1.0], &bad).is_none());
    }

    #[test]
    fn resolve_matches_cold_after_bound_pinch() {
        // min −x − 2y s.t. x + y ≤ 1.5: root is (0.5, 1).  Pinch x to each
        // binary value and compare against cold solves.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        let root = SimplexSolver::new().solve(&m, &[0.0, 0.0], &[1.0, 1.0]);
        let basis = root.basis.clone().expect("root basis");
        let _ = (x, y);
        for v in [0.0, 1.0] {
            let (mut lo, mut hi) = (vec![0.0, 0.0], vec![1.0, 1.0]);
            pinch(&mut lo, &mut hi, 0, v);
            let warm = DualSimplex::new().resolve(&m, &lo, &hi, &basis).expect("basis fits");
            let cold = SimplexSolver::new().solve(&m, &lo, &hi);
            assert_eq!(warm.status, LpStatus::Optimal, "pinch x={v}");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "pinch x={v}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(warm.basis.is_some(), "warm optimum snapshots a basis too");
        }
    }

    #[test]
    fn resolve_detects_infeasible_pinch() {
        // x + y ≥ 1.5 with both pinched to 0 is empty.
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Ge, 1.5);
        let _ = (x, y);
        let root = SimplexSolver::new().solve(&m, &[0.0, 0.0], &[1.0, 1.0]);
        let basis = root.basis.expect("root basis");
        let r =
            DualSimplex::new().resolve(&m, &[0.0, 0.0], &[0.0, 0.0], &basis).expect("basis fits");
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn resolve_chains_through_nested_pinches() {
        // Knapsack: re-solve child-of-child from each parent basis.
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..6 {
            let v = m.add_var(format!("v{j}"), -((j + 2) as f64));
            e.add(v, 1.5 + j as f64 * 0.5);
        }
        m.add_constraint(e, Sense::Le, 5.0);
        let n = 6;
        let (mut lo, mut hi) = (vec![0.0; n], vec![1.0; n]);
        let root = SimplexSolver::new().solve(&m, &lo, &hi);
        let mut basis = root.basis.expect("root basis");
        for (j, v) in [(0usize, 1.0), (3usize, 0.0), (1usize, 1.0)] {
            pinch(&mut lo, &mut hi, j, v);
            let warm = DualSimplex::new().resolve(&m, &lo, &hi, &basis).expect("fits");
            let cold = SimplexSolver::new().solve(&m, &lo, &hi);
            assert_eq!(warm.status, cold.status, "pinch ({j}, {v})");
            if warm.status == LpStatus::Optimal {
                assert!(
                    (warm.objective - cold.objective).abs() < 1e-6,
                    "pinch ({j}, {v}): warm {} vs cold {}",
                    warm.objective,
                    cold.objective
                );
                basis = warm.basis.expect("optimal warm solve snapshots");
            }
        }
    }

    #[test]
    fn expired_deadline_aborts_before_first_factorization() {
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        let _ = (x, y);
        let root = SimplexSolver::new().solve(&m, &[0.0, 0.0], &[1.0, 1.0]);
        let basis = root.basis.expect("root basis");
        for engine in [LpEngine::Sparse, LpEngine::Dense] {
            let dual = DualSimplex {
                deadline: Some(std::time::Instant::now()),
                engine,
                ..Default::default()
            };
            let r = dual.resolve(&m, &[1.0, 0.0], &[1.0, 1.0], &basis).expect("fits");
            assert_eq!(r.status, LpStatus::IterLimit);
            assert_eq!(r.iterations, 0, "no dual pivot may run past an expired deadline");
            assert_eq!(r.refactorizations, 0, "no factorization past an expired deadline");
        }
    }

    #[test]
    fn extended_basis_resolves_row_appends_of_every_sense() {
        // Root: min −x − 2y − 3z s.t. x + y + z ≤ 2.  Append one row of
        // each sense and re-solve from the extended basis; the result must
        // match a cold solve, and the extension must stay chainable.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        let z = m.add_var("z", -3.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0).term(z, 1.0), Sense::Le, 2.0);
        let (lo, hi) = (vec![0.0; 3], vec![1.0; 3]);
        let root = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut basis = root.basis.expect("root basis");

        let appends = [
            (LinExpr::new().term(y, 1.0).term(z, 1.0), Sense::Le, 1.5),
            (LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Ge, 0.5),
            (LinExpr::new().term(x, 1.0), Sense::Eq, 0.25),
        ];
        for (expr, sense, rhs) in appends {
            m.add_constraint(expr, sense, rhs);
            let ext = basis.extended_to(&m).expect("row appends extend the basis");
            assert_eq!(ext.basis.len(), m.n_constraints());
            let warm = DualSimplex::new().resolve(&m, &lo, &hi, &ext).expect("extension fits");
            let cold = SimplexSolver::new().solve(&m, &lo, &hi);
            assert_eq!(warm.status, cold.status, "sense {sense:?}");
            assert_eq!(warm.status, LpStatus::Optimal);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "sense {sense:?}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            basis = warm.basis.expect("optimal warm solve snapshots");
        }
    }

    #[test]
    fn extension_rejects_incompatible_models() {
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0), Sense::Le, 1.0);
        let root = SimplexSolver::new().solve(&m, &[0.0], &[1.0]);
        let basis = root.basis.expect("root basis");
        // A model with a different variable count cannot absorb the basis.
        let mut other = Model::new();
        let p = other.add_var("p", -1.0);
        let q = other.add_var("q", -1.0);
        other.add_constraint(LinExpr::new().term(p, 1.0).term(q, 1.0), Sense::Le, 1.0);
        assert!(basis.extended_to(&other).is_none());
        // A sense flip among the old rows is not a row-append history.
        let mut flipped = Model::new();
        let r = flipped.add_var("x", -1.0);
        flipped.add_constraint(LinExpr::new().term(r, 1.0), Sense::Eq, 1.0);
        assert!(basis.extended_to(&flipped).is_none());
    }

    #[test]
    fn mismatched_basis_is_rejected() {
        let mut a = Model::new();
        let x = a.add_var("x", 1.0);
        a.add_constraint(LinExpr::new().term(x, 1.0), Sense::Le, 1.0);
        let root = SimplexSolver::new().solve(&a, &[0.0], &[1.0]);
        let basis = root.basis.expect("basis");
        // A model with a different shape cannot consume the snapshot.
        let mut b = Model::new();
        let p = b.add_var("p", 1.0);
        let q = b.add_var("q", 1.0);
        b.add_constraint(LinExpr::new().term(p, 1.0).term(q, 1.0), Sense::Le, 1.0);
        assert!(DualSimplex::new().resolve(&b, &[0.0, 0.0], &[1.0, 1.0], &basis).is_none());
    }

    #[test]
    fn bound_flip_heavy_resolve_matches_cold() {
        // Fix many binaries to 1 at once: the covering row goes deeply
        // infeasible and the long-step ratio test must flip several boxed
        // columns per pivot.  Correctness contract: same verdict and
        // objective as a cold solve.
        let mut m = Model::new();
        let n = 12;
        let mut e = LinExpr::new();
        for j in 0..n {
            let v = m.add_var(format!("v{j}"), -(1.0 + (j % 5) as f64));
            e.add(v, 1.0 + (j % 3) as f64 * 0.5);
        }
        m.add_constraint(e, Sense::Le, 6.0);
        let (mut lo, mut hi) = (vec![0.0; n], vec![1.0; n]);
        let root = SimplexSolver::new().solve(&m, &lo, &hi);
        let basis = root.basis.expect("root basis");
        // Pinch five variables to 1 simultaneously (still feasible: the
        // five cheapest weights sum below the capacity) and two to 0.
        for j in [0usize, 3, 6, 9, 11] {
            pinch(&mut lo, &mut hi, j, 1.0);
        }
        for j in [1usize, 4] {
            pinch(&mut lo, &mut hi, j, 0.0);
        }
        let warm = DualSimplex::new().resolve(&m, &lo, &hi, &basis).expect("fits");
        let cold = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(warm.status, cold.status);
        if warm.status == LpStatus::Optimal {
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn engines_agree_across_pinch_chain() {
        // Sparse (Devex + BFRT) and dense (most-violated + plain ratio)
        // dual engines must produce identical verdicts and objectives on a
        // shared pinch chain from the same root basis.
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..8 {
            let v = m.add_var(format!("v{j}"), -((j % 4 + 1) as f64));
            e.add(v, ((j % 3) + 1) as f64);
        }
        m.add_constraint(e, Sense::Le, 7.0);
        let n = 8;
        let (mut lo, mut hi) = (vec![0.0; n], vec![1.0; n]);
        let root = SimplexSolver::new().solve(&m, &lo, &hi);
        let basis = root.basis.expect("root basis");
        let sparse = DualSimplex::new();
        let dense = DualSimplex { engine: LpEngine::Dense, ..Default::default() };
        for (j, v) in [(2usize, 1.0), (5usize, 1.0), (0usize, 0.0), (7usize, 1.0)] {
            pinch(&mut lo, &mut hi, j, v);
            let a = sparse.resolve(&m, &lo, &hi, &basis).expect("sparse fits");
            let b = dense.resolve(&m, &lo, &hi, &basis).expect("dense fits");
            assert_eq!(a.status, b.status, "pinch ({j}, {v})");
            if a.status == LpStatus::Optimal {
                assert!(
                    (a.objective - b.objective).abs() < 1e-6,
                    "pinch ({j}, {v}): sparse {} vs dense {}",
                    a.objective,
                    b.objective
                );
            }
        }
    }
}
