//! Bounded-variable dual simplex for warm-started re-solves.
//!
//! Branch-and-bound creates child LPs by pinching a single variable's
//! `[lo, hi]` interval.  The parent's optimal basis stays **dual feasible**
//! under any bound change (reduced costs do not depend on the bounds), so
//! instead of rebuilding phase-1 artificials and paying a full two-phase
//! primal solve, a child LP can restart from the parent's [`Basis`] snapshot
//! and run dual pivots until primal feasibility is restored — typically a
//! handful of pivots, which is what turns node throughput from "one LP per
//! tens of seconds" into hundreds of nodes per budget on the rich
//! 24-statement models (ROADMAP, "Next candidates for the solve path").
//!
//! The algorithm is the textbook bounded-variable dual simplex on the same
//! [`Tableau`] workspace the primal uses:
//!
//! 1. **Leaving row** — the basic variable with the largest bound violation
//!    (below `lo` or above `hi`); none ⇒ the basis is primal feasible and,
//!    being dual feasible by invariant, optimal.
//! 2. **Dual ratio test** — over nonbasic columns whose row-`r` coefficient
//!    moves the leaving variable toward its violated bound, pick the column
//!    minimizing `|d_j| / |α_j|` (ties to the lowest index, keeping
//!    re-solves deterministic); none ⇒ dual unbounded ⇒ the pinched polytope
//!    is empty (`Infeasible`).
//! 3. **Pivot** — the product-form `B⁻¹` update shared with the primal,
//!    refactorized every [`REFACTOR_EVERY`] pivots.
//!
//! Soundness: callers treat anything other than `Optimal`/`Infeasible` as
//! "fall back to a cold two-phase solve", and the branch-and-bound
//! additionally validates a warm-optimal point against the model rows before
//! trusting its objective as a node bound.

// As in `simplex`, the kernels use index loops over the dense B⁻¹ rows;
// iterator chains obscure the pivot arithmetic.
#![allow(clippy::needless_range_loop)]

use crate::model::Model;
use crate::simplex::{
    Basis, LpResult, LpStatus, Tableau, VarState, DEADLINE_CHECK_INTERVAL, PIVOT_TOL,
    REFACTOR_EVERY,
};

/// The dual-simplex engine.  Mirrors [`SimplexSolver`](crate::SimplexSolver)
/// knobs so branch-and-bound can arm both with the same tolerance and
/// wall-clock deadline.
#[derive(Debug, Clone)]
pub struct DualSimplex {
    pub max_iters: usize,
    pub tol: f64,
    /// Abandon the re-solve (status [`LpStatus::IterLimit`]) once this
    /// instant passes — checked every [`DEADLINE_CHECK_INTERVAL`] pivots and
    /// before the first one, same contract as the primal.
    pub deadline: Option<std::time::Instant>,
}

impl Default for DualSimplex {
    fn default() -> Self {
        DualSimplex { max_iters: 50_000, tol: 1e-7, deadline: None }
    }
}

impl DualSimplex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-solve `model` under new per-variable bounds, warm-starting from a
    /// basis snapshot taken by an optimal solve of the *same model* (only
    /// the bounds may differ).  Returns `None` when the snapshot does not
    /// fit the model or its basis matrix is singular — the caller then pays
    /// the cold two-phase solve instead.
    pub fn resolve(
        &self,
        model: &Model,
        lo: &[f64],
        hi: &[f64],
        basis: &Basis,
    ) -> Option<LpResult> {
        if model.n_constraints() == 0 {
            // The bound-minimization shortcut in the primal is already free.
            return None;
        }
        let mut t = Tableau::build(model, lo, hi);
        if !t.restore(basis) {
            return None;
        }
        let n = model.n_vars();
        let mut cost = vec![0.0; t.cols.len()];
        cost[..n].copy_from_slice(model.objective());
        let (status, iterations) = self.run_dual(&mut t, &cost);
        let x = t.structural_x();
        let objective = model.objective_value(&x);
        let basis = (status == LpStatus::Optimal).then(|| t.snapshot());
        Some(LpResult { status, x, objective, iterations, basis })
    }

    /// The dual pivot loop.  Invariant: the basis is dual feasible (reduced
    /// costs correctly signed per nonbasic state, within tolerance) on
    /// entry and after every pivot.
    fn run_dual(&self, t: &mut Tableau, cost: &[f64]) -> (LpStatus, usize) {
        let m = t.m;
        let mut y = vec![0.0; m];
        let mut rho = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut since_refactor = 0usize;

        for iter in 0..self.max_iters {
            if iter % DEADLINE_CHECK_INTERVAL == 0 {
                if let Some(dl) = self.deadline {
                    if std::time::Instant::now() >= dl {
                        return (LpStatus::IterLimit, iter);
                    }
                }
            }

            // Leaving row: the most violated basic variable.
            let mut leave: Option<(usize, f64, VarState)> = None;
            for i in 0..m {
                let bv = t.basis[i];
                let below = t.lo[bv] - t.xb[i];
                let above = t.xb[i] - t.hi[bv];
                if below > self.tol && leave.as_ref().is_none_or(|(_, v, _)| below > *v) {
                    leave = Some((i, below, VarState::Lower));
                }
                if above > self.tol && leave.as_ref().is_none_or(|(_, v, _)| above > *v) {
                    leave = Some((i, above, VarState::Upper));
                }
            }
            let Some((r, _, leave_to)) = leave else {
                return (LpStatus::Optimal, iter);
            };

            // Row r of B⁻¹ (a row copy with the explicit inverse) prices
            // every nonbasic column: α_j = (B⁻¹ a_j)[r].
            rho.copy_from_slice(&t.binv[r * m..(r + 1) * m]);
            t.duals(cost, &mut y);

            // Dual ratio test.  `increase` ⟺ the leaving variable sits
            // below its lower bound and must rise toward it.
            let increase = leave_to == VarState::Lower;
            let mut entering: Option<(usize, f64)> = None; // (j, ratio)
            for j in 0..t.cols.len() {
                if t.state[j] == VarState::Basic || t.lo[j] >= t.hi[j] {
                    continue;
                }
                let alpha: f64 = t.cols[j].iter().map(|&(i, a)| rho[i] * a).sum();
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                // Entering from Lower moves up, from Upper moves down; the
                // induced change on x_B[r] is −t·α_j, so eligibility pairs
                // the state with the sign of α_j.
                let eligible = match (t.state[j], increase) {
                    (VarState::Lower, true) | (VarState::Upper, false) => alpha < 0.0,
                    (VarState::Upper, true) | (VarState::Lower, false) => alpha > 0.0,
                    (VarState::Basic, _) => false,
                };
                if !eligible {
                    continue;
                }
                let d = t.reduced_cost(cost, &y, j);
                // Dual feasibility magnitude: d ≥ 0 at Lower, ≤ 0 at Upper;
                // clamp small drift to zero.
                let dmag = match t.state[j] {
                    VarState::Lower => d.max(0.0),
                    VarState::Upper => (-d).max(0.0),
                    VarState::Basic => unreachable!(),
                };
                let ratio = dmag / alpha.abs();
                if entering.as_ref().is_none_or(|&(_, best)| ratio < best - 1e-12) {
                    entering = Some((j, ratio));
                }
            }
            let Some((j, _)) = entering else {
                // Dual unbounded: no column can absorb the violation, so the
                // pinched primal polytope is empty.
                return (LpStatus::Infeasible, iter);
            };

            // Pivot: the entering variable moves off its bound by
            // t_e = δ / α_j where δ = x_B[r] − violated bound, landing the
            // leaving variable exactly on that bound.
            let bv = t.basis[r];
            let delta = match leave_to {
                VarState::Lower => t.xb[r] - t.lo[bv],
                VarState::Upper => t.xb[r] - t.hi[bv],
                VarState::Basic => unreachable!(),
            };
            t.ftran(j, &mut w);
            let alpha = w[r];
            if alpha.abs() <= PIVOT_TOL {
                // Priced α and the ftran disagree beyond tolerance —
                // numerical trouble; let the caller fall back cold.
                return (LpStatus::IterLimit, iter);
            }
            let t_e = delta / alpha;
            let enter_val = t.nb_value(j) + t_e;
            for i in 0..m {
                if i != r {
                    t.xb[i] -= t_e * w[i];
                }
            }
            t.state[bv] = leave_to;
            t.state[j] = VarState::Basic;
            t.basis[r] = j;

            // Product-form update of B⁻¹ on pivot w[r] (same as the primal).
            for i in 0..m {
                if i == r {
                    continue;
                }
                let f = w[i] / alpha;
                if f == 0.0 {
                    continue;
                }
                let (head, tail) = t.binv.split_at_mut(r.max(i) * m);
                let (row_i, row_r) = if i < r {
                    (&mut head[i * m..(i + 1) * m], &tail[..m])
                } else {
                    (&mut tail[..m], &head[r * m..(r + 1) * m])
                };
                for (vi, vr) in row_i.iter_mut().zip(row_r) {
                    *vi -= f * vr;
                }
            }
            for v in &mut t.binv[r * m..(r + 1) * m] {
                *v /= alpha;
            }
            t.xb[r] = enter_val;

            since_refactor += 1;
            if since_refactor >= REFACTOR_EVERY {
                since_refactor = 0;
                if !t.refactor() {
                    return (LpStatus::IterLimit, iter);
                }
            }
        }
        (LpStatus::IterLimit, self.max_iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};
    use crate::simplex::SimplexSolver;

    fn pinch(lo: &mut [f64], hi: &mut [f64], j: usize, v: f64) {
        lo[j] = v;
        hi[j] = v;
    }

    #[test]
    fn resolve_matches_cold_after_bound_pinch() {
        // min −x − 2y s.t. x + y ≤ 1.5: root is (0.5, 1).  Pinch x to each
        // binary value and compare against cold solves.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        let root = SimplexSolver::new().solve(&m, &[0.0, 0.0], &[1.0, 1.0]);
        let basis = root.basis.clone().expect("root basis");
        let _ = (x, y);
        for v in [0.0, 1.0] {
            let (mut lo, mut hi) = (vec![0.0, 0.0], vec![1.0, 1.0]);
            pinch(&mut lo, &mut hi, 0, v);
            let warm = DualSimplex::new().resolve(&m, &lo, &hi, &basis).expect("basis fits");
            let cold = SimplexSolver::new().solve(&m, &lo, &hi);
            assert_eq!(warm.status, LpStatus::Optimal, "pinch x={v}");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "pinch x={v}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(warm.basis.is_some(), "warm optimum snapshots a basis too");
        }
    }

    #[test]
    fn resolve_detects_infeasible_pinch() {
        // x + y ≥ 1.5 with both pinched to 0 is empty.
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Ge, 1.5);
        let _ = (x, y);
        let root = SimplexSolver::new().solve(&m, &[0.0, 0.0], &[1.0, 1.0]);
        let basis = root.basis.expect("root basis");
        let r =
            DualSimplex::new().resolve(&m, &[0.0, 0.0], &[0.0, 0.0], &basis).expect("basis fits");
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn resolve_chains_through_nested_pinches() {
        // Knapsack: re-solve child-of-child from each parent basis.
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..6 {
            let v = m.add_var(format!("v{j}"), -((j + 2) as f64));
            e.add(v, 1.5 + j as f64 * 0.5);
        }
        m.add_constraint(e, Sense::Le, 5.0);
        let n = 6;
        let (mut lo, mut hi) = (vec![0.0; n], vec![1.0; n]);
        let root = SimplexSolver::new().solve(&m, &lo, &hi);
        let mut basis = root.basis.expect("root basis");
        for (j, v) in [(0usize, 1.0), (3usize, 0.0), (1usize, 1.0)] {
            pinch(&mut lo, &mut hi, j, v);
            let warm = DualSimplex::new().resolve(&m, &lo, &hi, &basis).expect("fits");
            let cold = SimplexSolver::new().solve(&m, &lo, &hi);
            assert_eq!(warm.status, cold.status, "pinch ({j}, {v})");
            if warm.status == LpStatus::Optimal {
                assert!(
                    (warm.objective - cold.objective).abs() < 1e-6,
                    "pinch ({j}, {v}): warm {} vs cold {}",
                    warm.objective,
                    cold.objective
                );
                basis = warm.basis.expect("optimal warm solve snapshots");
            }
        }
    }

    #[test]
    fn expired_deadline_aborts_within_one_pivot() {
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.5);
        let _ = (x, y);
        let root = SimplexSolver::new().solve(&m, &[0.0, 0.0], &[1.0, 1.0]);
        let basis = root.basis.expect("root basis");
        let dual = DualSimplex { deadline: Some(std::time::Instant::now()), ..Default::default() };
        let r = dual.resolve(&m, &[1.0, 0.0], &[1.0, 1.0], &basis).expect("fits");
        assert_eq!(r.status, LpStatus::IterLimit);
        assert_eq!(r.iterations, 0, "no dual pivot may run past an expired deadline");
    }

    #[test]
    fn extended_basis_resolves_row_appends_of_every_sense() {
        // Root: min −x − 2y − 3z s.t. x + y + z ≤ 2.  Append one row of
        // each sense and re-solve from the extended basis; the result must
        // match a cold solve, and the extension must stay chainable.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -2.0);
        let z = m.add_var("z", -3.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0).term(z, 1.0), Sense::Le, 2.0);
        let (lo, hi) = (vec![0.0; 3], vec![1.0; 3]);
        let root = SimplexSolver::new().solve(&m, &lo, &hi);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut basis = root.basis.expect("root basis");

        let appends = [
            (LinExpr::new().term(y, 1.0).term(z, 1.0), Sense::Le, 1.5),
            (LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Ge, 0.5),
            (LinExpr::new().term(x, 1.0), Sense::Eq, 0.25),
        ];
        for (expr, sense, rhs) in appends {
            m.add_constraint(expr, sense, rhs);
            let ext = basis.extended_to(&m).expect("row appends extend the basis");
            assert_eq!(ext.basis.len(), m.n_constraints());
            let warm = DualSimplex::new().resolve(&m, &lo, &hi, &ext).expect("extension fits");
            let cold = SimplexSolver::new().solve(&m, &lo, &hi);
            assert_eq!(warm.status, cold.status, "sense {sense:?}");
            assert_eq!(warm.status, LpStatus::Optimal);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "sense {sense:?}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            basis = warm.basis.expect("optimal warm solve snapshots");
        }
    }

    #[test]
    fn extension_rejects_incompatible_models() {
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0), Sense::Le, 1.0);
        let root = SimplexSolver::new().solve(&m, &[0.0], &[1.0]);
        let basis = root.basis.expect("root basis");
        // A model with a different variable count cannot absorb the basis.
        let mut other = Model::new();
        let p = other.add_var("p", -1.0);
        let q = other.add_var("q", -1.0);
        other.add_constraint(LinExpr::new().term(p, 1.0).term(q, 1.0), Sense::Le, 1.0);
        assert!(basis.extended_to(&other).is_none());
        // A sense flip among the old rows is not a row-append history.
        let mut flipped = Model::new();
        let r = flipped.add_var("x", -1.0);
        flipped.add_constraint(LinExpr::new().term(r, 1.0), Sense::Eq, 1.0);
        assert!(basis.extended_to(&flipped).is_none());
    }

    #[test]
    fn mismatched_basis_is_rejected() {
        let mut a = Model::new();
        let x = a.add_var("x", 1.0);
        a.add_constraint(LinExpr::new().term(x, 1.0), Sense::Le, 1.0);
        let root = SimplexSolver::new().solve(&a, &[0.0], &[1.0]);
        let basis = root.basis.expect("basis");
        // A model with a different shape cannot consume the snapshot.
        let mut b = Model::new();
        let p = b.add_var("p", 1.0);
        let q = b.add_var("q", 1.0);
        b.add_constraint(LinExpr::new().term(p, 1.0).term(q, 1.0), Sense::Le, 1.0);
        assert!(DualSimplex::new().resolve(&b, &[0.0, 0.0], &[1.0, 1.0], &basis).is_none());
    }
}
