//! # cophy-bip
//!
//! A self-contained binary-integer-programming substrate — the stand-in for
//! the off-the-shelf solver (CPLEX 12.1) the CoPhy paper delegates to.  The
//! calibration note for this reproduction flags Rust LP-solver crates as
//! immature, so everything here is built from scratch:
//!
//! * [`Model`] — a sparse BIP model builder with incremental extension
//!   (new variables/constraints after a solve), the delta interface CoPhy's
//!   interactive tuning exploits;
//! * [`simplex`] — a two-phase, bounded-variable **sparse revised** primal
//!   simplex for the LP relaxations: sparse-LU basis factorization
//!   (`factor`, Markowitz-style ordering + threshold partial pivoting) with
//!   eta-file product-form updates and periodic refactorization, Devex
//!   pricing with a Dantzig-equivalent reset, and optimal-[`Basis`]
//!   snapshots for warm re-solves.  The previous dense explicit-`B⁻¹`
//!   engine is retained behind [`LpEngine::Dense`] as a
//!   differential-testing oracle and benchmark baseline (`dense`);
//! * [`dual`] — a bounded-variable **dual simplex** on the same sparse
//!   kernel that re-solves an LP from a parent basis after a bound pinch
//!   (the branch-and-bound warm-start: a child LP costs a handful of dual
//!   pivots instead of a fresh two-phase solve), with dual Devex row
//!   pricing and a bound-flipping (long-step) ratio test that moves
//!   box-constrained binaries across their box without a pivot;
//! * [`branch_bound`] — a best-first branch-and-bound MIP solver with
//!   anytime incumbents, a global lower bound, relative-gap early
//!   termination, time/node limits and improvement callbacks (the paper's
//!   "continuous feedback" of Figure 6a);
//! * [`lagrangian`] — a Lagrangian-decomposition solver for the
//!   block-angular structure of index-tuning BIPs (the `relax(B)` step of
//!   Figure 3): per-query minimum subproblems + an LP-knapsack coupling
//!   subproblem, driven by subgradient ascent, with warm-startable
//!   multipliers for fast re-solves;
//! * [`knapsack`] — continuous/0-1 knapsack helpers shared by the above;
//! * [`mps`] — free-format MPS export/import of a [`Model`], the portable
//!   hand-off to (and cross-check against) external solvers.
//!
//! * [`driver`] — the shared **anytime solve engine**: one [`SolveBudget`]
//!   (gap / wall-clock / node limits), a [`SolveDriver`] owning the
//!   incumbent stream, monotone bound and proven-gap tracking, and the
//!   unified [`SolveProgress`] callback both backends report through;
//! * [`delta`] — the **interactive re-optimization** vocabulary:
//!   [`ModelDelta`] mutations (RHS sweeps, variable pin/ban, row
//!   add/relax) over a [`DeltaModel`], re-solved through a
//!   [`ResolveContext`] (last root basis + incumbent + pseudo-costs) so a
//!   follow-up question costs dual pivots, not a fresh solve.
//!
//! The solvers report the same observables CPLEX exposes to CoPhy:
//! feasibility, anytime incumbent + bound (⇒ optimality gap), and cheap
//! re-solves after model deltas.

pub mod branch_bound;
pub mod delta;
pub(crate) mod dense;
pub mod driver;
pub mod dual;
pub(crate) mod factor;
pub mod knapsack;
pub mod lagrangian;
pub mod model;
pub mod mps;
pub mod simplex;

pub use branch_bound::{BranchBound, MipResult, ResolveContext, SolveOptions};
pub use delta::{DeltaModel, ModelDelta};
pub use driver::{
    relative_gap, CancelToken, DecompositionProgress, DriverResult, GapPoint, MipStatus,
    SolveBudget, SolveDriver, SolveProgress,
};
pub use dual::DualSimplex;
pub use lagrangian::{
    Alt, Block, BlockProblem, FixedBlockProblem, LagrangeResult, LagrangianSolver, SlotChoices,
    WarmStart,
};
pub use model::{ConstrId, LinExpr, Model, Sense, VarId};
pub use mps::{lint_mps, parse_mps, write_mps};
pub use simplex::{Basis, LpEngine, LpResult, LpStatus, SimplexSolver};
