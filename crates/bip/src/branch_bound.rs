//! Best-first branch-and-bound over binary variables.
//!
//! The generic "off-the-shelf BIP solver" face of this crate: LP-relaxation
//! bounds from the [`simplex`](crate::simplex), most-fractional branching,
//! anytime incumbents with a global lower bound, and the observables CoPhy
//! builds features on:
//!
//! * **gap feedback** — `(incumbent − bound)/|incumbent|` reported after
//!   every improvement (Figure 6a's curves are exactly this trace);
//! * **early termination** — stop as soon as the gap falls below
//!   `SolveOptions::gap_limit` (the paper runs CPLEX at 5%);
//! * **limits** — wall-clock and node limits with the best-so-far returned.

use std::time::{Duration, Instant};

use crate::model::Model;
use crate::simplex::{LpStatus, SimplexSolver};

/// Termination reason of a MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// Proven optimal (gap 0 within tolerance).
    Optimal,
    /// Stopped because the relative gap reached `gap_limit`.
    GapReached,
    /// Stopped on the time limit.
    TimeLimit,
    /// Stopped on the node limit.
    NodeLimit,
    /// The relaxation (and hence the BIP) is infeasible.
    Infeasible,
}

/// One point of the anytime gap trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapPoint {
    pub at: Duration,
    pub incumbent: f64,
    pub bound: f64,
    pub gap: f64,
}

/// Result of a MIP solve.
#[derive(Debug, Clone)]
pub struct MipResult {
    pub status: MipStatus,
    /// Best integral solution found (empty if none).
    pub x: Vec<f64>,
    pub objective: f64,
    /// Global lower bound at termination.
    pub bound: f64,
    /// Relative gap at termination.
    pub gap: f64,
    pub nodes: usize,
    /// Incumbent/bound improvements over time.
    pub trace: Vec<GapPoint>,
}

impl MipResult {
    fn infeasible() -> Self {
        MipResult {
            status: MipStatus::Infeasible,
            x: Vec::new(),
            objective: f64::INFINITY,
            bound: f64::INFINITY,
            gap: f64::INFINITY,
            nodes: 0,
            trace: Vec::new(),
        }
    }
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Stop when `(incumbent − bound)/|incumbent| ≤ gap_limit`.
    pub gap_limit: f64,
    pub time_limit: Option<Duration>,
    pub node_limit: Option<usize>,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { gap_limit: 1e-9, time_limit: None, node_limit: None, int_tol: 1e-6 }
    }
}

impl SolveOptions {
    /// The paper's interactive default: terminate within 5% of optimal.
    pub fn within_5_percent() -> Self {
        SolveOptions { gap_limit: 0.05, ..Default::default() }
    }
}

/// A search node: variable fixings layered over the root bounds.
#[derive(Debug, Clone)]
struct Node {
    bound: f64,
    fixings: Vec<(usize, bool)>,
    depth: usize,
}

/// Best-first B&B solver.
#[derive(Debug, Default)]
pub struct BranchBound {
    pub simplex: SimplexSolver,
}

impl BranchBound {
    pub fn new() -> Self {
        BranchBound::default()
    }

    /// Feasibility check of the LP relaxation (the paper's Solver line 1).
    pub fn is_feasible(&self, model: &Model) -> bool {
        let n = model.n_vars();
        self.simplex.is_feasible(model, &vec![0.0; n], &vec![1.0; n])
    }

    /// Solve `model` to binary optimality (or to the configured limits).
    /// `on_improve` fires on every incumbent or bound improvement.
    pub fn solve_with_callback(
        &self,
        model: &Model,
        opts: &SolveOptions,
        mut on_improve: impl FnMut(&GapPoint),
    ) -> MipResult {
        let n = model.n_vars();
        let start = Instant::now();
        let mut lo = vec![0.0; n];
        let mut hi = vec![1.0; n];

        let root = self.simplex.solve(model, &lo, &hi);
        match root.status {
            LpStatus::Infeasible => return MipResult::infeasible(),
            LpStatus::Unbounded => {
                // Binary variables are bounded; an unbounded relaxation means
                // a modeling error. Surface it loudly.
                panic!("LP relaxation of a BIP cannot be unbounded");
            }
            _ => {}
        }

        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut trace: Vec<GapPoint> = Vec::new();
        let mut nodes = 0usize;

        // Root rounding heuristic: round the LP point and repair nothing —
        // accept only if feasible. Cheap and surprisingly effective on
        // index-tuning BIPs where the LP is near-integral.
        let rounded: Vec<f64> = root.x.iter().map(|v| if *v >= 0.5 { 1.0 } else { 0.0 }).collect();
        if model.feasible(&rounded, 1e-6) {
            let obj = model.objective_value(&rounded);
            incumbent = Some((obj, rounded));
        }

        // Frontier ordered by bound (best-first).
        let mut frontier: Vec<Node> =
            vec![Node { bound: root.objective, fixings: Vec::new(), depth: 0 }];

        let mut status = MipStatus::Optimal;
        let mut global_bound = root.objective;

        let record = |trace: &mut Vec<GapPoint>,
                      on_improve: &mut dyn FnMut(&GapPoint),
                      start: &Instant,
                      inc: f64,
                      bound: f64| {
            let gap = relative_gap(inc, bound);
            let p = GapPoint { at: start.elapsed(), incumbent: inc, bound, gap };
            on_improve(&p);
            trace.push(p);
        };

        while let Some(pos) = best_node(&frontier) {
            let node = frontier.swap_remove(pos);
            global_bound = frontier.iter().map(|nd| nd.bound).fold(node.bound, f64::min);

            // Check limits.
            if let Some(tl) = opts.time_limit {
                if start.elapsed() >= tl {
                    status = MipStatus::TimeLimit;
                    break;
                }
            }
            if let Some(nl) = opts.node_limit {
                if nodes >= nl {
                    status = MipStatus::NodeLimit;
                    break;
                }
            }
            // Prune against the incumbent.
            if let Some((inc, _)) = &incumbent {
                if node.bound >= *inc - 1e-9 {
                    continue;
                }
                if relative_gap(*inc, global_bound) <= opts.gap_limit {
                    status = if opts.gap_limit > 1e-9 {
                        MipStatus::GapReached
                    } else {
                        MipStatus::Optimal
                    };
                    break;
                }
            }

            nodes += 1;
            // Apply fixings.
            for &(j, v) in &node.fixings {
                lo[j] = if v { 1.0 } else { 0.0 };
                hi[j] = lo[j];
            }
            let lp = self.simplex.solve(model, &lo, &hi);
            // Restore bounds.
            for &(j, _) in &node.fixings {
                lo[j] = 0.0;
                hi[j] = 1.0;
            }

            if lp.status == LpStatus::Infeasible {
                continue;
            }
            if let Some((inc, _)) = &incumbent {
                if lp.objective >= *inc - 1e-9 {
                    continue;
                }
            }

            // Integral?
            let frac_var = most_fractional(&lp.x, opts.int_tol);
            match frac_var {
                None => {
                    let obj = lp.objective;
                    let better = incumbent.as_ref().is_none_or(|(inc, _)| obj < *inc);
                    if better {
                        incumbent = Some((obj, lp.x.clone()));
                        record(&mut trace, &mut on_improve, &start, obj, global_bound);
                    }
                }
                Some(j) => {
                    for v in [true, false] {
                        let mut fx = node.fixings.clone();
                        fx.push((j, v));
                        frontier.push(Node {
                            bound: lp.objective,
                            fixings: fx,
                            depth: node.depth + 1,
                        });
                    }
                }
            }
        }

        if frontier.is_empty() && status == MipStatus::Optimal {
            // Search exhausted: the incumbent (if any) is optimal.
            if let Some((inc, _)) = &incumbent {
                global_bound = *inc;
            }
        }

        match incumbent {
            None => {
                // No integral point found. If the search was exhausted the
                // BIP is integrally infeasible.
                let mut r = MipResult::infeasible();
                r.nodes = nodes;
                if status != MipStatus::Optimal {
                    r.status = status;
                    r.bound = global_bound;
                }
                r
            }
            Some((obj, x)) => {
                let gap = relative_gap(obj, global_bound);
                record(&mut trace, &mut on_improve, &start, obj, global_bound);
                MipResult {
                    status: if gap <= 1e-9 { MipStatus::Optimal } else { status },
                    x,
                    objective: obj,
                    bound: global_bound,
                    gap,
                    nodes,
                    trace,
                }
            }
        }
    }

    /// Solve without callbacks.
    pub fn solve(&self, model: &Model, opts: &SolveOptions) -> MipResult {
        self.solve_with_callback(model, opts, |_| {})
    }
}

/// Relative optimality gap, safe for zero incumbents.
pub fn relative_gap(incumbent: f64, bound: f64) -> f64 {
    if !incumbent.is_finite() {
        return f64::INFINITY;
    }
    let denom = incumbent.abs().max(1e-12);
    ((incumbent - bound) / denom).max(0.0)
}

fn best_node(frontier: &[Node]) -> Option<usize> {
    frontier
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.bound.total_cmp(&b.bound).then(a.depth.cmp(&b.depth)))
        .map(|(i, _)| i)
}

fn most_fractional(x: &[f64], tol: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (j, &v) in x.iter().enumerate() {
        let frac = (v - v.round()).abs();
        if frac > tol && best.is_none_or(|(_, f)| frac > f) {
            best = Some((j, frac));
        }
    }
    best.map(|(j, _)| j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solves_tiny_knapsack_exactly() {
        // max 10x + 6y + 4z s.t. 5x+4y+3z ≤ 9  (as min of negatives)
        let mut m = Model::new();
        let x = m.add_var("x", -10.0);
        let y = m.add_var("y", -6.0);
        let z = m.add_var("z", -4.0);
        m.add_constraint(LinExpr::new().term(x, 5.0).term(y, 4.0).term(z, 3.0), Sense::Le, 9.0);
        let r = BranchBound::new().solve(&m, &SolveOptions::default());
        assert_eq!(r.status, MipStatus::Optimal);
        let (expect, _) = m.brute_force().unwrap();
        assert!((r.objective - expect).abs() < 1e-6);
        assert!(m.feasible(&r.x, 1e-6));
        assert!(r.gap <= 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Ge, 3.0);
        let r = BranchBound::new().solve(&m, &SolveOptions::default());
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(!BranchBound::new().is_feasible(&m));
    }

    #[test]
    fn integrally_infeasible_detected() {
        // x + y = 1 and x − y = 0 has the LP solution (0.5, 0.5) only.
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Eq, 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, -1.0), Sense::Eq, 0.0);
        let r = BranchBound::new().solve(&m, &SolveOptions::default());
        assert_eq!(r.status, MipStatus::Infeasible);
    }

    #[test]
    fn matches_brute_force_on_random_bips() {
        let mut rng = SmallRng::seed_from_u64(123);
        for trial in 0..25 {
            let n = rng.gen_range(3..10);
            let mut m = Model::new();
            let vars: Vec<_> =
                (0..n).map(|j| m.add_var(format!("v{j}"), rng.gen_range(-10.0..10.0))).collect();
            for _ in 0..rng.gen_range(1..4) {
                let mut e = LinExpr::new();
                for &v in &vars {
                    if rng.gen_bool(0.7) {
                        e.add(v, rng.gen_range(-5.0..5.0));
                    }
                }
                if e.terms.is_empty() {
                    continue;
                }
                let sense = match rng.gen_range(0..3) {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Eq,
                };
                // keep Eq constraints satisfiable reasonably often
                let rhs = match sense {
                    Sense::Eq => {
                        if rng.gen_bool(0.5) {
                            0.0
                        } else {
                            e.terms[0].1
                        }
                    }
                    _ => rng.gen_range(-4.0..6.0),
                };
                m.add_constraint(e, sense, rhs);
            }
            let r = BranchBound::new().solve(&m, &SolveOptions::default());
            match m.brute_force() {
                None => assert_eq!(
                    r.status,
                    MipStatus::Infeasible,
                    "trial {trial}: solver found {:?} on infeasible model",
                    r.objective
                ),
                Some((expect, _)) => {
                    assert_ne!(r.status, MipStatus::Infeasible, "trial {trial}");
                    assert!(
                        (r.objective - expect).abs() < 1e-5,
                        "trial {trial}: got {} expected {expect}",
                        r.objective
                    );
                    assert!(m.feasible(&r.x, 1e-6));
                }
            }
        }
    }

    #[test]
    fn gap_limit_stops_early_with_valid_bound() {
        // A knapsack with many similar items → nontrivial search tree.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..16 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(5.0..15.0));
            e.add(v, rng.gen_range(3.0..9.0));
        }
        m.add_constraint(e, Sense::Le, 30.0);
        let opts = SolveOptions { gap_limit: 0.10, ..Default::default() };
        let r = BranchBound::new().solve(&m, &opts);
        assert!(matches!(r.status, MipStatus::GapReached | MipStatus::Optimal));
        assert!(r.gap <= 0.10 + 1e-9);
        assert!(r.bound <= r.objective + 1e-9, "bound must stay below incumbent");
        assert!(m.feasible(&r.x, 1e-6));
    }

    #[test]
    fn callback_trace_is_monotone() {
        let mut m = Model::new();
        let mut e = LinExpr::new();
        let mut rng = SmallRng::seed_from_u64(11);
        for j in 0..12 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(1.0..20.0));
            e.add(v, rng.gen_range(1.0..10.0));
        }
        m.add_constraint(e, Sense::Le, 25.0);
        let mut gaps: Vec<f64> = Vec::new();
        let r = BranchBound::new()
            .solve_with_callback(&m, &SolveOptions::default(), |p| gaps.push(p.gap));
        assert_eq!(r.status, MipStatus::Optimal);
        // incumbents improve monotonically
        let mut prev = f64::INFINITY;
        for p in &r.trace {
            assert!(p.incumbent <= prev + 1e-9);
            prev = p.incumbent;
        }
        assert!(!gaps.is_empty());
    }

    #[test]
    fn node_limit_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..20 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(5.0..6.0));
            e.add(v, rng.gen_range(3.0..4.0));
        }
        m.add_constraint(e, Sense::Le, 20.0);
        let opts = SolveOptions { node_limit: Some(5), ..Default::default() };
        let r = BranchBound::new().solve(&m, &opts);
        assert!(r.nodes <= 6);
    }
}
