//! Best-first branch-and-bound over binary variables.
//!
//! The generic "off-the-shelf BIP solver" face of this crate: LP-relaxation
//! bounds from the [`simplex`](crate::simplex), an **LP-rounding +
//! greedy-repair diving heuristic** for root-node incumbents, **pseudo-cost
//! branching** with reliability initialization from strong branching, and the
//! anytime contract of the shared [`SolveDriver`]:
//!
//! * **gap feedback** — a monotone proven-gap trace streamed after every
//!   incumbent or bound improvement (Figure 6a's curves are exactly this);
//! * **early termination** — stop as soon as the gap falls below
//!   `SolveBudget::gap_limit` (the paper runs CPLEX at 5%);
//! * **limits** — wall-clock and node limits with the best-so-far returned.
//!
//! ## Primal heuristics
//!
//! Index-tuning BIPs have near-integral LP relaxations, but plain rounding
//! usually breaks the assignment rows (`Σ_k y_qk = 1`, `Σ_a x = y`) and the
//! AT-MOST/storage rows.  [`round_and_repair`] rounds the LP point and then
//! repairs violated rows greedily: candidate flips are scored by objective
//! damage per unit of violation removed — penalized when a flip would break
//! other rows — and selected by the shared
//! [`knapsack::greedy_cover`](crate::knapsack::greedy_cover) routine (a
//! violated storage row *is* a covering knapsack over drop candidates).  If
//! repair fails at the root, a bounded LP **dive** fixes the most-integral
//! fractionals one at a time and retries.  The heuristic re-runs periodically
//! at search nodes on their LP points.
//!
//! ## Warm-started, parallel node evaluation
//!
//! Node evaluation is a pure function of `(model, bounds, parent basis)`
//! ([`evaluate_node`]): each node re-solves its LP from the parent's optimal
//! [`Basis`] with the bounded-variable [`DualSimplex`] (a bound pinch leaves
//! the parent basis dual feasible, so a child costs a handful of dual pivots
//! instead of a two-phase solve), falling back to a cold solve when the warm
//! path stalls or its point fails validation.  Per round, the
//! `SolveBudget::parallelism` best frontier nodes are evaluated concurrently
//! on scoped OS threads (the same sharding pattern as
//! `Inum::prepare_workload_parallel`) and their results are merged
//! *sequentially in selection order* through the [`SolveDriver`], so every
//! run is deterministic for a fixed `parallelism` and `parallelism = 1`
//! reproduces the serial search bit-for-bit.

use std::sync::Arc;

use crate::delta::DeltaModel;
use crate::driver::{CancelToken, SolveDriver, SolveProgress};
use crate::dual::DualSimplex;
use crate::knapsack;
use crate::model::{ConstrId, Model, Sense};
use crate::simplex::{Basis, LpResult, LpStatus, SimplexSolver};

pub use crate::driver::{relative_gap, GapPoint, MipStatus, SolveBudget};

/// Result of a MIP solve.
#[derive(Debug, Clone)]
pub struct MipResult {
    pub status: MipStatus,
    /// Best integral solution found (empty if none).
    pub x: Vec<f64>,
    pub objective: f64,
    /// Global lower bound at termination.
    pub bound: f64,
    /// Best proven relative gap at termination.
    pub gap: f64,
    pub nodes: usize,
    /// Cumulative simplex pivots across the root and node LPs (warm dual
    /// pivots and cold two-phase pivots alike); `pivots / nodes` is the
    /// per-node LP cost the warm start drives down.
    pub pivots: usize,
    /// From-scratch basis factorizations across every LP of the solve.
    pub refactorizations: usize,
    /// Devex reference-framework resets across every LP of the solve.
    pub devex_resets: usize,
    /// Cold two-phase LPs paid by strong branching.  Zero by construction
    /// on the warm path: probes re-solve from the node basis through the
    /// dual simplex and are *skipped* (not downgraded) when that fails.
    pub sb_cold_lps: usize,
    /// Cold two-phase LPs paid by the dive heuristic (same contract).
    pub dive_cold_lps: usize,
    /// Node LPs answered from the speculative-lookahead cache (idle workers
    /// pre-solving predicted children when the open frontier is thinner
    /// than `parallelism`).
    pub lookahead_hits: usize,
    /// Singular-basis breakdowns the solve recovered from instead of
    /// surfacing an error: a failed refactorization (or an ftran/pricing
    /// disagreement) forces a cold two-phase re-solve on the other LP
    /// kernel, and warm re-solves that went singular pay the same cold
    /// fallback (see [`LpStatus::Singular`]).
    pub factor_recoveries: usize,
    /// Incumbent/bound improvements over time.
    pub trace: Vec<GapPoint>,
}

impl MipResult {
    fn infeasible() -> Self {
        MipResult {
            status: MipStatus::Infeasible,
            x: Vec::new(),
            objective: f64::INFINITY,
            bound: f64::INFINITY,
            gap: f64::INFINITY,
            nodes: 0,
            pivots: 0,
            refactorizations: 0,
            devex_resets: 0,
            sb_cold_lps: 0,
            dive_cold_lps: 0,
            lookahead_hits: 0,
            factor_recoveries: 0,
            trace: Vec::new(),
        }
    }
}

/// Per-solve LP instrumentation, surfaced through [`MipResult`] (internal).
#[derive(Debug, Default, Clone, Copy)]
struct NodeStats {
    refactorizations: usize,
    devex_resets: usize,
    sb_cold_lps: usize,
    dive_cold_lps: usize,
    lookahead_hits: usize,
    factor_recoveries: usize,
}

impl NodeStats {
    /// Fold one LP's factorization/pricing counters into the totals.
    fn absorb(&mut self, lp: &LpResult) {
        self.refactorizations += lp.refactorizations;
        self.devex_resets += lp.devex_resets;
        self.factor_recoveries += lp.factor_recoveries;
    }

    fn apply(&self, out: &mut MipResult) {
        out.refactorizations = self.refactorizations;
        out.devex_resets = self.devex_resets;
        out.sb_cold_lps = self.sb_cold_lps;
        out.dive_cold_lps = self.dive_cold_lps;
        out.lookahead_hits = self.lookahead_hits;
        out.factor_recoveries = self.factor_recoveries;
    }
}

/// Solver options: the shared resource budget plus B&B-specific knobs.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Gap / time / node budget (shared semantics with every backend).
    pub budget: SolveBudget,
    /// A caller-proven valid lower bound on the binary optimum (e.g. the
    /// dual bound of a relaxation such as the storage-only projection).
    /// Raised into the driver before the root LP, so even a solve whose
    /// root relaxation hits the deadline reports a finite gap.
    pub known_bound: Option<f64>,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Strong-branch a variable until it has this many pseudo-cost
    /// observations in each direction (reliability branching).
    pub reliability: u32,
    /// Total strong-branching variable evaluations across the solve (each
    /// costs two bounded child LPs).
    pub strong_branch_budget: usize,
    /// Re-run the rounding heuristic every this many nodes (the root run is
    /// unconditional; large models run it at every node since repair is
    /// cheap next to their LPs).
    pub heuristic_period: usize,
    /// Strong branching is disabled above this variable count — on large
    /// models the bounded child LPs cost more than the better branching
    /// saves (pseudo-costs then learn from regular node solves only).
    pub strong_branch_max_vars: usize,
    /// Re-solve node LPs from the parent's optimal basis with the dual
    /// simplex (cold two-phase fallback when the warm path stalls or fails
    /// validation).  On by default; the bench harness turns it off to
    /// measure the cold-LP baseline.
    pub warm_start: bool,
    /// Cooperative cancellation: when the token fires, the solve stops at
    /// its next node boundary with [`MipStatus::TimeLimit`] (the budget's
    /// deadline brought forward to now).
    pub cancel: Option<CancelToken>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            budget: SolveBudget::default(),
            known_bound: None,
            int_tol: 1e-6,
            reliability: 1,
            strong_branch_budget: 24,
            heuristic_period: 16,
            strong_branch_max_vars: 400,
            warm_start: true,
            cancel: None,
        }
    }
}

impl SolveOptions {
    /// The paper's interactive default: terminate within 5% of optimal.
    pub fn within_5_percent() -> Self {
        SolveOptions { budget: SolveBudget::within(0.05), ..Default::default() }
    }
}

/// A search node: variable fixings layered over the root bounds.  `bound` is
/// the parent's LP objective (a valid lower bound for the node); `branch`
/// records the last fixing `(var, up, parent fraction)` for pseudo-cost
/// updates once the node's own LP is solved; `basis` is the parent's optimal
/// LP basis (shared by both children), the warm-start handle for the dual
/// re-solve.
#[derive(Debug, Clone)]
struct Node {
    bound: f64,
    fixings: Vec<(usize, bool)>,
    depth: usize,
    branch: Option<(usize, bool, f64)>,
    basis: Option<Arc<Basis>>,
}

impl Node {
    /// Materialize this node's variable bounds over fresh copies of the root
    /// bounds (all `[0, 1]` on a plain solve; pinched by the caller's
    /// pin/ban fixings on a warm re-solve).
    fn bounds(&self, root_lo: &[f64], root_hi: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut lo = root_lo.to_vec();
        let mut hi = root_hi.to_vec();
        self.apply_fixings(&mut lo, &mut hi, root_lo, root_hi);
        (lo, hi)
    }

    fn apply_fixings(&self, lo: &mut [f64], hi: &mut [f64], root_lo: &[f64], root_hi: &[f64]) {
        lo.copy_from_slice(root_lo);
        hi.copy_from_slice(root_hi);
        for &(j, v) in &self.fixings {
            lo[j] = if v { 1.0 } else { 0.0 };
            hi[j] = lo[j];
        }
    }
}

/// Evaluate one node's LP relaxation — a pure function of the model, the
/// node's bounds and the parent basis, safe to run on a worker thread.
/// Warm path first (dual re-solve from the parent basis), with a cold
/// two-phase fallback when the warm solve is unavailable, stalls without the
/// deadline having passed, or returns a point that fails validation against
/// the model rows (the node bound must stay sound even under numerical
/// drift).
#[allow(clippy::too_many_arguments)]
fn evaluate_node(
    model: &Model,
    lp_solver: &SimplexSolver,
    dual: &DualSimplex,
    warm_start: bool,
    node: &Node,
    root_lo: &[f64],
    root_hi: &[f64],
) -> LpResult {
    let (lo, hi) = node.bounds(root_lo, root_hi);
    if warm_start {
        if let Some(basis) = &node.basis {
            if let Some(r) = dual.resolve(model, &lo, &hi, basis) {
                match r.status {
                    LpStatus::Optimal if warm_point_valid(model, &r.x, &lo, &hi) => return r,
                    LpStatus::Infeasible => return r,
                    LpStatus::IterLimit
                        if dual.deadline.is_some_and(|dl| std::time::Instant::now() >= dl) =>
                    {
                        return r;
                    }
                    // Stalled, singular, or invalid: pay the cold solve
                    // below, keeping the warm pivots in the accounting via
                    // `iterations` — and counting a singular warm basis as
                    // a recovered factorization failure.
                    _ => {
                        let mut cold = lp_solver.solve(model, &lo, &hi);
                        cold.iterations += r.iterations;
                        cold.factor_recoveries +=
                            r.factor_recoveries + usize::from(r.status == LpStatus::Singular);
                        return cold;
                    }
                }
            }
        }
    }
    lp_solver.solve(model, &lo, &hi)
}

/// Cheap soundness check on a warm-optimal point: every row satisfied and
/// every variable inside its (pinched) bounds, within a loose tolerance.
fn warm_point_valid(model: &Model, x: &[f64], lo: &[f64], hi: &[f64]) -> bool {
    const TOL: f64 = 1e-5;
    x.iter().zip(lo.iter().zip(hi)).all(|(&v, (&l, &h))| v >= l - TOL && v <= h + TOL)
        && model.feasible(x, TOL)
}

/// Per-variable branching history: average objective degradation per unit of
/// fraction, per direction.
#[derive(Debug, Clone)]
struct PseudoCosts {
    up: Vec<f64>,
    dn: Vec<f64>,
    n_up: Vec<u32>,
    n_dn: Vec<u32>,
}

impl PseudoCosts {
    fn new(n: usize) -> Self {
        PseudoCosts { up: vec![0.0; n], dn: vec![0.0; n], n_up: vec![0; n], n_dn: vec![0; n] }
    }

    /// Grow the table to `n` variables (new entries start unobserved); used
    /// when a [`ResolveContext`] table is reused after the model gained
    /// variables.
    fn ensure_len(&mut self, n: usize) {
        if self.up.len() < n {
            self.up.resize(n, 0.0);
            self.dn.resize(n, 0.0);
            self.n_up.resize(n, 0);
            self.n_dn.resize(n, 0);
        }
    }

    /// Fold one observed per-unit degradation into the running mean.
    fn record(&mut self, j: usize, up: bool, per_unit: f64) {
        let (sum, cnt) = if up {
            (&mut self.up[j], &mut self.n_up[j])
        } else {
            (&mut self.dn[j], &mut self.n_dn[j])
        };
        *cnt += 1;
        *sum += (per_unit - *sum) / f64::from(*cnt);
    }

    fn reliable(&self, j: usize, threshold: u32) -> bool {
        self.n_up[j] >= threshold && self.n_dn[j] >= threshold
    }

    /// Mean initialized pseudo-costs — the fallback estimate for variables
    /// never branched on.
    fn global_means(&self) -> (f64, f64) {
        let mean = |sums: &[f64], counts: &[u32]| {
            let mut total = 0.0;
            let mut n = 0usize;
            for (s, c) in sums.iter().zip(counts) {
                if *c > 0 {
                    total += *s;
                    n += 1;
                }
            }
            if n > 0 {
                total / n as f64
            } else {
                1.0
            }
        };
        (mean(&self.up, &self.n_up), mean(&self.dn, &self.n_dn))
    }

    /// Product score of branching on `j` at fraction `frac`.
    fn score(&self, j: usize, frac: f64, means: (f64, f64)) -> f64 {
        let up = if self.n_up[j] > 0 { self.up[j] } else { means.0 };
        let dn = if self.n_dn[j] > 0 { self.dn[j] } else { means.1 };
        (up * (1.0 - frac)).max(1e-9) * (dn * frac).max(1e-9)
    }
}

/// Warm-start state carried between interactive re-solves of one (mutating)
/// model — the `ResolveContext` of the paper's §4.2 re-optimization loop:
///
/// * the **root LP basis** of the previous solve, re-used by the dual
///   simplex after RHS or bound deltas (both leave it dual feasible) and
///   *extended* after row appends (each new row's slack enters as basic,
///   which keeps the old duals — and dual feasibility — intact);
/// * the **last incumbent**, offered (after repair against the mutated
///   rows and clamped to the current fixings) as the next solve's seed;
/// * the accumulated **pseudo-cost table**, so branching stays informed
///   across re-solves instead of re-learning per question.
///
/// Obtain one with [`ResolveContext::new`] and thread it through
/// [`BranchBound::resolve_with_progress`]; the context invalidates its own
/// basis when the model's structure version moved (row relaxed) and pays
/// one cold root LP in that case.
#[derive(Debug, Default)]
pub struct ResolveContext {
    basis: Option<Arc<Basis>>,
    incumbent: Option<Vec<f64>>,
    pseudo: Option<PseudoCosts>,
    /// `DeltaModel::structure_version` the basis was snapshotted under.
    version: u64,
    /// `DeltaModel::objective_version` the basis was snapshotted under; a
    /// moved objective keeps the basis primal feasible but dual-stale, so
    /// the next root restarts through the primal simplex instead.
    obj_version: u64,
    n_vars: usize,
    /// Constraint count the basis was snapshotted under; a larger current
    /// count with the version unmoved means rows were appended, so the
    /// basis is extended rather than dropped.
    n_rows: usize,
    resolves: usize,
}

impl ResolveContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Is a warm root basis available for the next re-solve?
    pub fn has_basis(&self) -> bool {
        self.basis.is_some()
    }

    /// Number of solves served through this context so far.
    pub fn resolves(&self) -> usize {
        self.resolves
    }

    /// Drop the warm state (basis, seed, pseudo-costs); the next resolve
    /// runs as a cold solve.
    pub fn reset(&mut self) {
        *self = ResolveContext::default();
    }
}

/// Warm inputs of one engine run (internal).
struct WarmInputs<'a> {
    root_lo: &'a [f64],
    root_hi: &'a [f64],
    basis: Option<&'a Basis>,
    pseudo: Option<PseudoCosts>,
    /// The objective moved since the basis snapshot: route the root through
    /// [`SimplexSolver::warm_solve`] (phase-2 primal restart) — a dual
    /// re-solve would price with stale reduced costs and is unsound.
    primal_root: bool,
}

impl<'a> WarmInputs<'a> {
    fn cold(lo: &'a [f64], hi: &'a [f64]) -> WarmInputs<'a> {
        WarmInputs { root_lo: lo, root_hi: hi, basis: None, pseudo: None, primal_root: false }
    }
}

/// What one engine run leaves behind for the next (internal).
struct EngineArtifacts {
    root_basis: Option<Basis>,
    pseudo: PseudoCosts,
}

/// Best-first B&B solver.
#[derive(Debug, Default)]
pub struct BranchBound {
    pub simplex: SimplexSolver,
}

impl BranchBound {
    pub fn new() -> Self {
        BranchBound::default()
    }

    /// Feasibility check of the LP relaxation (the paper's Solver line 1).
    pub fn is_feasible(&self, model: &Model) -> bool {
        let n = model.n_vars();
        self.simplex.is_feasible(model, &vec![0.0; n], &vec![1.0; n])
    }

    /// Solve `model` to binary optimality (or to the configured budget),
    /// streaming every incumbent/bound improvement through `on_progress`
    /// (the improving solution rides along on incumbent events).
    pub fn solve_with_progress(
        &self,
        model: &Model,
        opts: &SolveOptions,
        on_progress: impl FnMut(&SolveProgress, Option<&Vec<f64>>),
    ) -> MipResult {
        self.solve_seeded_with_progress(model, opts, None, on_progress)
    }

    /// [`BranchBound::solve_with_progress`] warm-started from a caller-known
    /// (possibly infeasible) point: the seed is repaired to feasibility and
    /// offered as the first incumbent.  CoPhy seeds rich-constraint solves
    /// with the Lagrangian backend's storage-only solution.
    pub fn solve_seeded_with_progress(
        &self,
        model: &Model,
        opts: &SolveOptions,
        seed: Option<&[f64]>,
        on_progress: impl FnMut(&SolveProgress, Option<&Vec<f64>>),
    ) -> MipResult {
        let n = model.n_vars();
        let lo = vec![0.0; n];
        let hi = vec![1.0; n];
        self.solve_engine(model, opts, seed, WarmInputs::cold(&lo, &hi), on_progress).0
    }

    /// Re-solve a previously solved (and since mutated) model from its
    /// [`ResolveContext`]: the root LP restarts from the last solve's basis
    /// with the dual simplex (sound after any combination of
    /// [`crate::ModelDelta::SetRhs`]/`FixVar`/`FreeVar` deltas — neither RHS
    /// nor bounds enter the reduced costs), the previous incumbent is
    /// clamped to the current fixings, repaired against the mutated rows and
    /// offered as the seed, and branching continues from the accumulated
    /// pseudo-cost table.  Row additions (`AddRow`) *extend* the basis —
    /// each appended row's slack enters as basic, so the dual simplex only
    /// repairs the new rows' violations — while `RelaxRow` drops it (that
    /// re-solve pays one cold root LP); seed and pseudo-costs survive both.
    /// An objective edit (`SetObjective`, the λ step of a Pareto sweep)
    /// keeps the basis but reroutes the root through the *primal* simplex's
    /// phase-2 restart: the old point stays primal feasible while its
    /// reduced costs go stale, the exact mirror of the RHS/bound case.
    pub fn resolve(
        &self,
        dm: &DeltaModel,
        opts: &SolveOptions,
        ctx: &mut ResolveContext,
    ) -> MipResult {
        self.resolve_with_progress(dm, opts, ctx, |_, _| {})
    }

    /// [`BranchBound::resolve`] streaming every incumbent/bound improvement
    /// through the unified [`SolveProgress`] contract.
    pub fn resolve_with_progress(
        &self,
        dm: &DeltaModel,
        opts: &SolveOptions,
        ctx: &mut ResolveContext,
        on_progress: impl FnMut(&SolveProgress, Option<&Vec<f64>>),
    ) -> MipResult {
        let model = dm.model();
        let n = model.n_vars();
        let n_rows = model.n_constraints();
        let (lo, hi) = dm.bounds();
        let structure_ok = ctx.version == dm.structure_version() && ctx.n_vars == n;
        if structure_ok && n_rows > ctx.n_rows {
            // Rows were appended since the snapshot (`AddRow` keeps the
            // version): extend the basis in place — the new rows' slacks
            // (pinned artificials for equalities) enter as basic, so the
            // dual-simplex root stays warm and only repairs the violations
            // the new rows introduce.
            ctx.basis = ctx.basis.take().and_then(|b| b.extended_to(model).map(Arc::new));
            ctx.n_rows = n_rows;
        }
        let basis_fits = structure_ok && ctx.n_rows == n_rows;
        let basis = if basis_fits { ctx.basis.clone() } else { None };
        // Seed from the previous incumbent, clamped into the current pin/ban
        // box so the repair starts from a bound-respecting point.
        let seed: Option<Vec<f64>> = ctx.incumbent.as_ref().filter(|x| x.len() == n).map(|x| {
            x.iter().zip(lo.iter().zip(&hi)).map(|(&v, (&l, &h))| v.clamp(l, h)).collect()
        });
        let mut pseudo = ctx.pseudo.take();
        if let Some(pc) = &mut pseudo {
            pc.ensure_len(n);
        }
        let warm = WarmInputs {
            root_lo: &lo,
            root_hi: &hi,
            basis: basis.as_deref(),
            pseudo,
            primal_root: ctx.obj_version != dm.objective_version(),
        };
        let (result, artifacts) =
            self.solve_engine(model, opts, seed.as_deref(), warm, on_progress);
        ctx.pseudo = Some(artifacts.pseudo);
        match artifacts.root_basis {
            Some(b) => ctx.basis = Some(Arc::new(b)),
            // No fresh optimal root (deadline inside the root LP): keep the
            // old basis only while it still fits the model's structure.
            None if !basis_fits => ctx.basis = None,
            None => {}
        }
        ctx.version = dm.structure_version();
        ctx.obj_version = dm.objective_version();
        ctx.n_vars = n;
        ctx.n_rows = n_rows;
        if !result.x.is_empty() {
            ctx.incumbent = Some(result.x.clone());
        }
        ctx.resolves += 1;
        result
    }

    /// The shared search engine behind [`BranchBound::solve_seeded_with_progress`]
    /// and [`BranchBound::resolve_with_progress`]: root bounds carry the
    /// caller's pin/ban fixings, `warm.basis` (if any) warm-starts the root
    /// LP through the dual simplex, and `warm.pseudo` (if any) continues an
    /// earlier solve's branching history.  Returns the result plus the
    /// artifacts (fresh root basis, pseudo-cost table) the next re-solve
    /// reuses.
    fn solve_engine(
        &self,
        model: &Model,
        opts: &SolveOptions,
        seed: Option<&[f64]>,
        warm: WarmInputs<'_>,
        on_progress: impl FnMut(&SolveProgress, Option<&Vec<f64>>),
    ) -> (MipResult, EngineArtifacts) {
        let n = model.n_vars();
        let (root_lo, root_hi) = (warm.root_lo, warm.root_hi);
        let mut driver = SolveDriver::with_progress(opts.budget, on_progress);
        driver.set_cancel(opts.cancel.clone());
        // Arm every LP with the wall-clock deadline so one big relaxation
        // cannot blow through the budget.
        let lp_solver = SimplexSolver {
            deadline: opts.budget.time_limit.map(|tl| std::time::Instant::now() + tl),
            ..self.simplex.clone()
        };
        let mut lo = root_lo.to_vec();
        let mut hi = root_hi.to_vec();
        let mut stats = NodeStats::default();
        let mut pc = warm.pseudo.unwrap_or_else(|| PseudoCosts::new(n));
        pc.ensure_len(n);
        if let Some(kb) = opts.known_bound {
            driver.raise_bound(kb);
        }

        // Root LP: from the caller's basis via the dual simplex when one is
        // available (an interactive re-solve after RHS/bound deltas), cold
        // two-phase otherwise — or as the fallback when the warm path
        // stalls, its point fails validation, or it claims infeasibility
        // (dual unboundedness on a stale near-degenerate basis can be
        // numerical drift, and a root infeasibility verdict aborts the
        // whole solve, so it is only trusted after a cold confirmation).
        let root = match warm.basis {
            Some(basis) if warm.primal_root => {
                // The objective moved since the snapshot: the basis point is
                // still primal feasible, so restart phase 2 of the primal
                // simplex from it (the dual path would price with stale
                // reduced costs).  Any failure falls back to a cold solve.
                match lp_solver.warm_solve(model, root_lo, root_hi, basis) {
                    Some(r) => match r.status {
                        LpStatus::Optimal if warm_point_valid(model, &r.x, root_lo, root_hi) => r,
                        LpStatus::IterLimit
                            if lp_solver
                                .deadline
                                .is_some_and(|dl| std::time::Instant::now() >= dl) =>
                        {
                            r
                        }
                        _ => {
                            let mut cold = lp_solver.solve(model, root_lo, root_hi);
                            cold.iterations += r.iterations;
                            cold.factor_recoveries +=
                                r.factor_recoveries + usize::from(r.status == LpStatus::Singular);
                            cold
                        }
                    },
                    None => lp_solver.solve(model, root_lo, root_hi),
                }
            }
            Some(basis) => {
                let dual_root = DualSimplex {
                    max_iters: lp_solver.max_iters,
                    tol: lp_solver.tol,
                    deadline: lp_solver.deadline,
                    engine: lp_solver.engine,
                };
                match dual_root.resolve(model, root_lo, root_hi, basis) {
                    Some(r) => match r.status {
                        LpStatus::Optimal if warm_point_valid(model, &r.x, root_lo, root_hi) => r,
                        LpStatus::IterLimit
                            if lp_solver
                                .deadline
                                .is_some_and(|dl| std::time::Instant::now() >= dl) =>
                        {
                            r
                        }
                        _ => {
                            let mut cold = lp_solver.solve(model, root_lo, root_hi);
                            cold.iterations += r.iterations;
                            cold.factor_recoveries +=
                                r.factor_recoveries + usize::from(r.status == LpStatus::Singular);
                            cold
                        }
                    },
                    None => lp_solver.solve(model, root_lo, root_hi),
                }
            }
            None => lp_solver.solve(model, root_lo, root_hi),
        };
        driver.add_pivots(root.iterations);
        stats.absorb(&root);
        let root_basis_out = root.basis.clone();
        let artifacts =
            |pc: PseudoCosts| EngineArtifacts { root_basis: root_basis_out, pseudo: pc };
        match root.status {
            LpStatus::Infeasible => {
                let mut out = MipResult::infeasible();
                stats.apply(&mut out);
                return (out, artifacts(pc));
            }
            LpStatus::Unbounded => {
                // Binary variables are bounded; an unbounded relaxation means
                // a modeling error. Surface it loudly.
                panic!("LP relaxation of a BIP cannot be unbounded");
            }
            LpStatus::IterLimit | LpStatus::Singular => {
                // Out of time inside the root LP — or both kernels went
                // singular on it, which exhausts the recovery ladder:
                // salvage what the primal heuristics can build from the
                // seed / partial point.  The caller's known bound (if any)
                // keeps the reported gap finite even on this path.
                for start in [seed.unwrap_or(&root.x), &root.x as &[f64]] {
                    if let Some((obj, x)) = round_and_repair(
                        model,
                        start,
                        RoundMode::Nearest,
                        opts.int_tol,
                        root_lo,
                        root_hi,
                    ) {
                        driver.offer_incumbent(obj, x);
                        break;
                    }
                }
                let r = driver.finish();
                let mut out = MipResult::infeasible();
                out.status = MipStatus::TimeLimit;
                out.bound = r.bound;
                out.pivots = r.pivots;
                if let Some((obj, x)) = r.incumbent {
                    out.objective = obj;
                    out.x = x;
                    out.gap = r.gap;
                    out.trace = r.trace;
                }
                stats.apply(&mut out);
                return (out, artifacts(pc));
            }
            LpStatus::Optimal => {}
        }
        driver.raise_bound(root.objective);

        // A warm re-solve after one bound pinch should cost a handful of
        // dual pivots; cap its budget well below the primal's so a
        // degenerate or cycling re-solve fails fast to the cold fallback
        // instead of burning the full pivot budget first (the dual loop has
        // no Bland-style anti-cycling switch).
        let dual = DualSimplex {
            max_iters: (4 * model.n_constraints() + 256).min(lp_solver.max_iters),
            tol: lp_solver.tol,
            deadline: lp_solver.deadline,
            engine: lp_solver.engine,
        };

        // Root primal: the caller's seed first (repaired to feasibility),
        // then LP rounding + greedy repair, then a bounded dive if the cheap
        // repairs fail.  This is what turns "gap = ∞ forever" into an
        // anytime incumbent on rich constraint sets.
        if let Some(seed) = seed {
            if let Some((obj, x)) =
                round_and_repair(model, seed, RoundMode::Nearest, opts.int_tol, root_lo, root_hi)
            {
                driver.offer_incumbent(obj, x);
            }
        }
        for mode in [RoundMode::Nearest, RoundMode::Floor] {
            if let Some((obj, x)) =
                round_and_repair(model, &root.x, mode, opts.int_tol, root_lo, root_hi)
            {
                driver.offer_incumbent(obj, x);
                break;
            }
        }
        if !driver.has_incumbent() {
            if let Some((obj, x)) = self.dive(
                model,
                &lp_solver,
                &dual,
                opts.warm_start,
                root.basis.as_ref(),
                &root.x,
                opts,
                &driver,
                root_lo,
                root_hi,
                &mut stats,
            ) {
                driver.offer_incumbent(obj, x);
            }
        }

        // Frontier ordered by bound (best-first); the root's LP is reused.
        let mut frontier: Vec<Node> = vec![Node {
            bound: root.objective,
            fixings: Vec::new(),
            depth: 0,
            branch: None,
            basis: None,
        }];
        let mut root_lp = Some(root);
        let mut sb_remaining =
            if n <= opts.strong_branch_max_vars { opts.strong_branch_budget } else { 0 };
        let heuristic_period = match opts.heuristic_period {
            0 => 0,
            p if n > 500 => p.min(1),
            p => p,
        };
        let parallelism = opts.budget.parallelism.max(1);
        // Speculative lookahead (work stealing): when a round selects fewer
        // nodes than `parallelism`, the idle workers pre-solve the children
        // the pseudo-costs predict for this round's nodes.  Evaluation is
        // pure, so a cached result is identical to the one the main loop
        // would compute; `parallelism == 1` never touches the cache and
        // stays bit-for-bit serial.
        let mut spec_cache: std::collections::HashMap<Vec<(usize, bool)>, LpResult> =
            std::collections::HashMap::new();

        let mut status: Option<MipStatus> = None;
        // Subtrees abandoned because their LP stalled on the pivot cap: the
        // global bound must never rise above the cheapest of them, and the
        // search can no longer prove optimality by exhaustion.
        let mut stalled_nodes = 0usize;
        let mut stalled_bound_cap = f64::INFINITY;
        'search: loop {
            // Select up to `parallelism` frontier nodes, best-first.  Only
            // the first survivor may raise the global bound: it is the
            // cheapest open node, while later batch members merely share its
            // round (their own bounds still back open siblings).
            let mut batch: Vec<Node> = Vec::with_capacity(parallelism);
            while batch.len() < parallelism {
                let Some(pos) = best_node(&frontier) else { break };
                let node = frontier.swap_remove(pos);
                if batch.is_empty() {
                    driver.raise_bound(node.bound.min(stalled_bound_cap));
                    if let Some(stop) = driver.stop_status() {
                        status = Some(stop);
                        break 'search;
                    }
                }
                // Prune against the incumbent.
                if node.bound >= driver.incumbent_objective() - 1e-9 {
                    continue;
                }
                batch.push(node);
            }
            if batch.is_empty() {
                break;
            }

            // Evaluate the batch: in-line when it is a single node (the
            // serial path, also reusing the root LP), scoped OS threads
            // otherwise.  Evaluation is pure, so thread scheduling cannot
            // change any result — only the merge order below matters, and
            // that is the deterministic selection order.
            let evals: Vec<LpResult> = if batch.len() == 1 {
                let node = &batch[0];
                if node.fixings.is_empty() && root_lp.is_some() {
                    // The root's pivots were accounted when its LP was
                    // solved; zero them (and the factorization counters)
                    // so the merge loop does not count them twice.
                    let mut lp = root_lp.take().expect("checked");
                    lp.iterations = 0;
                    lp.refactorizations = 0;
                    lp.devex_resets = 0;
                    lp.factor_recoveries = 0;
                    vec![lp]
                } else if parallelism > 1 && spec_cache.contains_key(&node.fixings) {
                    stats.lookahead_hits += 1;
                    vec![spec_cache.remove(&node.fixings).expect("checked")]
                } else {
                    vec![evaluate_node(
                        model,
                        &lp_solver,
                        &dual,
                        opts.warm_start,
                        node,
                        root_lo,
                        root_hi,
                    )]
                }
            } else {
                // Consume speculative hits first; only the misses are
                // re-evaluated on the worker threads.
                let mut cached: Vec<Option<LpResult>> =
                    batch.iter().map(|node| spec_cache.remove(&node.fixings)).collect();
                stats.lookahead_hits += cached.iter().filter(|c| c.is_some()).count();
                std::thread::scope(|s| {
                    let handles: Vec<_> = batch
                        .iter()
                        .zip(&cached)
                        .map(|(node, hit)| {
                            if hit.is_some() {
                                return None;
                            }
                            let (lp_solver, dual) = (&lp_solver, &dual);
                            Some(s.spawn(move || {
                                evaluate_node(
                                    model,
                                    lp_solver,
                                    dual,
                                    opts.warm_start,
                                    node,
                                    root_lo,
                                    root_hi,
                                )
                            }))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .zip(cached.iter_mut())
                        .map(|(h, hit)| match h {
                            Some(h) => h.join().expect("node LP shard"),
                            None => hit.take().expect("cached lookahead"),
                        })
                        .collect()
                })
            };

            // Work stealing: pre-solve predicted children with the workers
            // this round left idle.  Pivot/factorization counters of a
            // speculative LP are accounted only when (and if) the result is
            // consumed at a later merge, so discarded speculation never
            // skews the reported effort.
            let spare = parallelism.saturating_sub(batch.len());
            if spare > 0 && driver.stop_status().is_none() {
                let mut spec: Vec<Node> = Vec::new();
                for (node, lp) in batch.iter().zip(&evals) {
                    if spec.len() >= spare {
                        break;
                    }
                    if lp.status != LpStatus::Optimal {
                        continue;
                    }
                    let fracs = fractionals(&lp.x, opts.int_tol);
                    if fracs.is_empty() {
                        continue;
                    }
                    let j = predict_branch_var(&fracs, &pc);
                    let frac = lp.x[j].fract();
                    let b = lp.basis.clone().map(Arc::new);
                    for v in [true, false] {
                        if spec.len() >= spare {
                            break;
                        }
                        let mut fx = node.fixings.clone();
                        fx.push((j, v));
                        if spec_cache.contains_key(&fx) {
                            continue;
                        }
                        spec.push(Node {
                            bound: lp.objective,
                            fixings: fx,
                            depth: node.depth + 1,
                            branch: Some((j, v, frac)),
                            basis: b.clone(),
                        });
                    }
                }
                if !spec.is_empty() {
                    let results: Vec<LpResult> = std::thread::scope(|s| {
                        let handles: Vec<_> = spec
                            .iter()
                            .map(|node| {
                                let (lp_solver, dual) = (&lp_solver, &dual);
                                s.spawn(move || {
                                    evaluate_node(
                                        model,
                                        lp_solver,
                                        dual,
                                        opts.warm_start,
                                        node,
                                        root_lo,
                                        root_hi,
                                    )
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("lookahead LP shard")).collect()
                    });
                    for (node, r) in spec.into_iter().zip(results) {
                        spec_cache.insert(node.fixings, r);
                    }
                    // Bound the cache: stale predictions accumulate when the
                    // search keeps mispredicting; restart cheap.
                    if spec_cache.len() > 512 {
                        spec_cache.clear();
                    }
                }
            }

            // Merge sequentially in selection order through the driver.
            for (idx, (node, lp)) in batch.into_iter().zip(evals).enumerate() {
                // Between batch members (never before the first, so the
                // serial path keeps its exact per-round semantics), honor
                // the budget: without this a wide batch would overshoot
                // node/gap/time limits by up to `parallelism − 1` nodes.
                if idx > 0 {
                    if let Some(stop) = driver.stop_status() {
                        status = Some(stop);
                        break 'search;
                    }
                }
                driver.tick();
                driver.add_pivots(lp.iterations);
                stats.absorb(&lp);

                if lp.status == LpStatus::Infeasible {
                    continue;
                }
                if lp.status == LpStatus::Singular {
                    // Both kernels went singular on this node's LP, so its
                    // objective is unusable.  Treat it exactly like a pivot
                    // stall: skip the node (the parent bound stays valid via
                    // the frontier) and remember the search is no longer
                    // exhaustive.
                    stalled_nodes += 1;
                    stalled_bound_cap = stalled_bound_cap.min(node.bound);
                    continue;
                }
                if lp.status == LpStatus::IterLimit {
                    // The LP stalled, so its objective is not a sound bound.
                    // Deadline hit → stop with the best-so-far; pivot-cap
                    // stall without a deadline → skip just this node (its
                    // parent bound stays valid via the frontier) and keep
                    // searching, but remember the search is no longer
                    // exhaustive.
                    let deadline_passed =
                        lp_solver.deadline.is_some_and(|dl| std::time::Instant::now() >= dl);
                    if deadline_passed {
                        status = Some(MipStatus::TimeLimit);
                        break 'search;
                    }
                    stalled_nodes += 1;
                    stalled_bound_cap = stalled_bound_cap.min(node.bound);
                    continue;
                }
                // Pseudo-cost update from the branch that created this node.
                if let Some((j, up, frac)) = node.branch {
                    let per_unit = (lp.objective - node.bound).max(0.0)
                        / if up { (1.0 - frac).max(1e-6) } else { frac.max(1e-6) };
                    pc.record(j, up, per_unit);
                }
                if lp.objective >= driver.incumbent_objective() - 1e-9 {
                    continue;
                }

                let fracs = fractionals(&lp.x, opts.int_tol);
                if fracs.is_empty() {
                    driver.offer_incumbent(lp.objective, lp.x.clone());
                    continue;
                }
                // Periodic node heuristic on the node's LP point.
                if heuristic_period > 0 && driver.ticks() % heuristic_period == 0 {
                    if let Some((obj, x)) = round_and_repair(
                        model,
                        &lp.x,
                        RoundMode::Nearest,
                        opts.int_tol,
                        root_lo,
                        root_hi,
                    ) {
                        driver.offer_incumbent(obj, x);
                    }
                }

                // Strong branching probes from this node's bounds.
                node.apply_fixings(&mut lo, &mut hi, root_lo, root_hi);
                let j = select_branch_var(
                    model,
                    opts,
                    &lp_solver,
                    &dual,
                    if opts.warm_start { lp.basis.as_ref() } else { None },
                    &mut lo,
                    &mut hi,
                    lp.objective,
                    &fracs,
                    &mut pc,
                    &mut sb_remaining,
                    &mut stats,
                );
                let frac = lp.x[j].fract();
                let child_basis = lp.basis.map(Arc::new);
                for v in [true, false] {
                    let mut fx = node.fixings.clone();
                    fx.push((j, v));
                    frontier.push(Node {
                        bound: lp.objective,
                        fixings: fx,
                        depth: node.depth + 1,
                        branch: Some((j, v, frac)),
                        basis: child_basis.clone(),
                    });
                }
            }
        }

        if status.is_none() {
            if stalled_nodes == 0 {
                // Search exhausted: the incumbent (if any) is optimal.
                driver.close_exhausted();
            } else {
                // Some subtrees were abandoned on stalled LPs: the bound
                // (capped at the cheapest abandoned subtree) stands, but
                // optimality cannot be claimed.
                status = Some(MipStatus::NodeLimit);
            }
        }

        let r = driver.finish();
        let mut result = match r.incumbent {
            None => {
                // No integral point found. If the search was exhausted the
                // BIP is integrally infeasible.
                let mut out = MipResult::infeasible();
                out.nodes = r.ticks;
                out.pivots = r.pivots;
                if let Some(st) = status {
                    out.status = st;
                    out.bound = r.bound;
                }
                out
            }
            Some((obj, x)) => MipResult {
                status: if r.gap <= 1e-9 {
                    MipStatus::Optimal
                } else {
                    status.unwrap_or(MipStatus::Optimal)
                },
                x,
                objective: obj,
                bound: r.bound,
                gap: r.gap,
                nodes: r.ticks,
                pivots: r.pivots,
                trace: r.trace,
                ..MipResult::infeasible()
            },
        };
        stats.apply(&mut result);
        (result, artifacts(pc))
    }

    /// Solve without progress consumers.
    pub fn solve(&self, model: &Model, opts: &SolveOptions) -> MipResult {
        self.solve_with_progress(model, opts, |_, _| {})
    }

    /// Bounded LP dive: fix the most-integral fractional variable to its
    /// rounded value, re-solve, and retry the cheap repair at every level.
    /// One flip is allowed per level when the dive LP goes infeasible.
    ///
    /// When warm-starting with a root `basis`, every dive level re-solves
    /// through the [`DualSimplex`] from the previous level's basis (a bound
    /// pinch keeps it dual feasible), chaining bases down the dive; if a
    /// warm re-solve stalls the dive aborts rather than paying a cold
    /// two-phase LP, so `dive_cold_lps` stays zero on the warm path.
    #[allow(clippy::too_many_arguments)]
    fn dive<F>(
        &self,
        model: &Model,
        lp_solver: &SimplexSolver,
        dual: &DualSimplex,
        warm_start: bool,
        root_basis: Option<&Basis>,
        root_x: &[f64],
        opts: &SolveOptions,
        driver: &SolveDriver<'_, F>,
        root_lo: &[f64],
        root_hi: &[f64],
        stats: &mut NodeStats,
    ) -> Option<(f64, Vec<f64>)> {
        const MAX_DIVE: usize = 24;
        let mut lo = root_lo.to_vec();
        let mut hi = root_hi.to_vec();
        let mut x = root_x.to_vec();
        let mut basis = if warm_start { root_basis.cloned() } else { None };
        for _ in 0..MAX_DIVE {
            if driver.stop_status() == Some(MipStatus::TimeLimit) {
                return None;
            }
            if let Some(found) =
                round_and_repair(model, &x, RoundMode::Nearest, opts.int_tol, root_lo, root_hi)
            {
                return Some(found);
            }
            // Most integral fractional variable.
            let (j, frac) = fractionals(&x, opts.int_tol)
                .into_iter()
                .min_by(|a, b| (a.1 - a.1.round()).abs().total_cmp(&(b.1 - b.1.round()).abs()))?;
            let v = frac >= 0.5;
            let mut fixed = false;
            for val in [if v { 1.0 } else { 0.0 }, if v { 0.0 } else { 1.0 }] {
                lo[j] = val;
                hi[j] = val;
                let lp = match &basis {
                    Some(b) => match dual.resolve(model, &lo, &hi, b) {
                        Some(r) => {
                            stats.absorb(&r);
                            match r.status {
                                // Warm verdicts only; a stalled warm
                                // re-solve aborts the dive instead of
                                // falling back to a cold LP.
                                LpStatus::Optimal | LpStatus::Infeasible => r,
                                _ => return None,
                            }
                        }
                        None => return None,
                    },
                    None => {
                        stats.dive_cold_lps += 1;
                        let r = lp_solver.solve(model, &lo, &hi);
                        stats.absorb(&r);
                        r
                    }
                };
                if lp.status == LpStatus::Optimal {
                    x = lp.x;
                    if basis.is_some() {
                        // Chain to the child basis; abort rather than
                        // degrade to cold if the snapshot is missing.
                        basis = Some(lp.basis?);
                    }
                    fixed = true;
                    break;
                }
                // Infeasible at this value: flip once (re-solving from the
                // same pre-pinch basis), then give up on this path.
            }
            if !fixed {
                return None;
            }
        }
        None
    }
}

/// Reliability-initialized pseudo-cost branching: pick the fractional
/// variable with the best degradation-product score, strong-branching
/// the most fractional unreliable candidates while the strong-branch
/// budget lasts.
///
/// With a `node_basis` (the warm path), each probe re-solves the pinched
/// child from the node's own optimal basis through the [`DualSimplex`] — a
/// handful of dual pivots instead of a bounded two-phase LP.  Only warm
/// Optimal/Infeasible verdicts feed the pseudo-costs; a stalled probe is
/// *skipped*, never downgraded to a cold solve, so `sb_cold_lps` is zero by
/// construction whenever the warm path is on.
#[allow(clippy::too_many_arguments)]
fn select_branch_var(
    model: &Model,
    opts: &SolveOptions,
    lp_solver: &SimplexSolver,
    dual: &DualSimplex,
    node_basis: Option<&Basis>,
    lo: &mut [f64],
    hi: &mut [f64],
    node_obj: f64,
    fracs: &[(usize, f64)],
    pc: &mut PseudoCosts,
    sb_remaining: &mut usize,
    stats: &mut NodeStats,
) -> usize {
    if *sb_remaining > 0 {
        // Most fractional candidates first (closest to 0.5).
        let mut cands: Vec<(usize, f64)> = fracs.to_vec();
        cands.sort_by(|a, b| (a.1 - 0.5).abs().total_cmp(&(b.1 - 0.5).abs()));
        let big = 1e6 * (1.0 + node_obj.abs());
        let sb_simplex = SimplexSolver { max_iters: 2_000, ..lp_solver.clone() };
        for &(j, frac) in cands.iter().take(8) {
            if *sb_remaining == 0 {
                break;
            }
            if pc.reliable(j, opts.reliability) {
                continue;
            }
            *sb_remaining -= 1;
            for up in [false, true] {
                let (plo, phi) = (lo[j], hi[j]);
                lo[j] = if up { 1.0 } else { 0.0 };
                hi[j] = lo[j];
                let denom = if up { (1.0 - frac).max(1e-6) } else { frac.max(1e-6) };
                let per_unit = match node_basis {
                    Some(b) => match dual.resolve(model, lo, hi, b) {
                        Some(r) => {
                            stats.absorb(&r);
                            match r.status {
                                LpStatus::Infeasible => Some(big),
                                LpStatus::Optimal => {
                                    Some((r.objective - node_obj).max(0.0) / denom)
                                }
                                // Stalled warm probe: record nothing.
                                _ => None,
                            }
                        }
                        None => None,
                    },
                    None => {
                        stats.sb_cold_lps += 1;
                        let child = sb_simplex.solve(model, lo, hi);
                        stats.absorb(&child);
                        Some(match child.status {
                            LpStatus::Infeasible => big,
                            _ => (child.objective - node_obj).max(0.0) / denom,
                        })
                    }
                };
                lo[j] = plo;
                hi[j] = phi;
                if let Some(pu) = per_unit {
                    pc.record(j, up, pu);
                }
            }
        }
    }
    predict_branch_var(fracs, pc)
}

/// The branch variable the current pseudo-costs select (no probing).  Also
/// used to predict speculative-lookahead children; a mispredict there is
/// only a cache miss, never an unsound result.
fn predict_branch_var(fracs: &[(usize, f64)], pc: &PseudoCosts) -> usize {
    let means = pc.global_means();
    let mut best = fracs[0].0;
    let mut best_score = f64::NEG_INFINITY;
    for &(j, frac) in fracs {
        let s = pc.score(j, frac, means);
        if s > best_score {
            best_score = s;
            best = j;
        }
    }
    best
}

fn best_node(frontier: &[Node]) -> Option<usize> {
    frontier
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.bound.total_cmp(&b.bound).then(a.depth.cmp(&b.depth)))
        .map(|(i, _)| i)
}

/// Fractional coordinates of `x` (index, value).
fn fractionals(x: &[f64], tol: f64) -> Vec<(usize, f64)> {
    x.iter()
        .enumerate()
        .filter(|(_, &v)| (v - v.round()).abs() > tol)
        .map(|(j, &v)| (j, v))
        .collect()
}

/// How the LP point is snapped to binaries before repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundMode {
    /// Round to the nearest binary (≥ 0.5 → 1).
    Nearest,
    /// Round every fractional down (covering rows then pull vars back in).
    Floor,
}

/// LP-rounding + greedy-repair primal heuristic.
///
/// Rounds `x_lp` per `mode` (clamped into the caller's root `[lo, hi]` box,
/// so pin/ban fixings always hold), then repairs violated rows: each pass
/// walks the violated constraints and flips the candidate variables with the
/// least objective damage per unit of violation removed (penalizing flips
/// that would break currently-satisfied rows), selected by
/// [`knapsack::greedy_cover`]; fixed variables (`lo == hi`) are never
/// flipped.  Returns a feasible `(objective, x)` or `None` when the repair
/// budget runs out.
fn round_and_repair(
    model: &Model,
    x_lp: &[f64],
    mode: RoundMode,
    tol: f64,
    lo: &[f64],
    hi: &[f64],
) -> Option<(f64, Vec<f64>)> {
    let mut x: Vec<f64> = x_lp
        .iter()
        .zip(lo.iter().zip(hi))
        .map(|(&v, (&l, &h))| {
            let r: f64 = match mode {
                RoundMode::Nearest => {
                    if v >= 0.5 {
                        1.0
                    } else {
                        0.0
                    }
                }
                RoundMode::Floor => {
                    if v >= 1.0 - 1e-9 {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            r.clamp(l, h)
        })
        .collect();
    if model.feasible(&x, tol) {
        return Some((model.objective_value(&x), x));
    }
    // Column index: which rows each variable appears in (for the
    // collateral-damage penalty).
    let mut cols: Vec<Vec<u32>> = vec![Vec::new(); model.n_vars()];
    for (ci, c) in model.constraints().iter().enumerate() {
        for &(v, _) in &c.expr.terms {
            cols[v.0 as usize].push(ci as u32);
        }
    }
    let penalty = 1e6 * (1.0 + model.objective().iter().fold(0.0f64, |m, c| m.max(c.abs())));
    let max_passes = 2 * model.n_constraints() + 16;
    for _ in 0..max_passes {
        let violated = model.violated(&x, tol);
        if violated.is_empty() {
            return Some((model.objective_value(&x), x));
        }
        let mut flipped_any = false;
        for cid in violated {
            flipped_any |= repair_row(model, cid, &mut x, &cols, penalty, tol, lo, hi);
        }
        if !flipped_any {
            return None;
        }
    }
    None
}

/// Repair one violated row by greedy covering over candidate flips (fixed
/// variables are not candidates).  Returns whether anything was flipped.
#[allow(clippy::too_many_arguments)]
fn repair_row(
    model: &Model,
    cid: ConstrId,
    x: &mut [f64],
    cols: &[Vec<u32>],
    penalty: f64,
    tol: f64,
    lo: &[f64],
    hi: &[f64],
) -> bool {
    let cons = model.constraint(cid);
    let lhs = cons.expr.value(x);
    // Positive amount by which the lhs must fall (`need_fall`) or rise.
    let (need_fall, amount) = match cons.sense {
        Sense::Le => (true, lhs - cons.rhs),
        Sense::Ge => (false, cons.rhs - lhs),
        Sense::Eq => {
            if lhs > cons.rhs {
                (true, lhs - cons.rhs)
            } else {
                (false, cons.rhs - lhs)
            }
        }
    };
    if amount <= tol {
        return false; // repaired as a side effect of an earlier row
    }
    let obj = model.objective();
    // Candidate flips: (variable, movement toward feasibility, flip cost).
    let mut moves: Vec<(usize, f64, f64)> = Vec::new();
    for &(v, c) in &cons.expr.terms {
        let j = v.0 as usize;
        if lo[j] >= hi[j] {
            continue; // pinned by the caller's fixings — not a repair move
        }
        let set = x[j] >= 0.5;
        let gain = match (need_fall, set, c > 0.0) {
            (true, true, true) => c,    // drop a positive term
            (true, false, false) => -c, // add a negative term
            (false, true, false) => -c, // drop a negative term
            (false, false, true) => c,  // add a positive term
            _ => continue,
        };
        let mut cost = if set { -obj[j] } else { obj[j] };
        cost += penalty * collateral_violations(model, cols, x, j, cid) as f64;
        moves.push((j, gain, cost));
    }
    let items: Vec<(f64, f64)> = moves.iter().map(|&(_, gain, cost)| (cost, gain)).collect();
    let Some(chosen) = knapsack::greedy_cover(amount, &items) else {
        return false;
    };
    let mut flipped = false;
    for i in chosen {
        let j = moves[i].0;
        x[j] = 1.0 - x[j];
        flipped = true;
    }
    flipped
}

/// How many currently-satisfied rows (other than `fixing`) would flipping
/// `j` break?
fn collateral_violations(
    model: &Model,
    cols: &[Vec<u32>],
    x: &mut [f64],
    j: usize,
    fixing: ConstrId,
) -> usize {
    let mut broken = 0;
    let old = x[j];
    for &ci in &cols[j] {
        if ci == fixing.0 {
            continue;
        }
        let cons = &model.constraints()[ci as usize];
        if !cons.satisfied(x, 1e-6) {
            continue; // already violated; cannot get "newly broken"
        }
        x[j] = 1.0 - old;
        let still_ok = cons.satisfied(x, 1e-6);
        x[j] = old;
        if !still_ok {
            broken += 1;
        }
    }
    broken
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solves_tiny_knapsack_exactly() {
        // max 10x + 6y + 4z s.t. 5x+4y+3z ≤ 9  (as min of negatives)
        let mut m = Model::new();
        let x = m.add_var("x", -10.0);
        let y = m.add_var("y", -6.0);
        let z = m.add_var("z", -4.0);
        m.add_constraint(LinExpr::new().term(x, 5.0).term(y, 4.0).term(z, 3.0), Sense::Le, 9.0);
        let r = BranchBound::new().solve(&m, &SolveOptions::default());
        assert_eq!(r.status, MipStatus::Optimal);
        let (expect, _) = m.brute_force().unwrap();
        assert!((r.objective - expect).abs() < 1e-6);
        assert!(m.feasible(&r.x, 1e-6));
        assert!(r.gap <= 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Ge, 3.0);
        let r = BranchBound::new().solve(&m, &SolveOptions::default());
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(!BranchBound::new().is_feasible(&m));
    }

    #[test]
    fn integrally_infeasible_detected() {
        // x + y = 1 and x − y = 0 has the LP solution (0.5, 0.5) only.
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Eq, 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, -1.0), Sense::Eq, 0.0);
        let r = BranchBound::new().solve(&m, &SolveOptions::default());
        assert_eq!(r.status, MipStatus::Infeasible);
    }

    #[test]
    fn matches_brute_force_on_random_bips() {
        let mut rng = SmallRng::seed_from_u64(123);
        for trial in 0..25 {
            let n = rng.gen_range(3..10);
            let mut m = Model::new();
            let vars: Vec<_> =
                (0..n).map(|j| m.add_var(format!("v{j}"), rng.gen_range(-10.0..10.0))).collect();
            for _ in 0..rng.gen_range(1..4) {
                let mut e = LinExpr::new();
                for &v in &vars {
                    if rng.gen_bool(0.7) {
                        e.add(v, rng.gen_range(-5.0..5.0));
                    }
                }
                if e.terms.is_empty() {
                    continue;
                }
                let sense = match rng.gen_range(0..3) {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Eq,
                };
                // keep Eq constraints satisfiable reasonably often
                let rhs = match sense {
                    Sense::Eq => {
                        if rng.gen_bool(0.5) {
                            0.0
                        } else {
                            e.terms[0].1
                        }
                    }
                    _ => rng.gen_range(-4.0..6.0),
                };
                m.add_constraint(e, sense, rhs);
            }
            let r = BranchBound::new().solve(&m, &SolveOptions::default());
            match m.brute_force() {
                None => assert_eq!(
                    r.status,
                    MipStatus::Infeasible,
                    "trial {trial}: solver found {:?} on infeasible model",
                    r.objective
                ),
                Some((expect, _)) => {
                    assert_ne!(r.status, MipStatus::Infeasible, "trial {trial}");
                    assert!(
                        (r.objective - expect).abs() < 1e-5,
                        "trial {trial}: got {} expected {expect}",
                        r.objective
                    );
                    assert!(m.feasible(&r.x, 1e-6));
                }
            }
        }
    }

    #[test]
    fn gap_limit_stops_early_with_valid_bound() {
        // A knapsack with many similar items → nontrivial search tree.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..16 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(5.0..15.0));
            e.add(v, rng.gen_range(3.0..9.0));
        }
        m.add_constraint(e, Sense::Le, 30.0);
        let opts = SolveOptions { budget: SolveBudget::within(0.10), ..Default::default() };
        let r = BranchBound::new().solve(&m, &opts);
        assert!(matches!(r.status, MipStatus::GapReached | MipStatus::Optimal));
        assert!(r.gap <= 0.10 + 1e-9);
        assert!(r.bound <= r.objective + 1e-9, "bound must stay below incumbent");
        assert!(m.feasible(&r.x, 1e-6));
    }

    #[test]
    fn progress_stream_is_anytime_consistent() {
        let mut m = Model::new();
        let mut e = LinExpr::new();
        let mut rng = SmallRng::seed_from_u64(11);
        for j in 0..12 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(1.0..20.0));
            e.add(v, rng.gen_range(1.0..10.0));
        }
        m.add_constraint(e, Sense::Le, 25.0);
        let mut events: Vec<SolveProgress> = Vec::new();
        let mut incumbent_events = 0usize;
        let r = BranchBound::new().solve_with_progress(&m, &SolveOptions::default(), |p, sol| {
            if let Some(x) = sol {
                incumbent_events += 1;
                assert!(m.feasible(x, 1e-6), "streamed incumbent must be feasible");
                assert!((m.objective_value(x) - p.incumbent).abs() < 1e-9);
            }
            events.push(*p);
        });
        assert_eq!(r.status, MipStatus::Optimal);
        assert!(incumbent_events > 0, "at least the root heuristic must stream");
        // Incumbents improve monotonically, gaps never regress.
        let (mut prev_inc, mut prev_gap) = (f64::INFINITY, f64::INFINITY);
        for p in &events {
            assert!(p.incumbent <= prev_inc + 1e-9);
            assert!(p.gap <= prev_gap + 1e-12);
            assert!(p.incumbent >= p.bound - 1e-9);
            prev_inc = p.incumbent;
            prev_gap = p.gap;
        }
        // The recorded trace mirrors the stream.
        assert_eq!(events.len(), r.trace.len());
    }

    #[test]
    fn node_limit_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..20 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(5.0..6.0));
            e.add(v, rng.gen_range(3.0..4.0));
        }
        m.add_constraint(e, Sense::Le, 20.0);
        let opts =
            SolveOptions { budget: SolveBudget::exact().with_nodes(5), ..Default::default() };
        let r = BranchBound::new().solve(&m, &opts);
        assert!(r.nodes <= 6);
        // A wide batch must not overshoot the limit either (the merge loop
        // re-checks the budget between batch members).
        let wide = SolveOptions {
            budget: SolveBudget::exact().with_nodes(5).with_parallelism(8),
            ..Default::default()
        };
        let r = BranchBound::new().solve(&m, &wide);
        assert!(r.nodes <= 6, "parallel batch overshot the node limit: {}", r.nodes);
    }

    #[test]
    fn root_incumbent_on_assignment_structure() {
        // A miniature Theorem-1 shape: 2 "queries" × (y-rows, x-rows, x ≤ z)
        // plus an AT-MOST row over z.  Plain rounding breaks the Eq rows;
        // the repair must still produce a root incumbent.
        let mut m = Model::new();
        let z: Vec<_> = (0..3).map(|a| m.add_var(format!("z{a}"), 1.0)).collect();
        for q in 0..2 {
            let y = m.add_var(format!("y{q}"), 5.0);
            m.add_constraint(LinExpr::new().term(y, 1.0), Sense::Eq, 1.0);
            let xh = m.add_var(format!("xh{q}"), 20.0); // heap fallback
            let mut xsum = LinExpr::new().term(xh, 1.0);
            for (a, &zv) in z.iter().enumerate() {
                let xv = m.add_var(format!("x{q}_{a}"), 2.0 + a as f64);
                m.add_constraint(LinExpr::new().term(xv, 1.0).term(zv, -1.0), Sense::Le, 0.0);
                xsum.add(xv, 1.0);
            }
            xsum.add(y, -1.0);
            m.add_constraint(xsum, Sense::Eq, 0.0);
        }
        // AT-MOST one z.
        let mut zsum = LinExpr::new();
        for &zv in &z {
            zsum.add(zv, 1.0);
        }
        m.add_constraint(zsum, Sense::Le, 1.0);

        let mut first_incumbent_ticks = None;
        let r = BranchBound::new().solve_with_progress(&m, &SolveOptions::default(), |p, sol| {
            if sol.is_some() && first_incumbent_ticks.is_none() {
                first_incumbent_ticks = Some(p.ticks);
            }
        });
        assert_ne!(r.status, MipStatus::Infeasible);
        assert_eq!(first_incumbent_ticks, Some(0), "incumbent must appear at the root");
        let (expect, _) = m.brute_force().unwrap();
        assert!((r.objective - expect).abs() < 1e-6);
    }

    #[test]
    fn parallel_and_serial_prove_the_same_optimum() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..14 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(4.0..16.0));
            e.add(v, rng.gen_range(2.0..8.0));
        }
        m.add_constraint(e, Sense::Le, 24.0);
        let serial = BranchBound::new().solve(&m, &SolveOptions::default());
        assert_eq!(serial.status, MipStatus::Optimal);
        for k in [2usize, 4] {
            let opts = SolveOptions {
                budget: SolveBudget::exact().with_parallelism(k),
                ..Default::default()
            };
            let par = BranchBound::new().solve(&m, &opts);
            assert_eq!(par.status, MipStatus::Optimal, "k={k}");
            assert!(
                (par.objective - serial.objective).abs() < 1e-6,
                "k={k}: {} vs {}",
                par.objective,
                serial.objective
            );
            assert!((par.bound - serial.bound).abs() < 1e-6, "k={k}: bounds must agree");
            assert!(m.feasible(&par.x, 1e-6));
        }
    }

    #[test]
    fn warm_and_cold_node_lps_agree_and_warm_is_cheaper() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..16 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(5.0..15.0));
            e.add(v, rng.gen_range(3.0..9.0));
        }
        m.add_constraint(e, Sense::Le, 30.0);
        // Disable heuristics/strong branching noise so pivot counts compare
        // the LP engines alone.
        let base =
            SolveOptions { heuristic_period: 0, strong_branch_budget: 0, ..Default::default() };
        let warm = BranchBound::new().solve(&m, &base);
        let cold = BranchBound::new().solve(&m, &SolveOptions { warm_start: false, ..base });
        assert_eq!(warm.status, MipStatus::Optimal);
        assert_eq!(cold.status, MipStatus::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        assert!(warm.pivots > 0 && cold.pivots > 0, "pivot accounting must be live");
        assert!(
            warm.pivots <= cold.pivots,
            "warm-started re-solves must not pivot more than cold: {} vs {}",
            warm.pivots,
            cold.pivots
        );
    }

    #[test]
    fn serial_trace_is_reproducible_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..14 {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(4.0..14.0));
            e.add(v, rng.gen_range(2.0..7.0));
        }
        m.add_constraint(e, Sense::Le, 22.0);
        let run = || {
            let mut seen: Vec<(f64, f64, f64)> = Vec::new();
            let r = BranchBound::new().solve_with_progress(&m, &SolveOptions::default(), |p, _| {
                seen.push((p.incumbent, p.bound, p.gap));
            });
            (r, seen)
        };
        let (a, ea) = run();
        let (b, eb) = run();
        assert_eq!(ea, eb, "parallelism = 1 must reproduce the exact event stream");
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.bound.to_bits(), b.bound.to_bits());
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.pivots, b.pivots);
    }

    /// A knapsack model plus the id of its single row.
    fn resolve_knapsack(seed: u64, n: usize, cap: f64) -> (Model, ConstrId) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..n {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(4.0..16.0));
            e.add(v, rng.gen_range(2.0..8.0));
        }
        let row = m.add_constraint(e, Sense::Le, cap);
        (m, row)
    }

    #[test]
    fn rhs_sweep_resolves_match_cold_solves_and_pivot_less() {
        use crate::delta::{DeltaModel, ModelDelta};
        let (m, row) = resolve_knapsack(5, 14, 30.0);
        let mut dm = DeltaModel::new(m.clone());
        let mut ctx = ResolveContext::new();
        let opts = SolveOptions::default();
        let mut warm_pivots = 0usize;
        let mut cold_pivots = 0usize;
        for (i, rhs) in [30.0, 24.0, 18.0, 12.0, 6.0].into_iter().enumerate() {
            dm.apply(ModelDelta::SetRhs { row, rhs });
            let warm = BranchBound::new().resolve(&dm, &opts, &mut ctx);
            let mut cold_model = m.clone();
            cold_model.set_rhs(row, rhs);
            let cold = BranchBound::new().solve(&cold_model, &opts);
            assert_eq!(warm.status, cold.status, "rhs {rhs}");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "rhs {rhs}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!((warm.bound - cold.bound).abs() < 1e-6, "rhs {rhs}: bounds must agree");
            assert!(cold_model.feasible(&warm.x, 1e-6));
            if i > 0 {
                warm_pivots += warm.pivots;
                cold_pivots += cold.pivots;
            }
        }
        assert_eq!(ctx.resolves(), 5);
        assert!(ctx.has_basis(), "optimal resolves must leave a root basis behind");
        assert!(
            warm_pivots <= cold_pivots,
            "warm-chained re-solves must not pivot more than cold solves: {warm_pivots} vs \
             {cold_pivots}"
        );
    }

    #[test]
    fn fix_and_free_deltas_are_respected_across_resolves() {
        use crate::delta::{DeltaModel, ModelDelta};
        let (m, _) = resolve_knapsack(9, 10, 20.0);
        let mut dm = DeltaModel::new(m.clone());
        let mut ctx = ResolveContext::new();
        let opts = SolveOptions::default();
        let free = BranchBound::new().resolve(&dm, &opts, &mut ctx);
        assert_eq!(free.status, MipStatus::Optimal);

        // Ban the variable the free optimum relies on most (first one set).
        let banned = free.x.iter().position(|&v| v >= 0.5).expect("something selected");
        dm.apply(ModelDelta::FixVar { var: crate::VarId(banned as u32), value: false });
        let r_ban = BranchBound::new().resolve(&dm, &opts, &mut ctx);
        assert_eq!(r_ban.status, MipStatus::Optimal);
        assert_eq!(r_ban.x[banned], 0.0, "banned variable must stay 0");
        assert!(r_ban.objective >= free.objective - 1e-9, "banning cannot improve the optimum");

        // Pin a variable the ban run left out, then free everything again.
        let pinned = r_ban.x.iter().position(|&v| v < 0.5).expect("something unset");
        dm.apply(ModelDelta::FixVar { var: crate::VarId(pinned as u32), value: true });
        let r_pin = BranchBound::new().resolve(&dm, &opts, &mut ctx);
        if r_pin.status != MipStatus::Infeasible {
            assert_eq!(r_pin.x[pinned], 1.0, "pinned variable must stay 1");
            assert_eq!(r_pin.x[banned], 0.0, "ban still applies");
        }
        dm.apply(ModelDelta::FreeVar { var: crate::VarId(banned as u32) });
        dm.apply(ModelDelta::FreeVar { var: crate::VarId(pinned as u32) });
        let r_free = BranchBound::new().resolve(&dm, &opts, &mut ctx);
        assert!((r_free.objective - free.objective).abs() < 1e-6, "freeing restores the optimum");
    }

    #[test]
    fn row_deltas_resolve_correctly_across_add_and_relax() {
        use crate::delta::{DeltaModel, ModelDelta};
        let (m, _) = resolve_knapsack(13, 8, 18.0);
        let mut dm = DeltaModel::new(m);
        let mut ctx = ResolveContext::new();
        let opts = SolveOptions::default();
        let r0 = BranchBound::new().resolve(&dm, &opts, &mut ctx);
        assert_eq!(r0.status, MipStatus::Optimal);

        // Cardinality row: at most 1 variable set.  An appended row keeps
        // the warm basis (its slack enters as basic).
        let mut card = LinExpr::new();
        for j in 0..8 {
            card.add(crate::VarId(j as u32), 1.0);
        }
        let row = dm
            .apply(ModelDelta::AddRow { expr: card, sense: Sense::Le, rhs: 1.0 })
            .expect("row id");
        assert!(ctx.has_basis(), "the r0 root basis is available for extension");
        let r1 = BranchBound::new().resolve(&dm, &opts, &mut ctx);
        assert_eq!(r1.status, MipStatus::Optimal);
        assert!(r1.x.iter().sum::<f64>() <= 1.0 + 1e-9, "added row must bind");
        assert!(r1.objective >= r0.objective - 1e-9);

        // Relaxing a row rewrites its columns in place: basis dropped, the
        // re-solve pays a cold root but must still restore the r0 optimum.
        dm.apply(ModelDelta::RelaxRow { row });
        let r2 = BranchBound::new().resolve(&dm, &opts, &mut ctx);
        assert!((r2.objective - r0.objective).abs() < 1e-6, "relaxing the row restores r0");
    }

    #[test]
    fn row_additions_resolve_warm_from_the_extended_basis() {
        use crate::delta::{DeltaModel, ModelDelta};
        let (m, _) = resolve_knapsack(21, 14, 30.0);
        let mut dm = DeltaModel::new(m.clone());
        let mut ctx = ResolveContext::new();
        let opts = SolveOptions::default();
        let r0 = BranchBound::new().resolve(&dm, &opts, &mut ctx);
        assert_eq!(r0.status, MipStatus::Optimal);

        // Append a sequence of tightening cardinality rows; every warm
        // re-solve must match its cold counterpart and, summed over the
        // sweep, not pivot more (the whole point of extending the basis
        // instead of paying cold roots).
        let mut warm_pivots = 0usize;
        let mut cold_pivots = 0usize;
        let mut cold_model = m;
        for cap in [6.0, 4.0, 2.0] {
            let mut card = LinExpr::new();
            for j in 0..14 {
                card.add(crate::VarId(j as u32), 1.0);
            }
            dm.apply(ModelDelta::AddRow { expr: card.clone(), sense: Sense::Le, rhs: cap });
            assert!(ctx.has_basis(), "appended rows must not drop the warm basis");
            let warm = BranchBound::new().resolve(&dm, &opts, &mut ctx);
            cold_model.add_constraint(card, Sense::Le, cap);
            let cold = BranchBound::new().solve(&cold_model, &opts);
            assert_eq!(warm.status, cold.status, "cap {cap}");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "cap {cap}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(cold_model.feasible(&warm.x, 1e-6), "cap {cap}");
            warm_pivots += warm.pivots;
            cold_pivots += cold.pivots;
        }
        assert!(
            warm_pivots <= cold_pivots,
            "warm row-addition re-solves must not pivot more than cold solves: {warm_pivots} \
             vs {cold_pivots}"
        );
    }

    #[test]
    fn round_and_repair_handles_storage_row() {
        // All-ones LP point violating a storage row: repair must drop the
        // worst value-per-size items (the knapsack cover in action).
        let mut m = Model::new();
        let mut row = LinExpr::new();
        for j in 0..6 {
            let v = m.add_var(format!("v{j}"), -(6.0 - j as f64));
            row.add(v, 2.0);
        }
        m.add_constraint(row, Sense::Le, 6.0);
        let lp_point = vec![1.0; 6];
        let (lo, hi) = (vec![0.0; 6], vec![1.0; 6]);
        let (obj, x) = round_and_repair(&m, &lp_point, RoundMode::Nearest, 1e-6, &lo, &hi).unwrap();
        assert!(m.feasible(&x, 1e-6));
        assert!((m.objective_value(&x) - obj).abs() < 1e-9);
        // The cheap-to-drop (least negative) items go first.
        assert_eq!(x[0], 1.0);
        assert_eq!(x[5], 0.0);
    }

    /// A knapsack-family BIP with a fractional root and enough symmetry to
    /// force real branching (shared by the instrumentation tests below).
    fn branchy_model(seed: u64, n: usize) -> Model {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = Model::new();
        let mut e = LinExpr::new();
        for j in 0..n {
            let v = m.add_var(format!("v{j}"), -rng.gen_range(5.0..6.0));
            e.add(v, rng.gen_range(3.0..4.0));
        }
        m.add_constraint(e, Sense::Le, 2.0 * n as f64);
        m
    }

    #[test]
    fn warm_strong_branching_and_dives_pay_no_cold_lps() {
        let m = branchy_model(42, 18);
        let warm = SolveOptions { strong_branch_budget: 24, ..Default::default() };
        let rw = BranchBound::new().solve(&m, &warm);
        assert_eq!(rw.status, MipStatus::Optimal);
        assert_eq!(
            rw.sb_cold_lps, 0,
            "warm strong branching must probe through the dual simplex only"
        );
        assert_eq!(rw.dive_cold_lps, 0, "warm dives must chain bases, never cold-solve");
        assert!(rw.refactorizations > 0, "sparse LU path must have factorized at least once");
        assert_eq!(
            rw.factor_recoveries, 0,
            "a numerically clean solve must not report singular-basis recoveries"
        );

        // With warm starts off, the same probes fall back to bounded
        // two-phase LPs — and the counter proves the warm path above
        // actually avoided them rather than never probing.
        let cold =
            SolveOptions { warm_start: false, strong_branch_budget: 24, ..Default::default() };
        let rc = BranchBound::new().solve(&m, &cold);
        assert_eq!(rc.status, MipStatus::Optimal);
        assert!((rw.objective - rc.objective).abs() < 1e-6);
        assert!(rc.sb_cold_lps > 0, "cold path should have paid strong-branching LPs");
    }

    #[test]
    fn objective_sweep_resolves_match_cold_solves() {
        // A λ sweep over two objective vectors (the soft-constraint chord
        // walk): each warm resolve restarts the primal from the last basis
        // and must land exactly where a cold solve of the reweighted model
        // lands.
        use crate::delta::{DeltaModel, ModelDelta};
        let m = branchy_model(5, 14);
        let base: Vec<f64> = m.objective().to_vec();
        let bb = BranchBound::new();
        let opts = SolveOptions::default();
        let mut dm = DeltaModel::new(m.clone());
        let mut ctx = ResolveContext::new();
        let first = bb.resolve(&dm, &opts, &mut ctx);
        assert_eq!(first.status, MipStatus::Optimal);
        for lam in [0.8, 0.5, 0.2] {
            let coeffs: Vec<f64> = base
                .iter()
                .enumerate()
                .map(|(j, c)| lam * c + (1.0 - lam) * -(((j % 3) as f64) + 0.5))
                .collect();
            dm.apply(ModelDelta::SetObjective { coeffs: coeffs.clone() });
            let warm = bb.resolve(&dm, &opts, &mut ctx);
            let mut cold_model = m.clone();
            cold_model.set_objective_coeffs(&coeffs);
            let cold = bb.solve(&cold_model, &opts);
            assert_eq!(warm.status, cold.status, "λ={lam}");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "λ={lam}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
        assert!(ctx.has_basis());
    }

    #[test]
    fn speculative_lookahead_steals_work_and_preserves_the_optimum() {
        let m = branchy_model(9, 20);
        // No strong branching so branch selection is stable and the
        // lookahead's predictions actually land.
        let serial = SolveOptions { strong_branch_budget: 0, ..Default::default() };
        let rs = BranchBound::new().solve(&m, &serial);
        assert_eq!(rs.lookahead_hits, 0, "serial search must never consult the cache");
        let wide = SolveOptions {
            strong_branch_budget: 0,
            budget: SolveBudget::exact().with_parallelism(4),
            ..Default::default()
        };
        let rp = BranchBound::new().solve(&m, &wide);
        assert_eq!(rp.status, MipStatus::Optimal);
        assert!((rs.objective - rp.objective).abs() < 1e-6);
        assert!(
            rp.lookahead_hits > 0,
            "idle workers should have pre-solved predicted children (nodes={})",
            rp.nodes
        );
    }
}
