//! Model deltas for interactive re-optimization (paper §4.2).
//!
//! CoPhy's interactive claim rests on the observation that a DBA's follow-up
//! questions — "what about a smaller budget?", "force this index in", "never
//! build that one" — are *small mutations* of a BIP that has already been
//! solved, so they should be answered by cheap re-solves of the existing
//! model, not fresh tuning runs.  This module is the mutation vocabulary:
//!
//! * [`ModelDelta`] — the atomic edits: tighten/relax a row's RHS (budget
//!   sweeps), fix a variable to 0/1 (index pin/ban), free it again, add a
//!   soft-constraint row, or relax an existing row away;
//! * [`DeltaModel`] — a [`Model`] plus its current variable fixings and a
//!   structure version, tracking which edits preserve the warm-start basis
//!   (bound and RHS edits do: reduced costs depend on neither, so an optimal
//!   basis stays **dual feasible** and the
//!   [`DualSimplex`](crate::dual::DualSimplex) restores primal feasibility in
//!   a handful of pivots; row *additions* do too — the new row's slack
//!   enters as basic, extending the basis without touching the old duals)
//!   and which do not (relaxing a row rewrites its columns in place, so the
//!   next re-solve pays one cold root LP).
//!
//! The companion state — final root basis, last incumbent, pseudo-cost
//! table — lives in [`ResolveContext`](crate::branch_bound::ResolveContext)
//! and is threaded through
//! [`BranchBound::resolve_with_progress`](crate::BranchBound::resolve_with_progress).

use crate::model::{ConstrId, LinExpr, Model, Sense, VarId};

/// One atomic model mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelDelta {
    /// Replace a row's right-hand side (e.g. the storage-budget sweep).
    /// Keeps the warm-start basis: reduced costs do not depend on `b`.
    SetRhs { row: ConstrId, rhs: f64 },
    /// Pin a variable to a binary value (index pin = 1, ban = 0) by
    /// collapsing its `[lo, hi]` interval.  Keeps the warm-start basis:
    /// a bound pinch leaves the basis dual feasible.
    FixVar { var: VarId, value: bool },
    /// Remove a variable's fixing, restoring `[0, 1]`.
    FreeVar { var: VarId },
    /// Append a constraint row (e.g. materializing a soft constraint as a
    /// hard row).  Keeps the warm-start basis: the appended row's slack (its
    /// pinned artificial for an equality) enters as basic, which leaves the
    /// old rows' duals — and with them every reduced cost — untouched, so
    /// the dual simplex only repairs the new row's primal violation instead
    /// of paying a cold root.
    AddRow { expr: LinExpr, sense: Sense, rhs: f64 },
    /// Neutralize an existing row in place (`0 {≤,=,≥} 0`), dropping it
    /// from the feasible-region description without renumbering
    /// [`ConstrId`]s.  Invalidates the warm-start basis (the structural
    /// columns change).
    RelaxRow { row: ConstrId },
    /// Replace the full objective vector (e.g. one λ step of a Pareto /
    /// chord sweep over `λ·cost + (1−λ)·storage`).  Keeps the warm-start
    /// basis **primal** feasible but makes its reduced costs stale, so the
    /// next re-solve restarts phase 2 of the *primal* simplex from the old
    /// basis (a dual re-solve after an objective edit would be unsound).
    SetObjective { coeffs: Vec<f64> },
}

/// A model under interactive mutation: the BIP, its current variable
/// fixings, and a structure version that warm-start consumers compare
/// against to decide whether a snapshot taken earlier still fits.
#[derive(Debug, Clone)]
pub struct DeltaModel {
    model: Model,
    fixed: Vec<Option<bool>>,
    structure_version: u64,
    objective_version: u64,
}

impl DeltaModel {
    /// Wrap a freshly built model (no fixings, structure version 0).
    pub fn new(model: Model) -> Self {
        let n = model.n_vars();
        DeltaModel { model, fixed: vec![None; n], structure_version: 0, objective_version: 0 }
    }

    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Current fixing per variable (`None` = free).
    pub fn fixed(&self) -> &[Option<bool>] {
        &self.fixed
    }

    /// Bumped by every basis-destroying structure delta — today only
    /// [`ModelDelta::RelaxRow`], which rewrites an existing row's columns in
    /// place.  RHS and bound edits leave it unchanged, and so does
    /// [`ModelDelta::AddRow`]: an appended row extends the old basis (its
    /// slack enters as basic) rather than invalidating it, so warm-start
    /// consumers pair this version with the row count to decide between
    /// reuse, extension and a cold root.
    pub fn structure_version(&self) -> u64 {
        self.structure_version
    }

    /// Bumped by every [`ModelDelta::SetObjective`].  An objective edit
    /// keeps the old basis primal feasible but not dual feasible, so warm
    /// consumers route the next root through the primal simplex's phase-2
    /// restart instead of the dual re-solve.
    pub fn objective_version(&self) -> u64 {
        self.objective_version
    }

    /// Root variable bounds under the current fixings.
    pub fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.model.n_vars();
        let mut lo = vec![0.0; n];
        let mut hi = vec![1.0; n];
        for (j, f) in self.fixed.iter().enumerate() {
            if let Some(v) = f {
                lo[j] = if *v { 1.0 } else { 0.0 };
                hi[j] = lo[j];
            }
        }
        (lo, hi)
    }

    /// Apply one delta.  Returns the id of the appended row for
    /// [`ModelDelta::AddRow`], `None` otherwise.
    pub fn apply(&mut self, delta: ModelDelta) -> Option<ConstrId> {
        match delta {
            ModelDelta::SetRhs { row, rhs } => {
                self.model.set_rhs(row, rhs);
                None
            }
            ModelDelta::FixVar { var, value } => {
                self.fixed[var.0 as usize] = Some(value);
                None
            }
            ModelDelta::FreeVar { var } => {
                self.fixed[var.0 as usize] = None;
                None
            }
            ModelDelta::AddRow { expr, sense, rhs } => {
                // Deliberately no version bump: row appends are
                // basis-extending, not basis-destroying (see
                // `structure_version`).
                Some(self.model.add_constraint(expr, sense, rhs))
            }
            ModelDelta::RelaxRow { row } => {
                self.structure_version += 1;
                self.model.relax_constraint(row);
                None
            }
            ModelDelta::SetObjective { coeffs } => {
                self.objective_version += 1;
                self.model.set_objective_coeffs(&coeffs);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knapsack() -> (Model, ConstrId) {
        // min −10x − 6y − 4z s.t. 5x + 4y + 3z ≤ 9.
        let mut m = Model::new();
        let x = m.add_var("x", -10.0);
        let y = m.add_var("y", -6.0);
        let z = m.add_var("z", -4.0);
        let row =
            m.add_constraint(LinExpr::new().term(x, 5.0).term(y, 4.0).term(z, 3.0), Sense::Le, 9.0);
        (m, row)
    }

    #[test]
    fn rhs_and_bound_edits_preserve_structure_version() {
        let (m, row) = knapsack();
        let mut dm = DeltaModel::new(m);
        dm.apply(ModelDelta::SetRhs { row, rhs: 5.0 });
        dm.apply(ModelDelta::FixVar { var: VarId(0), value: true });
        dm.apply(ModelDelta::FreeVar { var: VarId(0) });
        assert_eq!(dm.structure_version(), 0);
        assert_eq!(dm.model().constraint(row).rhs, 5.0);
    }

    #[test]
    fn fixings_materialize_as_bounds() {
        let (m, _) = knapsack();
        let mut dm = DeltaModel::new(m);
        dm.apply(ModelDelta::FixVar { var: VarId(1), value: true });
        dm.apply(ModelDelta::FixVar { var: VarId(2), value: false });
        let (lo, hi) = dm.bounds();
        assert_eq!((lo[0], hi[0]), (0.0, 1.0));
        assert_eq!((lo[1], hi[1]), (1.0, 1.0));
        assert_eq!((lo[2], hi[2]), (0.0, 0.0));
        dm.apply(ModelDelta::FreeVar { var: VarId(2) });
        let (lo, hi) = dm.bounds();
        assert_eq!((lo[2], hi[2]), (0.0, 1.0));
    }

    #[test]
    fn row_edits_version_correctly_and_keep_ids_stable() {
        let (m, row) = knapsack();
        let mut dm = DeltaModel::new(m);
        let added = dm
            .apply(ModelDelta::AddRow {
                expr: LinExpr::new().term(VarId(0), 1.0).term(VarId(1), 1.0),
                sense: Sense::Le,
                rhs: 1.0,
            })
            .expect("AddRow returns the new row id");
        assert_eq!(dm.structure_version(), 0, "row appends extend the basis, no version bump");
        assert_eq!(dm.model().n_constraints(), 2);
        dm.apply(ModelDelta::RelaxRow { row: added });
        assert_eq!(dm.structure_version(), 1, "relaxing a row destroys the basis");
        // Ids stay stable: the original row is untouched, the relaxed row is
        // trivially satisfied by every point.
        assert_eq!(dm.model().constraint(row).rhs, 9.0);
        assert!(dm.model().constraint(added).expr.terms.is_empty());
        assert!(dm.model().feasible(&[1.0, 1.0, 0.0], 1e-9), "relaxed row no longer binds");
    }

    #[test]
    fn objective_edits_version_independently_of_structure() {
        let (m, _) = knapsack();
        let mut dm = DeltaModel::new(m);
        dm.apply(ModelDelta::SetObjective { coeffs: vec![-1.0, -2.0, -3.0] });
        assert_eq!(dm.structure_version(), 0, "objective edits keep the structure version");
        assert_eq!(dm.objective_version(), 1);
        assert_eq!(dm.model().objective(), &[-1.0, -2.0, -3.0]);
    }
}
