//! Lagrangian decomposition for block-angular index-tuning BIPs.
//!
//! The Theorem-1 BIP has a special shape: per-query variables (`y`, `x`)
//! couple to the global index variables (`z`) only through `x_qkia ≤ z_a`.
//! Dualizing those coupling constraints with multipliers `μ ≥ 0` makes the
//! problem fall apart (Fisher [11], the technique the paper's Solver applies
//! as `relax(B)` in Figure 3):
//!
//! * one **independent minimum per query block** — for fixed `μ`, each query
//!   picks its best template and per-slot access with `γ` inflated by `μ`;
//! * one **continuous-knapsack `z` subproblem** — each index's reduced cost
//!   is its update cost minus its accumulated multipliers, subject to the
//!   storage budget (the LP relaxation of the binary knapsack, still a valid
//!   lower bound);
//!
//! Subgradient ascent tightens the bound while a primal stream (knapsack
//! rounding + repair + local search over an item→block inverted index)
//! produces anytime incumbents.  The solver therefore offers the same
//! observables as the simplex-based B&B — anytime incumbent, global lower
//! bound, gap trace, warm start — but scales to hundreds of thousands of `x`
//! variables, where a dense-inverse simplex cannot go.
//!
//! **Block decomposition is parallel.**  For a fixed μ the per-block minima
//! are independent, so each subgradient iteration shards the blocks into
//! contiguous chunks across `SolveBudget::parallelism` scoped threads
//! (disjoint `split_at_mut` result slices, no locks) and folds the partial
//! results serially in block order — the solve is bit-for-bit identical at
//! any thread count.  Progress of the shard and the coordinating multiplier
//! loop streams through [`DecompositionProgress`] on every progress event.

use std::collections::HashMap;

use crate::driver::{
    CancelToken, DecompositionProgress, GapPoint, SolveBudget, SolveDriver, SolveProgress,
};
use crate::knapsack;

/// Per-slot access choices: the fallback `I∅` cost (if the slot's order
/// requirement admits it) and `(item, γ)` pairs for compatible candidate
/// indexes.  Costs are pre-multiplied by the statement weight `f_q`.
#[derive(Debug, Clone, Default)]
pub struct SlotChoices {
    pub fallback: Option<f64>,
    pub choices: Vec<(u32, f64)>,
}

/// One template alternative of a block: `f_q β_qk` plus its slots.
#[derive(Debug, Clone, Default)]
pub struct Alt {
    pub base: f64,
    pub slots: Vec<SlotChoices>,
}

/// One query block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub alts: Vec<Alt>,
}

/// The block-angular problem: `min Σ_b block_cost_b(z) + Σ_a cost_a z_a`
/// subject to `Σ_a size_a z_a ≤ budget`, `z ∈ {0,1}`.
#[derive(Debug, Clone, Default)]
pub struct BlockProblem {
    pub n_items: usize,
    /// Fixed selection cost per item (`Σ_q f_q · ucost(a, q)`), ≥ 0.
    pub item_cost: Vec<f64>,
    /// Knapsack size per item.
    pub item_size: Vec<f64>,
    /// Storage budget; `None` = unconstrained.
    pub budget: Option<f64>,
    pub blocks: Vec<Block>,
}

impl BlockProblem {
    /// Exact cost of block `b` under selection `sel`; `None` when no template
    /// is instantiable (cannot happen if every block has an unconstrained
    /// alternative, which INUM guarantees).
    pub fn block_cost(&self, b: usize, sel: &[bool]) -> Option<f64> {
        let mut best: Option<f64> = None;
        for alt in &self.blocks[b].alts {
            let mut total = alt.base;
            let mut ok = true;
            for slot in &alt.slots {
                let mut sbest = slot.fallback;
                for &(item, g) in &slot.choices {
                    if sel[item as usize] && sbest.is_none_or(|c| g < c) {
                        sbest = Some(g);
                    }
                }
                match sbest {
                    Some(c) => total += c,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && best.is_none_or(|c| total < c) {
                best = Some(total);
            }
        }
        best
    }

    /// Total objective under `sel` (block costs + item costs); `None` if some
    /// block is uninstantiable.
    pub fn evaluate(&self, sel: &[bool]) -> Option<f64> {
        debug_assert_eq!(sel.len(), self.n_items);
        let items: f64 = (0..self.n_items).filter(|&a| sel[a]).map(|a| self.item_cost[a]).sum();
        let mut total = items;
        for b in 0..self.blocks.len() {
            total += self.block_cost(b, sel)?;
        }
        Some(total)
    }

    /// Total size of a selection.
    pub fn size_of(&self, sel: &[bool]) -> f64 {
        (0..self.n_items).filter(|&a| sel[a]).map(|a| self.item_size[a]).sum()
    }

    /// Does `sel` respect the budget?
    pub fn fits_budget(&self, sel: &[bool]) -> bool {
        match self.budget {
            None => true,
            Some(b) => self.size_of(sel) <= b + 1e-9,
        }
    }

    /// Inverted index: which blocks reference each item.
    pub fn item_blocks(&self) -> Vec<Vec<u32>> {
        let mut inv: Vec<Vec<u32>> = vec![Vec::new(); self.n_items];
        for (b, block) in self.blocks.iter().enumerate() {
            for alt in &block.alts {
                for slot in &alt.slots {
                    for &(item, _) in &slot.choices {
                        let v = &mut inv[item as usize];
                        if v.last() != Some(&(b as u32)) {
                            v.push(b as u32);
                        }
                    }
                }
            }
        }
        for v in &mut inv {
            v.dedup();
        }
        inv
    }

    /// Total number of `(block, alt, slot, choice)` coordinates (the μ
    /// dimension).
    pub fn n_choices(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.alts.iter())
            .flat_map(|a| a.slots.iter())
            .map(|s| s.choices.len())
            .sum()
    }

    /// Fold pin/ban fixings into the block form, keeping item ids (and thus
    /// warm-start μ coordinates) stable.  A pinned item's γ choices become
    /// unconditional — each slot's fallback drops to `min(fallback, γ)` — its
    /// maintenance cost moves into [`FixedBlockProblem::pinned_cost`], and its
    /// size is charged against the budget up front.  A banned item's choices
    /// are stripped.  Either way the item's own cost and size collapse to
    /// zero, so whatever the solver decides about it is objective-neutral and
    /// overwritten by [`FixedBlockProblem::apply_to_selection`].
    ///
    /// Returns `None` when the pinned sizes alone overflow the budget.
    pub fn with_fixings(&self, fixed: &[Option<bool>]) -> Option<FixedBlockProblem> {
        debug_assert_eq!(fixed.len(), self.n_items);
        let mut p = self.clone();
        let mut pinned_cost = 0.0f64;
        let mut pinned_size = 0.0f64;
        for (a, fix) in fixed.iter().enumerate().take(self.n_items) {
            match fix {
                Some(true) => {
                    pinned_cost += p.item_cost[a];
                    pinned_size += p.item_size[a];
                    p.item_cost[a] = 0.0;
                    p.item_size[a] = 0.0;
                }
                Some(false) => {
                    p.item_cost[a] = 0.0;
                    p.item_size[a] = 0.0;
                }
                None => {}
            }
        }
        if let Some(b) = p.budget.as_mut() {
            *b -= pinned_size;
            if *b < -1e-9 {
                return None;
            }
            *b = b.max(0.0);
        }
        for block in &mut p.blocks {
            for alt in &mut block.alts {
                for slot in &mut alt.slots {
                    let mut fb = slot.fallback;
                    slot.choices.retain(|&(item, g)| match fixed[item as usize] {
                        Some(true) => {
                            if fb.is_none_or(|c| g < c) {
                                fb = Some(g);
                            }
                            false
                        }
                        Some(false) => false,
                        None => true,
                    });
                    slot.fallback = fb;
                }
            }
        }
        Some(FixedBlockProblem { problem: p, pinned_cost, fixed: fixed.to_vec() })
    }
}

/// A [`BlockProblem`] with pin/ban fixings folded in — the Lagrangian-path
/// equivalent of the interactive BIP's variable bounds.  Solve
/// [`FixedBlockProblem::problem`] with any warm state from the unfixed chain
/// (coordinates are stable), then add [`FixedBlockProblem::pinned_cost`] to
/// the objective and bound and force the fixed decisions back onto the
/// selection.
#[derive(Debug, Clone)]
pub struct FixedBlockProblem {
    pub problem: BlockProblem,
    /// `Σ item_cost` over pinned items — constant part of any solution.
    pub pinned_cost: f64,
    fixed: Vec<Option<bool>>,
}

impl FixedBlockProblem {
    /// Overwrite the fixed coordinates of a reduced-problem selection.
    pub fn apply_to_selection(&self, sel: &mut [bool]) {
        for (a, fx) in self.fixed.iter().enumerate() {
            if let Some(v) = *fx {
                sel[a] = v;
            }
        }
    }
}

/// Warm-start state carried between solves (interactive tuning, Pareto
/// sweeps): multipliers keyed by stable coordinates and the last incumbent.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// μ keyed by `(block, alt, slot, item)`.
    pub multipliers: HashMap<(u32, u32, u32, u32), f64>,
    pub selection: Vec<bool>,
}

/// Result of a Lagrangian solve.
#[derive(Debug, Clone)]
pub struct LagrangeResult {
    pub selected: Vec<bool>,
    pub objective: f64,
    /// Best Lagrangian dual bound (≤ the binary optimum).
    pub bound: f64,
    pub gap: f64,
    pub iterations: usize,
    pub trace: Vec<GapPoint>,
}

/// Subgradient-driven Lagrangian solver, running inside the shared
/// [`SolveDriver`] (one tick per subgradient iteration).
#[derive(Debug, Clone)]
pub struct LagrangianSolver {
    /// Gap / time / iteration budget.  `node_limit` caps subgradient
    /// iterations; when `None`, [`LagrangianSolver::DEFAULT_MAX_ITERS`]
    /// applies (subgradient ascent also self-terminates once the step
    /// scale collapses).
    pub budget: SolveBudget,
    /// Initial Polyak step scale (halved after stretches without dual
    /// improvement).
    pub alpha0: f64,
    /// Local-search passes after the subgradient phase.
    pub local_search_passes: usize,
    /// Cooperative cancellation: a fired token stops the subgradient loop
    /// at its next iteration with [`MipStatus::TimeLimit`] semantics.
    pub cancel: Option<CancelToken>,
}

impl Default for LagrangianSolver {
    fn default() -> Self {
        LagrangianSolver {
            budget: SolveBudget::within(0.02),
            alpha0: 2.0,
            local_search_passes: 2,
            cancel: None,
        }
    }
}

impl LagrangianSolver {
    /// Iteration cap applied when the budget sets no `node_limit`.
    pub const DEFAULT_MAX_ITERS: usize = 400;

    pub fn new() -> Self {
        Self::default()
    }

    /// Solve from scratch.
    pub fn solve(&self, p: &BlockProblem) -> LagrangeResult {
        self.solve_warm(p, None).0
    }

    /// Solve with optional warm-start state; returns the result plus the
    /// state to reuse for the next (incrementally modified) solve.
    pub fn solve_warm(
        &self,
        p: &BlockProblem,
        warm: Option<&WarmStart>,
    ) -> (LagrangeResult, WarmStart) {
        self.solve_warm_with_progress(p, warm, |_, _| {})
    }

    /// [`LagrangianSolver::solve_warm`] streaming every incumbent/bound
    /// improvement through `on_progress` (the improving selection rides
    /// along on incumbent events) — the same anytime contract as the
    /// branch-and-bound backend.
    pub fn solve_warm_with_progress(
        &self,
        p: &BlockProblem,
        warm: Option<&WarmStart>,
        on_progress: impl FnMut(&SolveProgress, Option<&Vec<bool>>),
    ) -> (LagrangeResult, WarmStart) {
        let mut driver = SolveDriver::with_progress(self.budget, on_progress);
        driver.set_cancel(self.cancel.clone());
        let max_iters = self.budget.node_limit.unwrap_or(Self::DEFAULT_MAX_ITERS);
        let n = p.n_items;

        // --- flatten μ coordinates -----------------------------------------
        // offsets[(b,k,s)] → position of that slot's first choice in μ.
        let mut coord: Vec<(u32, u32, u32, u32)> = Vec::with_capacity(p.n_choices());
        // block_start[b] → position of block b's first choice coordinate;
        // each block's coordinates are contiguous, which is what lets the
        // per-block subproblems shard across threads on disjoint μ ranges.
        let mut block_start: Vec<usize> = Vec::with_capacity(p.blocks.len());
        for (b, block) in p.blocks.iter().enumerate() {
            block_start.push(coord.len());
            for (k, alt) in block.alts.iter().enumerate() {
                for (s, slot) in alt.slots.iter().enumerate() {
                    for &(item, _) in &slot.choices {
                        coord.push((b as u32, k as u32, s as u32, item));
                    }
                }
            }
        }
        let mut mu = vec![0.0f64; coord.len()];
        if let Some(w) = warm {
            for (c, m) in coord.iter().zip(mu.iter_mut()) {
                if let Some(v) = w.multipliers.get(c) {
                    *m = *v;
                }
            }
        }

        // --- initial primal -------------------------------------------------
        let mut best_sel = greedy_initial(p);
        if let Some(w) = warm {
            let mut cand = vec![false; n];
            for (a, &v) in w.selection.iter().take(n).enumerate() {
                cand[a] = v;
            }
            let value_proxy: Vec<f64> = vec![1.0; n];
            knapsack::repair_to_budget(
                &mut cand,
                &value_proxy,
                &p.item_size,
                p.budget.unwrap_or(f64::INFINITY),
            );
            if better(p, &cand, &best_sel) {
                best_sel = cand;
            }
        }
        let initial_ub = p.evaluate(&best_sel).expect("initial selection evaluates");
        driver.offer_incumbent(initial_ub, best_sel);

        let mut alpha = self.alpha0;
        let mut stall = 0usize;
        let mut g = vec![0.0f64; coord.len()];
        let mut m_acc = vec![0.0f64; n];
        let mut chosen: Vec<u32> = Vec::new();
        // Per-block subproblem results, reused across iterations.
        let mut block_vals = vec![0.0f64; p.blocks.len()];
        let mut block_choices: Vec<Vec<u32>> = vec![Vec::new(); p.blocks.len()];
        let workers = self.budget.parallelism.max(1).min(p.blocks.len().max(1));
        let mut blocks_done = 0usize;

        while driver.ticks() < max_iters {
            if driver.stop_status().is_some() {
                break;
            }
            driver.tick();

            // M_a = Σ μ over the item's choice coordinates.
            m_acc.fill(0.0);
            for (ci, &(_, _, _, item)) in coord.iter().enumerate() {
                m_acc[item as usize] += mu[ci];
            }

            // Query part: the per-block minima under μ-inflated γ — the
            // decomposed subproblems.  Blocks only couple through μ, so the
            // shard solves them on `workers` scoped threads over disjoint
            // result slices, then folds serially in block order: bit-for-bit
            // the serial result at any thread count.
            solve_block_shard(
                &p.blocks,
                &block_start,
                &mu,
                &mut block_vals,
                &mut block_choices,
                workers,
            );
            chosen.clear();
            let mut query_part = 0.0;
            for (b, &val) in block_vals.iter().enumerate() {
                debug_assert!(val.is_finite(), "block without feasible alternative");
                query_part += val;
                chosen.extend_from_slice(&block_choices[b]);
            }
            blocks_done += p.blocks.len();
            driver.set_decomposition(DecompositionProgress {
                blocks_done,
                blocks_total: p.blocks.len(),
                outer_iter: driver.ticks(),
            });

            // z subproblem: continuous knapsack over reduced costs.
            let zcost: Vec<f64> = (0..n).map(|a| p.item_cost[a] - m_acc[a]).collect();
            let (zobj, zfrac) = match p.budget {
                Some(b) => knapsack::continuous_min(&zcost, &p.item_size, b),
                None => {
                    let mut z = vec![0.0; n];
                    let mut obj = 0.0;
                    for a in 0..n {
                        if zcost[a] < 0.0 {
                            z[a] = 1.0;
                            obj += zcost[a];
                        }
                    }
                    (obj, z)
                }
            };
            let lb = query_part + zobj;
            if driver.raise_bound(lb) {
                stall = 0;
            } else {
                stall += 1;
                if stall > 20 {
                    alpha *= 0.5;
                    stall = 0;
                }
            }

            // Primal: round z, repair, evaluate.
            let mut cand: Vec<bool> = zfrac.iter().map(|v| *v >= 0.5).collect();
            knapsack::repair_to_budget(
                &mut cand,
                &m_acc,
                &p.item_size,
                p.budget.unwrap_or(f64::INFINITY),
            );
            if p.fits_budget(&cand) {
                if let Some(obj) = p.evaluate(&cand) {
                    driver.offer_incumbent(obj, cand);
                }
            }

            if driver.gap_reached() {
                break;
            }

            // Subgradient step.
            g.fill(0.0);
            for &cc in &chosen {
                g[cc as usize] += 1.0;
            }
            for (ci2, &(_, _, _, item)) in coord.iter().enumerate() {
                g[ci2] -= zfrac[item as usize];
            }
            let norm2: f64 = g.iter().map(|v| v * v).sum();
            if norm2 < 1e-14 {
                break;
            }
            let best_ub = driver.incumbent_objective();
            let target = (best_ub - lb).max(best_ub.abs() * 1e-4);
            let t = alpha * target / norm2;
            for (m, gi) in mu.iter_mut().zip(g.iter()) {
                *m = (*m + t * gi).max(0.0);
            }
            if alpha < 1e-6 {
                break;
            }
        }

        // Local search with the inverted index.
        if self.local_search_passes > 0 {
            let (mut ls_best, mut ls_sel) =
                driver.incumbent().map(|(obj, sel)| (*obj, sel.clone())).expect("primal exists");
            let inv = p.item_blocks();
            local_search(p, &inv, &mut ls_sel, &mut ls_best, self.local_search_passes);
            driver.offer_incumbent(ls_best, ls_sel);
        }

        let r = driver.finish();
        let (objective, best_sel) = r.incumbent.expect("initial incumbent always offered");
        let result = LagrangeResult {
            selected: best_sel.clone(),
            objective,
            bound: r.bound,
            gap: r.gap,
            iterations: r.ticks,
            trace: r.trace,
        };
        let mut wout = WarmStart { multipliers: HashMap::new(), selection: best_sel };
        for (ci, c) in coord.iter().enumerate() {
            if mu[ci] != 0.0 {
                wout.multipliers.insert(*c, mu[ci]);
            }
        }
        (result, wout)
    }
}

/// One decomposed subproblem: the minimum of block `b` under μ-inflated γ,
/// with `start` the block's first coordinate in the flat μ vector.  Writes
/// the winning choice coordinates into `out` (cleared first) and returns the
/// minimal value.  Pure in `(block, mu, start)`, which is what makes the
/// parallel shard deterministic.
fn block_minimum(block: &Block, mu: &[f64], start: usize, out: &mut Vec<u32>) -> f64 {
    out.clear();
    let mut best = f64::INFINITY;
    let mut scratch: Vec<u32> = Vec::new();
    let mut ci = start; // coordinate cursor; advances alt by alt
    for alt in &block.alts {
        // This alt's coords occupy [ci, ci + span), matching the flattening
        // order of `coord` in the solver.
        let alt_start = ci;
        ci += alt.slots.iter().map(|s| s.choices.len()).sum::<usize>();
        let mut val = alt.base;
        scratch.clear();
        let mut ok = true;
        let mut slot_ci = alt_start;
        for slot in &alt.slots {
            let mut sbest = slot.fallback;
            let mut sbest_ci: Option<u32> = None;
            for (off, &(_, gamma)) in slot.choices.iter().enumerate() {
                let inflated = gamma + mu[slot_ci + off];
                if sbest.is_none_or(|c| inflated < c) {
                    sbest = Some(inflated);
                    sbest_ci = Some((slot_ci + off) as u32);
                }
            }
            slot_ci += slot.choices.len();
            match sbest {
                Some(c) => {
                    val += c;
                    if let Some(cc) = sbest_ci {
                        scratch.push(cc);
                    }
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && val < best {
            best = val;
            std::mem::swap(out, &mut scratch);
        }
    }
    best
}

/// Solve every block subproblem for the current μ, writing values and
/// winning coordinates into `vals` / `choices` (one slot per block).
///
/// With `workers > 1` the blocks split into contiguous chunks, one scoped
/// thread each, writing through disjoint `split_at_mut` slices — no locks,
/// no result reordering.  The caller folds `vals` in block order, so the
/// parallel path is bit-identical to the serial one.
fn solve_block_shard(
    blocks: &[Block],
    starts: &[usize],
    mu: &[f64],
    vals: &mut [f64],
    choices: &mut [Vec<u32>],
    workers: usize,
) {
    if workers <= 1 || blocks.len() < 2 {
        for (b, block) in blocks.iter().enumerate() {
            vals[b] = block_minimum(block, mu, starts[b], &mut choices[b]);
        }
        return;
    }
    let chunk = blocks.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest_blocks = blocks;
        let mut rest_starts = starts;
        let mut rest_vals = vals;
        let mut rest_choices = choices;
        while !rest_blocks.is_empty() {
            let take = chunk.min(rest_blocks.len());
            let (cb, tb) = rest_blocks.split_at(take);
            let (cs, ts) = rest_starts.split_at(take);
            let (cv, tv) = std::mem::take(&mut rest_vals).split_at_mut(take);
            let (cc, tc) = std::mem::take(&mut rest_choices).split_at_mut(take);
            rest_blocks = tb;
            rest_starts = ts;
            rest_vals = tv;
            rest_choices = tc;
            scope.spawn(move || {
                for (i, block) in cb.iter().enumerate() {
                    cv[i] = block_minimum(block, mu, cs[i], &mut cc[i]);
                }
            });
        }
    });
}

/// Is `a` a strictly better feasible selection than `b`?
fn better(p: &BlockProblem, a: &[bool], b: &[bool]) -> bool {
    if !p.fits_budget(a) {
        return false;
    }
    match (p.evaluate(a), p.evaluate(b)) {
        (Some(ca), Some(cb)) => ca < cb,
        (Some(_), None) => true,
        _ => false,
    }
}

/// Marginal-gain greedy with lazy re-evaluation: repeatedly add the item
/// with the best exact cost reduction per byte until nothing helps or the
/// budget is exhausted.  Block costs are cached and only the blocks touching
/// a flipped item are re-costed; scores are managed lazily (pop, recompute,
/// re-push if stale) as in the accelerated greedy for submodular
/// maximization — marginal gains here are not exactly submodular, but close
/// enough that laziness rarely mis-orders candidates (and the subsequent
/// local search cleans up the rest).
fn greedy_initial(p: &BlockProblem) -> Vec<bool> {
    let inv = p.item_blocks();
    let budget = p.budget.unwrap_or(f64::INFINITY);
    let mut sel = vec![false; p.n_items];
    let mut cache: Vec<f64> =
        (0..p.blocks.len()).map(|b| p.block_cost(b, &sel).unwrap_or(f64::INFINITY)).collect();
    let mut used = 0.0f64;

    fn gain_per_byte(
        p: &BlockProblem,
        inv: &[Vec<u32>],
        cache: &[f64],
        sel: &mut [bool],
        a: usize,
    ) -> f64 {
        sel[a] = true;
        let mut delta = p.item_cost[a];
        for &b in &inv[a] {
            delta += p.block_cost(b as usize, sel).unwrap_or(f64::INFINITY) - cache[b as usize];
        }
        sel[a] = false;
        -delta / p.item_size[a].max(1.0)
    }

    // (score, item, stamp): stamp is the selection round the score was
    // computed in; stale scores are recomputed on pop.
    let mut heap: Vec<(f64, usize, usize)> = (0..p.n_items)
        .filter(|&a| p.item_size[a] <= budget)
        .map(|a| (gain_per_byte(p, &inv, &cache, &mut sel, a), a, 0))
        .collect();
    heap.retain(|(s, _, _)| *s > 0.0);
    heap.sort_by(|x, y| x.0.total_cmp(&y.0)); // ascending; best at the end
    let mut round = 0usize;

    while let Some((score, a, stamp)) = heap.pop() {
        if sel[a] || used + p.item_size[a] > budget + 1e-9 || score <= 0.0 {
            continue;
        }
        if stamp != round {
            let fresh = gain_per_byte(p, &inv, &cache, &mut sel, a);
            if fresh > 0.0 {
                // Binary-insert to keep the lazy queue ordered.
                let pos = heap.partition_point(|(s, _, _)| *s < fresh);
                heap.insert(pos, (fresh, a, round));
            }
            continue;
        }
        // Accept.
        sel[a] = true;
        used += p.item_size[a];
        for &b in &inv[a] {
            cache[b as usize] = p.block_cost(b as usize, &sel).unwrap_or(f64::INFINITY);
        }
        round += 1;
    }
    sel
}

/// Add/drop local search over the item→blocks inverted index: only blocks
/// touching the flipped item are re-costed.
fn local_search(
    p: &BlockProblem,
    inv: &[Vec<u32>],
    sel: &mut [bool],
    best: &mut f64,
    passes: usize,
) {
    let budget = p.budget.unwrap_or(f64::INFINITY);
    for _ in 0..passes {
        let mut improved = false;
        let mut used = p.size_of(sel);
        for a in 0..p.n_items {
            let flip_to = !sel[a];
            if flip_to && used + p.item_size[a] > budget + 1e-9 {
                continue;
            }
            // Delta over affected blocks only.
            let mut delta = if flip_to { p.item_cost[a] } else { -p.item_cost[a] };
            let before: f64 = inv[a]
                .iter()
                .map(|&b| p.block_cost(b as usize, sel).unwrap_or(f64::INFINITY))
                .sum();
            sel[a] = flip_to;
            let after: f64 = inv[a]
                .iter()
                .map(|&b| p.block_cost(b as usize, sel).unwrap_or(f64::INFINITY))
                .sum();
            delta += after - before;
            if delta < -1e-9 {
                *best += delta;
                used += if flip_to { p.item_size[a] } else { -p.item_size[a] };
                improved = true;
            } else {
                sel[a] = !flip_to; // revert
            }
        }
        if !improved {
            break;
        }
    }
    // Re-evaluate exactly to kill accumulated float drift.
    if let Some(exact) = p.evaluate(sel) {
        *best = exact;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Random block problem with guaranteed fallback alternatives.
    fn random_problem(seed: u64, n_items: usize, n_blocks: usize) -> BlockProblem {
        let mut rng = SmallRng::seed_from_u64(seed);
        let item_cost = (0..n_items).map(|_| rng.gen_range(0.0..2.0)).collect();
        let item_size = (0..n_items).map(|_| rng.gen_range(1.0..5.0)).collect();
        let mut blocks = Vec::new();
        for _ in 0..n_blocks {
            let mut alts = Vec::new();
            for _ in 0..rng.gen_range(1..4) {
                let mut slots = Vec::new();
                for _ in 0..rng.gen_range(1..4) {
                    let fallback = Some(rng.gen_range(5.0..50.0));
                    let mut choices = Vec::new();
                    for _ in 0..rng.gen_range(0..4) {
                        let item = rng.gen_range(0..n_items) as u32;
                        let g = rng.gen_range(0.5..40.0);
                        choices.push((item, g));
                    }
                    slots.push(SlotChoices { fallback, choices });
                }
                alts.push(Alt { base: rng.gen_range(1.0..20.0), slots });
            }
            blocks.push(Block { alts });
        }
        BlockProblem {
            n_items,
            item_cost,
            item_size,
            budget: Some(rng.gen_range(3.0..(n_items as f64 * 3.0))),
            blocks,
        }
    }

    /// Exhaustive optimum over item subsets (test oracle).
    fn brute_force(p: &BlockProblem) -> (f64, Vec<bool>) {
        assert!(p.n_items <= 16);
        let mut best = (f64::INFINITY, vec![false; p.n_items]);
        for mask in 0..(1u32 << p.n_items) {
            let sel: Vec<bool> = (0..p.n_items).map(|a| mask >> a & 1 == 1).collect();
            if !p.fits_budget(&sel) {
                continue;
            }
            if let Some(obj) = p.evaluate(&sel) {
                if obj < best.0 {
                    best = (obj, sel);
                }
            }
        }
        best
    }

    #[test]
    fn evaluate_hand_computed() {
        // One block, two alts; two items.
        let p = BlockProblem {
            n_items: 2,
            item_cost: vec![1.0, 0.0],
            item_size: vec![1.0, 1.0],
            budget: Some(2.0),
            blocks: vec![Block {
                alts: vec![
                    Alt {
                        base: 10.0,
                        slots: vec![SlotChoices {
                            fallback: Some(20.0),
                            choices: vec![(0, 5.0), (1, 8.0)],
                        }],
                    },
                    Alt {
                        base: 18.0,
                        slots: vec![SlotChoices { fallback: Some(4.0), choices: vec![] }],
                    },
                ],
            }],
        };
        // No items: min(10+20, 18+4) = 22.
        assert_eq!(p.evaluate(&[false, false]).unwrap(), 22.0);
        // Item 0: min(10+5, 22) + item_cost 1 = 16.
        assert_eq!(p.evaluate(&[true, false]).unwrap(), 16.0);
        // Item 1: min(10+8, 22) + 0 = 18.
        assert_eq!(p.evaluate(&[false, true]).unwrap(), 18.0);
    }

    #[test]
    fn bound_below_optimum_and_incumbent_feasible() {
        for seed in 0..8u64 {
            let p = random_problem(seed, 8, 12);
            let (opt, _) = brute_force(&p);
            let r = LagrangianSolver::new().solve(&p);
            assert!(
                r.bound <= opt + 1e-6,
                "seed {seed}: Lagrangian bound {} above optimum {opt}",
                r.bound
            );
            assert!(
                r.objective >= opt - 1e-6,
                "seed {seed}: incumbent {} below optimum {opt}?!",
                r.objective
            );
            assert!(p.fits_budget(&r.selected));
            assert!((p.evaluate(&r.selected).unwrap() - r.objective).abs() < 1e-6);
        }
    }

    #[test]
    fn finds_optimum_on_small_instances() {
        let mut hits = 0;
        for seed in 0..10u64 {
            let p = random_problem(100 + seed, 6, 8);
            let (opt, _) = brute_force(&p);
            let solver = LagrangianSolver {
                budget: SolveBudget::exact().with_nodes(800),
                ..Default::default()
            };
            let r = solver.solve(&p);
            if (r.objective - opt).abs() < 1e-6 {
                hits += 1;
            }
        }
        assert!(hits >= 8, "heuristic+LS should hit the optimum almost always: {hits}/10");
    }

    #[test]
    fn progress_stream_matches_branch_bound_contract() {
        let p = random_problem(21, 10, 25);
        let mut events = 0usize;
        let mut prev_gap = f64::INFINITY;
        let (r, _) = LagrangianSolver::new().solve_warm_with_progress(&p, None, |pr, sel| {
            events += 1;
            assert!(pr.gap <= prev_gap + 1e-12, "gap series must be non-increasing");
            prev_gap = pr.gap;
            assert!(pr.incumbent >= pr.bound - 1e-9);
            if let Some(sel) = sel {
                assert!(p.fits_budget(sel), "streamed incumbent must fit the budget");
                let exact = p.evaluate(sel).expect("streamed incumbent evaluates");
                assert!((exact - pr.incumbent).abs() < 1e-6);
            }
        });
        assert!(events > 0);
        assert_eq!(events, r.trace.len());
    }

    #[test]
    fn parallel_block_shard_is_bit_identical_to_serial() {
        for seed in [3u64, 21, 77] {
            let p = random_problem(seed, 12, 40);
            let serial = LagrangianSolver {
                budget: SolveBudget::within(0.01).with_parallelism(1),
                ..Default::default()
            }
            .solve(&p);
            for k in [2usize, 4, 7] {
                let par = LagrangianSolver {
                    budget: SolveBudget::within(0.01).with_parallelism(k),
                    ..Default::default()
                }
                .solve(&p);
                assert_eq!(
                    serial.objective.to_bits(),
                    par.objective.to_bits(),
                    "seed {seed} k={k}: objectives diverge"
                );
                assert_eq!(
                    serial.bound.to_bits(),
                    par.bound.to_bits(),
                    "seed {seed} k={k}: bounds diverge"
                );
                assert_eq!(serial.selected, par.selected, "seed {seed} k={k}");
                assert_eq!(serial.iterations, par.iterations, "seed {seed} k={k}");
            }
        }
    }

    #[test]
    fn decomposition_progress_streams_through_events() {
        let p = random_problem(31, 10, 25);
        let n_blocks = p.blocks.len();
        let solver = LagrangianSolver {
            budget: SolveBudget::within(0.001).with_parallelism(3),
            ..Default::default()
        };
        let mut decomposed_events = 0usize;
        let mut prev_done = 0usize;
        let (r, _) = solver.solve_warm_with_progress(&p, None, |pr, _| {
            if let Some(d) = pr.decomposition {
                decomposed_events += 1;
                assert_eq!(d.blocks_total, n_blocks);
                assert!(d.blocks_done >= prev_done, "blocks_done must be cumulative");
                assert_eq!(d.blocks_done, d.outer_iter * n_blocks);
                assert!(d.outer_iter <= pr.ticks);
                prev_done = d.blocks_done;
            }
        });
        // The initial greedy incumbent precedes the first outer iteration
        // (no decomposition yet); everything after the first iteration
        // must carry the typed decomposition state.
        assert!(decomposed_events > 0, "no decomposition progress observed");
        assert_eq!(prev_done, r.iterations * n_blocks);
    }

    #[test]
    fn gap_trace_is_anytime_consistent() {
        let p = random_problem(42, 12, 30);
        let r = LagrangianSolver::new().solve(&p);
        let mut prev_inc = f64::INFINITY;
        let mut prev_bound = f64::NEG_INFINITY;
        for pt in &r.trace {
            assert!(pt.incumbent <= prev_inc + 1e-9, "incumbent must not regress");
            assert!(pt.bound >= prev_bound - 1e-9, "bound must not regress");
            prev_inc = pt.incumbent;
            prev_bound = pt.bound;
        }
        assert!(r.gap >= 0.0);
    }

    #[test]
    fn warm_start_converges_faster() {
        let p = random_problem(77, 14, 40);
        let solver = LagrangianSolver { budget: SolveBudget::within(0.01), ..Default::default() };
        let (r1, warm) = solver.solve_warm(&p, None);
        let (r2, _) = solver.solve_warm(&p, Some(&warm));
        // Warm-started solve must not do worse, and usually does far less work.
        assert!(r2.objective <= r1.objective + 1e-6);
        assert!(
            r2.iterations <= r1.iterations,
            "warm start took more iterations: {} > {}",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn budget_zero_selects_nothing_positive_size() {
        let mut p = random_problem(5, 6, 6);
        p.budget = Some(0.0);
        let r = LagrangianSolver::new().solve(&p);
        assert!(r.selected.iter().all(|s| !s));
    }

    #[test]
    fn unbudgeted_problem_takes_all_useful_items() {
        let mut p = random_problem(9, 6, 10);
        p.budget = None;
        p.item_cost = vec![0.0; 6]; // free items
        let r = LagrangianSolver::new().solve(&p);
        // With zero cost and no budget, selecting everything is optimal;
        // the solver must find something at least as good.
        let all = vec![true; 6];
        let best_possible = p.evaluate(&all).unwrap();
        assert!(r.objective <= best_possible + 1e-6);
    }

    #[test]
    fn fixings_fold_exactly_into_the_block_form() {
        for seed in 0..6u64 {
            let p = random_problem(300 + seed, 8, 10);
            let mut fixed = vec![None; 8];
            fixed[0] = Some(true);
            fixed[1] = Some(false);
            let Some(fx) = p.with_fixings(&fixed) else {
                continue; // pinned item alone overflows this seed's budget
            };
            // Budget bookkeeping: pinned size is pre-charged.
            assert!(
                (fx.problem.budget.unwrap() - (p.budget.unwrap() - p.item_size[0]).max(0.0)).abs()
                    < 1e-9
            );
            assert_eq!(fx.problem.item_size[0], 0.0);
            assert_eq!(fx.problem.item_cost[1], 0.0);
            // Any selection respecting the fixings costs the same in the
            // reduced problem (plus the pinned constant) as in the original.
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                let mut sel: Vec<bool> = (0..8).map(|_| rng.gen_bool(0.5)).collect();
                fx.apply_to_selection(&mut sel);
                assert!(sel[0] && !sel[1]);
                let orig = p.evaluate(&sel);
                let reduced = fx.problem.evaluate(&sel).map(|v| v + fx.pinned_cost);
                match (orig, reduced) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6, "{a} vs {b}"),
                    (a, b) => assert_eq!(a.is_some(), b.is_some()),
                }
            }
            // Solving the reduced problem yields the fixed-optimal objective.
            let (r, _) = LagrangianSolver::new().solve_warm(&fx.problem, None);
            let mut sel = r.selected.clone();
            fx.apply_to_selection(&mut sel);
            let restricted_opt = {
                let mut best = f64::INFINITY;
                for mask in 0..(1u32 << 8) {
                    let s: Vec<bool> = (0..8).map(|a| mask >> a & 1 == 1).collect();
                    if !s[0] || s[1] || !p.fits_budget(&s) {
                        continue;
                    }
                    if let Some(obj) = p.evaluate(&s) {
                        best = best.min(obj);
                    }
                }
                best
            };
            let achieved = p.evaluate(&sel).expect("fixed selection evaluates");
            assert!(p.fits_budget(&sel));
            assert!(
                achieved >= restricted_opt - 1e-6,
                "seed {seed}: {achieved} below restricted optimum {restricted_opt}?!"
            );
            assert!((achieved - (r.objective + fx.pinned_cost)).abs() < 1e-6);
        }
    }

    #[test]
    fn infeasible_pins_are_reported() {
        let mut p = random_problem(17, 5, 5);
        p.budget = Some(0.5);
        let fixed = vec![Some(true), None, None, None, None];
        assert!(p.item_size[0] > 0.5);
        assert!(p.with_fixings(&fixed).is_none());
    }

    #[test]
    fn inverted_index_is_complete() {
        let p = random_problem(13, 10, 20);
        let inv = p.item_blocks();
        for (b, block) in p.blocks.iter().enumerate() {
            for alt in &block.alts {
                for slot in &alt.slots {
                    for &(item, _) in &slot.choices {
                        assert!(
                            inv[item as usize].contains(&(b as u32)),
                            "missing block {b} for item {item}"
                        );
                    }
                }
            }
        }
    }
}
