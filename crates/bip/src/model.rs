//! Sparse BIP model builder.
//!
//! All variables are binary (`{0, 1}`); the LP relaxation solves over
//! `[0, 1]`.  The model supports *incremental extension* — adding variables
//! and constraints after a solve — which is the "delta" interface CoPhy's
//! interactive tuning uses (§4.2): the solver keeps its incumbent and
//! multiplier state, only the new parts are fresh.

use serde::{Deserialize, Serialize};

/// Identifier of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

/// Identifier of a model constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConstrId(pub u32);

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    Le,
    Ge,
    Eq,
}

/// A sparse linear expression `Σ coeff · var`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    pub terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    pub fn new() -> Self {
        LinExpr::default()
    }

    pub fn term(mut self, v: VarId, c: f64) -> Self {
        self.terms.push((v, c));
        self
    }

    pub fn add(&mut self, v: VarId, c: f64) {
        self.terms.push((v, c));
    }

    /// Merge duplicate variables and drop zero coefficients.
    pub fn normalize(&mut self) {
        self.terms.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| c.abs() > 0.0);
        self.terms = out;
    }

    /// Evaluate under a 0/1 (or fractional) assignment.
    pub fn value(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|(v, c)| c * x[v.0 as usize]).sum()
    }
}

/// One linear constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    pub expr: LinExpr,
    pub sense: Sense,
    pub rhs: f64,
}

impl Constraint {
    /// Is the constraint satisfied by `x` within `tol`?
    pub fn satisfied(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.expr.value(x);
        match self.sense {
            Sense::Le => lhs <= self.rhs + tol,
            Sense::Ge => lhs >= self.rhs - tol,
            Sense::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A binary integer program `min cᵀx  s.t.  Ax {≤,=,≥} b, x ∈ {0,1}ⁿ`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Model {
    objective: Vec<f64>,
    names: Vec<String>,
    constraints: Vec<Constraint>,
}

impl Model {
    pub fn new() -> Self {
        Model::default()
    }

    /// Add a binary variable with the given objective coefficient.
    pub fn add_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        let id = VarId(self.objective.len() as u32);
        self.objective.push(obj);
        self.names.push(name.into());
        id
    }

    /// Add a constraint (the expression is normalized in place).
    pub fn add_constraint(&mut self, mut expr: LinExpr, sense: Sense, rhs: f64) -> ConstrId {
        expr.normalize();
        debug_assert!(
            expr.terms.iter().all(|(v, _)| (v.0 as usize) < self.objective.len()),
            "constraint references unknown variable"
        );
        let id = ConstrId(self.constraints.len() as u32);
        self.constraints.push(Constraint { expr, sense, rhs });
        id
    }

    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    pub fn set_objective(&mut self, v: VarId, obj: f64) {
        self.objective[v.0 as usize] = obj;
    }

    /// Replace the whole objective vector (one λ step of a Pareto sweep).
    /// Panics if `coeffs` does not cover every variable.
    pub fn set_objective_coeffs(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.objective.len(), "objective vector must cover all vars");
        self.objective.copy_from_slice(coeffs);
    }

    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0 as usize]
    }

    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    pub fn constraint(&self, c: ConstrId) -> &Constraint {
        &self.constraints[c.0 as usize]
    }

    /// Replace one constraint's right-hand side in place (the
    /// tighten/relax-RHS delta of interactive re-optimization).  The row's
    /// expression and sense are untouched, so a basis snapshotted on the old
    /// RHS stays structurally valid — and dual feasible, since reduced costs
    /// do not depend on `b`.
    pub fn set_rhs(&mut self, c: ConstrId, rhs: f64) {
        self.constraints[c.0 as usize].rhs = rhs;
    }

    /// Neutralize one constraint in place: the row keeps its sense but loses
    /// all terms and its RHS becomes 0, so it reads `0 {≤,=,≥} 0` — trivially
    /// satisfied by every point.  Used by the delta interface to *drop* a row
    /// without renumbering the remaining [`ConstrId`]s — the row count and
    /// slack layout are unchanged, but the structural columns are, so
    /// warm-start snapshots taken before the drop must be discarded.
    pub fn relax_constraint(&mut self, c: ConstrId) {
        let row = &mut self.constraints[c.0 as usize];
        row.expr = LinExpr::new();
        row.rhs = 0.0;
    }

    /// Objective value of an assignment.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_vars());
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Are all constraints satisfied by `x` within `tol`?
    pub fn feasible(&self, x: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| c.satisfied(x, tol))
    }

    /// Indices of constraints violated by `x`.
    pub fn violated(&self, x: &[f64], tol: f64) -> Vec<ConstrId> {
        self.constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.satisfied(x, tol))
            .map(|(i, _)| ConstrId(i as u32))
            .collect()
    }

    /// Exhaustive optimum over all 2ⁿ assignments — test oracle only.
    ///
    /// Panics if the model has more than 24 variables.
    pub fn brute_force(&self) -> Option<(f64, Vec<f64>)> {
        let n = self.n_vars();
        assert!(n <= 24, "brute force is a test oracle for tiny models");
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut x = vec![0.0; n];
        for mask in 0..(1u64 << n) {
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = f64::from((mask >> i & 1) as u32);
            }
            if !self.feasible(&x, 1e-9) {
                continue;
            }
            let obj = self.objective_value(&x);
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, x.clone()));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_normalize_merges_and_drops() {
        let mut e = LinExpr::new().term(VarId(1), 2.0).term(VarId(0), 1.0).term(VarId(1), -2.0);
        e.normalize();
        assert_eq!(e.terms, vec![(VarId(0), 1.0)]);
    }

    #[test]
    fn model_build_and_evaluate() {
        let mut m = Model::new();
        let a = m.add_var("a", 3.0);
        let b = m.add_var("b", -1.0);
        m.add_constraint(LinExpr::new().term(a, 1.0).term(b, 1.0), Sense::Le, 1.0);
        assert_eq!(m.n_vars(), 2);
        assert_eq!(m.n_constraints(), 1);
        assert_eq!(m.var_name(a), "a");
        let x = vec![1.0, 0.0];
        assert_eq!(m.objective_value(&x), 3.0);
        assert!(m.feasible(&x, 1e-9));
        assert!(!m.feasible(&[1.0, 1.0], 1e-9));
        assert_eq!(m.violated(&[1.0, 1.0], 1e-9).len(), 1);
    }

    #[test]
    fn constraint_senses() {
        let e = LinExpr::new().term(VarId(0), 1.0);
        let le = Constraint { expr: e.clone(), sense: Sense::Le, rhs: 0.5 };
        let ge = Constraint { expr: e.clone(), sense: Sense::Ge, rhs: 0.5 };
        let eq = Constraint { expr: e, sense: Sense::Eq, rhs: 1.0 };
        assert!(le.satisfied(&[0.0], 1e-9) && !le.satisfied(&[1.0], 1e-9));
        assert!(!ge.satisfied(&[0.0], 1e-9) && ge.satisfied(&[1.0], 1e-9));
        assert!(eq.satisfied(&[1.0], 1e-9) && !eq.satisfied(&[0.0], 1e-9));
    }

    #[test]
    fn brute_force_oracle() {
        // min −x − y  s.t. x + y ≤ 1  → optimum −1.
        let mut m = Model::new();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0).term(y, 1.0), Sense::Le, 1.0);
        let (obj, sol) = m.brute_force().unwrap();
        assert_eq!(obj, -1.0);
        assert_eq!(sol.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn brute_force_detects_infeasible() {
        let mut m = Model::new();
        let x = m.add_var("x", 1.0);
        m.add_constraint(LinExpr::new().term(x, 1.0), Sense::Ge, 2.0);
        assert!(m.brute_force().is_none());
    }
}
