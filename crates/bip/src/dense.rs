//! The pre-sparse dense simplex engine, retained as a reference oracle.
//!
//! This is the PR-6 production engine verbatim: an explicit dense `B⁻¹`
//! updated by O(m²) product-form pivots, Dantzig pricing with a Bland
//! anti-cycling fallback, and the plain (non-bound-flipping) dual ratio
//! test.  It is kept for two reasons:
//!
//! 1. **Differential testing** — the proptest equivalence suite solves the
//!    same random LPs and pinch chains on both engines and requires equal
//!    verdicts and objectives, which pins the sparse kernel's semantics to
//!    a known-good implementation.
//! 2. **Benchmark baseline** — `solver_smoke` runs one dense config so the
//!    ≥10× pivots/sec speedup gate in `BENCH_solver.json` is measured
//!    against the engine this PR replaced, not against a guess.
//!
//! Select it with [`LpEngine::Dense`](crate::LpEngine) on
//! [`SimplexSolver`](crate::SimplexSolver) /
//! [`DualSimplex`](crate::DualSimplex); nothing in the production solve
//! path constructs it implicitly.

#![allow(clippy::needless_range_loop)]

use crate::dual::DualSimplex;
use crate::model::{Model, Sense};
use crate::simplex::{
    Basis, LpResult, LpStatus, SimplexSolver, VarState, DEADLINE_CHECK_INTERVAL, PIVOT_TOL,
    REFACTOR_EVERY,
};

/// Dense standard-form workspace: the old `Tableau` with an explicit
/// row-major `B⁻¹`.
pub(crate) struct DenseTableau {
    cols: Vec<Vec<(usize, f64)>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    rhs: Vec<f64>,
    n_structural: usize,
    n_artificial_start: usize,
    m: usize,
    state: Vec<VarState>,
    basis: Vec<usize>,
    binv: Vec<f64>, // m×m row-major
    xb: Vec<f64>,
    refactorizations: usize,
}

impl DenseTableau {
    fn build(model: &Model, lo: &[f64], hi: &[f64]) -> DenseTableau {
        let n = model.n_vars();
        let m = model.n_constraints();
        assert_eq!(lo.len(), n);
        assert_eq!(hi.len(), n);

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut rhs = Vec::with_capacity(m);
        for (i, c) in model.constraints().iter().enumerate() {
            for &(v, a) in &c.expr.terms {
                cols[v.0 as usize].push((i, a));
            }
            rhs.push(c.rhs);
        }
        let mut lo = lo.to_vec();
        let mut hi = hi.to_vec();

        for (i, c) in model.constraints().iter().enumerate() {
            let coeff = match c.sense {
                Sense::Le => 1.0,
                Sense::Ge => -1.0,
                Sense::Eq => continue,
            };
            cols.push(vec![(i, coeff)]);
            lo.push(0.0);
            hi.push(f64::INFINITY);
        }
        let n_artificial_start = cols.len();

        for i in 0..m {
            cols.push(vec![(i, 1.0)]);
            lo.push(0.0);
            hi.push(f64::INFINITY);
        }

        let total = cols.len();
        DenseTableau {
            cols,
            lo,
            hi,
            rhs,
            n_structural: n,
            n_artificial_start,
            m,
            state: vec![VarState::Lower; total],
            basis: Vec::new(),
            binv: Vec::new(),
            xb: Vec::new(),
            refactorizations: 0,
        }
    }

    fn nb_value(&self, j: usize) -> f64 {
        match self.state[j] {
            VarState::Lower => self.lo[j],
            VarState::Upper => self.hi[j],
            VarState::Basic => unreachable!("basic variable has no bound value"),
        }
    }

    fn snapshot(&self) -> Basis {
        Basis {
            state: self.state.clone(),
            basis: self.basis.clone(),
            art_sigma: (0..self.m).map(|i| self.cols[self.n_artificial_start + i][0].1).collect(),
            n_structural: self.n_structural,
        }
    }

    fn restore(&mut self, b: &Basis) -> bool {
        if b.n_structural != self.n_structural
            || b.state.len() != self.cols.len()
            || b.basis.len() != self.m
            || b.art_sigma.len() != self.m
        {
            return false;
        }
        self.state.copy_from_slice(&b.state);
        self.basis.clone_from(&b.basis);
        self.binv = vec![0.0; self.m * self.m];
        self.xb = vec![0.0; self.m];
        for (i, &sigma) in b.art_sigma.iter().enumerate() {
            self.cols[self.n_artificial_start + i][0].1 = sigma;
        }
        for j in self.n_artificial_start..self.cols.len() {
            self.hi[j] = 0.0;
        }
        self.refactor()
    }

    fn init_basis(&mut self) {
        let mut r = self.rhs.clone();
        for j in 0..self.n_artificial_start {
            let v = self.lo[j];
            if v != 0.0 {
                for &(i, a) in &self.cols[j] {
                    r[i] -= a * v;
                }
            }
            self.state[j] = VarState::Lower;
        }
        self.basis = (0..self.m).map(|i| self.n_artificial_start + i).collect();
        self.binv = vec![0.0; self.m * self.m];
        self.xb = vec![0.0; self.m];
        for i in 0..self.m {
            let art = self.n_artificial_start + i;
            let sigma = if r[i] >= 0.0 { 1.0 } else { -1.0 };
            self.cols[art][0].1 = sigma;
            self.binv[i * self.m + i] = sigma;
            self.xb[i] = r[i].abs();
            self.state[art] = VarState::Basic;
        }
    }

    /// `w = B⁻¹ · col_j` (dense row sweeps).
    fn ftran(&self, j: usize, w: &mut [f64]) {
        w.fill(0.0);
        for &(r, a) in &self.cols[j] {
            if a == 0.0 {
                continue;
            }
            for i in 0..self.m {
                w[i] += self.binv[i * self.m + r] * a;
            }
        }
    }

    fn duals(&self, cost: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        for (k, &bv) in self.basis.iter().enumerate() {
            let cb = cost[bv];
            if cb == 0.0 {
                continue;
            }
            let row = &self.binv[k * self.m..(k + 1) * self.m];
            for i in 0..self.m {
                y[i] += cb * row[i];
            }
        }
    }

    fn reduced_cost(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let mut d = cost[j];
        for &(i, a) in &self.cols[j] {
            d -= y[i] * a;
        }
        d
    }

    /// Rebuild `B⁻¹` and `x_B` from scratch (Gauss-Jordan with partial
    /// pivoting).  Returns false if the basis matrix is numerically singular.
    fn refactor(&mut self) -> bool {
        let m = self.m;
        let mut a = vec![0.0; m * m];
        for (k, &bv) in self.basis.iter().enumerate() {
            for &(i, v) in &self.cols[bv] {
                a[i * m + k] = v;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = a[col * m + col].abs();
            for r in (col + 1)..m {
                let v = a[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return false;
            }
            if piv != col {
                for c in 0..m {
                    a.swap(col * m + c, piv * m + c);
                    inv.swap(col * m + c, piv * m + c);
                }
            }
            let d = a[col * m + col];
            for c in 0..m {
                a[col * m + c] /= d;
                inv[col * m + c] /= d;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for c in 0..m {
                    a[r * m + c] -= f * a[col * m + c];
                    inv[r * m + c] -= f * inv[col * m + c];
                }
            }
        }
        self.binv = inv;
        self.refactorizations += 1;
        self.recompute_xb();
        true
    }

    fn recompute_xb(&mut self) {
        let mut r = self.rhs.clone();
        for j in 0..self.cols.len() {
            if self.state[j] == VarState::Basic {
                continue;
            }
            let v = self.nb_value(j);
            if v != 0.0 && v.is_finite() {
                for &(i, a) in &self.cols[j] {
                    r[i] -= a * v;
                }
            }
        }
        for i in 0..self.m {
            let mut s = 0.0;
            let row = &self.binv[i * self.m..(i + 1) * self.m];
            for k in 0..self.m {
                s += row[k] * r[k];
            }
            self.xb[i] = s;
        }
    }

    /// Product-form update of `B⁻¹` on pivot `w[r]`.
    fn pivot_binv(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let piv = w[r];
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = w[i] / piv;
            if f == 0.0 {
                continue;
            }
            let (head, tail) = self.binv.split_at_mut(r.max(i) * m);
            let (row_i, row_r) = if i < r {
                (&mut head[i * m..(i + 1) * m], &tail[..m])
            } else {
                (&mut tail[..m], &head[r * m..(r + 1) * m])
            };
            for k in 0..m {
                row_i[k] -= f * row_r[k];
            }
        }
        for k in 0..m {
            self.binv[r * m + k] /= piv;
        }
    }

    /// The old primal loop: Dantzig pricing with a Bland fallback.
    fn run(
        &mut self,
        cost: &[f64],
        tol: f64,
        max_iters: usize,
        deadline: Option<std::time::Instant>,
    ) -> (LpStatus, usize) {
        let m = self.m;
        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut degenerate_run = 0usize;
        let mut since_refactor = 0usize;

        for iter in 0..max_iters {
            if iter % DEADLINE_CHECK_INTERVAL == 0 {
                if let Some(dl) = deadline {
                    if std::time::Instant::now() >= dl {
                        return (LpStatus::IterLimit, iter);
                    }
                }
            }
            self.duals(cost, &mut y);

            let bland = degenerate_run > 2 * (m + 16);
            let mut entering: Option<(usize, f64, f64)> = None; // (j, d, score)
            for j in 0..self.cols.len() {
                if self.state[j] == VarState::Basic || self.lo[j] >= self.hi[j] {
                    continue;
                }
                let d = self.reduced_cost(cost, &y, j);
                let improving = match self.state[j] {
                    VarState::Lower => d < -tol,
                    VarState::Upper => d > tol,
                    VarState::Basic => false,
                };
                if !improving {
                    continue;
                }
                if bland {
                    entering = Some((j, d, d.abs()));
                    break;
                }
                let score = d.abs();
                if entering.as_ref().is_none_or(|(_, _, s)| score > *s) {
                    entering = Some((j, d, score));
                }
            }
            let Some((j, _d, _)) = entering else {
                return (LpStatus::Optimal, iter);
            };

            let sigma = if self.state[j] == VarState::Lower { 1.0 } else { -1.0 };
            self.ftran(j, &mut w);

            let mut t_max = self.hi[j] - self.lo[j];
            let mut leaving: Option<(usize, VarState)> = None;
            for i in 0..m {
                let delta = sigma * w[i];
                let bv = self.basis[i];
                if delta > PIVOT_TOL {
                    let room = self.xb[i] - self.lo[bv];
                    let limit = (room / delta).max(0.0);
                    if limit < t_max - 1e-12 || (bland && limit <= t_max && leaving.is_none()) {
                        t_max = limit;
                        leaving = Some((i, VarState::Lower));
                    }
                } else if delta < -PIVOT_TOL && self.hi[bv].is_finite() {
                    let room = self.hi[bv] - self.xb[i];
                    let limit = (room / -delta).max(0.0);
                    if limit < t_max - 1e-12 {
                        t_max = limit;
                        leaving = Some((i, VarState::Upper));
                    }
                }
            }

            if t_max.is_infinite() {
                return (LpStatus::Unbounded, iter);
            }
            degenerate_run = if t_max <= 1e-10 { degenerate_run + 1 } else { 0 };

            for i in 0..m {
                self.xb[i] -= sigma * t_max * w[i];
            }
            match leaving {
                None => {
                    self.state[j] = if self.state[j] == VarState::Lower {
                        VarState::Upper
                    } else {
                        VarState::Lower
                    };
                }
                Some((r, leave_to)) => {
                    let old = self.basis[r];
                    let entering_val = match self.state[j] {
                        VarState::Lower => self.lo[j] + t_max,
                        VarState::Upper => self.hi[j] - t_max,
                        VarState::Basic => unreachable!(),
                    };
                    self.state[old] = leave_to;
                    self.state[j] = VarState::Basic;
                    self.basis[r] = j;
                    debug_assert!(w[r].abs() > PIVOT_TOL * 0.1);
                    self.pivot_binv(r, &w);
                    self.xb[r] = entering_val;

                    since_refactor += 1;
                    if since_refactor >= REFACTOR_EVERY {
                        since_refactor = 0;
                        if !self.refactor() {
                            return (LpStatus::Singular, iter);
                        }
                    }
                }
            }
        }
        (LpStatus::IterLimit, max_iters)
    }

    fn structural_x(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_structural];
        for (j, xi) in x.iter_mut().enumerate() {
            *xi = match self.state[j] {
                VarState::Lower => self.lo[j],
                VarState::Upper => self.hi[j],
                VarState::Basic => {
                    let r = self.basis.iter().position(|&b| b == j).expect("basic var in basis");
                    self.xb[r]
                }
            };
        }
        x
    }
}

/// The old two-phase primal solve on the dense tableau.  The caller
/// ([`SimplexSolver::solve`]) has already handled the no-constraint shortcut
/// and the expired-deadline entry check.
pub(crate) fn dense_solve(
    solver: &SimplexSolver,
    model: &Model,
    lo: &[f64],
    hi: &[f64],
) -> LpResult {
    let n = model.n_vars();
    let mut t = DenseTableau::build(model, lo, hi);
    t.init_basis();

    let mut phase1_cost = vec![0.0; t.cols.len()];
    for j in t.n_artificial_start..t.cols.len() {
        phase1_cost[j] = 1.0;
    }
    let (s1, it1) = t.run(&phase1_cost, solver.tol, solver.max_iters, solver.deadline);
    if matches!(s1, LpStatus::IterLimit | LpStatus::Singular) {
        return LpResult {
            status: s1,
            x: vec![0.0; n],
            objective: f64::INFINITY,
            iterations: it1,
            basis: None,
            refactorizations: t.refactorizations,
            devex_resets: 0,
            factor_recoveries: 0,
        };
    }
    let infeas: f64 = t
        .basis
        .iter()
        .enumerate()
        .filter(|(_, &bv)| bv >= t.n_artificial_start)
        .map(|(i, _)| t.xb[i].max(0.0))
        .sum();
    if infeas > 1e-6 {
        return LpResult {
            status: LpStatus::Infeasible,
            x: vec![0.0; n],
            objective: f64::INFINITY,
            iterations: it1,
            basis: None,
            refactorizations: t.refactorizations,
            devex_resets: 0,
            factor_recoveries: 0,
        };
    }

    for j in t.n_artificial_start..t.cols.len() {
        t.hi[j] = 0.0;
        if t.state[j] != VarState::Basic {
            t.state[j] = VarState::Lower;
        }
    }
    let mut phase2_cost = vec![0.0; t.cols.len()];
    phase2_cost[..n].copy_from_slice(model.objective());
    let (s2, it2) = t.run(&phase2_cost, solver.tol, solver.max_iters, solver.deadline);

    let x = t.structural_x();
    let objective = model.objective_value(&x);
    let basis = (s2 == LpStatus::Optimal).then(|| t.snapshot());
    LpResult {
        status: s2,
        x,
        objective,
        iterations: it1 + it2,
        basis,
        refactorizations: t.refactorizations,
        devex_resets: 0,
        factor_recoveries: 0,
    }
}

/// The old dual-simplex re-solve (most-violated leaving row, plain dual
/// ratio test, no bound flipping) on the dense tableau.
pub(crate) fn dense_resolve(
    dual: &DualSimplex,
    model: &Model,
    lo: &[f64],
    hi: &[f64],
    basis: &Basis,
) -> Option<LpResult> {
    let mut t = DenseTableau::build(model, lo, hi);
    if !t.restore(basis) {
        return None;
    }
    let n = model.n_vars();
    let mut cost = vec![0.0; t.cols.len()];
    cost[..n].copy_from_slice(model.objective());
    let (status, iterations) = run_dual_dense(dual, &mut t, &cost);
    let x = t.structural_x();
    let objective = model.objective_value(&x);
    let snap = (status == LpStatus::Optimal).then(|| t.snapshot());
    Some(LpResult {
        status,
        x,
        objective,
        iterations,
        basis: snap,
        refactorizations: t.refactorizations,
        devex_resets: 0,
        factor_recoveries: 0,
    })
}

fn run_dual_dense(dual: &DualSimplex, t: &mut DenseTableau, cost: &[f64]) -> (LpStatus, usize) {
    let m = t.m;
    let mut y = vec![0.0; m];
    let mut rho = vec![0.0; m];
    let mut w = vec![0.0; m];
    let mut since_refactor = 0usize;

    for iter in 0..dual.max_iters {
        if iter % DEADLINE_CHECK_INTERVAL == 0 {
            if let Some(dl) = dual.deadline {
                if std::time::Instant::now() >= dl {
                    return (LpStatus::IterLimit, iter);
                }
            }
        }

        // Leaving row: the most violated basic variable.
        let mut leave: Option<(usize, f64, VarState)> = None;
        for i in 0..m {
            let bv = t.basis[i];
            let below = t.lo[bv] - t.xb[i];
            let above = t.xb[i] - t.hi[bv];
            if below > dual.tol && leave.as_ref().is_none_or(|(_, v, _)| below > *v) {
                leave = Some((i, below, VarState::Lower));
            }
            if above > dual.tol && leave.as_ref().is_none_or(|(_, v, _)| above > *v) {
                leave = Some((i, above, VarState::Upper));
            }
        }
        let Some((r, _, leave_to)) = leave else {
            return (LpStatus::Optimal, iter);
        };

        rho.copy_from_slice(&t.binv[r * m..(r + 1) * m]);
        t.duals(cost, &mut y);

        let increase = leave_to == VarState::Lower;
        let mut entering: Option<(usize, f64)> = None; // (j, ratio)
        for j in 0..t.cols.len() {
            if t.state[j] == VarState::Basic || t.lo[j] >= t.hi[j] {
                continue;
            }
            let alpha: f64 = t.cols[j].iter().map(|&(i, a)| rho[i] * a).sum();
            if alpha.abs() <= PIVOT_TOL {
                continue;
            }
            let eligible = match (t.state[j], increase) {
                (VarState::Lower, true) | (VarState::Upper, false) => alpha < 0.0,
                (VarState::Upper, true) | (VarState::Lower, false) => alpha > 0.0,
                (VarState::Basic, _) => false,
            };
            if !eligible {
                continue;
            }
            let d = t.reduced_cost(cost, &y, j);
            let dmag = match t.state[j] {
                VarState::Lower => d.max(0.0),
                VarState::Upper => (-d).max(0.0),
                VarState::Basic => unreachable!(),
            };
            let ratio = dmag / alpha.abs();
            if entering.as_ref().is_none_or(|&(_, best)| ratio < best - 1e-12) {
                entering = Some((j, ratio));
            }
        }
        let Some((j, _)) = entering else {
            return (LpStatus::Infeasible, iter);
        };

        let bv = t.basis[r];
        let delta = match leave_to {
            VarState::Lower => t.xb[r] - t.lo[bv],
            VarState::Upper => t.xb[r] - t.hi[bv],
            VarState::Basic => unreachable!(),
        };
        t.ftran(j, &mut w);
        let alpha = w[r];
        if alpha.abs() <= PIVOT_TOL {
            return (LpStatus::Singular, iter);
        }
        let t_e = delta / alpha;
        let enter_val = t.nb_value(j) + t_e;
        for i in 0..m {
            if i != r {
                t.xb[i] -= t_e * w[i];
            }
        }
        t.state[bv] = leave_to;
        t.state[j] = VarState::Basic;
        t.basis[r] = j;
        t.pivot_binv(r, &w);
        t.xb[r] = enter_val;

        since_refactor += 1;
        if since_refactor >= REFACTOR_EVERY {
            since_refactor = 0;
            if !t.refactor() {
                return (LpStatus::Singular, iter);
            }
        }
    }
    (LpStatus::IterLimit, dual.max_iters)
}
