//! # cophy-catalog
//!
//! The relational-schema and statistics substrate underneath the CoPhy index
//! advisor.  The paper's testbed is a 1 GB TPC-H database generated with the
//! `tpcdskew` tool (skew parameter `z`); index tuning itself never reads base
//! tuples — both the paper's what-if optimizer calls and ours are pure
//! cost-model evaluations over *statistics*.  This crate therefore models:
//!
//! * the schema: tables, columns, column types ([`Schema`], [`Table`],
//!   [`Column`]),
//! * per-column statistics with a Zipf-skew knob ([`ColumnStats`],
//!   [`Histogram`]), matching `tpcdskew`'s `z ∈ {0, 1, 2}`,
//! * index metadata: key/include columns, clustered/unique flags, size
//!   estimation ([`Index`], [`IndexKind`]),
//! * the TPC-H schema + statistics generator ([`tpch::TpchGen`]).
//!
//! Everything is identified by dense integer ids (`TableId`, `ColumnId`,
//! `IndexId`) so the optimizer, INUM and the BIP generator can use plain
//! vectors as maps.

pub mod config;
pub mod index;
pub mod schema;
pub mod stats;
pub mod tpch;

pub use config::Configuration;
pub use index::{Index, IndexId, IndexKind};
pub use schema::{Column, ColumnId, ColumnRef, ColumnType, Schema, Table, TableId};
pub use stats::{ColumnStats, Histogram, Skew};
pub use tpch::TpchGen;

/// A page in the storage model is 8 KiB, the common default of the systems the
/// paper targets.
pub const PAGE_SIZE: u64 = 8192;

/// Per-row storage overhead (tuple header + slot pointer), bytes.
pub const ROW_OVERHEAD: u64 = 27;

/// Per-index-entry overhead (key header + row pointer), bytes.
pub const ENTRY_OVERHEAD: u64 = 12;
