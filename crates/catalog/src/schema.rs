//! Tables, columns and column types.
//!
//! The schema is immutable once built (the advisor only ever *reads* it), so
//! all lookups hand out references and ids are dense indexes into vectors.

use serde::{Deserialize, Serialize};

use crate::stats::ColumnStats;

/// Dense identifier of a table within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Dense identifier of a column within its [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnId(pub u32);

/// A fully-qualified column reference: table + column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: TableId,
    pub column: ColumnId,
}

impl ColumnRef {
    pub fn new(table: TableId, column: ColumnId) -> Self {
        ColumnRef { table, column }
    }
}

/// SQL column types used by the TPC-H schema (and the synthetic workloads).
///
/// Only the *width* matters to the cost model; semantics (comparability,
/// orderability) are uniform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 4-byte integer.
    Int,
    /// 8-byte integer.
    BigInt,
    /// Fixed-point decimal, stored as 8 bytes.
    Decimal,
    /// 8-byte float.
    Float,
    /// 4-byte date.
    Date,
    /// Fixed-width character string.
    Char(u16),
    /// Variable-width string; the argument is the declared maximum, the
    /// estimated average width is half of it (classic optimizer assumption).
    Varchar(u16),
}

impl ColumnType {
    /// Estimated stored width in bytes (average width for varlena types).
    pub fn width(&self) -> u32 {
        match *self {
            ColumnType::Int | ColumnType::Date => 4,
            ColumnType::BigInt | ColumnType::Decimal | ColumnType::Float => 8,
            ColumnType::Char(n) => u32::from(n),
            ColumnType::Varchar(n) => (u32::from(n) / 2).max(1),
        }
    }
}

/// A column: name, type and statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
    pub stats: ColumnStats,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType, stats: ColumnStats) -> Self {
        Column { name: name.into(), ty, stats }
    }

    /// Stored width of one value of this column, in bytes.
    pub fn width(&self) -> u32 {
        self.ty.width()
    }
}

/// A base table: columns, cardinality and the primary-key definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<Column>,
    /// Number of rows (from statistics, like `pg_class.reltuples`).
    pub rows: u64,
    /// Columns of the primary key, in key order. May be empty for heap-only
    /// tables, though every TPC-H table has one.
    pub primary_key: Vec<ColumnId>,
}

impl Table {
    /// Average row width in bytes, including per-row overhead.
    pub fn row_width(&self) -> u64 {
        let data: u64 = self.columns.iter().map(|c| u64::from(c.width())).sum();
        data + crate::ROW_OVERHEAD
    }

    /// Heap size of the table in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.rows * self.row_width()
    }

    /// Heap size in pages (the unit of the I/O cost model).
    pub fn heap_pages(&self) -> u64 {
        self.heap_bytes().div_ceil(crate::PAGE_SIZE).max(1)
    }

    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.0 as usize]
    }

    /// Find a column id by name; `None` if absent.
    pub fn column_by_name(&self, name: &str) -> Option<ColumnId> {
        self.columns.iter().position(|c| c.name == name).map(|i| ColumnId(i as u32))
    }
}

/// An immutable database schema: the universe the advisor tunes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<Table>,
}

impl Schema {
    pub fn new() -> Self {
        Schema { tables: Vec::new() }
    }

    /// Register a table; its `id` field is overwritten with the dense id.
    pub fn add_table(&mut self, mut table: Table) -> TableId {
        let id = TableId(self.tables.len() as u32);
        table.id = id;
        self.tables.push(table);
        id
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Total heap size of all tables in bytes — the paper expresses storage
    /// budgets as a fraction `M` of this quantity.
    pub fn data_bytes(&self) -> u64 {
        self.tables.iter().map(Table::heap_bytes).sum()
    }

    /// Resolve a `table.column` string like `"lineitem.l_orderkey"`.
    pub fn resolve(&self, qualified: &str) -> Option<ColumnRef> {
        let (t, c) = qualified.split_once('.')?;
        let table = self.table_by_name(t)?;
        let column = table.column_by_name(c)?;
        Some(ColumnRef::new(table.id, column))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ColumnStats;

    fn toy_table() -> Table {
        Table {
            id: TableId(0),
            name: "t".into(),
            columns: vec![
                Column::new("a", ColumnType::Int, ColumnStats::uniform(100, 0.0, 99.0)),
                Column::new("b", ColumnType::Varchar(40), ColumnStats::uniform(10, 0.0, 9.0)),
            ],
            rows: 1000,
            primary_key: vec![ColumnId(0)],
        }
    }

    #[test]
    fn widths_and_sizes() {
        let t = toy_table();
        assert_eq!(t.column(ColumnId(0)).width(), 4);
        assert_eq!(t.column(ColumnId(1)).width(), 20);
        assert_eq!(t.row_width(), 4 + 20 + crate::ROW_OVERHEAD);
        assert_eq!(t.heap_bytes(), 1000 * t.row_width());
        assert!(t.heap_pages() >= 1);
    }

    #[test]
    fn schema_lookup() {
        let mut s = Schema::new();
        let id = s.add_table(toy_table());
        assert_eq!(id, TableId(0));
        assert_eq!(s.table(id).name, "t");
        assert_eq!(s.table_by_name("t").unwrap().id, id);
        let r = s.resolve("t.b").unwrap();
        assert_eq!(r, ColumnRef::new(TableId(0), ColumnId(1)));
        assert!(s.resolve("t.zzz").is_none());
        assert!(s.resolve("nope.a").is_none());
    }

    #[test]
    fn column_type_widths() {
        assert_eq!(ColumnType::Int.width(), 4);
        assert_eq!(ColumnType::Date.width(), 4);
        assert_eq!(ColumnType::BigInt.width(), 8);
        assert_eq!(ColumnType::Decimal.width(), 8);
        assert_eq!(ColumnType::Float.width(), 8);
        assert_eq!(ColumnType::Char(25).width(), 25);
        assert_eq!(ColumnType::Varchar(1).width(), 1);
    }

    #[test]
    fn data_bytes_sums_tables() {
        let mut s = Schema::new();
        s.add_table(toy_table());
        s.add_table(toy_table());
        let one = s.table(TableId(0)).heap_bytes();
        assert_eq!(s.data_bytes(), 2 * one);
    }
}
