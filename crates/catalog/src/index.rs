//! Index metadata and size estimation.
//!
//! The paper places no limitation on index type or column count, except that
//! each index covers exactly one table (no join indexes, §2).  We model
//! B-tree indexes with an ordered key-column list, optional INCLUDE columns
//! (covering payload), and clustered/unique flags.  `size()` feeds the storage
//! constraint `Σ z_a · size(a) ≤ M` of §3.2.

use serde::{Deserialize, Serialize};

use crate::schema::{ColumnId, Schema, Table, TableId};
use crate::{ENTRY_OVERHEAD, PAGE_SIZE};

/// Identifier of a candidate index within a candidate set `S`.
///
/// Ids are assigned densely by the candidate generator, so `IndexId.0` indexes
/// directly into `Vec`-based maps in the BIP generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IndexId(pub u32);

/// Physical kind of the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Secondary B-tree: leaf entries hold key + row pointer (+ includes).
    Secondary,
    /// Clustered B-tree: the table *is* the index; at most one per table
    /// (Appendix E.3 encodes this as a linear constraint).
    Clustered,
}

/// A (candidate) index definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Index {
    pub table: TableId,
    /// Key columns in order; the index provides rows sorted by this prefix.
    pub key: Vec<ColumnId>,
    /// Non-key columns stored in leaf entries (covering payload).
    pub include: Vec<ColumnId>,
    pub kind: IndexKind,
    pub unique: bool,
}

impl Index {
    pub fn secondary(table: TableId, key: Vec<ColumnId>) -> Self {
        Index { table, key, include: Vec::new(), kind: IndexKind::Secondary, unique: false }
    }

    pub fn covering(table: TableId, key: Vec<ColumnId>, include: Vec<ColumnId>) -> Self {
        Index { table, key, include, kind: IndexKind::Secondary, unique: false }
    }

    pub fn clustered(table: TableId, key: Vec<ColumnId>) -> Self {
        Index { table, key, include: Vec::new(), kind: IndexKind::Clustered, unique: false }
    }

    pub fn is_clustered(&self) -> bool {
        self.kind == IndexKind::Clustered
    }

    /// Total number of columns materialized in the index.
    pub fn n_columns(&self) -> usize {
        self.key.len() + self.include.len()
    }

    /// Does the index materialize column `c` (as key or include)?
    pub fn contains(&self, c: ColumnId) -> bool {
        self.key.contains(&c) || self.include.contains(&c)
    }

    /// Does the index cover *all* of `cols` (no heap lookup needed)?
    /// A clustered index covers everything by definition.
    pub fn covers(&self, cols: &[ColumnId]) -> bool {
        self.is_clustered() || cols.iter().all(|c| self.contains(*c))
    }

    /// Length of the longest prefix of the index key consisting solely of
    /// columns in `eq_cols` — the sargable-prefix length for a conjunction of
    /// equality predicates.
    pub fn eq_prefix_len(&self, eq_cols: &[ColumnId]) -> usize {
        self.key.iter().take_while(|k| eq_cols.contains(k)).count()
    }

    /// Does a scan of this index deliver rows ordered by `order` (column list,
    /// ascending) given equality predicates on `eq_cols` binding a prefix?
    ///
    /// Classic rule: strip key columns bound by equality from the front, then
    /// the remaining key must have `order` as a prefix.
    pub fn provides_order(&self, order: &[ColumnId], eq_cols: &[ColumnId]) -> bool {
        if order.is_empty() {
            return true;
        }
        let bound = self.eq_prefix_len(eq_cols);
        let rest = &self.key[bound..];
        rest.len() >= order.len() && rest[..order.len()] == *order
    }

    /// Leaf-entry width in bytes.
    pub fn entry_width(&self, table: &Table) -> u64 {
        let cols: u64 = self
            .key
            .iter()
            .chain(self.include.iter())
            .map(|c| u64::from(table.column(*c).width()))
            .sum();
        cols + ENTRY_OVERHEAD
    }

    /// Estimated on-disk size in bytes.
    ///
    /// Secondary index: `rows × entry_width / fill_factor` for the leaf level;
    /// inner levels add ~1/fanout.  Clustered index: the whole table re-laid
    /// out, i.e. the heap size (the storage constraint then charges rebuilding
    /// the table in that order).
    pub fn size_bytes(&self, schema: &Schema) -> u64 {
        let table = schema.table(self.table);
        match self.kind {
            IndexKind::Clustered => table.heap_bytes(),
            IndexKind::Secondary => {
                let leaf = table.rows * self.entry_width(table);
                // 70% fill factor, ~0.5% inner-node overhead.
                let with_fill = (leaf as f64 / 0.70 * 1.005) as u64;
                with_fill.max(PAGE_SIZE)
            }
        }
    }

    /// Size in pages.
    pub fn size_pages(&self, schema: &Schema) -> u64 {
        self.size_bytes(schema).div_ceil(PAGE_SIZE).max(1)
    }

    /// B-tree height estimate (levels above the leaves), used for seek costs.
    pub fn height(&self, schema: &Schema) -> u32 {
        let table = schema.table(self.table);
        let entry = self.entry_width(table).max(1);
        let fanout = (PAGE_SIZE / entry).max(2) as f64;
        let leaves = self.size_pages(schema).max(1) as f64;
        (leaves.ln() / fanout.ln()).ceil().max(1.0) as u32
    }

    /// Human-readable name, e.g. `ix_lineitem(l_orderkey,l_suppkey)+inc2`.
    pub fn describe(&self, schema: &Schema) -> String {
        let table = schema.table(self.table);
        let keys: Vec<&str> = self.key.iter().map(|c| table.column(*c).name.as_str()).collect();
        let prefix = if self.is_clustered() { "cix" } else { "ix" };
        let mut s = format!("{prefix}_{}({})", table.name, keys.join(","));
        if !self.include.is_empty() {
            s.push_str(&format!("+inc{}", self.include.len()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema, Table};
    use crate::stats::ColumnStats;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table {
            id: TableId(0),
            name: "t".into(),
            columns: vec![
                Column::new("a", ColumnType::Int, ColumnStats::uniform(100, 0.0, 99.0)),
                Column::new("b", ColumnType::Int, ColumnStats::uniform(100, 0.0, 99.0)),
                Column::new("c", ColumnType::Char(16), ColumnStats::uniform(10, 0.0, 9.0)),
            ],
            rows: 100_000,
            primary_key: vec![ColumnId(0)],
        });
        s
    }

    #[test]
    fn covers_and_contains() {
        let ix = Index::covering(TableId(0), vec![ColumnId(0)], vec![ColumnId(2)]);
        assert!(ix.contains(ColumnId(0)));
        assert!(ix.contains(ColumnId(2)));
        assert!(!ix.contains(ColumnId(1)));
        assert!(ix.covers(&[ColumnId(0), ColumnId(2)]));
        assert!(!ix.covers(&[ColumnId(1)]));
        let cl = Index::clustered(TableId(0), vec![ColumnId(0)]);
        assert!(cl.covers(&[ColumnId(0), ColumnId(1), ColumnId(2)]));
    }

    #[test]
    fn order_with_bound_prefix() {
        // key (a, b): equality on a makes the index deliver order-by-b.
        let ix = Index::secondary(TableId(0), vec![ColumnId(0), ColumnId(1)]);
        assert!(ix.provides_order(&[ColumnId(0)], &[]));
        assert!(ix.provides_order(&[ColumnId(1)], &[ColumnId(0)]));
        assert!(!ix.provides_order(&[ColumnId(1)], &[]));
        assert!(ix.provides_order(&[], &[]));
        assert!(ix.provides_order(&[ColumnId(0), ColumnId(1)], &[]));
        assert!(!ix.provides_order(&[ColumnId(2)], &[ColumnId(0), ColumnId(1)]));
    }

    #[test]
    fn eq_prefix() {
        let ix = Index::secondary(TableId(0), vec![ColumnId(0), ColumnId(1), ColumnId(2)]);
        assert_eq!(ix.eq_prefix_len(&[ColumnId(1), ColumnId(0)]), 2);
        assert_eq!(ix.eq_prefix_len(&[ColumnId(1)]), 0);
        assert_eq!(ix.eq_prefix_len(&[]), 0);
    }

    #[test]
    fn sizes_scale_with_columns() {
        let s = schema();
        let narrow = Index::secondary(TableId(0), vec![ColumnId(0)]);
        let wide = Index::covering(TableId(0), vec![ColumnId(0)], vec![ColumnId(1), ColumnId(2)]);
        assert!(wide.size_bytes(&s) > narrow.size_bytes(&s));
        let clustered = Index::clustered(TableId(0), vec![ColumnId(0)]);
        assert_eq!(clustered.size_bytes(&s), s.table(TableId(0)).heap_bytes());
        assert!(narrow.height(&s) >= 1);
    }

    #[test]
    fn describe_format() {
        let s = schema();
        let ix = Index::covering(TableId(0), vec![ColumnId(0), ColumnId(1)], vec![ColumnId(2)]);
        assert_eq!(ix.describe(&s), "ix_t(a,b)+inc1");
        let cl = Index::clustered(TableId(0), vec![ColumnId(0)]);
        assert_eq!(cl.describe(&s), "cix_t(a)");
    }
}
