//! Configurations: sets of materialized indexes.
//!
//! A *configuration* `X` is the unit the what-if optimizer is probed with and
//! the object the advisor recommends (§2).  We store the actual [`Index`]
//! definitions (not ids) so a configuration is meaningful independently of any
//! particular candidate set — the evaluation metric of §5.1 costs `X* ∪ X0`
//! against the ground-truth optimizer, where `X0` is the set of clustered
//! primary-key indexes.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::index::Index;
use crate::schema::{Schema, TableId};

/// A set of indexes, deduplicated by definition.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    indexes: Vec<Index>,
}

impl Configuration {
    pub fn empty() -> Self {
        Configuration::default()
    }

    /// The baseline `X0` of §5.1: one clustered primary-key index per table.
    pub fn baseline(schema: &Schema) -> Self {
        let mut cfg = Configuration::empty();
        for t in schema.tables() {
            if !t.primary_key.is_empty() {
                cfg.insert(Index::clustered(t.id, t.primary_key.clone()));
            }
        }
        cfg
    }

    pub fn from_indexes(indexes: impl IntoIterator<Item = Index>) -> Self {
        let mut cfg = Configuration::empty();
        for ix in indexes {
            cfg.insert(ix);
        }
        cfg
    }

    /// Insert an index; returns false if an identical definition was present.
    pub fn insert(&mut self, ix: Index) -> bool {
        if self.indexes.contains(&ix) {
            false
        } else {
            self.indexes.push(ix);
            true
        }
    }

    pub fn remove(&mut self, ix: &Index) -> bool {
        if let Some(pos) = self.indexes.iter().position(|i| i == ix) {
            self.indexes.swap_remove(pos);
            true
        } else {
            false
        }
    }

    pub fn contains(&self, ix: &Index) -> bool {
        self.indexes.contains(ix)
    }

    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Index> {
        self.indexes.iter()
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Indexes defined on `table`.
    pub fn on_table(&self, table: TableId) -> impl Iterator<Item = &Index> {
        self.indexes.iter().filter(move |i| i.table == table)
    }

    /// Union of two configurations (e.g. `X* ∪ X0` for evaluation).
    pub fn union(&self, other: &Configuration) -> Configuration {
        let mut cfg = self.clone();
        for ix in other.iter() {
            cfg.insert(ix.clone());
        }
        cfg
    }

    /// Total estimated size in bytes — the left side of the storage constraint.
    pub fn size_bytes(&self, schema: &Schema) -> u64 {
        self.indexes.iter().map(|i| i.size_bytes(schema)).sum()
    }

    /// Tables that have more than one clustered index (must be empty for a
    /// physically realizable configuration; Appendix E.3).
    pub fn clustered_violations(&self) -> Vec<TableId> {
        let mut seen = BTreeSet::new();
        let mut bad = BTreeSet::new();
        for ix in self.indexes.iter().filter(|i| i.is_clustered()) {
            if !seen.insert(ix.table) {
                bad.insert(ix.table);
            }
        }
        bad.into_iter().collect()
    }
}

impl FromIterator<Index> for Configuration {
    fn from_iter<T: IntoIterator<Item = Index>>(iter: T) -> Self {
        Configuration::from_indexes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnId, ColumnType, Table};
    use crate::stats::ColumnStats;

    fn schema() -> Schema {
        let mut s = Schema::new();
        for name in ["t1", "t2"] {
            s.add_table(Table {
                id: TableId(0),
                name: name.into(),
                columns: vec![Column::new(
                    "a",
                    ColumnType::Int,
                    ColumnStats::uniform(10, 0.0, 9.0),
                )],
                rows: 1000,
                primary_key: vec![ColumnId(0)],
            });
        }
        s
    }

    #[test]
    fn baseline_has_one_clustered_pk_per_table() {
        let s = schema();
        let x0 = Configuration::baseline(&s);
        assert_eq!(x0.len(), 2);
        assert!(x0.iter().all(|i| i.is_clustered()));
        assert!(x0.clustered_violations().is_empty());
    }

    #[test]
    fn insert_dedups() {
        let mut cfg = Configuration::empty();
        let ix = Index::secondary(TableId(0), vec![ColumnId(0)]);
        assert!(cfg.insert(ix.clone()));
        assert!(!cfg.insert(ix.clone()));
        assert_eq!(cfg.len(), 1);
        assert!(cfg.contains(&ix));
        assert!(cfg.remove(&ix));
        assert!(!cfg.remove(&ix));
        assert!(cfg.is_empty());
    }

    #[test]
    fn union_dedups() {
        let ix1 = Index::secondary(TableId(0), vec![ColumnId(0)]);
        let ix2 = Index::secondary(TableId(1), vec![ColumnId(0)]);
        let a = Configuration::from_indexes([ix1.clone(), ix2.clone()]);
        let b = Configuration::from_indexes([ix1.clone()]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn clustered_violation_detected() {
        let mut cfg = Configuration::empty();
        cfg.insert(Index::clustered(TableId(0), vec![ColumnId(0)]));
        let mut second = Index::clustered(TableId(0), vec![ColumnId(0)]);
        second.unique = true; // distinct definition, same table
        cfg.insert(second);
        assert_eq!(cfg.clustered_violations(), vec![TableId(0)]);
    }

    #[test]
    fn size_sums() {
        let s = schema();
        let x0 = Configuration::baseline(&s);
        let total: u64 = x0.iter().map(|i| i.size_bytes(&s)).sum();
        assert_eq!(x0.size_bytes(&s), total);
    }
}
