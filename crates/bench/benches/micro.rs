//! Criterion microbenchmarks for the components whose scaling drives the
//! paper's headline figures:
//!
//! * INUM preparation and cost evaluation (the "fast what-if" claim),
//! * BIP construction, CoPhy vs ILP (the Figure 5/10 build-time gap),
//! * the solver engines (simplex, branch & bound, Lagrangian),
//! * candidate generation,
//! * ablation: BIPGen with and without I∅-dominance pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cophy::{BipGen, CGen, ConstraintSet};
use cophy_advisors::IlpAdvisor;
use cophy_bench::{make_optimizer, make_workload, prepare_parallel, WorkloadKind};
use cophy_bip::{
    BranchBound, LagrangianSolver, LinExpr, Model, Sense, SimplexSolver, SolveOptions,
};
use cophy_catalog::Configuration;
use cophy_optimizer::SystemProfile;

fn bench_inum(c: &mut Criterion) {
    let o = make_optimizer(SystemProfile::A, 0.0);
    let w = make_workload(&o, WorkloadKind::Hom, 20);
    c.bench_function("inum/prepare_20_queries", |b| {
        b.iter(|| prepare_parallel(&o, &w));
    });

    let prepared = prepare_parallel(&o, &w);
    let cands = CGen::default().generate(o.schema(), &w);
    let cfg: Configuration = cands.iter().take(12).map(|(_, ix)| ix.clone()).collect();
    c.bench_function("inum/cost_eval_20_queries", |b| {
        b.iter(|| prepared.cost(o.schema(), o.cost_model(), &cfg));
    });
    c.bench_function("whatif/direct_cost_20_queries", |b| {
        b.iter(|| o.cost_workload(&w, &cfg));
    });
}

fn bench_build(c: &mut Criterion) {
    let o = make_optimizer(SystemProfile::A, 0.0);
    let w = make_workload(&o, WorkloadKind::Hom, 30);
    let prepared = prepare_parallel(&o, &w);
    let cands = CGen::default().generate(o.schema(), &w);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);

    let mut group = c.benchmark_group("build");
    group.bench_function("cophy_block_problem", |b| {
        b.iter(|| {
            BipGen::default().block_problem(
                o.schema(),
                o.cost_model(),
                &prepared,
                &cands,
                &constraints,
            )
        });
    });
    group.bench_function("cophy_block_problem_unpruned", |b| {
        let gen = BipGen { prune_dominated: false };
        b.iter(|| gen.block_problem(o.schema(), o.cost_model(), &prepared, &cands, &constraints));
    });
    group.bench_function("cgen_30_queries", |b| {
        b.iter(|| CGen::default().generate(o.schema(), &w));
    });
    group.finish();

    // ILP build (enumeration + pruning) at matching scale — the Figure 5
    // asymmetry in microcosm.
    c.bench_function("build/ilp_block_problem", |b| {
        let ilp = IlpAdvisor::default();
        b.iter(|| {
            let (_, stats) = ilp.recommend_with_stats(&o, &w, &cands, &constraints);
            stats
        });
    });
}

fn bench_solvers(c: &mut Criterion) {
    // Simplex on a dense-ish random LP.
    let mut m = Model::new();
    let n = 60;
    let vars: Vec<_> =
        (0..n).map(|j| m.add_var(format!("v{j}"), ((j * 37) % 19) as f64 - 9.0)).collect();
    for i in 0..30 {
        let mut e = LinExpr::new();
        for (j, &v) in vars.iter().enumerate() {
            if (i + j) % 3 == 0 {
                e.add(v, ((i * j) % 7 + 1) as f64);
            }
        }
        m.add_constraint(e, Sense::Le, 25.0);
    }
    let (lo, hi) = (vec![0.0; n], vec![1.0; n]);
    c.bench_function("solver/simplex_60v_30c", |b| {
        b.iter(|| SimplexSolver::new().solve(&m, &lo, &hi));
    });
    c.bench_function("solver/branch_bound_60v_30c_gap5", |b| {
        let opts = SolveOptions::within_5_percent();
        b.iter(|| BranchBound::new().solve(&m, &opts));
    });

    // Lagrangian on a realistic tuning instance.
    let o = make_optimizer(SystemProfile::A, 0.0);
    let w = make_workload(&o, WorkloadKind::Hom, 40);
    let prepared = prepare_parallel(&o, &w);
    let cands = CGen::default().generate(o.schema(), &w);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
    let tp = BipGen::default().block_problem(
        o.schema(),
        o.cost_model(),
        &prepared,
        &cands,
        &constraints,
    );
    c.bench_function("solver/lagrangian_40q_gap5", |b| {
        let solver =
            LagrangianSolver { budget: cophy_bip::SolveBudget::within(0.05), ..Default::default() };
        b.iter(|| solver.solve(&tp.block));
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let o = make_optimizer(SystemProfile::A, 0.0);
    let w = make_workload(&o, WorkloadKind::Hom, 15);
    let cands = CGen::default().generate(o.schema(), &w);
    let cfg: Configuration = cands.iter().take(10).map(|(_, ix)| ix.clone()).collect();
    let mut group = c.benchmark_group("optimizer");
    for (i, (_, stmt, _)) in w.iter().enumerate().take(3) {
        let q = stmt.read_shell().clone();
        group.bench_with_input(BenchmarkId::new("optimize", i), &q, |b, q| {
            b.iter(|| o.optimize(q, &cfg));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inum, bench_build, bench_solvers, bench_optimizer
);
criterion_main!(benches);
