//! Advisor-as-a-service smoke study (the `server_smoke` CI gate).
//!
//! Boots a real `cophy-server` on loopback, drives **eight concurrent
//! client sessions over one shared INUM cache**, and checks the service
//! keeps the in-process engine's guarantees across the wire:
//!
//! * the streamed `progress` lines of every session match an in-process
//!   `recommend_with_progress` run **event for event, bit for bit** (wall
//!   clock excluded — only solver state is compared);
//! * eight sessions cost exactly one session's optimizer probes (the
//!   shared-cache economy the daemon exists for);
//! * an evicted-then-retouched session reproduces its pre-eviction
//!   recommendation bit-identically;
//! * the per-tenant probe quota rejects a starved open with `err quota`;
//! * every proven gap is finite.
//!
//! Writes `BENCH_server.json` (sessions, cache hit rate, probes saved vs
//! unshared, stream stats, p50/p95 request latency) *before* gating, so the
//! CI artifact survives a failure.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use cophy::{CoPhy, CoPhyOptions, ConstraintSet};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_server::{Client, ClientError, ErrCode, ProgressLine, Server, ServerConfig};

use crate::{secs, sizes};

const N_SESSIONS: usize = 8;

/// Everything the study measures; gates and the artifact both read this.
pub struct ServerStudy {
    pub statements: usize,
    pub sessions: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub probes_single: u64,
    pub probes_total: u64,
    pub stream_events: usize,
    pub stream_match: bool,
    pub rec_match: bool,
    pub eviction_reproduced: bool,
    pub quota_enforced: bool,
    pub gap: f64,
    pub latencies: Vec<Duration>,
    pub wall: Duration,
}

impl ServerStudy {
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Fraction of probes the shared cache saved vs N unshared sessions.
    pub fn probes_saved(&self) -> f64 {
        let unshared = self.probes_single * self.sessions as u64;
        if unshared == 0 {
            return 0.0;
        }
        1.0 - self.probes_total as f64 / unshared as f64
    }

    fn latency_at(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let i = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[i]
    }

    pub fn p50(&self) -> Duration {
        self.latency_at(0.50)
    }

    pub fn p95(&self) -> Duration {
        self.latency_at(0.95)
    }
}

/// The solver-state fingerprint of one streamed event.
type EventKey = (usize, u64, u64, u64, usize, usize);

/// The bit-level fingerprint of a recommendation on the wire.
type RecKey = (u64, u64, u64, Vec<String>);

fn rec_key(objective: f64, bound: f64, gap: f64, indexes: &[cophy_catalog::Index]) -> RecKey {
    (
        objective.to_bits(),
        bound.to_bits(),
        gap.to_bits(),
        indexes.iter().map(cophy_optimizer::trace::fmt_index).collect(),
    )
}

/// Run the whole study.  `n` statements; the workload spec is `hom:7:n`.
pub fn server_study(n: usize) -> ServerStudy {
    let spec = format!("hom:7:{n}");
    let t0 = Instant::now();

    // ------------------------------------------------------------------
    // In-process reference: the exact solve the server performs, captured
    // event for event.  Construction mirrors the daemon's tenant setup.
    // ------------------------------------------------------------------
    let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let w = cophy_workload::HomGen::new(7).generate(o.schema(), n);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
    let mut reference = cophy.try_session(&w, constraints).expect("reference session opens");
    let probes_single = o.what_if_calls();
    let mut ref_events: Vec<EventKey> = Vec::new();
    let rec = reference
        .recommend_with_progress(|p| ref_events.push(ProgressLine::from_event(0, p).state_key()));
    let mut sel: Vec<cophy_catalog::Index> = rec.configuration.iter().cloned().collect();
    sel.sort_by_cached_key(cophy_optimizer::trace::fmt_index);
    let ref_rec = rec_key(rec.objective, rec.bound, rec.gap, &sel);

    // ------------------------------------------------------------------
    // The service: one daemon, eight concurrent sessions over one cache.
    // ------------------------------------------------------------------
    let handle =
        Server::bind("127.0.0.1:0", ServerConfig::default(), None).expect("bind loopback").spawn();
    let addr = handle.addr();
    let latencies = Mutex::new(Vec::new());
    fn timed(lat: &Mutex<Vec<Duration>>, f: &mut dyn FnMut()) {
        let t = Instant::now();
        f();
        lat.lock().unwrap().push(t.elapsed());
    }

    let per_session: Vec<(bool, Vec<EventKey>, RecKey)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N_SESSIONS)
            .map(|i| {
                let (spec, latencies) = (spec.clone(), &latencies);
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("client connects");
                    let sid = format!("s{i}");
                    let mut hit = false;
                    timed(latencies, &mut || {
                        hit = c.open(&sid, &spec, 0.5).expect("open").cache_hit;
                    });
                    let mut events: Vec<EventKey> = Vec::new();
                    let mut rec = None;
                    timed(latencies, &mut || {
                        rec = Some(c.tune(&sid, |p| events.push(p.state_key())).expect("tune"));
                    });
                    let rec = rec.unwrap();
                    timed(latencies, &mut || {
                        c.what_if(&sid, &rec.indexes).expect("what_if");
                    });
                    timed(latencies, &mut || {
                        c.close(&sid).expect("close");
                    });
                    (hit, events, rec_key(rec.objective, rec.bound, rec.gap, &rec.indexes))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread")).collect()
    });

    let stream_match = per_session.iter().all(|(_, ev, _)| *ev == ref_events);
    let rec_match = per_session.iter().all(|(_, _, rk)| *rk == ref_rec);
    let stream_events = ref_events.len();

    // Stats of the 8-session phase alone (the eviction phase below opens
    // one more shared session and would shift the hit counters).
    let stats = {
        let mut c = Client::connect(addr).expect("client connects");
        c.stats().expect("stats")
    };

    // ------------------------------------------------------------------
    // Eviction reproduction: pin, tune, evict, retouch — bit-identical.
    // ------------------------------------------------------------------
    let eviction_reproduced = {
        let mut c = Client::connect(addr).expect("client connects");
        c.open("evictee", &spec, 0.5).expect("open evictee");
        let pin = {
            // Pin the reference's first recommended index.
            sel.first().cloned().expect("reference recommends at least one index")
        };
        c.pin("evictee", &pin).expect("pin");
        let before = c.tune("evictee", |_| {}).expect("pre-eviction tune");
        c.evict("evictee").expect("evict");
        let after = c.tune("evictee", |_| {}).expect("post-rebuild tune");
        c.close("evictee").expect("close evictee");
        rec_key(before.objective, before.bound, before.gap, &before.indexes)
            == rec_key(after.objective, after.bound, after.gap, &after.indexes)
    };

    handle.stop();

    // ------------------------------------------------------------------
    // Quota enforcement: a starved daemon rejects the cold open typed.
    // ------------------------------------------------------------------
    let quota_enforced = {
        let starved =
            Server::bind("127.0.0.1:0", ServerConfig { quota: 3, ..Default::default() }, None)
                .expect("bind starved daemon")
                .spawn();
        let mut c = Client::connect(starved.addr()).expect("client connects");
        let outcome = matches!(
            c.open("starved", &spec, 0.5),
            Err(ClientError::Server(e)) if e.code == ErrCode::Quota
        );
        let _ = c.quit();
        starved.stop();
        outcome
    };

    ServerStudy {
        statements: n,
        sessions: N_SESSIONS,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        probes_single,
        probes_total: stats.probes,
        stream_events,
        stream_match,
        rec_match,
        eviction_reproduced,
        quota_enforced,
        gap: rec.gap,
        latencies: latencies.into_inner().unwrap(),
        wall: t0.elapsed(),
    }
}

/// `BENCH_server.json` body.
pub fn server_artifact_json(s: &ServerStudy) -> String {
    format!(
        "{{\"experiment\":\"server_smoke\",\"statements\":{},\"sessions\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"hit_rate\":{:.4},\
         \"probes_single\":{},\"probes_total\":{},\"probes_saved_vs_unshared\":{:.4},\
         \"stream_events\":{},\"stream_match\":{},\"rec_match\":{},\
         \"eviction_reproduced\":{},\"quota_enforced\":{},\"gap\":{:.6},\
         \"p50_ms\":{:.3},\"p95_ms\":{:.3},\"wall_s\":{:.3}}}\n",
        s.statements,
        s.sessions,
        s.cache_hits,
        s.cache_misses,
        s.hit_rate(),
        s.probes_single,
        s.probes_total,
        s.probes_saved(),
        s.stream_events,
        s.stream_match,
        s.rec_match,
        s.eviction_reproduced,
        s.quota_enforced,
        s.gap,
        s.p50().as_secs_f64() * 1e3,
        s.p95().as_secs_f64() * 1e3,
        s.wall.as_secs_f64(),
    )
}

pub fn write_server_artifact(json: &str) {
    let path = "BENCH_server.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote server artifact to {path}");
}

/// Human-readable report.
pub fn server_report(s: &ServerStudy) -> String {
    let mut out = String::new();
    out.push_str("## server_smoke — advisor-as-a-service gate\n\n");
    out.push_str(&format!(
        "workload hom:7:{} | {} concurrent sessions over one shared INUM cache\n\n",
        s.statements, s.sessions
    ));
    out.push_str(&format!(
        "cache: {} hits / {} misses (hit rate {:.0}%)\n",
        s.cache_hits,
        s.cache_misses,
        s.hit_rate() * 100.0
    ));
    out.push_str(&format!(
        "probes: {} total vs {} unshared ({:.0}% saved)\n",
        s.probes_total,
        s.probes_single * s.sessions as u64,
        s.probes_saved() * 100.0
    ));
    out.push_str(&format!(
        "stream: {} events/session, wire==in-process: {} | recommendations match: {}\n",
        s.stream_events, s.stream_match, s.rec_match
    ));
    out.push_str(&format!(
        "eviction reproduced: {} | quota enforced: {} | final gap {:.2}%\n",
        s.eviction_reproduced,
        s.quota_enforced,
        s.gap * 100.0
    ));
    out.push_str(&format!(
        "latency: p50 {} p95 {} | wall {}\n",
        secs(s.p50()),
        secs(s.p95()),
        secs(s.wall)
    ));
    out
}

/// Assertions behind the CI gate; the artifact is written by the caller
/// *before* this runs.
pub fn server_gate(s: &ServerStudy) {
    assert!(s.sessions >= 8, "gate: need >=8 concurrent sessions, ran {}", s.sessions);
    assert_eq!(s.cache_misses, 1, "gate: exactly one cold build expected (cold-stampede guard)");
    assert_eq!(s.cache_hits as usize, s.sessions - 1, "gate: all other opens must share");
    assert_eq!(s.probes_total, s.probes_single, "gate: N sessions must cost one session's probes");
    assert!(s.stream_events > 0, "gate: the solve must stream anytime events");
    assert!(s.stream_match, "gate: wire stream must equal the in-process stream event for event");
    assert!(s.rec_match, "gate: wire recommendations must equal the in-process one");
    assert!(s.eviction_reproduced, "gate: evicted session must reproduce its recommendation");
    assert!(s.quota_enforced, "gate: starved tenant must be rejected with err quota");
    assert!(s.gap.is_finite(), "gate: proven gap must be finite, got {}", s.gap);
}

/// Entry point of the `server_smoke` bin.
pub fn server_smoke() -> String {
    let n = sizes()[1];
    let study = server_study(n);
    write_server_artifact(&server_artifact_json(&study));
    let report = server_report(&study);
    server_gate(&study);
    report
}
