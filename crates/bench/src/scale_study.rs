//! Million-statement scaling study (the `fig_scale` bin and the
//! `scale_smoke` CI gate).
//!
//! Exercises the PR-10 large-workload path end to end: a generator-backed
//! [`WorkloadSource`] feeds a streaming session chunk by chunk, compression
//! clusters **online** (resident statements stay bounded by the
//! representative count plus one chunk buffer, never `|W|`), INUM prepares
//! only cluster-opening representatives, and the block-decomposed Lagrangian
//! backend solves the per-statement blocks in parallel.
//!
//! Three claims are measured and gated:
//!
//! 1. **Bounded residency** — the per-chunk high-water mark of resident
//!    statements (`representatives + chunk buffer`) is a constant multiple
//!    of the final representative count, independent of `|W|`;
//! 2. **Near-linear ingestion** — per-statement ingest time grows at most
//!    by a small factor between the two study sizes (generous slack: the
//!    grid lookup is amortized-constant, but CI machines are noisy);
//! 3. **Decomposition soundness** — on a small workload the decomposed
//!    parallel solve lands within the solvers' proven-gap slack of the
//!    exact monolithic branch-and-bound answer.
//!
//! Writes `BENCH_scale.json` *before* gating, so the CI artifact survives a
//! failure.

use std::time::{Duration, Instant};

use cophy::{
    CGen, CoPhy, CoPhyOptions, CompressionPolicy, ConstraintSet, SolveBudget, SolverBackend,
};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::{HomGen, Statement, Workload, WorkloadSource, DEFAULT_CHUNK};

use crate::{host_threads, secs, study_threads};

/// Stream seed — fixed so the study is reproducible across runs and hosts.
const SCALE_SEED: u64 = 0x5CA1E;

/// The two streamed workload sizes: `COPHY_SCALE=full` runs the paper-scale
/// million-statement tune on the cron workflow; every other scale streams
/// 2·10⁴ and 10⁵ statements (the smoke acceptance size — still far beyond
/// anything the batch path would want to materialize per-statement state
/// for).
pub fn scale_sizes() -> (usize, usize) {
    match std::env::var("COPHY_SCALE").as_deref() {
        Ok("full") => (200_000, 1_000_000),
        _ => (20_000, 100_000),
    }
}

/// One chunk handed back out of a pre-pulled buffer, so the study can
/// observe the session between chunks (the residency high-water probe).
struct SliceSource {
    items: Vec<(Statement, f64)>,
    pos: usize,
}

impl WorkloadSource for SliceSource {
    fn next_chunk(&mut self, max: usize, out: &mut Vec<(Statement, f64)>) -> usize {
        let n = max.min(self.items.len() - self.pos);
        out.extend(self.items[self.pos..self.pos + n].iter().cloned());
        self.pos += n;
        n
    }

    fn remaining(&self) -> Option<usize> {
        Some(self.items.len() - self.pos)
    }
}

/// One streamed tune at one workload size.
pub struct ScaleRow {
    pub statements: usize,
    /// Cluster representatives at the end of ingestion (== INUM-prepared
    /// statements == resident statement state of the session).
    pub representatives: usize,
    /// Max over chunks of `representatives-so-far + chunk length`: every
    /// statement resident at any point during ingestion.
    pub resident_high_water: usize,
    /// Generation + online clustering + INUM preparation of representatives.
    pub ingest_time: Duration,
    pub solve_time: Duration,
    pub objective: f64,
    pub gap: f64,
    /// What-if probes spent (scales with representatives, not `|W|`).
    pub probes: u64,
}

impl ScaleRow {
    pub fn per_statement_us(&self) -> f64 {
        self.ingest_time.as_secs_f64() * 1e6 / self.statements.max(1) as f64
    }
}

/// Stream `n` statements into a fresh session, tracking the residency
/// high-water mark, then solve with the block-decomposed parallel backend.
pub fn scale_row(n: usize) -> ScaleRow {
    let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let opts = CoPhyOptions {
        compression: CompressionPolicy::default_epsilon(),
        budget: SolveBudget::within(0.05)
            .with_time(Duration::from_secs(60))
            .with_parallelism(study_threads()),
        backend: SolverBackend::Lagrangian,
        ..Default::default()
    };
    let cophy = CoPhy::new(&o, opts);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
    let empty = Workload::new();
    let mut session = cophy
        .try_session_streaming(&mut empty.source(), constraints)
        .unwrap_or_else(|e| panic!("{e}"));

    let mut stream = HomGen::new(SCALE_SEED).stream(o.schema(), n);
    let mut high_water = 0usize;
    let t0 = Instant::now();
    loop {
        let mut buf = Vec::with_capacity(DEFAULT_CHUNK);
        let got = stream.next_chunk(DEFAULT_CHUNK, &mut buf);
        if got == 0 {
            break;
        }
        let mut chunk = SliceSource { items: buf, pos: 0 };
        session.try_add_source(&mut chunk, DEFAULT_CHUNK).unwrap_or_else(|e| panic!("{e}"));
        high_water = high_water.max(session.n_representatives() + got);
    }
    let ingest_time = t0.elapsed();
    assert_eq!(session.n_statements(), n, "every streamed statement must be accounted");

    let t1 = Instant::now();
    let rec = session.recommend();
    ScaleRow {
        statements: n,
        representatives: session.n_representatives(),
        resident_high_water: high_water,
        ingest_time,
        solve_time: t1.elapsed(),
        objective: rec.objective,
        gap: rec.gap,
        probes: rec.stats.what_if_calls,
    }
}

/// The small-instance decomposition cross-check: decomposed parallel
/// Lagrangian vs exact monolithic branch-and-bound.
pub struct ScaleAgreement {
    pub statements: usize,
    pub lag_objective: f64,
    pub lag_gap: f64,
    pub bb_objective: f64,
    pub bb_gap: f64,
}

impl ScaleAgreement {
    /// Relative distance of the decomposed incumbent from the exact answer.
    pub fn rel_delta(&self) -> f64 {
        (self.lag_objective - self.bb_objective) / self.bb_objective
    }

    /// The tolerated slack: the solvers' summed proven gaps, floored at the
    /// study's 5% budget gap.
    pub fn slack(&self) -> f64 {
        (self.lag_gap + self.bb_gap).max(0.05)
    }
}

/// Run both backends on a small workload where branch-and-bound is exact.
pub fn scale_agreement() -> ScaleAgreement {
    let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let w = HomGen::new(SCALE_SEED ^ 1).generate(o.schema(), 8);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.25);
    let candidates = CGen::default().generate(o.schema(), &w).truncate(10);
    let budget = SolveBudget { gap_limit: 1e-6, node_limit: Some(800), ..Default::default() };
    let lag = CoPhy::new(
        &o,
        CoPhyOptions {
            budget: budget.with_parallelism(study_threads()),
            backend: SolverBackend::Lagrangian,
            ..Default::default()
        },
    )
    .try_tune_with_candidates(&w, &candidates, &constraints)
    .unwrap_or_else(|e| panic!("{e}"));
    let bb = CoPhy::new(
        &o,
        CoPhyOptions { budget, backend: SolverBackend::BranchBound, ..Default::default() },
    )
    .try_tune_with_candidates(&w, &candidates, &constraints)
    .unwrap_or_else(|e| panic!("{e}"));
    ScaleAgreement {
        statements: w.len(),
        lag_objective: lag.objective,
        lag_gap: lag.gap,
        bb_objective: bb.objective,
        bb_gap: bb.gap,
    }
}

/// Everything the study produces; report, artifact and gate all read this.
pub struct ScaleStudy {
    pub rows: [ScaleRow; 2],
    pub agreement: ScaleAgreement,
}

/// Run the full study at the configured scale.
pub fn scale_study() -> ScaleStudy {
    let (small, large) = scale_sizes();
    ScaleStudy { rows: [scale_row(small), scale_row(large)], agreement: scale_agreement() }
}

/// The `BENCH_scale.json` artifact body.
pub fn scale_artifact_json(s: &ScaleStudy) -> String {
    let mut out = String::from("{\"experiment\":\"scale\",");
    out.push_str(&format!(
        "\"threads\":{},\"host_threads\":{},\"chunk\":{},\"rows\":[",
        study_threads(),
        host_threads(),
        DEFAULT_CHUNK
    ));
    for (i, r) in s.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"statements\":{},\"representatives\":{},\"resident_high_water\":{},\
             \"ingest_s\":{:.4},\"per_statement_us\":{:.4},\"solve_s\":{:.4},\
             \"objective\":{:.6},\"gap\":{:.6},\"probes\":{}}}",
            r.statements,
            r.representatives,
            r.resident_high_water,
            r.ingest_time.as_secs_f64(),
            r.per_statement_us(),
            r.solve_time.as_secs_f64(),
            r.objective,
            r.gap,
            r.probes,
        ));
    }
    let a = &s.agreement;
    out.push_str(&format!(
        "],\"agreement\":{{\"statements\":{},\"lag_objective\":{:.6},\"lag_gap\":{:.6},\
         \"bb_objective\":{:.6},\"bb_gap\":{:.6},\"rel_delta\":{:.6},\"slack\":{:.6}}}}}\n",
        a.statements,
        a.lag_objective,
        a.lag_gap,
        a.bb_objective,
        a.bb_gap,
        a.rel_delta(),
        a.slack(),
    ));
    out
}

/// Write the scaling artifact next to the experiment output.
pub fn write_scale_artifact(json: &str) {
    let path = "BENCH_scale.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote scaling artifact to {path}");
}

/// Human-readable report.
pub fn scale_report(s: &ScaleStudy) -> String {
    let mut out = String::new();
    out.push_str("## fig_scale — streamed million-statement tuning\n\n");
    out.push_str(&format!("threads={} chunk={}\n\n", study_threads(), DEFAULT_CHUNK));
    out.push_str("|W| streamed | reps | resident hi-water | ingest | us/stmt | solve | gap\n");
    out.push_str("------------|------|-------------------|--------|---------|-------|----\n");
    for r in &s.rows {
        out.push_str(&format!(
            "{:>11} | {:>4} | {:>17} | {:>6} | {:>7.2} | {:>5} | {:.3}\n",
            r.statements,
            r.representatives,
            r.resident_high_water,
            secs(r.ingest_time),
            r.per_statement_us(),
            secs(r.solve_time),
            r.gap,
        ));
    }
    let a = &s.agreement;
    out.push_str(&format!(
        "\ndecomposed vs monolithic on |W|={}: {:.6} vs {:.6} (delta {:+.3}%, slack {:.1}%)\n",
        a.statements,
        a.lag_objective,
        a.bb_objective,
        a.rel_delta() * 100.0,
        a.slack() * 100.0,
    ));
    out
}

/// Assertions behind the CI gate; the artifact is written by the caller
/// first, so a failure still leaves diagnostics behind.
pub fn scale_gate(s: &ScaleStudy) {
    let (_, large) = scale_sizes();
    let big = &s.rows[1];
    assert_eq!(big.statements, large, "gate: the large tune must stream the full size");
    assert!(big.gap.is_finite() && big.objective.is_finite(), "gate: streamed tune must solve");

    // 1. Bounded residency: high-water ≤ reps + one chunk (+1 chunk slack),
    //    and far below |W|.
    for r in &s.rows {
        assert!(
            r.resident_high_water <= r.representatives + 2 * DEFAULT_CHUNK,
            "gate: residency {} exceeds reps {} + 2 chunks at |W|={}",
            r.resident_high_water,
            r.representatives,
            r.statements
        );
        assert!(
            r.resident_high_water * 10 <= r.statements,
            "gate: residency {} not far below |W|={}",
            r.resident_high_water,
            r.statements
        );
    }

    // 2. Near-linear ingestion: per-statement time may grow by at most 3×
    //    between the sizes (grid clustering is amortized-constant per
    //    statement; the slack absorbs CI noise and cache effects).
    let (t1, t2) = (s.rows[0].per_statement_us(), s.rows[1].per_statement_us());
    assert!(
        t2 <= t1 * 3.0 + 1.0,
        "gate: per-statement ingest grew superlinearly: {t1:.2}us -> {t2:.2}us"
    );

    // 3. Decomposition soundness on the exact small instance.
    let a = &s.agreement;
    assert!(a.lag_objective >= a.bb_objective - 1e-6, "gate: B&B is exact, lag cannot beat it");
    assert!(
        a.rel_delta() <= a.slack() + 1e-9,
        "gate: decomposed solve {:.6} off exact {:.6} beyond slack {:.3}",
        a.lag_objective,
        a.bb_objective,
        a.slack()
    );
}

/// Entry point of the `scale_smoke` bin.
pub fn scale_smoke() -> String {
    let study = scale_study();
    write_scale_artifact(&scale_artifact_json(&study));
    let report = scale_report(&study);
    scale_gate(&study);
    report
}
