//! Robustness smoke study (the `chaos_smoke` CI gate).
//!
//! Runs the same tune three times on one workload:
//!
//! 1. **clean** — the unwrapped what-if optimizer (the fault-free baseline);
//! 2. **zero-fault** — the same optimizer behind a [`FaultInjectingBackend`]
//!    with an all-zero [`FaultPlan`]: the wrapper must be *transparent* —
//!    bit-identical recommendation, not one extra what-if probe;
//! 3. **chaos** — a seeded [`FaultPlan::chaos`] schedule (transients,
//!    timeouts, a few permanent failures, mild cost corruption) under the
//!    retry/backoff policy: the pipeline must *complete*, report its
//!    degradation honestly, and land within a bounded cost delta of the
//!    fault-free tune.
//!
//! Writes `BENCH_chaos.json` (probe counts, fault log, coverage, cost
//! delta) *before* gating, so the CI artifact survives a failure.

use std::time::{Duration, Instant};

use cophy::{CoPhy, CoPhyOptions, ConstraintSet, DegradationReport};
use cophy_catalog::TpchGen;
use cophy_optimizer::{
    FaultInjectingBackend, FaultPlan, RetryPolicy, SystemProfile, WhatIfBackend, WhatIfOptimizer,
};

use crate::{secs, sizes};

/// The chaos schedule's seed — fixed so the study is reproducible and the
/// gate bounds below are meaningful.
const CHAOS_SEED: u64 = 0xC4A05;

/// Everything the study measures; gates and the artifact both read this.
pub struct ChaosStudy {
    pub statements: usize,
    /// Fault-free baseline.
    pub clean_objective: f64,
    pub clean_bound: f64,
    pub clean_gap: f64,
    pub clean_probes: u64,
    /// Zero-fault wrapped run.
    pub wrapped_probes: u64,
    pub zero_fault_identical: bool,
    /// Chaos run.
    pub chaos_objective: f64,
    pub chaos_gap: f64,
    pub chaos_probes: u64,
    pub degradation: Option<DegradationReport>,
    pub wall: Duration,
}

impl ChaosStudy {
    /// Relative cost delta of the chaos recommendation vs the fault-free
    /// tune (positive = worse).
    pub fn cost_delta(&self) -> f64 {
        self.chaos_objective / self.clean_objective - 1.0
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(50),
        ..Default::default()
    }
}

/// Run the whole study.  `n` statements; the workload is `hom:7:n` (the
/// `server_smoke` workload, so the two gates stress the same tune).
pub fn chaos_study(n: usize) -> ChaosStudy {
    let t0 = Instant::now();
    let schema = TpchGen::default().schema();
    let o = WhatIfOptimizer::new(schema.clone(), SystemProfile::A);
    let w = cophy_workload::HomGen::new(7).generate(o.schema(), n);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);

    // 1. Fault-free baseline.
    let clean = CoPhy::new(&o, CoPhyOptions::default())
        .try_tune(&w, &constraints)
        .expect("fault-free tune is feasible");
    let clean_probes = o.what_if_calls();

    // 2. Zero-fault schedule: the wrapper must be invisible.
    let wrapped = FaultInjectingBackend::new(
        Box::new(WhatIfOptimizer::new(schema.clone(), SystemProfile::A)),
        FaultPlan::none(CHAOS_SEED),
    );
    let zero = CoPhy::new(&wrapped, CoPhyOptions::default())
        .try_tune(&w, &constraints)
        .expect("zero-fault tune is feasible");
    let wrapped_probes = wrapped.what_if_calls();
    let zero_fault_identical = zero.objective.to_bits() == clean.objective.to_bits()
        && zero.bound.to_bits() == clean.bound.to_bits()
        && zero.configuration == clean.configuration
        && zero.degradation.is_none();

    // 3. Chaos schedule under retry/backoff.
    let chaotic = FaultInjectingBackend::new(
        Box::new(WhatIfOptimizer::new(schema, SystemProfile::A)),
        FaultPlan::chaos(CHAOS_SEED),
    );
    let opts = CoPhyOptions { retry: fast_retry(), min_coverage: 0.25, ..Default::default() };
    let chaos = CoPhy::new(&chaotic, opts)
        .try_tune(&w, &constraints)
        .expect("chaos tune must complete (degraded, not dead)");

    ChaosStudy {
        statements: n,
        clean_objective: clean.objective,
        clean_bound: clean.bound,
        clean_gap: clean.gap,
        clean_probes,
        wrapped_probes,
        zero_fault_identical,
        chaos_objective: chaos.objective,
        chaos_gap: chaos.gap,
        chaos_probes: chaotic.what_if_calls(),
        degradation: chaos.degradation,
        wall: t0.elapsed(),
    }
}

/// `BENCH_chaos.json` body.
pub fn chaos_artifact_json(s: &ChaosStudy) -> String {
    let (coverage, inflation, failed, retries, recovered, substituted, degraded, total) = s
        .degradation
        .as_ref()
        .map(|d| {
            (
                d.coverage,
                d.worst_case_inflation,
                d.probes_failed,
                d.retries,
                d.probes_recovered,
                d.probes_substituted,
                d.statements_degraded,
                d.statements_total,
            )
        })
        .unwrap_or((1.0, 0.0, 0, 0, 0, 0, 0, s.statements));
    format!(
        "{{\"experiment\":\"chaos_smoke\",\"statements\":{},\"seed\":{},\
         \"clean_probes\":{},\"wrapped_probes\":{},\"zero_fault_identical\":{},\
         \"clean_objective\":{:.6},\"chaos_objective\":{:.6},\"cost_delta\":{:.6},\
         \"chaos_probes\":{},\"chaos_gap\":{:.6},\
         \"probes_failed\":{failed},\"retries\":{retries},\"probes_recovered\":{recovered},\
         \"probes_substituted\":{substituted},\"statements_degraded\":{degraded},\
         \"statements_total\":{total},\"coverage\":{coverage:.4},\
         \"worst_case_inflation\":{inflation:.4},\"wall_s\":{:.3}}}\n",
        s.statements,
        CHAOS_SEED,
        s.clean_probes,
        s.wrapped_probes,
        s.zero_fault_identical,
        s.clean_objective,
        s.chaos_objective,
        s.cost_delta(),
        s.chaos_probes,
        s.chaos_gap,
        s.wall.as_secs_f64(),
    )
}

pub fn write_chaos_artifact(json: &str) {
    let path = "BENCH_chaos.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote chaos artifact to {path}");
}

/// Human-readable report.
pub fn chaos_report(s: &ChaosStudy) -> String {
    let mut out = String::new();
    out.push_str("## chaos_smoke — fault-injection robustness gate\n\n");
    out.push_str(&format!(
        "workload hom:7:{} | chaos seed {:#x} | retry {} attempts\n\n",
        s.statements,
        CHAOS_SEED,
        fast_retry().max_attempts
    ));
    out.push_str(&format!(
        "zero-fault wrapper: bit-identical {} | probes {} vs {} clean\n",
        s.zero_fault_identical, s.wrapped_probes, s.clean_probes
    ));
    match &s.degradation {
        Some(d) => out.push_str(&format!(
            "chaos: {} failed / {} retries / {} recovered / {} substituted | \
             {}/{} statements degraded | coverage {:.1}% | inflation {:.1}%\n",
            d.probes_failed,
            d.retries,
            d.probes_recovered,
            d.probes_substituted,
            d.statements_degraded,
            d.statements_total,
            d.coverage * 100.0,
            d.worst_case_inflation * 100.0
        )),
        None => out.push_str("chaos: no degradation reported\n"),
    }
    out.push_str(&format!(
        "cost: clean {:.0} vs chaos {:.0} ({:+.2}%) | chaos gap {:.2}% | wall {}\n",
        s.clean_objective,
        s.chaos_objective,
        s.cost_delta() * 100.0,
        s.chaos_gap * 100.0,
        secs(s.wall)
    ));
    out
}

/// Assertions behind the CI gate; the artifact is written by the caller
/// *before* this runs.
pub fn chaos_gate(s: &ChaosStudy) {
    assert!(
        s.zero_fault_identical,
        "gate: a zero-fault schedule must be bit-identical to the unwrapped backend"
    );
    assert_eq!(
        s.wrapped_probes, s.clean_probes,
        "gate: the zero-fault wrapper must not cost a single extra what-if probe"
    );
    let d = s.degradation.as_ref().expect("gate: the chaos tune must report its degradation");
    assert!(d.probes_failed > 0, "gate: the chaos schedule must actually fire");
    assert!(d.probes_recovered > 0, "gate: retries must recover at least one transient");
    assert!(d.coverage >= 0.25, "gate: chaos coverage {:.3} under the floor", d.coverage);
    assert!(s.chaos_gap.is_finite(), "gate: the chaos tune must prove a finite gap");
    // Bounded cost delta: cost corruption is ±5% per probe and lost
    // templates inflate by at most the advertised worst case, so 15% plus
    // the report's own inflation bound is a conservative ceiling.
    let ceiling = 0.15 + d.worst_case_inflation;
    assert!(
        s.cost_delta().abs() <= ceiling,
        "gate: chaos cost delta {:+.2}% exceeds the {:.2}% ceiling",
        s.cost_delta() * 100.0,
        ceiling * 100.0
    );
}

/// Entry point of the `chaos_smoke` bin.
pub fn chaos_smoke() -> String {
    let n = sizes()[1];
    let study = chaos_study(n);
    write_chaos_artifact(&chaos_artifact_json(&study));
    let report = chaos_report(&study);
    chaos_gate(&study);
    report
}
