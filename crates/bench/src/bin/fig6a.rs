//! Regenerates the paper's fig6a output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig6a());
}
