//! Regenerates the paper's skew output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::skew());
}
