//! Runs the full experiment suite and prints an EXPERIMENTS.md-ready
//! transcript (one section per table/figure).
type Experiment = (&'static str, fn() -> String);

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("Table 1", cophy_bench::table1),
        ("Figure 4", cophy_bench::fig4),
        ("Figure 5", cophy_bench::fig5),
        ("Figure 6a", cophy_bench::fig6a),
        ("Figure 6b", cophy_bench::fig6b),
        ("Figure 6c", cophy_bench::fig6c),
        ("Figure 7", cophy_bench::fig7),
        ("Figure 8", cophy_bench::fig8),
        ("Figure 9", cophy_bench::fig9),
        ("Figure 10", cophy_bench::fig10),
        ("Appendix C skew", cophy_bench::skew),
    ];
    for (name, run) in experiments {
        println!("===== {name} =====");
        let t0 = std::time::Instant::now();
        println!("{}", run());
        println!("[{name} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
