//! Regenerates the paper's fig6c output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig6c());
}
