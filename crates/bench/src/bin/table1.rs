//! Regenerates the paper's table1 output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::table1());
}
