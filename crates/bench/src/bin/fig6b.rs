//! Regenerates the paper's fig6b output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig6b());
}
