//! Interactive budget-sweep study: a K-point storage sweep answered as one
//! warm session chain (`TuningSession::sweep_storage` over the shared
//! fig10 budget grid) vs K independent cold solves of the identical BIP.
//!
//! Emits `BENCH_interactive.json` and doubles as the CI acceptance gate:
//! the warm chain must spend ≥ 3× fewer total simplex pivots than the cold
//! solves, issue zero optimizer what-if calls, and agree with the cold
//! answers within gap slack.  The report and artifact land before the gate
//! runs, so a failure still leaves the per-point diagnostics behind.

fn main() {
    println!("{}", cophy_bench::fig10_interactive());
}
