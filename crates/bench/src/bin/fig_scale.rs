//! Million-statement scaling figure: streamed ingestion with online
//! compression at two workload sizes (10⁵ smoke / 10⁶ full), residency
//! high-water, per-statement prep time, and the decomposed-vs-monolithic
//! agreement check.  Emits `BENCH_scale.json`; the gate lives in the
//! `scale_smoke` bin.

fn main() {
    let study = cophy_bench::scale_study();
    println!("{}", cophy_bench::scale_report(&study));
    cophy_bench::write_scale_artifact(&cophy_bench::scale_artifact_json(&study));
}
