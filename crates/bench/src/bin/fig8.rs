//! Regenerates the paper's fig8 output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig8());
}
