//! CI scaling smoke: streamed 10⁵-statement tune with bounded residency,
//! near-linear ingestion, and decomposed-vs-monolithic agreement, gated
//! (see `cophy_bench::scale_smoke`).

fn main() {
    println!("{}", cophy_bench::scale_smoke());
}
