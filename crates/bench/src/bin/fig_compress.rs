//! Workload-compression study: what-if calls, prepare/solve time, and
//! recommendation-cost delta of `Epsilon(default)` compression vs the
//! uncompressed pipeline, across |W| ∈ {24, 96, 200} on `W_hom`.
//!
//! Emits `BENCH_compress.json` and doubles as the CI acceptance gate
//! (≥ 4× what-if cut and ≤ 5% cost delta at |W| = 200).  The report and
//! artifact land before the gate runs, so a gate failure still leaves the
//! full per-size diagnostics behind.

fn main() {
    let rows = cophy_bench::compress_rows();
    println!("{}", cophy_bench::compress_report(&rows));
    cophy_bench::write_compress_artifact(&cophy_bench::compress_artifact_json(&rows));
    cophy_bench::compress_gate(&rows);
}
