//! CI guard: the advisor-as-a-service daemon must sustain 8 concurrent
//! sessions over one shared INUM cache at one session's probe cost, stream
//! solver events over the wire bit-identically to an in-process run,
//! reproduce an evicted session's recommendation, and enforce tenant
//! quotas.  Writes `BENCH_server.json` before gating.  See the ROADMAP's
//! advisor-as-a-service item.
fn main() {
    println!("{}", cophy_bench::server_smoke());
}
