//! Regenerates the paper's fig9 output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig9());
}
