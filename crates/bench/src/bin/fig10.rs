//! Regenerates the paper's fig10 output. See DESIGN.md §4.
//! Also emits the `BENCH_solver.json` gap-vs-time artifact.
fn main() {
    println!("{}", cophy_bench::fig10());
    cophy_bench::write_solver_artifact();
}
