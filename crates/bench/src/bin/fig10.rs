//! Regenerates the paper's fig10 output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig10());
}
