//! CI robustness smoke: zero-fault transparency + chaos-schedule
//! degradation bounds, gated (see `cophy_bench::chaos_smoke`).

fn main() {
    println!("{}", cophy_bench::chaos_smoke());
}
