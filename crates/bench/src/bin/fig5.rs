//! Regenerates the paper's fig5 output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig5());
}
