//! Regenerates the paper's fig4 output. See DESIGN.md §4.
//! Also emits the `BENCH_solver.json` gap-vs-time artifact.
fn main() {
    println!("{}", cophy_bench::fig4());
    cophy_bench::write_solver_artifact();
}
