//! Regenerates the paper's fig4 output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig4());
}
