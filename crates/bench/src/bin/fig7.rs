//! Regenerates the paper's fig7 output. See DESIGN.md §4.
fn main() {
    println!("{}", cophy_bench::fig7());
}
