//! CI guard: rich-constraint B&B must produce a root incumbent and a finite
//! gap within the default solve budget (panics otherwise). See ROADMAP's
//! solve-engine section.
fn main() {
    println!("{}", cophy_bench::solver_smoke());
}
