//! CI guard: rich-constraint B&B must produce a root incumbent and a finite
//! gap within the default solve budget, and the warm-started parallel
//! engine must beat the cold-serial PR-2 baseline (strictly smaller proven
//! gap and ≥5× nodes, unless it already reaches the 5% gap target).  Writes
//! the enriched `BENCH_solver.json` (trajectories + per-config nodes,
//! pivots/node, threads) before gating.  See ROADMAP's solve-engine section.
fn main() {
    println!("{}", cophy_bench::solver_smoke());
}
