//! Experiment harness for the CoPhy reproduction.
//!
//! One function per table/figure of the paper's §5 + Appendix C, each
//! printing the same rows/series the paper reports.  Binaries under
//! `src/bin/` are thin wrappers; `all_experiments` runs the lot and emits an
//! `EXPERIMENTS.md`-ready transcript.
//!
//! ## Scale
//!
//! The paper's workloads are 250/500/1000 statements.  Those sizes work here
//! too, but the default harness scale divides them by the `COPHY_SCALE`
//! environment variable semantics:
//!
//! * `COPHY_SCALE=full`  → 250/500/1000 (paper-exact sizes),
//! * `COPHY_SCALE=std`   → 100/200/400,
//! * unset               → 50/100/200 (local default),
//! * `COPHY_SCALE=smoke` → 6/12/24 (CI smoke: exercises every code path of
//!   an experiment end-to-end in seconds; the numbers mean nothing).
//!
//! Absolute wall-clock numbers differ from the paper (different hardware,
//! solver, DBMS); the claims under test are the *shapes*: who wins, by
//! roughly what factor, and how times scale.

pub mod chaos_study;
pub mod scale_study;
pub mod server_study;

pub use chaos_study::{chaos_smoke, chaos_study, ChaosStudy};
pub use scale_study::{
    scale_artifact_json, scale_gate, scale_report, scale_smoke, scale_study, write_scale_artifact,
    ScaleStudy,
};
pub use server_study::{server_smoke, server_study, ServerStudy};

use std::time::{Duration, Instant};

use cophy::{
    CGen, CandidateSet, ChordExplorer, Cmp, CoPhy, CoPhyOptions, Constraint, ConstraintSet,
    IndexFilter, SolveProgress, SolverBackend,
};
use cophy_advisors::{Advisor, IlpAdvisor, ToolA, ToolB};
use cophy_catalog::{Configuration, Skew, TpchGen};
use cophy_inum::{Inum, PreparedWorkload};
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::{HetGen, HomGen, Workload};

/// Workload family used by an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    Hom,
    Het,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::Hom => write!(f, "W_hom"),
            WorkloadKind::Het => write!(f, "W_het"),
        }
    }
}

/// The three workload sizes of the evaluation, resolved against
/// `COPHY_SCALE`.
pub fn sizes() -> [usize; 3] {
    match std::env::var("COPHY_SCALE").as_deref() {
        Ok("full") => [250, 500, 1000],
        Ok("std") => [100, 200, 400],
        Ok("smoke") => [6, 12, 24],
        _ => [50, 100, 200],
    }
}

/// Largest of [`sizes`] — the paper's default `W_1000`.
pub fn default_size() -> usize {
    sizes()[2]
}

/// Build the simulated DBMS for a given system profile and skew.
pub fn make_optimizer(profile: SystemProfile, z: f64) -> WhatIfOptimizer {
    WhatIfOptimizer::new(TpchGen::new(1.0, Skew(z)).schema(), profile)
}

/// Deterministic workload of the given kind and size.
pub fn make_workload(o: &WhatIfOptimizer, kind: WorkloadKind, n: usize) -> Workload {
    match kind {
        WorkloadKind::Hom => HomGen::new(0xC0FFEE).generate(o.schema(), n),
        WorkloadKind::Het => HetGen::new(0xC0FFEE).generate(o.schema(), n),
    }
}

/// Parallel INUM preparation — a thin re-export of
/// [`Inum::prepare_workload_parallel`], kept so existing bins and benches
/// compile unchanged (the implementation was promoted into `cophy-inum`).
pub fn prepare_parallel(o: &WhatIfOptimizer, w: &Workload) -> PreparedWorkload {
    Inum::new(o).prepare_workload_parallel(w)
}

/// Ground-truth quality metric `perf(X*, W)` (§5.1), computed against the
/// what-if optimizer directly.
pub fn perf(o: &WhatIfOptimizer, w: &Workload, cfg: &Configuration) -> f64 {
    o.perf(w, cfg)
}

/// Pretty seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

// ---------------------------------------------------------------------------
// Shared sweep harness (fig5 / fig10 / fig10_interactive)
// ---------------------------------------------------------------------------

/// Header of the INUM/build/solve time-split tables (fig5, fig10).
pub fn time_split_header(key: &str) -> String {
    format!("{key:<6} tool    INUM      build     solve     total\n")
}

/// One row of the time-split tables.
pub fn time_split_row(
    key: &str,
    tool: &str,
    inum: Duration,
    build: Duration,
    solve: Duration,
    total: Duration,
) -> String {
    format!(
        "{key:<6} {tool:<7} {:<9} {:<9} {:<9} {:<9}\n",
        secs(inum),
        secs(build),
        secs(solve),
        secs(total),
    )
}

/// The K-point storage-budget fractions of the fig10-family sweeps, loose →
/// tight: every step *pinches* the storage row, so a warm chain pays genuine
/// dual re-solves rather than trivially-feasible loosenings.
pub const SWEEP_FRACTIONS: [f64; 6] = [1.0, 0.7, 0.4, 0.2, 0.1, 0.05];

/// Materialize [`SWEEP_FRACTIONS`] against a schema's data size — the one
/// budget grid shared by `fig10_interactive`'s warm chain and its cold
/// baseline (and by any caller wanting the same sweep).
pub fn storage_budget_grid(schema: &cophy_catalog::Schema) -> Vec<u64> {
    SWEEP_FRACTIONS.iter().map(|m| (schema.data_bytes() as f64 * m) as u64).collect()
}

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// A CoPhy run with its measurement.
pub struct CoPhyRun {
    pub configuration: Configuration,
    pub perf: f64,
    pub total: Duration,
    pub inum: Duration,
    pub build: Duration,
    pub solve: Duration,
    pub n_candidates: usize,
}

/// Run CoPhy end-to-end on a workload (INUM prepared in parallel).
pub fn run_cophy(
    o: &WhatIfOptimizer,
    w: &Workload,
    constraints: &ConstraintSet,
    candidates: Option<&CandidateSet>,
) -> CoPhyRun {
    let cophy = CoPhy::new(o, CoPhyOptions::default());
    let (prepared, inum_time) = timed(|| prepare_parallel(o, w));
    let owned;
    let cands = match candidates {
        Some(c) => c,
        None => {
            owned = CGen::default().generate(o.schema(), w);
            &owned
        }
    };
    let rec = cophy
        .try_tune_prepared(&prepared, cands, constraints, inum_time, prepared.what_if_calls)
        .expect("feasible");
    CoPhyRun {
        perf: perf(o, w, &rec.configuration),
        total: rec.stats.total_time(),
        inum: rec.stats.inum_time,
        build: rec.stats.build_time,
        solve: rec.stats.solve_time,
        n_candidates: rec.stats.n_candidates,
        configuration: rec.configuration,
    }
}

/// Run a baseline advisor, timed.
pub fn run_advisor(
    advisor: &dyn Advisor,
    o: &WhatIfOptimizer,
    w: &Workload,
    constraints: &ConstraintSet,
) -> (Configuration, f64, Duration) {
    let (cfg, t) = timed(|| advisor.recommend(o, w, constraints));
    let p = perf(o, w, &cfg);
    (cfg, p, t)
}

// ---------------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------------

/// Table 1: CoPhy vs the commercial advisors across data skew and workload
/// diversity (ratio of `perf` improvements; > 1 means CoPhy wins).
pub fn table1() -> String {
    let n = default_size();
    let mut out = String::new();
    out.push_str("Table 1: perf(CoPhy)/perf(Tool) ratios\n");
    out.push_str("z     workload      CoPhyA/ToolA   CoPhyB/ToolB\n");
    for z in [0.0, 2.0] {
        for kind in [WorkloadKind::Hom, WorkloadKind::Het] {
            let mut row = format!("{z:<5} {kind}{n:<6}",);
            // System A vs Tool-A
            let oa = make_optimizer(SystemProfile::A, z);
            let wa = make_workload(&oa, kind, n);
            let ca = ConstraintSet::storage_fraction(oa.schema(), 1.0);
            let cophy_a = run_cophy(&oa, &wa, &ca, None);
            let (_, perf_ta, _) = run_advisor(&ToolA::default(), &oa, &wa, &ca);
            row.push_str(&format!("   {:>10.2}", ratio(cophy_a.perf, perf_ta)));
            // System B vs Tool-B
            let ob = make_optimizer(SystemProfile::B, z);
            let wb = make_workload(&ob, kind, n);
            let cb = ConstraintSet::storage_fraction(ob.schema(), 1.0);
            let cophy_b = run_cophy(&ob, &wb, &cb, None);
            let (_, perf_tb, _) = run_advisor(&ToolB::default(), &ob, &wb, &cb);
            row.push_str(&format!("   {:>10.2}\n", ratio(cophy_b.perf, perf_tb)));
            out.push_str(&row);
        }
    }
    out
}

fn ratio(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-9 {
        f64::INFINITY
    } else {
        a / b
    }
}

/// Figure 4: advisor execution time vs workload size (W_hom, z = 0, M = 1).
pub fn fig4() -> String {
    let mut out = String::new();
    out.push_str("Figure 4: execution time (seconds) vs workload size, W_hom, z=0, M=1\n");
    out.push_str("size   Tool-A    CoPhy-A   |  Tool-B    CoPhy-B\n");
    for n in sizes() {
        let oa = make_optimizer(SystemProfile::A, 0.0);
        let wa = make_workload(&oa, WorkloadKind::Hom, n);
        let ca = ConstraintSet::storage_fraction(oa.schema(), 1.0);
        let cophy_a = run_cophy(&oa, &wa, &ca, None);
        let (_, _, t_a) = run_advisor(&ToolA::default(), &oa, &wa, &ca);

        let ob = make_optimizer(SystemProfile::B, 0.0);
        let wb = make_workload(&ob, WorkloadKind::Hom, n);
        let cb = ConstraintSet::storage_fraction(ob.schema(), 1.0);
        let cophy_b = run_cophy(&ob, &wb, &cb, None);
        let (_, _, t_b) = run_advisor(&ToolB::default(), &ob, &wb, &cb);

        out.push_str(&format!(
            "{n:<6} {:<9} {:<9} |  {:<9} {:<9}\n",
            secs(t_a),
            secs(cophy_a.total),
            secs(t_b),
            secs(cophy_b.total),
        ));
    }
    out
}

/// Figure 5: CoPhy vs ILP, time split (INUM/build/solve) vs candidate count
/// (500 / 1000 / S_ALL / 10000) on the default workload.
pub fn fig5() -> String {
    let n = default_size();
    let o = make_optimizer(SystemProfile::A, 0.0);
    let w = make_workload(&o, WorkloadKind::Hom, n);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
    let s_all = CGen::default().generate(o.schema(), &w);

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 5: time split vs candidate-set size (W_hom{n}); S_ALL = {}\n",
        s_all.len()
    ));
    out.push_str(&time_split_header("cands"));

    let mut sets: Vec<(String, CandidateSet)> = Vec::new();
    for cut in [500usize, 1000] {
        if s_all.len() > cut {
            sets.push((cut.to_string(), s_all.truncate(cut)));
        }
    }
    sets.push((format!("S_ALL({})", s_all.len()), s_all.clone()));
    let mut padded = s_all.clone();
    padded.pad_random(o.schema(), 10_000, 99);
    sets.push(("10000".into(), padded));

    for (label, cands) in &sets {
        let cophy = run_cophy(&o, &w, &constraints, Some(cands));
        out.push_str(&time_split_row(
            label,
            "CoPhy",
            cophy.inum,
            cophy.build,
            cophy.solve,
            cophy.total,
        ));
        let ilp = IlpAdvisor::default();
        let ((_, stats), _) = timed(|| ilp.recommend_with_stats(&o, &w, cands, &constraints));
        out.push_str(&time_split_row(
            label,
            "ILP",
            stats.inum_time,
            stats.build_time,
            stats.solve_time,
            stats.inum_time + stats.build_time + stats.solve_time,
        ));
    }
    out
}

/// Figure 6a: anytime optimality-gap feedback over time for three workload
/// sizes.
pub fn fig6a() -> String {
    let mut out = String::new();
    out.push_str("Figure 6a: estimated distance from optimal (%) over solver time\n");
    for n in sizes() {
        let o = make_optimizer(SystemProfile::A, 0.0);
        let w = make_workload(&o, WorkloadKind::Hom, n);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let cophy = CoPhy::new(
            &o,
            CoPhyOptions {
                budget: cophy::SolveBudget {
                    gap_limit: 1e-4,
                    node_limit: Some(400),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let prepared = prepare_parallel(&o, &w);
        let cands = CGen::default().generate(o.schema(), &w);
        let rec = cophy
            .try_tune_prepared(&prepared, &cands, &constraints, Duration::ZERO, 0)
            .expect("feasible");
        out.push_str(&format!("W{n}:\n  t(ms)    gap(%)\n"));
        for p in rec.trace.iter().filter(|p| p.gap.is_finite()) {
            out.push_str(&format!("  {:<8.1} {:.2}\n", p.at.as_secs_f64() * 1e3, p.gap * 100.0));
        }
    }
    out
}

/// Figure 6b: re-solve time after adding +10/+25/+50/+100 candidates to an
/// initial S_1000 (warm-started interactive session).
pub fn fig6b() -> String {
    let n = default_size();
    let o = make_optimizer(SystemProfile::A, 0.0);
    let w = make_workload(&o, WorkloadKind::Hom, n);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));

    // Reserve some candidates to inject later.
    let s_all = CGen { max_key_columns: 3, max_include_columns: 6 }.generate(o.schema(), &w);
    let mut extra = s_all.clone();
    extra.pad_random(o.schema(), s_all.len() + 120, 7);
    let pool: Vec<_> = extra.iter().skip(s_all.len()).map(|(_, ix)| ix.clone()).collect();

    let mut out = String::new();
    out.push_str(&format!("Figure 6b: re-solve time after candidate deltas (W_hom{n})\n"));
    let (r0, t0) = timed(|| session.recommend());
    out.push_str(&format!(
        "initial(S={})        solve {:<9} total {}\n",
        r0.stats.n_candidates,
        secs(r0.stats.solve_time),
        secs(t0)
    ));
    let mut taken = 0usize;
    for delta in [10usize, 25, 50, 100] {
        let add: Vec<_> = pool.iter().skip(taken).take(delta - taken).cloned().collect();
        taken = delta;
        session.add_candidates(add);
        let (r, t) = timed(|| session.recommend());
        out.push_str(&format!(
            "+{delta:<4} candidates      solve {:<9} total {}\n",
            secs(r.stats.solve_time),
            secs(t)
        ));
    }
    out
}

/// Figure 6c: time per Pareto point for a soft storage constraint (Chord
/// algorithm with warm starts vs naive cold re-solves).
pub fn fig6c() -> String {
    let n = default_size();
    let o = make_optimizer(SystemProfile::A, 0.0);
    let w = make_workload(&o, WorkloadKind::Hom, n);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let prepared = prepare_parallel(&o, &w);
    let cands = CGen::default().generate(o.schema(), &w);

    let explorer = ChordExplorer { max_points: 5, ..Default::default() };
    let (points, total_warm) = timed(|| explorer.explore(&cophy, &prepared, &cands));

    let mut out = String::new();
    out.push_str(&format!("Figure 6c: Pareto-point generation times (W_hom{n})\n"));
    out.push_str("lambda   solve     size(MB)   cost\n");
    for p in &points {
        out.push_str(&format!(
            "{:<8.2} {:<9} {:<10.1} {:.0}\n",
            p.lambda,
            secs(p.solve_time),
            p.size_bytes as f64 / 1e6,
            p.workload_cost
        ));
    }
    // Naive: re-solve each λ cold.
    let lambdas: Vec<f64> = points.iter().map(|p| p.lambda).filter(|l| *l > 0.0).collect();
    let (_, total_cold) = timed(|| {
        for &l in &lambdas {
            let e = ChordExplorer { max_points: 1, ..Default::default() };
            // max_points=1 solves exactly the λ=1 extreme; emulate cold cost
            // by exploring a single point per λ via a fresh explorer run.
            let _ = l;
            let _ = e.explore(&cophy, &prepared, &cands);
        }
    });
    out.push_str(&format!(
        "chord+warm total: {}   naive cold total: {}   speedup {:.1}x\n",
        secs(total_warm),
        secs(total_cold),
        total_cold.as_secs_f64() / total_warm.as_secs_f64().max(1e-9)
    ));
    out
}

/// Figure 7 (Appendix C): solution quality (% speedup) vs workload size.
pub fn fig7() -> String {
    let mut out = String::new();
    out.push_str("Figure 7: quality (% speedup) vs workload size, W_hom, z=0, M=1\n");
    out.push_str("size   Tool-A   CoPhy-A  |  Tool-B   CoPhy-B\n");
    for n in sizes() {
        let oa = make_optimizer(SystemProfile::A, 0.0);
        let wa = make_workload(&oa, WorkloadKind::Hom, n);
        let ca = ConstraintSet::storage_fraction(oa.schema(), 1.0);
        let cophy_a = run_cophy(&oa, &wa, &ca, None);
        let (_, perf_ta, _) = run_advisor(&ToolA::default(), &oa, &wa, &ca);

        let ob = make_optimizer(SystemProfile::B, 0.0);
        let wb = make_workload(&ob, WorkloadKind::Hom, n);
        let cb = ConstraintSet::storage_fraction(ob.schema(), 1.0);
        let cophy_b = run_cophy(&ob, &wb, &cb, None);
        let (_, perf_tb, _) = run_advisor(&ToolB::default(), &ob, &wb, &cb);

        out.push_str(&format!(
            "{n:<6} {:<8.1} {:<8.1} |  {:<8.1} {:<8.1}\n",
            perf_ta * 100.0,
            cophy_a.perf * 100.0,
            perf_tb * 100.0,
            cophy_b.perf * 100.0,
        ));
    }
    out
}

/// Figure 8 (Appendix C): quality ratios vs storage budget M ∈ {0.5, 1, 2}.
pub fn fig8() -> String {
    let n = default_size();
    let mut out = String::new();
    out.push_str(&format!("Figure 8: speedup ratios vs space budget (W_hom{n})\n"));
    out.push_str("M      CoPhyA/ToolA   CoPhyB/ToolB\n");
    for m in [0.5, 1.0, 2.0] {
        let oa = make_optimizer(SystemProfile::A, 0.0);
        let wa = make_workload(&oa, WorkloadKind::Hom, n);
        let ca = ConstraintSet::storage_fraction(oa.schema(), m);
        let cophy_a = run_cophy(&oa, &wa, &ca, None);
        let (_, perf_ta, _) = run_advisor(&ToolA::default(), &oa, &wa, &ca);

        let ob = make_optimizer(SystemProfile::B, 0.0);
        let wb = make_workload(&ob, WorkloadKind::Hom, n);
        let cb = ConstraintSet::storage_fraction(ob.schema(), m);
        let cophy_b = run_cophy(&ob, &wb, &cb, None);
        let (_, perf_tb, _) = run_advisor(&ToolB::default(), &ob, &wb, &cb);

        out.push_str(&format!(
            "{m:<6} {:>12.2} {:>14.2}\n",
            ratio(cophy_a.perf, perf_ta),
            ratio(cophy_b.perf, perf_tb),
        ));
    }
    out
}

/// Figure 9 (Appendix C): heterogeneous workloads on System-B.
pub fn fig9() -> String {
    let mut out = String::new();
    out.push_str("Figure 9: quality (% speedup) on W_het, System-B, M=1\n");
    out.push_str("size   Tool-B   CoPhy-B\n");
    for n in sizes() {
        let o = make_optimizer(SystemProfile::B, 0.0);
        let w = make_workload(&o, WorkloadKind::Het, n);
        let c = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let cophy_b = run_cophy(&o, &w, &c, None);
        let (_, perf_tb, _) = run_advisor(&ToolB::default(), &o, &w, &c);
        out.push_str(&format!("{n:<6} {:<8.1} {:<8.1}\n", perf_tb * 100.0, cophy_b.perf * 100.0));
    }
    out
}

/// Figure 10 (Appendix C): CoPhy vs ILP time split vs workload size.
pub fn fig10() -> String {
    let mut out = String::new();
    out.push_str("Figure 10: CoPhy vs ILP time split vs workload size (S_ALL per size)\n");
    out.push_str(&time_split_header("size"));
    for n in sizes() {
        let o = make_optimizer(SystemProfile::A, 0.0);
        let w = make_workload(&o, WorkloadKind::Hom, n);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let cands = CGen::default().generate(o.schema(), &w);
        let cophy = run_cophy(&o, &w, &constraints, Some(&cands));
        let key = n.to_string();
        out.push_str(&time_split_row(
            &key,
            "CoPhy",
            cophy.inum,
            cophy.build,
            cophy.solve,
            cophy.total,
        ));
        let ilp = IlpAdvisor::default();
        let ((_, stats), _) = timed(|| ilp.recommend_with_stats(&o, &w, &cands, &constraints));
        out.push_str(&time_split_row(
            &key,
            "ILP",
            stats.inum_time,
            stats.build_time,
            stats.solve_time,
            stats.inum_time + stats.build_time + stats.solve_time,
        ));
    }
    out
}

/// Appendix C data-skew study: z = 1 quality on W_hom.
pub fn skew() -> String {
    let n = default_size();
    let mut out = String::new();
    out.push_str(&format!("Appendix C (skew): z=1, W_hom{n}, % speedup\n"));
    let oa = make_optimizer(SystemProfile::A, 1.0);
    let wa = make_workload(&oa, WorkloadKind::Hom, n);
    let ca = ConstraintSet::storage_fraction(oa.schema(), 1.0);
    let cophy_a = run_cophy(&oa, &wa, &ca, None);
    let (_, perf_ta, _) = run_advisor(&ToolA::default(), &oa, &wa, &ca);
    out.push_str(&format!(
        "System-A: Tool-A {:.1}%   CoPhy-A {:.1}%\n",
        perf_ta * 100.0,
        cophy_a.perf * 100.0
    ));
    let ob = make_optimizer(SystemProfile::B, 1.0);
    let wb = make_workload(&ob, WorkloadKind::Hom, n);
    let cb = ConstraintSet::storage_fraction(ob.schema(), 1.0);
    let cophy_b = run_cophy(&ob, &wb, &cb, None);
    let (_, perf_tb, _) = run_advisor(&ToolB::default(), &ob, &wb, &cb);
    out.push_str(&format!(
        "System-B: Tool-B {:.1}%   CoPhy-B {:.1}%\n",
        perf_tb * 100.0,
        cophy_b.perf * 100.0
    ));
    out
}

// ---------------------------------------------------------------------------
// Workload-compression study (fig_compress) + CI smoke guard
// ---------------------------------------------------------------------------

/// Workload sizes of the compression study.  Fixed (not `COPHY_SCALE`-scaled):
/// the claim under test is the compression behavior at a given `|W|`, and the
/// acceptance gate lives at `|W| = 200`.
pub fn compress_sizes() -> [usize; 3] {
    [24, 96, 200]
}

/// One row of the compression study: uncompressed vs `Epsilon(default)`
/// CoPhy on the same workload and constraints.
pub struct CompressRow {
    pub n: usize,
    pub representatives: usize,
    pub calls_uncompressed: u64,
    pub calls_compressed: u64,
    pub prep_uncompressed: Duration,
    pub prep_compressed: Duration,
    pub solve_uncompressed: Duration,
    pub solve_compressed: Duration,
    /// Clustering wall clock with the per-template linear scan (the
    /// pre-index baseline, `CompressedWorkload::compress_unindexed`).
    pub cluster_linear: Duration,
    /// Clustering wall clock with the feature-quantile bucket index (the
    /// default `CompressedWorkload::compress` path).
    pub cluster_indexed: Duration,
    /// Full-workload INUM cost of the uncompressed tune's recommendation.
    pub cost_uncompressed: f64,
    /// Full-workload INUM cost of the compressed tune's recommendation
    /// (ground-truth expansion: the config is costed against every original
    /// statement, not just the representatives).
    pub cost_compressed: f64,
}

impl CompressRow {
    /// What-if call reduction factor.
    pub fn call_cut(&self) -> f64 {
        self.calls_uncompressed as f64 / self.calls_compressed.max(1) as f64
    }

    /// Relative cost delta of the compressed recommendation (positive =
    /// worse than the uncompressed tune).
    pub fn cost_delta(&self) -> f64 {
        self.cost_compressed / self.cost_uncompressed - 1.0
    }
}

/// Run the compression study on `W_hom` across [`compress_sizes`].
pub fn compress_rows() -> Vec<CompressRow> {
    compress_sizes()
        .into_iter()
        .map(|n| {
            let o = make_optimizer(SystemProfile::A, 0.0);
            let w = make_workload(&o, WorkloadKind::Hom, n);
            let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);

            // Uncompressed tune, from a full INUM cache (also the
            // ground-truth cost oracle for both recommendations below).
            let before = o.what_if_calls();
            let (prepared_full, prep_u) = timed(|| prepare_parallel(&o, &w));
            let calls_u = o.what_if_calls() - before;
            let cands = CGen::default().generate(o.schema(), &w);
            let cophy = CoPhy::new(&o, CoPhyOptions::default());
            let rec_u = cophy
                .try_tune_prepared(&prepared_full, &cands, &constraints, prep_u, calls_u)
                .expect("uncompressed tune feasible");

            // Compressed tune: cluster → CGen + INUM on representatives only.
            let opts = CoPhyOptions {
                compression: cophy::CompressionPolicy::default_epsilon(),
                ..Default::default()
            };
            let rec_c = CoPhy::new(&o, opts).try_tune(&w, &constraints).expect("feasible");
            let summary = rec_c.compression.expect("compressed tune carries a summary");

            // Before/after clustering timing: the same workload through the
            // pre-index linear scan and the bucket index (identical output,
            // asserted by the compress crate's equivalence tests).
            let policy = cophy::CompressionPolicy::default_epsilon();
            let (_, cluster_linear) =
                timed(|| cophy::CompressedWorkload::compress_unindexed(o.schema(), &w, policy));
            let (_, cluster_indexed) =
                timed(|| cophy::CompressedWorkload::compress(o.schema(), &w, policy));

            let cm = o.cost_model();
            CompressRow {
                n,
                representatives: summary.n_representatives,
                calls_uncompressed: calls_u,
                calls_compressed: rec_c.stats.what_if_calls,
                prep_uncompressed: prep_u,
                prep_compressed: rec_c.stats.inum_time,
                solve_uncompressed: rec_u.stats.solve_time,
                solve_compressed: rec_c.stats.solve_time,
                cluster_linear,
                cluster_indexed,
                cost_uncompressed: prepared_full.cost(o.schema(), cm, &rec_u.configuration),
                cost_compressed: prepared_full.cost(o.schema(), cm, &rec_c.configuration),
            }
        })
        .collect()
}

/// The `BENCH_compress.json` artifact body for a set of study rows.
pub fn compress_artifact_json(rows: &[CompressRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"n\":{},\"representatives\":{},\"what_if_uncompressed\":{},\
                 \"what_if_compressed\":{},\"call_cut\":{:.3},\"prep_uncompressed_ms\":{:.3},\
                 \"prep_compressed_ms\":{:.3},\"solve_uncompressed_ms\":{:.3},\
                 \"solve_compressed_ms\":{:.3},\"cluster_linear_ms\":{:.3},\
                 \"cluster_indexed_ms\":{:.3},\"cost_uncompressed\":{},\"cost_compressed\":{},\
                 \"cost_delta\":{:.6}}}",
                r.n,
                r.representatives,
                r.calls_uncompressed,
                r.calls_compressed,
                r.call_cut(),
                r.prep_uncompressed.as_secs_f64() * 1e3,
                r.prep_compressed.as_secs_f64() * 1e3,
                r.solve_uncompressed.as_secs_f64() * 1e3,
                r.solve_compressed.as_secs_f64() * 1e3,
                r.cluster_linear.as_secs_f64() * 1e3,
                r.cluster_indexed.as_secs_f64() * 1e3,
                json_f64(r.cost_uncompressed),
                json_f64(r.cost_compressed),
                r.cost_delta(),
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"workload_compression\",\"epsilon\":{},\"rows\":[{}]}}\n",
        cophy::CompressionPolicy::DEFAULT_EPSILON,
        body.join(",")
    )
}

/// The human-readable compression study report for a set of study rows.
pub fn compress_report(rows: &[CompressRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Workload compression: W_hom, ε = {} (default), M = 0.5\n",
        cophy::CompressionPolicy::DEFAULT_EPSILON
    ));
    out.push_str(
        "size   reps   what-if(full)  what-if(comp)  cut     prep(comp) solve(comp) \
         cluster lin→idx (ms)  cost delta\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:<6} {:<14} {:<14} {:<7.1} {:<10} {:<11} {:>8.2} → {:<8.2}  {:+.2}%\n",
            r.n,
            r.representatives,
            r.calls_uncompressed,
            r.calls_compressed,
            r.call_cut(),
            secs(r.prep_compressed),
            secs(r.solve_compressed),
            r.cluster_linear.as_secs_f64() * 1e3,
            r.cluster_indexed.as_secs_f64() * 1e3,
            r.cost_delta() * 100.0,
        ));
    }
    out
}

/// The CI acceptance gate: **panics** unless, at `|W| = 200`, the default-ε
/// compression cuts what-if calls ≥ 4× while the expanded recommendation
/// cost stays within 5% of the uncompressed tune.  Callers print the report
/// and write the artifact *before* gating, so a failure still leaves the
/// full diagnostics behind.
pub fn compress_gate(rows: &[CompressRow]) {
    let gate = rows.iter().find(|r| r.n == 200).expect("|W| = 200 row present");
    assert!(
        gate.call_cut() >= 4.0,
        "compression must cut what-if calls ≥ 4× at |W| = 200: got {:.2}× ({} → {})",
        gate.call_cut(),
        gate.calls_uncompressed,
        gate.calls_compressed
    );
    assert!(
        gate.cost_delta() <= 0.05,
        "compressed recommendation must stay within 5% of the uncompressed tune: {:+.2}%",
        gate.cost_delta() * 100.0
    );
}

/// Write the compression artifact next to the experiment output.
pub fn write_compress_artifact(json: &str) {
    let path = "BENCH_compress.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote workload-compression artifact to {path}");
}

// ---------------------------------------------------------------------------
// Solver-trajectory artifact + CI smoke guard
// ---------------------------------------------------------------------------

/// Statement count for rich-constraint B&B runs: the generic backend's dense
/// simplex does not scale like the Lagrangian, so cap at the acceptance
/// workload (24) while still honoring smaller smoke scales.
pub fn bb_size() -> usize {
    sizes()[2].min(24)
}

/// The rich (non-storage-only) constraint set that routes tuning to the
/// generic branch-and-bound backend.
pub fn rich_constraints(o: &WhatIfOptimizer) -> ConstraintSet {
    let li = o.schema().table_by_name("lineitem").expect("TPC-H lineitem").id;
    ConstraintSet::storage_fraction(o.schema(), 0.5).with(Constraint::IndexCount {
        filter: IndexFilter::on_table(li),
        cmp: Cmp::Le,
        value: 2,
    })
}

/// Run one backend with the unified progress stream captured.
fn capture_trajectory(
    o: &WhatIfOptimizer,
    w: &Workload,
    constraints: &ConstraintSet,
    backend: SolverBackend,
) -> (Vec<SolveProgress>, Result<cophy::Recommendation, String>) {
    let prepared = prepare_parallel(o, w);
    let cands = CGen::default().generate(o.schema(), w);
    capture_trajectory_prepared(o, &prepared, &cands, constraints, backend)
}

/// [`capture_trajectory`] from an existing INUM cache and candidate set —
/// callers that run several studies on the same workload (`solver_smoke`)
/// prepare once and share.
fn capture_trajectory_prepared(
    o: &WhatIfOptimizer,
    prepared: &PreparedWorkload,
    cands: &CandidateSet,
    constraints: &ConstraintSet,
    backend: SolverBackend,
) -> (Vec<SolveProgress>, Result<cophy::Recommendation, String>) {
    let cophy = CoPhy::new(o, CoPhyOptions { backend, ..Default::default() });
    let mut points = Vec::new();
    let rec = cophy.try_tune_prepared_with_progress(
        prepared,
        cands,
        constraints,
        Duration::ZERO,
        0,
        |p| points.push(*p),
    );
    (points, rec)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_series(backend: &str, n: usize, points: &[SolveProgress]) -> String {
    let pts: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"t_ms\":{:.3},\"incumbent\":{},\"bound\":{},\"gap\":{},\"ticks\":{},\
                 \"pivots\":{}}}",
                p.at.as_secs_f64() * 1e3,
                json_f64(p.incumbent),
                json_f64(p.bound),
                json_f64(p.gap),
                p.ticks,
                p.pivots
            )
        })
        .collect();
    format!("{{\"backend\":\"{backend}\",\"statements\":{n},\"points\":[{}]}}", pts.join(","))
}

/// Gap-vs-time trajectories of both backends through the unified
/// [`SolveProgress`] stream, as a JSON document.  The `fig4`/`fig10` bins
/// write this to `BENCH_solver.json` so future PRs can track solver
/// regressions (anytime behavior, not just end-to-end wall clock);
/// `solver_smoke` appends the warm-start/parallelism configuration rows
/// (nodes, pivots/node, threads) via [`solver_artifact_json`].
pub fn solver_trajectory_json() -> String {
    solver_artifact_json(&[])
}

/// The `BENCH_solver.json` body: both backends' gap-vs-time series plus the
/// warm-start/parallelism study rows (empty for the cheap `fig4`/`fig10`
/// writes).  Captures both trajectories itself; callers that already hold a
/// capture (the `solver_smoke` guard) use [`solver_artifact_body`] instead
/// of paying the solves twice.
pub fn solver_artifact_json(configs: &[SolverConfigRow]) -> String {
    let o = make_optimizer(SystemProfile::A, 0.0);

    // Lagrangian on the storage-only set (the common, large case).
    let n_lag = default_size();
    let w_lag = make_workload(&o, WorkloadKind::Hom, n_lag);
    let storage = ConstraintSet::storage_fraction(o.schema(), 0.5);
    let (lag_points, lag_rec) = capture_trajectory(&o, &w_lag, &storage, SolverBackend::Lagrangian);
    let lag_rec = lag_rec.expect("storage-only tuning is feasible");

    // Branch-and-bound on a rich constraint set.
    let n_bb = bb_size();
    let w_bb = make_workload(&o, WorkloadKind::Hom, n_bb);
    let rich = rich_constraints(&o);
    let (bb_points, bb_rec) = capture_trajectory(&o, &w_bb, &rich, SolverBackend::BranchBound);
    let bb_rec = bb_rec.expect("rich-constraint tuning must find an incumbent");

    solver_artifact_body((n_lag, &lag_points, lag_rec.gap), (n_bb, &bb_points, bb_rec.gap), configs)
}

/// Format the `BENCH_solver.json` body from already-captured trajectories
/// `(statements, points, final gap)` per backend plus the study rows.
pub fn solver_artifact_body(
    lagrangian: (usize, &[SolveProgress], f64),
    branch_bound: (usize, &[SolveProgress], f64),
    configs: &[SolverConfigRow],
) -> String {
    let config_rows: Vec<String> = configs
        .iter()
        .map(|r| {
            format!(
                "{{\"label\":\"{}\",\"engine\":\"{}\",\"warm_start\":{},\"threads\":{},\
                 \"nodes\":{},\"pivots\":{},\"pivots_per_node\":{:.2},\
                 \"pivots_per_sec\":{:.1},\"refactorizations\":{},\"devex_resets\":{},\
                 \"gap\":{},\"bound\":{},\"objective\":{},\"wall_ms\":{:.3}}}",
                r.label,
                r.engine,
                r.warm_start,
                r.threads,
                r.nodes,
                r.pivots,
                r.pivots_per_node(),
                r.pivots_per_sec(),
                r.refactorizations,
                r.devex_resets,
                json_f64(r.gap),
                json_f64(r.bound),
                json_f64(r.objective),
                r.wall.as_secs_f64() * 1e3,
            )
        })
        .collect();
    let (n_lag, lag_points, lag_gap) = lagrangian;
    let (n_bb, bb_points, bb_gap) = branch_bound;
    format!(
        "{{\"experiment\":\"solver_trajectory\",\"host_threads\":{},\"final_gaps\":{{\"lagrangian\":{},\"branch_bound\":{}}},\"series\":[{},{}],\"configs\":[{}]}}\n",
        host_threads(),
        json_f64(lag_gap),
        json_f64(bb_gap),
        json_series("lagrangian", n_lag, lag_points),
        json_series("branch_bound", n_bb, bb_points),
        config_rows.join(","),
    )
}

/// Write the solver trajectory artifact next to the experiment output.
pub fn write_solver_artifact() {
    write_named_solver_artifact(&solver_trajectory_json());
}

/// Write a prebuilt `BENCH_solver.json` body.
pub fn write_named_solver_artifact(body: &str) {
    let path = "BENCH_solver.json";
    std::fs::write(path, body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote solver artifact to {path}");
}

// ---------------------------------------------------------------------------
// Warm-start / parallel-node study (solver_smoke gate)
// ---------------------------------------------------------------------------

/// `SolveBudget::parallelism` of the warm-parallel study config:
/// `COPHY_THREADS` when set (CI pins it on the hosted runners), otherwise
/// the host's available parallelism, clamped to `[2, 8]`.
pub fn study_threads() -> usize {
    std::env::var("COPHY_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4))
        .clamp(2, 8)
}

/// The host's reported parallelism (recorded in the artifacts so multi-core
/// CI runs are distinguishable from 1-core container runs).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// One configuration of the warm-start/parallelism study on the rich
/// W_hom24 branch-and-bound tune.
pub struct SolverConfigRow {
    pub label: &'static str,
    /// LP kernel of the run (`"sparse"` revised simplex or the retained
    /// `"dense"` explicit-inverse baseline).
    pub engine: &'static str,
    pub warm_start: bool,
    /// `SolveBudget::parallelism` of the run.
    pub threads: usize,
    /// B&B nodes explored within the budget.
    pub nodes: usize,
    /// Cumulative simplex pivots (root + node LPs, warm and cold alike).
    pub pivots: usize,
    /// From-scratch basis (re)factorizations across every LP of the run.
    pub refactorizations: usize,
    /// Devex reference-framework resets across every LP of the run.
    pub devex_resets: usize,
    pub gap: f64,
    pub bound: f64,
    pub objective: f64,
    pub wall: Duration,
}

impl SolverConfigRow {
    pub fn pivots_per_node(&self) -> f64 {
        self.pivots as f64 / self.nodes.max(1) as f64
    }

    /// Pivot throughput — the tentpole metric of the sparse-kernel gate.
    pub fn pivots_per_sec(&self) -> f64 {
        self.pivots as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Run the rich-constraint W_hom24 BIP through four branch-and-bound
/// configurations under the same default interactive budget (5% gap, 60 s):
/// the PR-2 baseline (cold two-phase node LPs, serial), the PR-6 baseline
/// (warm serial on the retained dense explicit-inverse kernel), warm-started
/// serial on the sparse revised kernel, and warm-started parallel.  The
/// model is built once from the caller's INUM cache; each run solves the
/// same BIP, so nodes/pivots/gap compare engines, not model noise.
pub fn solver_config_rows(
    o: &WhatIfOptimizer,
    prepared: &PreparedWorkload,
    cands: &CandidateSet,
    constraints: &ConstraintSet,
) -> Vec<SolverConfigRow> {
    use cophy_bip::{BranchBound, LpEngine, SimplexSolver, SolveOptions};

    let (model, _mapping) =
        cophy::BipGen::default().model(o.schema(), o.cost_model(), prepared, cands, constraints);

    // At least 2 so the parallel path is exercised even on one-core boxes
    // (a batch of 2 on one core costs the same total work as 2 serial
    // nodes; the warm start, not the core count, carries the speedup
    // there).  `COPHY_THREADS` pins the count explicitly — CI sets it on
    // the multi-core hosted runners so the artifact records a reproducible
    // `SolveBudget::parallelism`.
    let threads = study_threads();
    let configs: [(&'static str, LpEngine, bool, usize); 4] = [
        ("cold-serial (PR-2 baseline)", LpEngine::Sparse, false, 1),
        ("dense-serial (PR-6 baseline)", LpEngine::Dense, true, 1),
        ("warm-serial", LpEngine::Sparse, true, 1),
        ("warm-parallel", LpEngine::Sparse, true, threads),
    ];
    configs
        .into_iter()
        .map(|(label, engine, warm_start, k)| {
            let opts = SolveOptions {
                budget: cophy::SolveBudget::interactive().with_parallelism(k),
                warm_start,
                ..Default::default()
            };
            let bb = BranchBound { simplex: SimplexSolver { engine, ..Default::default() } };
            let (r, wall) = timed(|| bb.solve(&model, &opts));
            SolverConfigRow {
                label,
                engine: if engine == LpEngine::Dense { "dense" } else { "sparse" },
                warm_start,
                threads: k,
                nodes: r.nodes,
                pivots: r.pivots,
                refactorizations: r.refactorizations,
                devex_resets: r.devex_resets,
                gap: r.gap,
                bound: r.bound,
                objective: r.objective,
                wall,
            }
        })
        .collect()
}

/// Human-readable report of the warm-start/parallelism study.
pub fn solver_config_report(rows: &[SolverConfigRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Warm-start / parallel-node study: rich W_hom{} BIP, budget 5% gap / 60 s\n",
        bb_size()
    ));
    out.push_str(
        "config                        engine  threads  nodes    pivots/node  pivots/sec  \
         refact  resets  gap      wall\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<29} {:<7} {:<8} {:<8} {:<12.1} {:<11.0} {:<7} {:<7} {:<8.2}% {}\n",
            r.label,
            r.engine,
            r.threads,
            r.nodes,
            r.pivots_per_node(),
            r.pivots_per_sec(),
            r.refactorizations,
            r.devex_resets,
            r.gap * 100.0,
            secs(r.wall),
        ));
    }
    out
}

/// The CI acceptance gate of the warm-started parallel engine: **panics**
/// unless, within the same budget, the warm-parallel configuration (a)
/// proves a strictly smaller gap than the cold-serial PR-2 baseline (or
/// already reaches the 5% gap target, where it is allowed to stop early)
/// and (b) explores at least 5× the baseline's node count (same early-stop
/// escape).  The sparse-kernel gate then requires the warm-serial sparse
/// configuration to sustain **≥ 10× the pivot throughput** of the dense
/// PR-6 baseline and to prove an equal-or-smaller gap — skipped only when
/// either run is too short to measure (pivots < 500 or wall < 50 ms, the
/// early-stop regime where throughput is noise).  Callers print the report
/// and write the artifact *before* gating, so a failure still leaves the
/// diagnostics behind.
pub fn solver_config_gate(rows: &[SolverConfigRow]) {
    let base = rows.iter().find(|r| !r.warm_start).expect("cold-serial baseline row");
    let warm = rows.iter().find(|r| r.label == "warm-parallel").expect("warm-parallel row");
    let target_reached = warm.gap <= 0.05 + 1e-9;
    assert!(
        warm.gap < base.gap - 1e-9 || target_reached,
        "warm-parallel must prove a strictly smaller gap than the cold baseline: \
         {:.2}% vs {:.2}%",
        warm.gap * 100.0,
        base.gap * 100.0
    );
    assert!(
        warm.nodes >= 5 * base.nodes || target_reached,
        "warm-parallel must explore ≥5× the baseline's nodes within the budget: \
         {} vs {}",
        warm.nodes,
        base.nodes
    );

    // Sparse revised simplex vs the dense explicit-inverse baseline.
    let dense = rows.iter().find(|r| r.engine == "dense").expect("dense-serial baseline row");
    let sparse = rows.iter().find(|r| r.label == "warm-serial").expect("warm-serial row");
    assert!(
        sparse.gap <= dense.gap + 1e-9,
        "sparse warm-serial must prove an equal-or-smaller gap than the dense baseline: \
         {:.2}% vs {:.2}%",
        sparse.gap * 100.0,
        dense.gap * 100.0
    );
    let measurable = |r: &SolverConfigRow| r.pivots >= 500 && r.wall >= Duration::from_millis(50);
    if measurable(dense) && measurable(sparse) {
        assert!(
            sparse.pivots_per_sec() >= 10.0 * dense.pivots_per_sec(),
            "sparse warm-serial must sustain ≥10× the dense baseline's pivot throughput: \
             {:.0}/s vs {:.0}/s",
            sparse.pivots_per_sec(),
            dense.pivots_per_sec()
        );
    } else {
        eprintln!(
            "sparse-vs-dense throughput gate skipped: run too short to measure \
             (sparse {} pivots / {:.0} ms, dense {} pivots / {:.0} ms)",
            sparse.pivots,
            sparse.wall.as_secs_f64() * 1e3,
            dense.pivots,
            dense.wall.as_secs_f64() * 1e3
        );
    }
}

/// CI smoke guard for the generic backend: a rich-constraint B&B run that
/// **fails** unless a feasible incumbent appears at the root node and a
/// finite gap is reached within the default budget (guards the
/// LP-rounding/repair heuristic against regressions), followed by the
/// warm-start/parallelism study whose gate requires the warm-parallel
/// engine to beat the cold-serial PR-2 baseline (see [`solver_config_gate`]).
/// The enriched `BENCH_solver.json` (trajectories + per-config nodes,
/// pivots/node, threads) is written *before* the gate asserts.
pub fn solver_smoke() -> String {
    let n = bb_size();
    let o = make_optimizer(SystemProfile::A, 0.0);
    let w = make_workload(&o, WorkloadKind::Hom, n);
    let rich = rich_constraints(&o);
    // One INUM preparation + candidate set serves the guard run, the
    // warm-start/parallelism study, and the artifact below.
    let prepared = prepare_parallel(&o, &w);
    let cands = CGen::default().generate(o.schema(), &w);
    let (points, rec) =
        capture_trajectory_prepared(&o, &prepared, &cands, &rich, SolverBackend::BranchBound);
    let rec = rec.expect("rich-constraint B&B found no incumbent within the default budget");
    let first_incumbent_ticks = points.iter().find(|p| p.incumbent.is_finite()).map(|p| p.ticks);
    assert!(rec.gap.is_finite(), "gap stayed infinite within the default budget");
    assert_eq!(
        first_incumbent_ticks,
        Some(0),
        "the rounding heuristic must produce the first incumbent at the root node"
    );

    // Warm-start / parallel-node study: report + artifact land first so a
    // gate failure still leaves the diagnostics behind.  The artifact
    // reuses the B&B trajectory captured above (the expensive solve);
    // only the cheap Lagrangian series is captured fresh.
    let configs = solver_config_rows(&o, &prepared, &cands, &rich);
    let report = solver_config_report(&configs);
    eprintln!("{report}");
    let n_lag = default_size();
    let w_lag = make_workload(&o, WorkloadKind::Hom, n_lag);
    let storage = ConstraintSet::storage_fraction(o.schema(), 0.5);
    let (lag_points, lag_rec) = capture_trajectory(&o, &w_lag, &storage, SolverBackend::Lagrangian);
    let lag_rec = lag_rec.expect("storage-only tuning is feasible");
    write_named_solver_artifact(&solver_artifact_body(
        (n_lag, &lag_points, lag_rec.gap),
        (n, &points, rec.gap),
        &configs,
    ));
    solver_config_gate(&configs);

    format!(
        "solver smoke: W_hom{n} under rich constraints → incumbent at root, \
         {} progress events, final gap {:.2}%, bound {:.0}, solve {}\n\n{report}",
        points.len(),
        rec.gap * 100.0,
        rec.bound,
        secs(rec.stats.solve_time),
    )
}

// ---------------------------------------------------------------------------
// Interactive re-optimization study (fig10_interactive) + CI smoke guard
// ---------------------------------------------------------------------------

/// Statement count of the interactive study.  The warm chain runs the
/// branch-and-bound backend over the Theorem-1 model, whose dense-inverse
/// LPs do not scale like the Lagrangian — cap at 12 while honoring smaller
/// smoke scales (the claim under test is the *pivot economy* of the warm
/// chain, not workload scale).
pub fn interactive_size() -> usize {
    sizes()[0].clamp(6, 12)
}

/// One budget point of the interactive study: the warm-chained sweep answer
/// vs an independent cold tune of the identical BIP.
pub struct InteractivePoint {
    pub budget_bytes: u64,
    pub warm_objective: f64,
    pub warm_bound: f64,
    pub warm_gap: f64,
    pub warm_nodes: usize,
    pub warm_pivots: usize,
    pub warm_time: Duration,
    pub cold_objective: f64,
    pub cold_bound: f64,
    pub cold_gap: f64,
    pub cold_nodes: usize,
    pub cold_pivots: usize,
    pub cold_time: Duration,
}

/// The fig10_interactive study: a K-point storage sweep answered as one warm
/// session chain ([`cophy::TuningSession::sweep_storage`]) vs K independent
/// cold solves of the same model, plus the zero-call `what_if` probes.
pub struct InteractiveStudy {
    pub n_statements: usize,
    pub points: Vec<InteractivePoint>,
    pub warm_wall: Duration,
    pub cold_wall: Duration,
    /// Optimizer what-if calls issued *during* the sweep (must be 0: the
    /// chain re-solves the model, it never re-probes the optimizer).
    pub sweep_what_if_calls: u64,
    /// Optimizer what-if calls issued by `what_if()` probes of every sweep
    /// answer (must be 0: answered from the INUM cache).
    pub what_if_probe_calls: u64,
}

impl InteractiveStudy {
    pub fn warm_pivots(&self) -> usize {
        self.points.iter().map(|p| p.warm_pivots).sum()
    }

    pub fn cold_pivots(&self) -> usize {
        self.points.iter().map(|p| p.cold_pivots).sum()
    }

    /// Total-pivot economy of the warm chain (cold / warm; higher = better).
    pub fn pivot_ratio(&self) -> f64 {
        self.cold_pivots() as f64 / self.warm_pivots().max(1) as f64
    }
}

/// Run the interactive study on `W_hom` at [`interactive_size`] over the
/// shared [`storage_budget_grid`].  The warm chain and the cold baseline
/// share one INUM cache and candidate set, so the comparison isolates
/// solver work: per point, the two sides solve bit-identical BIPs (same
/// rows, same RHS) under the same default interactive budget.
pub fn interactive_study() -> InteractiveStudy {
    use cophy_bip::{BranchBound, SolveOptions};

    let o = make_optimizer(SystemProfile::A, 0.0);
    let n = interactive_size();
    let w = make_workload(&o, WorkloadKind::Hom, n);
    let budgets = storage_budget_grid(o.schema());

    // Warm chain: one session, K budget points, one ResolveContext.  The
    // study runs at the paper's interactive operating point (5% gap, 60 s)
    // with a lean candidate grammar (2-column keys, no covering variants):
    // interactivity presumes per-point answers in seconds, and the lean
    // grammar keeps every budget point in that regime — both sides of the
    // comparison use the identical grammar, so the ratio is solver economics
    // only.
    let gap: f64 =
        std::env::var("COPHY_SWEEP_GAP").ok().and_then(|v| v.parse().ok()).unwrap_or(0.05);
    let opts = CoPhyOptions {
        budget: cophy::SolveBudget::within(gap).with_time(Duration::from_secs(60)),
        cgen: CGen { max_key_columns: 2, max_include_columns: 0 },
        ..Default::default()
    };
    let cophy = CoPhy::new(&o, opts.clone());
    let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
    let calls_before = o.what_if_calls();
    let (warm_points, warm_wall) = timed(|| session.sweep_storage(&budgets));
    let sweep_what_if_calls = o.what_if_calls() - calls_before;

    // "What does this configuration cost?" probes of every sweep answer:
    // answered from the INUM cache, so the optimizer counter must not move.
    let probe_before = o.what_if_calls();
    for p in &warm_points {
        let _ = session.what_if(&p.configuration);
    }
    let what_if_probe_calls = o.what_if_calls() - probe_before;

    // Cold baseline: K independent solves of the identical BIP (fresh model
    // and solver state per budget; the session's own INUM preparation and
    // CGen run are reproduced deterministically).
    let prepared = Inum::new(&o).prepare_workload(&w);
    let cands = opts.cgen.generate(o.schema(), &w);
    let cm = o.cost_model();
    let fixed: f64 = prepared.queries.iter().map(|pq| pq.weight * pq.fixed_update_cost).sum();
    let mut points = Vec::with_capacity(budgets.len());
    let t0 = Instant::now();
    for (wp, &budget) in warm_points.iter().zip(&budgets) {
        let constraints = ConstraintSet::none().with(Constraint::Storage { budget_bytes: budget });
        let (model, _) =
            cophy::BipGen::default().model(o.schema(), cm, &prepared, &cands, &constraints);
        let solve_opts = SolveOptions { budget: opts.budget, ..Default::default() };
        let (r, cold_time) = timed(|| BranchBound::new().solve(&model, &solve_opts));
        points.push(InteractivePoint {
            budget_bytes: budget,
            warm_objective: wp.objective,
            warm_bound: wp.bound,
            warm_gap: wp.gap,
            warm_nodes: wp.nodes,
            warm_pivots: wp.pivots,
            warm_time: wp.solve_time,
            cold_objective: r.objective + fixed,
            cold_bound: r.bound + fixed,
            cold_gap: r.gap,
            cold_nodes: r.nodes,
            cold_pivots: r.pivots,
            cold_time,
        });
    }
    let cold_wall = t0.elapsed();

    InteractiveStudy {
        n_statements: n,
        points,
        warm_wall,
        cold_wall,
        sweep_what_if_calls,
        what_if_probe_calls,
    }
}

/// Human-readable report of the interactive study.
pub fn interactive_report(study: &InteractiveStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Interactive budget sweep: W_hom{} × {} budget points, warm chain vs cold solves\n",
        study.n_statements,
        study.points.len()
    ));
    out.push_str(
        "budget(MB)  warm pivots  nodes  gap      time    |  cold pivots  nodes  gap      time\n",
    );
    for p in &study.points {
        out.push_str(&format!(
            "{:<11.1} {:<12} {:<6} {:<8.2}% {:<7} |  {:<12} {:<6} {:<8.2}% {}\n",
            p.budget_bytes as f64 / 1e6,
            p.warm_pivots,
            p.warm_nodes,
            p.warm_gap * 100.0,
            secs(p.warm_time),
            p.cold_pivots,
            p.cold_nodes,
            p.cold_gap * 100.0,
            secs(p.cold_time),
        ));
    }
    out.push_str(&format!(
        "totals: warm {} pivots in {} vs cold {} pivots in {} → {:.1}× fewer pivots\n\
         what-if calls during sweep: {} (probes: {})\n",
        study.warm_pivots(),
        secs(study.warm_wall),
        study.cold_pivots(),
        secs(study.cold_wall),
        study.pivot_ratio(),
        study.sweep_what_if_calls,
        study.what_if_probe_calls,
    ));
    out
}

/// The `BENCH_interactive.json` artifact body.
pub fn interactive_artifact_json(study: &InteractiveStudy) -> String {
    let pts: Vec<String> = study
        .points
        .iter()
        .map(|p| {
            format!(
                "{{\"budget_bytes\":{},\"warm\":{{\"objective\":{},\"bound\":{},\"gap\":{},\
                 \"nodes\":{},\"pivots\":{},\"time_ms\":{:.3}}},\"cold\":{{\"objective\":{},\
                 \"bound\":{},\"gap\":{},\"nodes\":{},\"pivots\":{},\"time_ms\":{:.3}}}}}",
                p.budget_bytes,
                json_f64(p.warm_objective),
                json_f64(p.warm_bound),
                json_f64(p.warm_gap),
                p.warm_nodes,
                p.warm_pivots,
                p.warm_time.as_secs_f64() * 1e3,
                json_f64(p.cold_objective),
                json_f64(p.cold_bound),
                json_f64(p.cold_gap),
                p.cold_nodes,
                p.cold_pivots,
                p.cold_time.as_secs_f64() * 1e3,
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"interactive_sweep\",\"statements\":{},\"k\":{},\"host_threads\":{},\
         \"warm_total_pivots\":{},\"cold_total_pivots\":{},\"pivot_ratio\":{:.3},\
         \"warm_wall_ms\":{:.3},\"cold_wall_ms\":{:.3},\"sweep_what_if_calls\":{},\
         \"what_if_probe_calls\":{},\"points\":[{}]}}\n",
        study.n_statements,
        study.points.len(),
        host_threads(),
        study.warm_pivots(),
        study.cold_pivots(),
        study.pivot_ratio(),
        study.warm_wall.as_secs_f64() * 1e3,
        study.cold_wall.as_secs_f64() * 1e3,
        study.sweep_what_if_calls,
        study.what_if_probe_calls,
        pts.join(","),
    )
}

/// Write the interactive-sweep artifact next to the experiment output.
pub fn write_interactive_artifact(json: &str) {
    let path = "BENCH_interactive.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote interactive-sweep artifact to {path}");
}

/// The CI acceptance gate of the interactive engine: **panics** unless the
/// warm-chained K-point sweep (a) spends ≥ 3× fewer total simplex pivots
/// than K cold solves, (b) issued zero optimizer what-if calls (sweep and
/// probes alike), and (c) stays answer-consistent with the cold solves
/// within both sides' gap slack.  Callers print the report and write the
/// artifact *before* gating, so a failure still leaves diagnostics behind.
pub fn interactive_gate(study: &InteractiveStudy) {
    assert_eq!(
        study.sweep_what_if_calls, 0,
        "the warm sweep must not issue optimizer what-if calls"
    );
    assert_eq!(
        study.what_if_probe_calls, 0,
        "what_if probes must be answered from the INUM cache alone"
    );
    assert!(
        study.pivot_ratio() >= 3.0,
        "warm chain must spend ≥3× fewer pivots than cold solves: {} vs {} ({:.2}×)",
        study.warm_pivots(),
        study.cold_pivots(),
        study.pivot_ratio()
    );
    for p in &study.points {
        let slack = 1.0 + p.warm_gap.max(p.cold_gap) + 1e-9;
        assert!(
            p.warm_objective <= p.cold_objective * slack
                && p.cold_objective <= p.warm_objective * slack,
            "warm and cold answers diverged beyond gap slack at budget {}: {} vs {}",
            p.budget_bytes,
            p.warm_objective,
            p.cold_objective
        );
    }
}

/// The fig10_interactive experiment: study + report + artifact + gate.
pub fn fig10_interactive() -> String {
    let study = interactive_study();
    let report = interactive_report(&study);
    eprintln!("{report}");
    write_interactive_artifact(&interactive_artifact_json(&study));
    interactive_gate(&study);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_resolve() {
        let s = sizes();
        assert!(s[0] < s[1] && s[1] < s[2]);
    }

    #[test]
    fn parallel_prepare_matches_sequential() {
        let o = make_optimizer(SystemProfile::A, 0.0);
        let w = make_workload(&o, WorkloadKind::Hom, 12);
        let par = prepare_parallel(&o, &w);
        let seq = Inum::new(&o).prepare_workload(&w);
        assert_eq!(par.queries.len(), seq.queries.len());
        for (a, b) in par.queries.iter().zip(seq.queries.iter()) {
            assert_eq!(a.qid, b.qid);
            assert_eq!(a.templates.len(), b.templates.len());
        }
        let cfg = Configuration::empty();
        let ca = par.cost(o.schema(), o.cost_model(), &cfg);
        let cb = seq.cost(o.schema(), o.cost_model(), &cfg);
        assert!((ca - cb).abs() < 1e-9);
    }

    #[test]
    fn run_cophy_smoke() {
        let o = make_optimizer(SystemProfile::A, 0.0);
        let w = make_workload(&o, WorkloadKind::Hom, 10);
        let c = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let run = run_cophy(&o, &w, &c, None);
        assert!(run.perf > 0.0);
        assert!(run.n_candidates > 0);
    }
}
