//! Cross-stack invariants of the workload-compression subsystem
//! (ISSUE 3): weight conservation under every policy, `Epsilon(0.0)` ≡
//! `Lossless`, bounded quality loss of compressed tunes, and bit-identical
//! `Off` behavior.

use proptest::prelude::*;

use cophy::{CoPhy, CoPhyOptions, CompressedWorkload, CompressionPolicy, ConstraintSet};
use cophy_catalog::TpchGen;
use cophy_inum::Inum;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::{HetGen, HomGen, UpdateGen, Workload};

fn optimizer() -> WhatIfOptimizer {
    WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
}

/// A mixed read/update workload of `n` statements.
fn mixed(o: &WhatIfOptimizer, seed: u64, n: usize) -> Workload {
    let base = HomGen::new(seed).generate(o.schema(), n);
    UpdateGen::new(seed ^ 0x5A).mix_into(o.schema(), &base, 0.15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Total workload weight is conserved by compression under any policy —
    /// and therefore the compressed INUM cost of the empty configuration
    /// under `Lossless` equals the full-workload cost exactly.
    #[test]
    fn weights_conserved_under_any_policy(
        seed in any::<u64>(),
        n in 1usize..40,
        psel in any::<u8>(),
        eps in 0.0f64..0.9,
    ) {
        let o = optimizer();
        let w = match psel % 3 {
            0 => HomGen::new(seed).generate(o.schema(), n),
            1 => HetGen::new(seed).generate(o.schema(), n),
            _ => mixed(&o, seed, n),
        };
        let policy = match psel % 4 {
            0 => CompressionPolicy::Off,
            1 => CompressionPolicy::Lossless,
            2 => CompressionPolicy::Epsilon(eps),
            _ => CompressionPolicy::default_epsilon(),
        };
        let cw = CompressedWorkload::compress(o.schema(), &w, policy);
        prop_assert!(cw.validate().is_ok(), "{:?}", cw.validate());
        prop_assert!((cw.total_weight() - w.total_weight()).abs() < 1e-9);
        prop_assert!(
            (cw.representatives().total_weight() - w.total_weight()).abs() < 1e-9
        );
    }

    /// `Epsilon(0.0)` clusters exactly like `Lossless` on every family.
    #[test]
    fn epsilon_zero_equals_lossless(seed in any::<u64>(), n in 1usize..40) {
        let o = optimizer();
        let w = mixed(&o, seed, n);
        let a = CompressedWorkload::compress(o.schema(), &w, CompressionPolicy::Lossless);
        let b = CompressedWorkload::compress(o.schema(), &w, CompressionPolicy::Epsilon(0.0));
        prop_assert_eq!(a.assignment(), b.assignment());
        prop_assert_eq!(a.n_representatives(), b.n_representatives());
    }
}

/// `Off` produces byte-identical recommendations to the pre-subsystem
/// pipeline: same configuration, bit-equal objective/baseline/bound, and no
/// compression summary attached.
#[test]
fn off_is_byte_identical_to_the_plain_pipeline() {
    let o = optimizer();
    let w = HomGen::new(301).generate(o.schema(), 18);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);

    // Today's pipeline, spelled out by hand.
    let options = CoPhyOptions::default();
    assert!(options.compression.is_off(), "Off must be the default policy");
    let candidates = options.cgen.generate(o.schema(), &w);
    let prepared = Inum::new(&o).prepare_workload(&w);
    let cophy = CoPhy::new(&o, options);
    let manual = cophy
        .try_tune_prepared(&prepared, &candidates, &constraints, std::time::Duration::ZERO, 0)
        .expect("feasible");

    // The advisor facade with compression explicitly Off.
    let rec =
        CoPhy::new(&o, CoPhyOptions { compression: CompressionPolicy::Off, ..Default::default() })
            .tune(&w, &constraints);

    assert!(rec.compression.is_none());
    assert_eq!(rec.objective.to_bits(), manual.objective.to_bits());
    assert_eq!(rec.baseline_cost.to_bits(), manual.baseline_cost.to_bits());
    assert_eq!(rec.bound.to_bits(), manual.bound.to_bits());
    let a: Vec<_> = rec.configuration.iter().collect();
    let b: Vec<_> = manual.configuration.iter().collect();
    assert_eq!(a, b, "identical index sets");
}

/// Compressed-tune quality bound: on small workloads the recommendation
/// found from the compressed problem, *measured on the full workload*, stays
/// within (1 + ε) of the uncompressed tune (plus the solver's own gap
/// slack).
#[test]
fn compressed_tune_cost_is_epsilon_bounded() {
    let o = optimizer();
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
    let eps = CompressionPolicy::DEFAULT_EPSILON;
    for seed in [11u64, 12, 13] {
        let w = mixed(&o, seed, 24);
        let full = Inum::new(&o).prepare_workload_parallel(&w);

        let plain = CoPhy::new(&o, CoPhyOptions::default()).tune(&w, &constraints);
        let comp = CoPhy::new(
            &o,
            CoPhyOptions { compression: CompressionPolicy::Epsilon(eps), ..Default::default() },
        )
        .tune(&w, &constraints);

        let cm = o.cost_model();
        let cost_plain = full.cost(o.schema(), cm, &plain.configuration);
        let cost_comp = full.cost(o.schema(), cm, &comp.configuration);
        // Both tunes stop at the configured 5% gap; fold that into the bound.
        let slack = 1.0 + eps + 0.05;
        assert!(
            cost_comp <= cost_plain * slack + 1e-6,
            "seed {seed}: compressed-tune cost {cost_comp} exceeds (1+ε)·{cost_plain}"
        );
        // And the expansion the advisor reports is a sane estimate of the
        // true full-workload cost of its own recommendation.
        assert!(
            (comp.objective - cost_comp).abs() / cost_comp <= eps + 0.05,
            "seed {seed}: expanded objective {} vs true cost {cost_comp}",
            comp.objective
        );
    }
}

/// The lossless fast path commutes with INUM: dedup-then-prepare and
/// prepare-the-duplicates give the same weighted workload cost.
#[test]
fn lossless_dedup_commutes_with_inum_costs() {
    let o = optimizer();
    let base = HomGen::new(77).generate(o.schema(), 12);
    let mut w = Workload::new();
    for (_, stmt, weight) in base.iter().chain(base.iter()).chain(base.iter()) {
        w.push_weighted(stmt.clone(), weight);
    }
    let merged = w.dedup_by_shell();
    assert_eq!(merged.len(), base.dedup_by_shell().len());

    let inum = Inum::new(&o);
    let full = inum.prepare_workload(&w);
    let comp = inum.prepare_workload(&merged);
    let cfg = cophy_catalog::Configuration::baseline(o.schema());
    let a = full.cost(o.schema(), o.cost_model(), &cfg);
    let b = comp.cost(o.schema(), o.cost_model(), &cfg);
    assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
}
