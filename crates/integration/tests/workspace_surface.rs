//! Workspace-surface test: every public crate is importable, and the
//! Quick-start snippet from `crates/core/src/lib.rs` (also shown in the root
//! README) works verbatim through the public API.  If the doctest, the
//! README and this test ever disagree, CI fails.

use cophy::{CoPhy, CoPhyOptions, ConstraintSet};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HomGen;

/// The Quick-start snippet, line for line (keep in sync with the `cophy`
/// crate docs and README.md).
#[test]
fn quickstart_snippet_roundtrips() {
    let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let workload = HomGen::new(1).generate(optimizer.schema(), 20);
    let cophy = CoPhy::new(&optimizer, CoPhyOptions::default());
    // storage budget = 0.5 × data size
    let constraints = ConstraintSet::storage_fraction(optimizer.schema(), 0.5);
    let rec = cophy.tune(&workload, &constraints);
    assert!(rec.objective <= rec.baseline_cost * 1.0 + 1e-6);
    println!("{} indexes, gap {:.1}%", rec.configuration.len(), rec.gap * 100.0);

    // Beyond the snippet: the recommendation is non-trivial and feasible.
    assert!(!rec.configuration.is_empty(), "quick start should recommend indexes");
    assert!(constraints.check_configuration(optimizer.schema(), &rec.configuration).is_ok());
}

/// The "Streaming large workloads" snippet from the `cophy` crate docs
/// (also shown in the root README), line for line: a generator-backed
/// `WorkloadSource` feeds the advisor chunk by chunk with online
/// compression, and the workload is never materialized.
#[test]
fn streaming_snippet_roundtrips() {
    use cophy::CompressionPolicy;

    let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    // A generator-backed source: statements are produced on demand, chunk
    // by chunk — the full workload never exists in memory.
    let mut source = HomGen::new(1).stream(optimizer.schema(), 500);
    let options =
        CoPhyOptions { compression: CompressionPolicy::default_epsilon(), ..Default::default() };
    let cophy = CoPhy::new(&optimizer, options);
    let constraints = ConstraintSet::storage_fraction(optimizer.schema(), 0.5);
    let rec = cophy.try_tune_source(&mut source, &constraints).unwrap();
    let summary = rec.compression.as_ref().unwrap();
    assert_eq!(summary.n_original, 500);
    assert!(summary.n_representatives < 500);

    // Beyond the snippet: the streamed tune is real, proven, and feasible.
    assert!(!rec.configuration.is_empty(), "streamed tune should recommend indexes");
    assert!(rec.objective <= rec.baseline_cost + 1e-6 && rec.gap.is_finite());
    assert!(constraints.check_configuration(optimizer.schema(), &rec.configuration).is_ok());
}

/// The "Backends & portability" README snippet, line for line: any
/// `&dyn WhatIfBackend` drives a session end-to-end, and the session's BIP
/// exports as lintable MPS.
#[test]
fn backends_snippet_roundtrips() {
    use cophy::WhatIfBackend;

    fn tune_with(backend: &dyn WhatIfBackend) {
        let w = cophy_workload::HomGen::new(1).generate(backend.schema(), 8);
        let cophy = CoPhy::new(backend, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(backend.schema(), 0.5));
        let rec = session.recommend();
        println!("{} indexes, {} what-if calls", rec.configuration.len(), rec.stats.what_if_calls);
        let mps = session.export_mps(); // hand the exact BIP to CPLEX/Gurobi/...
        assert!(cophy_bip::lint_mps(&mps).is_ok());
    }

    tune_with(&WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A));
}

/// The "Robustness & fault injection" README snippet, line for line: a
/// chaos-schedule backend still completes the tune, and the recommendation
/// reports its degradation honestly.
#[test]
fn fault_injection_snippet_roundtrips() {
    use cophy_optimizer::{FaultInjectingBackend, FaultPlan, RetryPolicy, WhatIfBackend};

    let flaky = FaultInjectingBackend::new(
        Box::new(WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)),
        FaultPlan::chaos(42), // seeded schedule: transients, timeouts, corruption
    );
    let workload = HomGen::new(1).generate(flaky.schema(), 20);
    let constraints = ConstraintSet::storage_fraction(flaky.schema(), 0.5);
    let opts =
        CoPhyOptions { retry: RetryPolicy::default(), min_coverage: 0.5, ..Default::default() };
    let rec = CoPhy::new(&flaky, opts).try_tune(&workload, &constraints).unwrap();
    if let Some(d) = &rec.degradation {
        println!("coverage {:.0}%, {} probes recovered", d.coverage * 100.0, d.probes_recovered);
    }

    // Beyond the snippet: the chaos schedule actually fired, and the
    // degraded recommendation is still real and feasible.
    let d = rec.degradation.as_ref().expect("a chaos schedule must report degradation");
    assert!(d.probes_failed > 0, "the schedule must inject faults");
    assert!(d.coverage >= 0.5, "tune must respect the coverage floor it was given");
    assert!(rec.objective.is_finite() && rec.gap.is_finite());
    assert!(constraints.check_configuration(flaky.schema(), &rec.configuration).is_ok());
}

/// The "Advisor as a service" README snippet (also the `cophy-server`
/// crate's doctest), line for line — plus teardown assertions beyond it.
#[test]
fn server_snippet_roundtrips() {
    use cophy_server::{Client, Server, ServerConfig};

    let handle = Server::bind("127.0.0.1:0", ServerConfig::default(), None).unwrap().spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.open("s1", "hom:7:24", 0.5).unwrap(); // budget = 0.5 x data size
    let rec = client.tune("s1", |p| println!("gap {:.1}%", p.gap * 100.0)).unwrap();
    println!("{} indexes, objective {}", rec.indexes.len(), rec.objective);
    client.close("s1").unwrap();
    handle.stop();

    // Beyond the snippet: the streamed recommendation is real and proven.
    assert!(!rec.indexes.is_empty(), "advisor session should recommend indexes");
    assert!(rec.objective.is_finite() && rec.gap.is_finite());
    assert!(rec.objective <= rec.baseline + 1e-6);
}

/// One symbol from each public crate of the workspace, so a broken
/// manifest edge or module wiring fails this single test.
#[test]
fn every_public_crate_is_reachable() {
    // cophy-catalog
    let schema = TpchGen::default().schema();
    assert!(schema.n_tables() >= 8, "TPC-H has 8 tables");
    let cfg = cophy_catalog::Configuration::baseline(&schema);
    assert!(!cfg.is_empty());

    // cophy-workload
    let w = HomGen::new(7).generate(&schema, 5);
    assert_eq!(w.len(), 5);

    // cophy-optimizer
    let o = WhatIfOptimizer::new(schema.clone(), SystemProfile::B);
    let plan_cost = o.cost_workload(&w, &cfg);
    assert!(plan_cost.is_finite() && plan_cost > 0.0);

    // cophy-inum
    let inum = cophy_inum::Inum::new(&o);
    let prepared = inum.prepare_workload(&w);
    assert_eq!(prepared.queries.len(), w.len());

    // cophy (core) + cophy-bip
    let cands = cophy::CGen::default().generate(o.schema(), &w);
    assert!(!cands.is_empty());
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.3);
    let (model, _mapping) =
        cophy::BipGen::default().model(o.schema(), o.cost_model(), &prepared, &cands, &constraints);
    let r = cophy_bip::BranchBound::new().solve(&model, &cophy_bip::SolveOptions::default());
    assert_eq!(r.status, cophy_bip::MipStatus::Optimal);

    // cophy-advisors
    use cophy_advisors::Advisor;
    let greedy = cophy_advisors::ToolB::default();
    let rec = greedy.recommend(&o, &w, &constraints);
    assert!(constraints.check_configuration(o.schema(), &rec).is_ok());

    // cophy-bench (harness helpers)
    let sizes = cophy_bench::sizes();
    assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);

    // cophy-server (workload specs are the daemon's cache fingerprint)
    let spec_w = cophy_server::parse_spec("het:3:6", &schema).unwrap();
    assert_eq!(spec_w.len(), 6);
    assert!(cophy_server::parse_spec("bogus:1:1", &schema).is_err());
}
