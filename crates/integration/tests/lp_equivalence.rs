//! Differential equivalence suite: the sparse revised simplex (LU + eta
//! updates, Devex pricing, bound-flipping dual ratio test) against the
//! retained dense explicit-inverse engine ([`cophy_bip::LpEngine::Dense`]).
//!
//! The contract under test is *objective/verdict equality*, not trace
//! equality: the two kernels pivot differently (Devex vs Dantzig), but on
//! every LP they must agree on feasibility and on the optimal value, and a
//! [`cophy_bip::Basis`] snapshot must survive snapshot → restore → extend
//! round-trips on either engine.

use proptest::prelude::*;

use cophy_bip::{DualSimplex, LinExpr, LpEngine, LpStatus, Model, Sense, SimplexSolver, VarId};

/// Deterministic LCG in [-1, 1) from a seed, same idiom as `properties.rs`.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed;
    move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }
}

/// Strategy: a random bounded LP over binaries — a knapsack row for
/// boundedness plus a few generic ≤/≥/= rows (some infeasible by design).
fn random_lp() -> impl Strategy<Value = Model> {
    (2usize..10, 1usize..4, any::<u64>()).prop_map(|(n, extra_rows, seed)| {
        let mut next = lcg(seed);
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|j| m.add_var(format!("v{j}"), next() * 10.0)).collect();
        let mut e = LinExpr::new();
        for &v in &vars {
            e.add(v, next().abs() * 5.0 + 0.5);
        }
        m.add_constraint(e, Sense::Le, 1.0 + next().abs() * n as f64);
        for _ in 0..extra_rows {
            let mut g = LinExpr::new();
            for &v in &vars {
                if next() > 0.2 {
                    g.add(v, next() * 4.0);
                }
            }
            if g.terms.is_empty() {
                continue;
            }
            let sense = if next() > 0.3 {
                Sense::Le
            } else if next() > 0.0 {
                Sense::Ge
            } else {
                Sense::Eq
            };
            m.add_constraint(g, sense, next() * 3.0);
        }
        m
    })
}

/// Strategy: a model plus a chain of random bound pinches (var, value).
fn lp_with_pinches() -> impl Strategy<Value = (Model, Vec<(usize, bool)>)> {
    (random_lp(), 1usize..6, any::<u64>()).prop_map(|(m, n_pinch, seed)| {
        let mut next = lcg(seed);
        let n = m.n_vars();
        let pinches: Vec<(usize, bool)> =
            (0..n_pinch).map(|_| ((next().abs() * n as f64) as usize % n, next() > 0.0)).collect();
        (m, pinches)
    })
}

fn solver(engine: LpEngine) -> SimplexSolver {
    SimplexSolver { engine, ..SimplexSolver::new() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cold solves: identical verdicts, equal objectives within tolerance.
    #[test]
    fn engines_agree_on_random_lps(m in random_lp()) {
        let n = m.n_vars();
        let (lo, hi) = (vec![0.0; n], vec![1.0; n]);
        let sparse = solver(LpEngine::Sparse).solve(&m, &lo, &hi);
        let dense = solver(LpEngine::Dense).solve(&m, &lo, &hi);
        prop_assert_eq!(sparse.status, dense.status);
        if sparse.status == LpStatus::Optimal {
            prop_assert!(
                (sparse.objective - dense.objective).abs() <= 1e-6 * (1.0 + dense.objective.abs()),
                "sparse {} vs dense {}", sparse.objective, dense.objective
            );
            // The dense oracle never runs Devex, so it never resets it.
            prop_assert_eq!(dense.devex_resets, 0);
        }
    }

    /// Warm pinch chains: the sparse dual simplex re-solving from the parent
    /// basis must reach the verdict and value of a dense cold solve at every
    /// link of the chain.
    #[test]
    fn warm_sparse_chain_matches_dense_cold(case in lp_with_pinches()) {
        let (m, pinches) = case;
        let n = m.n_vars();
        let (mut lo, mut hi) = (vec![0.0; n], vec![1.0; n]);
        let root = solver(LpEngine::Sparse).solve(&m, &lo, &hi);
        if root.status != LpStatus::Optimal {
            // Infeasible roots carry no basis to chain from; skip the case.
            return Ok(());
        }
        let mut basis = root.basis.expect("optimal solve snapshots a basis");
        let dual = DualSimplex::new();
        for (j, v) in pinches {
            lo[j] = if v { 1.0 } else { 0.0 };
            hi[j] = lo[j];
            let warm = dual.resolve(&m, &lo, &hi, &basis).expect("basis fits the same model");
            let cold = solver(LpEngine::Dense).solve(&m, &lo, &hi);
            prop_assert!(
                warm.status == cold.status
                    || (warm.status == LpStatus::IterLimit && cold.status == LpStatus::Optimal),
                "warm {:?} vs dense cold {:?}", warm.status, cold.status
            );
            match warm.status {
                LpStatus::Optimal => {
                    prop_assert!(
                        (warm.objective - cold.objective).abs()
                            <= 1e-6 * (1.0 + cold.objective.abs()),
                        "warm {} vs dense cold {}", warm.objective, cold.objective
                    );
                    basis = warm.basis.expect("optimal resolve snapshots a basis");
                }
                // Infeasible: the chain cannot continue from this pinch.
                _ => break,
            }
        }
    }

    /// Basis round-trip: a snapshot restored under the *same* bounds is
    /// already optimal (zero or near-zero extra pivots, equal objective),
    /// and extending it across a row append keeps it usable.
    #[test]
    fn basis_roundtrips_across_snapshot_restore_and_extend(m in random_lp()) {
        let n = m.n_vars();
        let (lo, hi) = (vec![0.0; n], vec![1.0; n]);
        let root = solver(LpEngine::Sparse).solve(&m, &lo, &hi);
        if root.status != LpStatus::Optimal {
            // Nothing to round-trip without an optimal snapshot.
            return Ok(());
        }
        let basis = root.basis.clone().expect("optimal solve snapshots a basis");

        // Restore under identical bounds: the dual simplex finds nothing to
        // repair on either engine.
        for engine in [LpEngine::Sparse, LpEngine::Dense] {
            let dual = DualSimplex { engine, ..DualSimplex::new() };
            let r = dual.resolve(&m, &lo, &hi, &basis).expect("snapshot fits its own model");
            prop_assert_eq!(r.status, LpStatus::Optimal);
            prop_assert!(
                (r.objective - root.objective).abs() <= 1e-6 * (1.0 + root.objective.abs())
            );
        }

        // Append a redundant row and extend: the extended basis must solve
        // the grown model to the same optimum.
        let mut grown = m.clone();
        let mut row = LinExpr::new();
        for j in 0..n {
            row.add(VarId(j as u32), 1.0);
        }
        grown.add_constraint(row, Sense::Le, n as f64 + 1.0);
        let extended = basis.extended_to(&grown).expect("append-only extension");
        let r = DualSimplex::new()
            .resolve(&grown, &lo, &hi, &extended)
            .expect("extended basis fits the grown model");
        prop_assert_eq!(r.status, LpStatus::Optimal);
        prop_assert!(
            (r.objective - root.objective).abs() <= 1e-6 * (1.0 + root.objective.abs()),
            "extended {} vs root {}", r.objective, root.objective
        );
    }
}
