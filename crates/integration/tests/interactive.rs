//! Integration tests of the interactive re-optimization surface
//! (paper §4.2): warm-chained budget sweeps, index pin/ban, and
//! cache-only `what_if` answers.

use proptest::prelude::*;

use cophy::{CoPhy, CoPhyOptions, ConstraintSet, SolveBudget, SolveProgress};
use cophy_catalog::Configuration;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HomGen;
use std::time::Duration;

fn optimizer() -> WhatIfOptimizer {
    WhatIfOptimizer::new(cophy_catalog::TpchGen::default().schema(), SystemProfile::A)
}

/// The lean candidate grammar of the interactive studies (2-column keys, no
/// covering variants): keeps debug-mode exact solves in the seconds range.
fn lean_cgen() -> cophy::CGen {
    cophy::CGen { max_key_columns: 2, max_include_columns: 0 }
}

/// Exact-solve options: both the warm chain and the cold tunes prove
/// optimality, so per-point objectives and bounds must coincide regardless
/// of the search path either side takes.
fn exact_options() -> CoPhyOptions {
    CoPhyOptions {
        budget: SolveBudget::within(1e-9).with_time(Duration::from_secs(120)),
        backend: cophy::SolverBackend::BranchBound,
        cgen: lean_cgen(),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Warm-chain equivalence: `sweep_storage` over K budgets returns, per
    /// point, the same objective and bound as K independent cold tunes of
    /// the same workload at that budget (both sides solved to optimality).
    #[test]
    fn warm_sweep_matches_cold_tunes(seed in 0u64..1000) {
        let o = optimizer();
        let w = HomGen::new(seed).generate(o.schema(), 6);
        let total = o.schema().data_bytes();
        let budgets: Vec<u64> =
            [1.0, 0.3, 0.08].iter().map(|m| (total as f64 * m) as u64).collect();

        let cophy = CoPhy::new(&o, exact_options());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let points = session.sweep_storage(&budgets);

        for (p, &b) in points.iter().zip(&budgets) {
            prop_assert!(p.gap <= 1e-6, "sweep point must be solved to optimality");
            prop_assert!(p.configuration.size_bytes(o.schema()) <= b);
            let cold = cophy
                .try_tune(&w, &ConstraintSet::none().with(cophy::Constraint::Storage {
                    budget_bytes: b,
                }))
                .expect("cold tune feasible");
            prop_assert!(
                (p.objective - cold.objective).abs() / cold.objective < 1e-6,
                "objective diverged at budget {}: warm {} vs cold {}",
                b, p.objective, cold.objective
            );
            prop_assert!(
                (p.bound - cold.bound).abs() / cold.bound.abs().max(1.0) < 1e-6,
                "bound diverged at budget {}: warm {} vs cold {}",
                b, p.bound, cold.bound
            );
        }
    }

    /// Pin/ban re-solves stay feasible and respect the fixings at every
    /// budget point of a subsequent sweep.
    #[test]
    fn pin_and_ban_hold_across_sweeps(seed in 0u64..1000) {
        let o = optimizer();
        let w = HomGen::new(seed.wrapping_add(7)).generate(o.schema(), 6);
        let cophy = CoPhy::new(&o, CoPhyOptions { cgen: lean_cgen(), ..Default::default() });
        let storage = ConstraintSet::storage_fraction(o.schema(), 0.6);
        let mut session = cophy.session(&w, storage.clone());
        let free = session.recommend();
        if free.configuration.is_empty() {
            return Ok(()); // nothing to pin/ban on this seed
        }

        let banned = free.configuration.indexes()[0].clone();
        session.ban_index(&banned);
        let smallest = free
            .configuration
            .indexes()
            .iter()
            .min_by_key(|ix| ix.size_bytes(o.schema()))
            .cloned()
            .unwrap();
        if smallest != banned {
            session.pin_index(&smallest);
        }

        let r = session.recommend();
        prop_assert!(!r.configuration.contains(&banned), "ban violated");
        if smallest != banned {
            prop_assert!(r.configuration.contains(&smallest), "pin violated");
        }
        prop_assert!(
            storage.check_configuration(o.schema(), &r.configuration).is_ok(),
            "fixed recommendation must stay feasible"
        );

        let total = o.schema().data_bytes();
        let budgets = [(total as f64 * 0.6) as u64, (total as f64 * 0.3) as u64];
        for p in session.sweep_storage(&budgets) {
            prop_assert!(!p.configuration.contains(&banned), "sweep must honor the ban");
            prop_assert!(
                p.configuration.size_bytes(o.schema()) <= p.budget_bytes,
                "sweep point over budget"
            );
        }
    }
}

/// Acceptance criterion: `what_if` answers issue **zero** new optimizer
/// what-if calls — everything comes from the session's INUM cache.
#[test]
fn what_if_issues_zero_optimizer_calls() {
    let o = optimizer();
    let w = HomGen::new(2024).generate(o.schema(), 12);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
    let rec = session.recommend();

    let calls_before = o.what_if_calls();
    // Probe the recommendation, the empty config, and every single-index
    // sub-configuration — a realistic DBA exploration burst.
    let ans = session.what_if(&rec.configuration);
    let empty = session.what_if(&Configuration::empty());
    for ix in rec.configuration.indexes() {
        let single = Configuration::from_indexes([ix.clone()]);
        let a = session.what_if(&single);
        assert!(a.cost <= empty.cost + 1e-6, "a single useful index cannot hurt");
        assert!(a.cost >= ans.cost - 1e-6, "a sub-configuration cannot beat the optimum");
    }
    assert_eq!(
        o.what_if_calls(),
        calls_before,
        "what_if must be answered entirely from the INUM cache"
    );

    // The cache-costed answers are consistent with the recommendation.
    assert!((ans.cost - rec.objective).abs() / rec.objective < 1e-6);
    assert!((empty.cost - rec.baseline_cost).abs() / rec.baseline_cost < 1e-9);
    assert!(ans.improvement() > 0.0);
}

/// The session's BIP exports as lintable, losslessly re-importable MPS —
/// the portable hand-off to external solvers.
#[test]
fn session_exports_a_lintable_reimportable_mps_model() {
    let o = optimizer();
    let w = HomGen::new(91).generate(o.schema(), 6);
    let cophy = CoPhy::new(&o, CoPhyOptions { cgen: lean_cgen(), ..Default::default() });
    let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
    let text = session.export_mps();
    let (cols, rows) = cophy_bip::lint_mps(&text).expect("export passes the format lint");
    let model = cophy_bip::parse_mps(&text).expect("export re-imports");
    assert_eq!(model.n_constraints(), rows);
    assert_eq!(model.n_vars(), cols);
    // Lossless round trip, modulo the `* xj = name` comment lines (the
    // parsed model carries the sanitized names).
    let payload =
        |s: &str| s.lines().filter(|l| !l.starts_with('*')).collect::<Vec<_>>().join("\n");
    assert_eq!(payload(&cophy_bip::write_mps(&model, "cophy_bip")), payload(&text));
}

/// Sweep answers stream through the unified `SolveProgress` contract:
/// per point, incumbents only improve and the proven gap never regresses.
#[test]
fn sweep_streams_anytime_consistent_progress() {
    let o = optimizer();
    let w = HomGen::new(77).generate(o.schema(), 8);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
    let total = o.schema().data_bytes();
    let budgets = [total, total / 4, total / 20];
    let mut per_point: Vec<Vec<SolveProgress>> = vec![Vec::new(); budgets.len()];
    let points = session.sweep_storage_with_progress(&budgets, |i, p| per_point[i].push(*p));
    assert_eq!(points.len(), budgets.len());
    for (i, events) in per_point.iter().enumerate() {
        assert!(!events.is_empty(), "point {i} must stream progress");
        let (mut prev_inc, mut prev_gap) = (f64::INFINITY, f64::INFINITY);
        for e in events {
            assert!(e.incumbent <= prev_inc + 1e-9, "point {i}: incumbents must only improve");
            assert!(e.gap <= prev_gap + 1e-12, "point {i}: gap series must not regress");
            assert!(e.incumbent >= e.bound - 1e-9);
            prev_inc = e.incumbent;
            prev_gap = e.gap;
        }
    }
}
