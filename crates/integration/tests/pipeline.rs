//! End-to-end pipeline tests spanning every crate: catalog → workload →
//! optimizer → INUM → BIP → CoPhy → baselines.

use cophy::{CGen, CoPhy, CoPhyOptions, ConstraintSet, SolveBudget, SolverBackend};
use cophy_advisors::{Advisor, IlpAdvisor, ToolA, ToolB};
use cophy_catalog::{Configuration, Skew, TpchGen};
use cophy_inum::Inum;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::{HetGen, HomGen, Statement, UpdateGen};

fn optimizer(profile: SystemProfile, z: f64) -> WhatIfOptimizer {
    WhatIfOptimizer::new(TpchGen::new(1.0, Skew(z)).schema(), profile)
}

#[test]
fn full_pipeline_on_homogeneous_workload() {
    let o = optimizer(SystemProfile::A, 0.0);
    let w = HomGen::new(1).generate(o.schema(), 40);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
    let rec = cophy.tune(&w, &constraints);

    // The recommendation must beat the baseline on the *real* optimizer, not
    // just on INUM's approximation.
    let perf = o.perf(&w, &rec.configuration);
    assert!(perf > 0.3, "expected a strong improvement on W_hom, got {perf}");
    // And the INUM estimate must agree with the ground truth directionally.
    assert!(rec.estimated_improvement() > 0.0);
    // Budget respected.
    assert!(rec.configuration.size_bytes(o.schema()) <= o.schema().data_bytes());
}

#[test]
fn full_pipeline_on_heterogeneous_workload_with_updates() {
    let o = optimizer(SystemProfile::B, 0.0);
    let reads = HetGen::new(2).generate(o.schema(), 30);
    let w = UpdateGen::new(3).mix_into(o.schema(), &reads, 0.25);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
    let rec = cophy.tune(&w, &constraints);
    let perf = o.perf(&w, &rec.configuration);
    assert!(perf >= 0.0, "updates must not drive the recommendation negative: {perf}");
    assert!(constraints.check_configuration(o.schema(), &rec.configuration).is_ok());
}

#[test]
fn update_heavy_workload_selects_fewer_indexes() {
    // Maintenance costs must make the advisor (weakly) more conservative.
    // Compare against the *same* workload with every UPDATE replaced by a
    // SELECT of its query shell: the read side is identical, so index
    // maintenance is the only difference between the two tuning problems.
    // (Comparing against the read-only workload alone would be unsound: the
    // update shells are highly selective point lookups that legitimately
    // make extra, cheap-to-maintain indexes worthwhile.)
    let o = optimizer(SystemProfile::A, 0.0);
    let reads = HomGen::new(4).generate(o.schema(), 24);
    let update_heavy = UpdateGen::new(5).mix_into(o.schema(), &reads, 0.5);

    let mut maintenance_free = cophy_workload::Workload::new();
    for (_, stmt, weight) in update_heavy.iter() {
        maintenance_free.push_weighted(Statement::Select(stmt.read_shell().clone()), weight);
    }

    let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
    let free_rec = CoPhy::new(&o, CoPhyOptions::default()).tune(&maintenance_free, &constraints);
    let upd_rec = CoPhy::new(&o, CoPhyOptions::default()).tune(&update_heavy, &constraints);

    assert!(
        upd_rec.configuration.len() <= free_rec.configuration.len(),
        "update-heavy: {} indexes vs maintenance-free: {}",
        upd_rec.configuration.len(),
        free_rec.configuration.len()
    );
    // And the maintenance-aware objective can only be worse (costs added).
    assert!(upd_rec.objective >= free_rec.objective - 1e-6);
}

#[test]
fn skew_makes_selective_indexes_more_attractive() {
    // §5.2: with z=2 "certain indices become very beneficial".
    let uni = optimizer(SystemProfile::A, 0.0);
    let skw = optimizer(SystemProfile::A, 2.0);
    let w_uni = HomGen::new(6).generate(uni.schema(), 30);
    let w_skw = HomGen::new(6).generate(skw.schema(), 30);
    let c_uni = ConstraintSet::storage_fraction(uni.schema(), 1.0);
    let c_skw = ConstraintSet::storage_fraction(skw.schema(), 1.0);
    let r_uni = CoPhy::new(&uni, CoPhyOptions::default()).tune(&w_uni, &c_uni);
    let r_skw = CoPhy::new(&skw, CoPhyOptions::default()).tune(&w_skw, &c_skw);
    let p_uni = uni.perf(&w_uni, &r_uni.configuration);
    let p_skw = skw.perf(&w_skw, &r_skw.configuration);
    assert!(p_uni > 0.0 && p_skw > 0.0);
    // Both regimes must produce solid recommendations; the easier skewed
    // problem should not be *worse*.
    assert!(p_skw > 0.25, "skewed tuning too weak: {p_skw}");
}

#[test]
fn all_advisors_produce_feasible_configurations() {
    let o = optimizer(SystemProfile::A, 0.0);
    let w = HomGen::new(7).generate(o.schema(), 12);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
    let advisors: Vec<Box<dyn Advisor>> = vec![
        Box::new(IlpAdvisor::default()),
        Box::new(ToolA { max_steps: 20, ..Default::default() }),
        Box::new(ToolB::default()),
    ];
    for a in &advisors {
        let cfg = a.recommend(&o, &w, &constraints);
        assert!(
            constraints.check_configuration(o.schema(), &cfg).is_ok(),
            "{} violated the storage budget",
            a.name()
        );
        assert!(o.perf(&w, &cfg) >= -0.01, "{} made things worse", a.name());
    }
}

#[test]
fn cophy_beats_or_matches_every_baseline_on_heterogeneous() {
    let o = optimizer(SystemProfile::A, 0.0);
    let w = HetGen::new(8).generate(o.schema(), 30);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
    let rec = CoPhy::new(&o, CoPhyOptions::default()).tune(&w, &constraints);
    let p_cophy = o.perf(&w, &rec.configuration);
    for (name, cfg) in [
        ("Tool-A", ToolA { max_steps: 25, ..Default::default() }.recommend(&o, &w, &constraints)),
        ("Tool-B", ToolB::default().recommend(&o, &w, &constraints)),
    ] {
        let p = o.perf(&w, &cfg);
        assert!(p_cophy >= p - 0.03, "CoPhy ({p_cophy}) lost to {name} ({p}) on W_het");
    }
}

#[test]
fn backend_equivalence_end_to_end() {
    // The Lagrangian (scaled) backend and exact B&B must land within the gap
    // tolerance of each other through the full public API.
    let o = optimizer(SystemProfile::A, 0.0);
    let w = HomGen::new(9).generate(o.schema(), 8);
    let candidates = CGen::default().generate(o.schema(), &w).truncate(12);
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.25);

    let exact = CoPhy::new(
        &o,
        CoPhyOptions {
            backend: SolverBackend::BranchBound,
            budget: SolveBudget::exact(),
            ..Default::default()
        },
    )
    .tune_with_candidates(&w, &candidates, &constraints);
    let lagr = CoPhy::new(
        &o,
        CoPhyOptions {
            backend: SolverBackend::Lagrangian,
            budget: SolveBudget { gap_limit: 1e-6, node_limit: Some(800), ..Default::default() },
            ..Default::default()
        },
    )
    .tune_with_candidates(&w, &candidates, &constraints);

    assert!(lagr.objective >= exact.objective - 1e-6, "Lagrangian below proven optimum");
    assert!(
        (lagr.objective - exact.objective) / exact.objective < 0.02,
        "backends disagree: lagrangian {} vs exact {}",
        lagr.objective,
        exact.objective
    );
}

#[test]
fn serial_solve_is_deterministic_and_parallel_agrees() {
    // `parallelism = 1` must reproduce the serial incumbent/bound trace
    // bit-for-bit across runs (no time limit, so nothing wall-clock-
    // dependent steers the search), and parallel runs must prove the same
    // optimum under the driver's monotone invariants — end to end through
    // the rich-constraint B&B route.
    let o = optimizer(SystemProfile::A, 0.0);
    let w = HomGen::new(12).generate(o.schema(), 6);
    let candidates = CGen::default().generate(o.schema(), &w).truncate(10);
    let li = o.schema().table_by_name("lineitem").unwrap().id;
    let rich =
        ConstraintSet::storage_fraction(o.schema(), 0.4).with(cophy::Constraint::IndexCount {
            filter: cophy::IndexFilter::on_table(li),
            cmp: cophy::Cmp::Le,
            value: 1,
        });
    let inum = Inum::new(&o);
    let prepared = inum.prepare_workload(&w);

    let run = |parallelism: usize| {
        let cophy = CoPhy::new(
            &o,
            CoPhyOptions {
                backend: SolverBackend::BranchBound,
                budget: SolveBudget::exact().with_parallelism(parallelism),
                ..Default::default()
            },
        );
        let mut events: Vec<(u64, u64, u64)> = Vec::new();
        let rec = cophy
            .try_tune_prepared_with_progress(
                &prepared,
                &candidates,
                &rich,
                std::time::Duration::ZERO,
                0,
                |p| events.push((p.incumbent.to_bits(), p.bound.to_bits(), p.gap.to_bits())),
            )
            .expect("feasible");
        (rec, events)
    };

    let (rec_a, trace_a) = run(1);
    let (rec_b, trace_b) = run(1);
    assert_eq!(trace_a, trace_b, "serial trace must be reproducible bit-for-bit");
    assert_eq!(rec_a.objective.to_bits(), rec_b.objective.to_bits());
    assert_eq!(rec_a.bound.to_bits(), rec_b.bound.to_bits());

    for k in [2usize, 4] {
        let (rec_p, trace_p) = run(k);
        assert!(
            (rec_p.objective - rec_a.objective).abs() < 1e-6,
            "k={k}: parallel objective {} vs serial {}",
            rec_p.objective,
            rec_a.objective
        );
        assert!((rec_p.bound - rec_a.bound).abs() < 1e-6, "k={k}: bounds must agree");
        assert!(rich.check_configuration(o.schema(), &rec_p.configuration).is_ok());
        // Driver invariants hold for the parallel stream too.
        let mut prev_gap = f64::INFINITY;
        for (inc, bound, gap) in trace_p {
            let (inc, bound, gap) =
                (f64::from_bits(inc), f64::from_bits(bound), f64::from_bits(gap));
            assert!(inc >= bound - 1e-9, "k={k}: incumbent below bound");
            assert!(gap <= prev_gap + 1e-12, "k={k}: gap series regressed");
            prev_gap = gap;
        }
    }
}

#[test]
fn inum_cache_consistent_with_what_if_after_tuning() {
    // After tuning, re-validate INUM's accuracy *on the recommended
    // configuration* — the operating point that matters.
    let o = optimizer(SystemProfile::A, 0.0);
    let w = HomGen::new(10).generate(o.schema(), 15);
    let rec = CoPhy::new(&o, CoPhyOptions::default())
        .tune(&w, &ConstraintSet::storage_fraction(o.schema(), 1.0));
    let inum = Inum::new(&o);
    let prepared = inum.prepare_workload(&w);
    for pq in &prepared.queries {
        let approx = pq.cost(o.schema(), o.cost_model(), &rec.configuration);
        let exact = o.cost_statement(w.statement(pq.qid), &rec.configuration);
        let ratio = approx / exact;
        assert!(
            (0.99..=1.4).contains(&ratio),
            "INUM drift at the recommended configuration: {ratio}"
        );
    }
}

#[test]
fn baseline_x0_is_never_part_of_recommendation_budget() {
    // The budget constrains X*, not X0: evaluation unions the clustered PKs.
    let o = optimizer(SystemProfile::A, 0.0);
    let w = HomGen::new(11).generate(o.schema(), 10);
    let tiny = ConstraintSet::storage_fraction(o.schema(), 0.01);
    let rec = CoPhy::new(&o, CoPhyOptions::default()).tune(&w, &tiny);
    assert!(rec.configuration.size_bytes(o.schema()) <= o.schema().data_bytes() / 100 + 1);
    let x0 = Configuration::baseline(o.schema());
    let union = rec.configuration.union(&x0);
    assert_eq!(union.len(), rec.configuration.len() + x0.len());
}
