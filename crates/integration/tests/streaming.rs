//! Streaming-ingestion and block-decomposition properties (PR 10).
//!
//! Two invariants of the large-workload path:
//!
//! 1. **Chunking is invisible.**  Feeding a mixed workload through the
//!    chunked `WorkloadSource` ingestion in any chunk size yields a model
//!    bit-identical to one-shot ingestion (compared as exported MPS text,
//!    which captures queries, weights, candidates and constraint rows).
//! 2. **Decomposition is sound.**  The block-decomposed Lagrangian solve —
//!    per-statement subproblems sharded across worker threads, coordinated
//!    by shared-row multipliers — agrees with the monolithic
//!    branch-and-bound solve on small mixed workloads within the solvers'
//!    proven gap slack, and its bound never crosses its incumbent.

use proptest::prelude::*;

use cophy::{
    CGen, CoPhy, CoPhyOptions, CompressionPolicy, ConstraintSet, SolveBudget, SolverBackend,
};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::{HomGen, UpdateGen, Workload};

/// A mixed select + update workload (the shape that exercises both block
/// kinds: query blocks and update blocks with fixed base costs).
fn mixed_workload(
    schema: &cophy_catalog::Schema,
    seed: u64,
    n_sel: usize,
    n_upd: usize,
) -> Workload {
    let mut w = HomGen::new(seed).generate(schema, n_sel);
    for (_, stmt, f) in UpdateGen::new(seed ^ 0xA5).generate(schema, n_upd).iter() {
        w.push_weighted(stmt.clone(), f);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chunked_ingestion_builds_bit_identical_models(
        seed in 0u64..1000,
        n in 10usize..36,
        chunk in 1usize..17,
        lossless in any::<bool>(),
    ) {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let policy = if lossless {
            CompressionPolicy::Lossless
        } else {
            CompressionPolicy::default_epsilon()
        };
        let opts = CoPhyOptions { compression: policy, ..Default::default() };
        let cophy = CoPhy::new(&o, opts);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let w = mixed_workload(o.schema(), seed, n, n / 3 + 1);

        let empty = Workload::new();
        let mut one_shot =
            cophy.try_session_streaming(&mut empty.source(), constraints.clone()).unwrap();
        one_shot.try_add_source(&mut w.source(), w.len()).unwrap();
        let mut chunked = cophy.try_session_streaming(&mut empty.source(), constraints).unwrap();
        chunked.try_add_source(&mut w.source(), chunk).unwrap();

        prop_assert_eq!(one_shot.n_statements(), w.len());
        prop_assert_eq!(one_shot.n_statements(), chunked.n_statements());
        prop_assert_eq!(one_shot.n_representatives(), chunked.n_representatives());
        prop_assert_eq!(one_shot.export_mps(), chunked.export_mps());
    }

    #[test]
    fn decomposed_solve_matches_monolithic_within_gap_slack(
        seed in 0u64..500,
        n in 4usize..9,
        workers in 2usize..5,
    ) {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = mixed_workload(o.schema(), seed, n, 2);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.25);
        let candidates = CGen::default().generate(o.schema(), &w).truncate(10);
        let budget = SolveBudget { gap_limit: 1e-6, node_limit: Some(800), ..Default::default() };

        let lag_opts = CoPhyOptions {
            budget: budget.with_parallelism(workers),
            backend: SolverBackend::Lagrangian,
            ..Default::default()
        };
        let lag = CoPhy::new(&o, lag_opts)
            .try_tune_with_candidates(&w, &candidates, &constraints)
            .unwrap();
        let bb_opts =
            CoPhyOptions { budget, backend: SolverBackend::BranchBound, ..Default::default() };
        let bb = CoPhy::new(&o, bb_opts)
            .try_tune_with_candidates(&w, &candidates, &constraints)
            .unwrap();

        // B&B is exact at this size; the decomposed incumbent may not beat
        // it, must sit within the solvers' summed proven gaps of it, and
        // must dominate its own bound.
        prop_assert!(lag.objective >= bb.objective - 1e-6);
        let slack = (lag.gap + bb.gap).max(0.02);
        prop_assert!(
            (lag.objective - bb.objective) / bb.objective <= slack + 1e-9,
            "decomposed {} vs monolithic {} exceeds slack {}",
            lag.objective,
            bb.objective,
            slack
        );
        prop_assert!(lag.bound <= lag.objective + 1e-6);
    }
}
