//! Property-based tests (proptest) for the core invariants listed in
//! DESIGN.md §5.

use proptest::prelude::*;

use cophy::{BipGen, CGen, ConstraintSet};
use cophy_bip::{
    knapsack, Alt, Block, BlockProblem, BranchBound, DualSimplex, LagrangianSolver, LinExpr, Model,
    Sense, SimplexSolver, SlotChoices, SolveBudget, SolveOptions, SolveProgress,
};
use cophy_catalog::{ColumnId, Configuration, Index, Skew, TpchGen};
use cophy_inum::Inum;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HomGen;

// ---------------------------------------------------------------------------
// BIP substrate invariants
// ---------------------------------------------------------------------------

/// Strategy: a random small BIP (knapsack-ish + a couple of generic rows).
fn small_bip() -> impl Strategy<Value = Model> {
    (2usize..8, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // [-1, 1)
        };
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|j| m.add_var(format!("v{j}"), next() * 10.0)).collect();
        // knapsack row keeps things feasible and bounded
        let mut e = LinExpr::new();
        for &v in &vars {
            e.add(v, next().abs() * 5.0 + 0.5);
        }
        m.add_constraint(e, Sense::Le, n as f64);
        // one optional generic row
        if next() > 0.0 {
            let mut g = LinExpr::new();
            for &v in &vars {
                if next() > 0.3 {
                    g.add(v, next() * 4.0);
                }
            }
            if !g.terms.is_empty() {
                m.add_constraint(g, Sense::Le, 2.0 + next().abs() * 3.0);
            }
        }
        m
    })
}

/// Strategy: a random small block-angular problem with guaranteed
/// fallbacks (the Lagrangian backend's input shape).
fn small_block() -> impl Strategy<Value = BlockProblem> {
    (2usize..8, 2usize..10, any::<u64>()).prop_map(|(n_items, n_blocks, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // [-1, 1)
        };
        let item_cost = (0..n_items).map(|_| next().abs() * 2.0).collect();
        let item_size = (0..n_items).map(|_| next().abs() * 4.0 + 1.0).collect();
        let mut blocks = Vec::new();
        for _ in 0..n_blocks {
            let mut alts = Vec::new();
            for _ in 0..1 + (next().abs() * 3.0) as usize {
                let mut slots = Vec::new();
                for _ in 0..1 + (next().abs() * 3.0) as usize {
                    let fallback = Some(next().abs() * 45.0 + 5.0);
                    let choices = (0..(next().abs() * 4.0) as usize)
                        .map(|_| {
                            let item =
                                ((next().abs() * n_items as f64) as u32).min(n_items as u32 - 1);
                            (item, next().abs() * 39.5 + 0.5)
                        })
                        .collect();
                    slots.push(SlotChoices { fallback, choices });
                }
                alts.push(Alt { base: next().abs() * 19.0 + 1.0, slots });
            }
            blocks.push(Block { alts });
        }
        BlockProblem {
            n_items,
            item_cost,
            item_size,
            budget: Some(next().abs() * (n_items as f64 * 3.0) + 3.0),
            blocks,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The LP relaxation never exceeds the binary optimum, and B&B matches
    /// the brute-force oracle exactly.
    #[test]
    fn branch_and_bound_matches_oracle(m in small_bip()) {
        let n = m.n_vars();
        let lp = SimplexSolver::new().solve(&m, &vec![0.0; n], &vec![1.0; n]);
        let bb = BranchBound::new().solve(&m, &SolveOptions::default());
        match m.brute_force() {
            None => prop_assert_eq!(bb.status, cophy_bip::MipStatus::Infeasible),
            Some((opt, _)) => {
                prop_assert!((bb.objective - opt).abs() < 1e-5,
                    "B&B {} vs oracle {}", bb.objective, opt);
                prop_assert!(lp.objective <= opt + 1e-6,
                    "LP bound {} above optimum {}", lp.objective, opt);
                prop_assert!(m.feasible(&bb.x, 1e-6));
                prop_assert!(bb.bound <= bb.objective + 1e-9);
            }
        }
    }

    /// Anytime-stream invariants, generic backend: every streamed incumbent
    /// is feasible with objective ≥ the concurrently reported lower bound,
    /// and the proven-gap series is monotonically non-increasing.
    #[test]
    fn branch_bound_anytime_stream_invariants(m in small_bip()) {
        let mut events: Vec<(SolveProgress, Option<(bool, f64)>)> = Vec::new();
        let r = BranchBound::new().solve_with_progress(
            &m,
            &SolveOptions::default(),
            |p, sol| events.push((*p, sol.map(|x| (m.feasible(x, 1e-6), m.objective_value(x))))),
        );
        let mut prev_gap = f64::INFINITY;
        for (p, sol) in &events {
            if let Some((feasible, obj)) = sol {
                prop_assert!(*feasible, "streamed incumbent violates the model");
                prop_assert!((obj - p.incumbent).abs() < 1e-6,
                    "streamed objective {} != reported incumbent {}", obj, p.incumbent);
            }
            prop_assert!(p.incumbent >= p.bound - 1e-9,
                "incumbent {} below bound {}", p.incumbent, p.bound);
            prop_assert!(p.gap <= prev_gap + 1e-12, "gap series regressed");
            prev_gap = p.gap;
        }
        if r.status != cophy_bip::MipStatus::Infeasible {
            prop_assert!(!events.is_empty(), "a solved model must stream progress");
        }
    }

    /// Anytime-stream invariants, Lagrangian backend: same contract as the
    /// generic backend, over the block-angular form.
    #[test]
    fn lagrangian_anytime_stream_invariants(p in small_block()) {
        type Event = (SolveProgress, Option<(bool, Option<f64>)>);
        let mut events: Vec<Event> = Vec::new();
        let (r, _) = LagrangianSolver::new().solve_warm_with_progress(
            &p,
            None,
            |pr, sel| events.push((
                *pr,
                sel.map(|s| (p.fits_budget(s), p.evaluate(s))),
            )),
        );
        prop_assert!(!events.is_empty());
        let mut prev_gap = f64::INFINITY;
        for (pr, sol) in &events {
            if let Some((fits, obj)) = sol {
                prop_assert!(*fits, "streamed selection exceeds the budget");
                let obj = obj.expect("streamed selection must evaluate");
                prop_assert!((obj - pr.incumbent).abs() < 1e-6,
                    "streamed objective {} != reported incumbent {}", obj, pr.incumbent);
            }
            prop_assert!(pr.incumbent >= pr.bound - 1e-9,
                "incumbent {} below bound {}", pr.incumbent, pr.bound);
            prop_assert!(pr.gap <= prev_gap + 1e-12, "gap series regressed");
            prev_gap = pr.gap;
        }
        prop_assert!(r.gap >= 0.0);
    }

    /// Warm-started dual-simplex re-solves from a parent basis reach the
    /// same objective (± tolerance) as a cold two-phase solve across random
    /// sequences of bound pinches, and agree on feasibility.
    #[test]
    fn dual_resolve_matches_cold_across_bound_pinches(
        m in small_bip(),
        pinches in prop::collection::vec((0usize..8, any::<bool>()), 1..5),
    ) {
        let n = m.n_vars();
        let (mut lo, mut hi) = (vec![0.0; n], vec![1.0; n]);
        let root = SimplexSolver::new().solve(&m, &lo, &hi);
        if root.status != cophy_bip::LpStatus::Optimal {
            return Ok(());
        }
        let mut basis = root.basis.expect("optimal solves snapshot a basis");
        for (j, up) in pinches {
            let j = j % n;
            lo[j] = if up { 1.0 } else { 0.0 };
            hi[j] = lo[j];
            let warm = DualSimplex::new()
                .resolve(&m, &lo, &hi, &basis)
                .expect("basis from the same model must fit");
            let cold = SimplexSolver::new().solve(&m, &lo, &hi);
            prop_assert_eq!(warm.status, cold.status,
                "warm/cold disagree on feasibility after pinch ({}, {})", j, up);
            if warm.status != cophy_bip::LpStatus::Optimal {
                break;
            }
            prop_assert!((warm.objective - cold.objective).abs() < 1e-5,
                "warm {} vs cold {} after pinch ({}, {})",
                warm.objective, cold.objective, j, up);
            basis = warm.basis.expect("warm optimum snapshots too");
        }
    }

    /// Parallel branch-and-bound (k ∈ {1, 2, 4}) and the serial search
    /// prove the same final bound and objective, and every run's incumbent
    /// stream stays monotone with feasible solutions.
    #[test]
    fn parallel_bb_agrees_with_serial(m in small_bip()) {
        let serial = BranchBound::new().solve(&m, &SolveOptions::default());
        for k in [1usize, 2, 4] {
            let opts = SolveOptions {
                budget: SolveBudget::exact().with_parallelism(k),
                ..Default::default()
            };
            let mut stream: Vec<(f64, bool)> = Vec::new();
            let r = BranchBound::new().solve_with_progress(&m, &opts, |p, sol| {
                stream.push((p.incumbent, sol.is_none_or(|x| m.feasible(x, 1e-6))));
            });
            prop_assert_eq!(r.status, serial.status, "k={}", k);
            if serial.status != cophy_bip::MipStatus::Infeasible {
                prop_assert!((r.objective - serial.objective).abs() < 1e-6,
                    "k={}: objective {} vs serial {}", k, r.objective, serial.objective);
                prop_assert!((r.bound - serial.bound).abs() < 1e-6,
                    "k={}: bound {} vs serial {}", k, r.bound, serial.bound);
            }
            let mut prev = f64::INFINITY;
            for (inc, feasible) in &stream {
                prop_assert!(*feasible, "k={}: streamed incumbent infeasible", k);
                prop_assert!(*inc <= prev + 1e-9, "k={}: incumbent stream regressed", k);
                prev = *inc;
            }
        }
    }

    /// Continuous knapsack lower-bounds greedy binary and respects budgets.
    #[test]
    fn knapsack_relaxation_dominance(
        costs in prop::collection::vec(-20.0..0.0f64, 1..12),
        sizes in prop::collection::vec(0.1..10.0f64, 1..12),
        budget in 0.0..40.0f64,
    ) {
        let n = costs.len().min(sizes.len());
        let (c_obj, z) = knapsack::continuous_min(&costs[..n], &sizes[..n], budget);
        let (b_obj, sel) = knapsack::greedy_binary_min(&costs[..n], &sizes[..n], budget);
        prop_assert!(c_obj <= b_obj + 1e-9);
        let used: f64 = z.iter().zip(&sizes[..n]).map(|(zi, s)| zi * s).sum();
        prop_assert!(used <= budget + 1e-6);
        let bused: f64 = sel.iter().zip(&sizes[..n]).filter(|(s, _)| **s).map(|(_, s)| s).sum();
        prop_assert!(bused <= budget + 1e-6);
        for zi in &z {
            prop_assert!((0.0..=1.0).contains(zi));
        }
    }
}

// ---------------------------------------------------------------------------
// Index-tuning invariants (these use the real pipeline on small instances,
// so keep the case counts low).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 1: the BIP optimum equals the exhaustive-search optimum of the
    /// index tuning problem under the INUM cost function.
    #[test]
    fn theorem1_equivalence(seed in 0u64..500, n_cands in 4usize..9) {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(seed).generate(o.schema(), 4);
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let candidates = CGen::default().generate(o.schema(), &w).truncate(n_cands);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.2);

        let (model, mapping) = BipGen::default().model(
            o.schema(), o.cost_model(), &prepared, &candidates, &constraints);
        let r = BranchBound::new().solve(&model, &SolveOptions::default());
        prop_assert_eq!(r.status, cophy_bip::MipStatus::Optimal);

        // Oracle: enumerate all subsets.
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << candidates.len()) {
            let cfg = Configuration::from_indexes(
                candidates.iter().filter(|(id, _)| mask >> id.0 & 1 == 1)
                    .map(|(_, ix)| ix.clone()));
            if constraints.check_configuration(o.schema(), &cfg).is_err() {
                continue;
            }
            best = best.min(prepared.cost(o.schema(), o.cost_model(), &cfg));
        }
        let fixed: f64 = prepared.queries.iter()
            .map(|pq| pq.weight * pq.fixed_update_cost).sum();
        prop_assert!(((r.objective + fixed) - best).abs() / best < 1e-6,
            "BIP {} vs oracle {}", r.objective + fixed, best);
        // Extracted configuration achieves the optimum.
        let cfg = mapping.extract_configuration(&r.x, &candidates);
        let achieved = prepared.cost(o.schema(), o.cost_model(), &cfg);
        prop_assert!((achieved - best).abs() / best < 1e-6);
    }

    /// Lagrangian bound validity on real tuning instances:
    /// bound ≤ optimum ≤ incumbent.
    #[test]
    fn lagrangian_bound_sandwich(seed in 0u64..500) {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(seed).generate(o.schema(), 4);
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let candidates = CGen::default().generate(o.schema(), &w).truncate(8);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.15);
        let tp = BipGen::default().block_problem(
            o.schema(), o.cost_model(), &prepared, &candidates, &constraints);
        let r = LagrangianSolver::default().solve(&tp.block);

        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << candidates.len()) {
            let sel: Vec<bool> = (0..candidates.len()).map(|a| mask >> a & 1 == 1).collect();
            if !tp.block.fits_budget(&sel) {
                continue;
            }
            if let Some(c) = tp.block.evaluate(&sel) {
                best = best.min(c);
            }
        }
        prop_assert!(r.bound <= best + 1e-6, "bound {} above optimum {}", r.bound, best);
        prop_assert!(r.objective >= best - 1e-6, "incumbent below optimum?!");
    }

    /// Fault-layer determinism, end to end: any all-transient fault
    /// schedule that recovers within the retry budget must leave the
    /// recommendation bit-identical to the fault-free tune, and the
    /// resilient preparation must agree byte-for-byte whether it runs
    /// serially or sharded across threads (schedules are keyed per
    /// `(query, configuration)` pair, so interleaving cannot matter).
    #[test]
    fn transient_faults_never_change_the_recommendation(
        fault_seed in any::<u64>(),
        rate in 0.05f64..0.9,
        max_transient in 1u32..3,
    ) {
        use cophy::{CoPhy, CoPhyOptions};
        use cophy_optimizer::{FaultInjectingBackend, FaultPlan, RetryPolicy, WhatIfBackend};

        let retry = RetryPolicy {
            max_attempts: max_transient + 1,
            base_backoff: std::time::Duration::from_micros(10),
            max_backoff: std::time::Duration::from_micros(50),
            ..Default::default()
        };
        let clean = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(11).generate(clean.schema(), 6);
        let constraints = ConstraintSet::storage_fraction(clean.schema(), 0.4);
        let want = CoPhy::new(&clean, CoPhyOptions::default())
            .try_tune(&w, &constraints)
            .expect("fault-free tune is feasible");

        let faulty = FaultInjectingBackend::new(
            Box::new(WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)),
            FaultPlan::transient_only(fault_seed, rate, max_transient),
        );
        let opts = CoPhyOptions { retry: retry.clone(), ..Default::default() };
        let got = CoPhy::new(&faulty, opts)
            .try_tune(&w, &constraints)
            .expect("an all-transient schedule within the retry budget must recover");
        prop_assert_eq!(got.objective.to_bits(), want.objective.to_bits(),
            "objective drifted: {} vs {}", got.objective, want.objective);
        prop_assert_eq!(got.bound.to_bits(), want.bound.to_bits());
        prop_assert_eq!(&got.configuration, &want.configuration);
        if let Some(d) = &got.degradation {
            prop_assert_eq!(d.statements_degraded, 0, "nothing may stay degraded");
            prop_assert!(d.coverage == 1.0, "recovered tune must report full coverage");
        }

        // Serial vs sharded resilient preparation on the same schedule.
        let inum = Inum::with_retry(&faulty, retry);
        faulty.reset_schedule();
        faulty.reset_call_counter();
        let (serial, serial_report) =
            inum.try_prepare_workload_resilient(&w, None).expect("serial prep");
        faulty.reset_schedule();
        faulty.reset_call_counter();
        let (par, par_report) =
            inum.try_prepare_workload_resilient_parallel(&w, None).expect("sharded prep");
        prop_assert_eq!(par_report, serial_report, "fault accounts must match");
        prop_assert_eq!(par.what_if_calls, serial.what_if_calls);
        prop_assert_eq!(par.queries.len(), serial.queries.len());
        for (a, b) in par.queries.iter().zip(serial.queries.iter()) {
            prop_assert_eq!(a.qid, b.qid);
            prop_assert_eq!(a.templates.len(), b.templates.len());
            for (ta, tb) in a.templates.iter().zip(b.templates.iter()) {
                prop_assert_eq!(ta.internal_cost.to_bits(), tb.internal_cost.to_bits());
            }
        }
    }

    /// INUM monotonicity: growing the configuration never increases
    /// read-side cost (free disposal of indexes).
    #[test]
    fn inum_free_disposal(seed in 0u64..1000) {
        let o = WhatIfOptimizer::new(
            TpchGen::new(1.0, Skew((seed % 3) as f64)).schema(), SystemProfile::B);
        let w = HomGen::new(seed).generate(o.schema(), 3);
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let li = o.schema().table_by_name("lineitem").unwrap().id;
        let ord = o.schema().table_by_name("orders").unwrap().id;
        let small = Configuration::from_indexes([
            Index::secondary(li, vec![ColumnId((seed % 16) as u32)]),
        ]);
        let big = small.union(&Configuration::from_indexes([
            Index::secondary(ord, vec![ColumnId((seed % 9) as u32)]),
            Index::secondary(li, vec![ColumnId((seed % 16) as u32), ColumnId(10)]),
        ]));
        for pq in &prepared.queries {
            let cs = pq.read_cost(o.schema(), o.cost_model(), &small);
            let cb = pq.read_cost(o.schema(), o.cost_model(), &big);
            prop_assert!(cb <= cs + 1e-9, "free disposal violated: {} > {}", cb, cs);
        }
    }
}
