//! Concurrency contract of the shared INUM cache: N threads driving N
//! distinct sessions over one `Arc<InumCache>` must (a) spend exactly the
//! what-if probes of a single session — preparation is paid once, shared by
//! all — and (b) produce recommendations byte-identical to running the same
//! sessions serially.  This is the in-process form of the guarantee the
//! `cophy-server` daemon sells over TCP.

use std::thread;

use cophy::{CoPhy, CoPhyOptions, ConstraintSet};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HomGen;

const N_SESSIONS: usize = 8;

/// Fingerprint of a recommendation for byte-identity comparison: objective,
/// bound and gap bits plus the exact selected index set (wire encoding).
fn fingerprint(rec: &cophy::Recommendation) -> (u64, u64, u64, Vec<String>) {
    let mut wires: Vec<String> =
        rec.configuration.iter().map(cophy_optimizer::trace::fmt_index).collect();
    wires.sort();
    (rec.objective.to_bits(), rec.bound.to_bits(), rec.gap.to_bits(), wires)
}

#[test]
fn n_threads_over_one_cache_cost_one_preparation_and_agree_with_serial() {
    let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let w = HomGen::new(21).generate(o.schema(), 20);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);

    // One session builds the cache; its probe count is the whole budget.
    let builder = cophy.try_session(&w, constraints.clone()).unwrap();
    let cache = builder.cache();
    let candidates = builder.candidates().clone();
    let probes_single = o.what_if_calls();
    assert!(probes_single > 0);

    // Serial reference: one cold solve per distinct session shape (session
    // i pins the i-th candidate, so the N sessions are genuinely distinct).
    let pins: Vec<cophy_catalog::Index> =
        candidates.iter().take(N_SESSIONS).map(|(_, ix)| ix.clone()).collect();
    let serial: Vec<_> = pins
        .iter()
        .map(|pin| {
            let mut s = cophy
                .try_session_shared(cache.clone(), candidates.clone(), constraints.clone())
                .unwrap();
            s.pin_index(pin);
            fingerprint(&s.recommend())
        })
        .collect();
    assert_eq!(o.what_if_calls(), probes_single, "shared sessions must not re-probe the optimizer");

    // Concurrent run: N OS threads, each its own session over the same Arc.
    let concurrent: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = pins
            .iter()
            .map(|pin| {
                let cache = cache.clone();
                let candidates = candidates.clone();
                let constraints = constraints.clone();
                let cophy = &cophy;
                scope.spawn(move || {
                    let mut s = cophy.try_session_shared(cache, candidates, constraints).unwrap();
                    s.pin_index(pin);
                    fingerprint(&s.recommend())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread panicked")).collect()
    });

    // (a) The probe ledger did not move: N concurrent sessions cost exactly
    // one session's preparation.
    assert_eq!(
        o.what_if_calls(),
        probes_single,
        "concurrent shared sessions must not re-probe the optimizer"
    );

    // (b) Every concurrent recommendation is byte-identical to its serial
    // counterpart: same objective/bound/gap bits, same index wire set.
    for (i, (c, s)) in concurrent.iter().zip(&serial).enumerate() {
        assert_eq!(c, s, "session {i} diverged from its serial reference");
    }
}

#[test]
fn concurrent_what_if_probes_are_free_and_consistent() {
    let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let w = HomGen::new(23).generate(o.schema(), 12);
    let cophy = CoPhy::new(&o, CoPhyOptions::default());
    let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
    let builder = cophy.try_session(&w, constraints.clone()).unwrap();
    let cache = builder.cache();
    let candidates = builder.candidates().clone();
    let probes_single = o.what_if_calls();

    let cfg = cophy_catalog::Configuration::from_indexes(
        candidates.iter().take(3).map(|(_, ix)| ix.clone()),
    );
    let reference = builder.what_if(&cfg);

    let answers: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..N_SESSIONS)
            .map(|_| {
                let (cache, candidates, constraints, cfg) =
                    (cache.clone(), candidates.clone(), constraints.clone(), cfg.clone());
                let cophy = &cophy;
                scope.spawn(move || {
                    let s = cophy.try_session_shared(cache, candidates, constraints).unwrap();
                    s.what_if(&cfg)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(o.what_if_calls(), probes_single, "what_if must stay memo-lookup under sharing");
    for a in &answers {
        assert_eq!(a.cost.to_bits(), reference.cost.to_bits());
        assert_eq!(a.baseline_cost.to_bits(), reference.baseline_cost.to_bits());
    }
}
