//! Record/replay coverage through the full advisor stack: a smoke tune
//! recorded against the live [`WhatIfOptimizer`] is checked in at
//! `tests/data/smoke.trace`, and replaying it through [`TraceReplay`] must
//! reproduce the recommendation **bit-identically** — with zero live
//! optimizer work.  This is the portability claim of the `WhatIfBackend`
//! seam made executable, and it gives CI a backend-swap smoke that runs
//! without the analytic optimizer in the loop.

use cophy::{CGen, CoPhy, CoPhyOptions, ConstraintSet, Recommendation};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, TraceRecorder, TraceReplay, WhatIfBackend, WhatIfOptimizer};
use cophy_workload::{HomGen, Workload};

const TRACE: &str = include_str!("data/smoke.trace");

/// The fixed smoke tune behind the fixture (all generators deterministic).
const SMOKE_SEED: u64 = 23;
const SMOKE_STATEMENTS: usize = 6;

fn smoke_workload(backend: &dyn WhatIfBackend) -> Workload {
    HomGen::new(SMOKE_SEED).generate(backend.schema(), SMOKE_STATEMENTS)
}

fn smoke_tune(backend: &dyn WhatIfBackend, w: &Workload) -> Recommendation {
    let candidates = CGen::default().generate(backend.schema(), w).truncate(10);
    let constraints = ConstraintSet::storage_fraction(backend.schema(), 0.5);
    CoPhy::new(backend, CoPhyOptions::default()).tune_with_candidates(w, &candidates, &constraints)
}

#[test]
fn recorded_smoke_tune_replays_bit_identically() {
    let live = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let recorder = TraceRecorder::new(&live);
    let w = smoke_workload(&recorder);
    let recorded = smoke_tune(&recorder, &w);
    assert_eq!(
        recorder.serialize(),
        TRACE,
        "trace fixture drifted from the live backend; if the change is \
         intentional, regenerate via `regenerate_smoke_trace`"
    );

    // Replay the identical tune from the fixture alone.  Any probe the
    // replay cannot answer panics, so passing at all proves the trace
    // covers the whole advisor stack's probe sequence.
    let live_calls = live.what_if_calls();
    let replay = TraceReplay::parse(TpchGen::default().schema(), TRACE).expect("fixture parses");
    let replayed = smoke_tune(&replay, &w);
    assert_eq!(live.what_if_calls(), live_calls, "replay must not touch the live optimizer");
    assert_eq!(replayed.configuration, recorded.configuration, "recommendations must agree");
    assert_eq!(replayed.objective.to_bits(), recorded.objective.to_bits());
    assert_eq!(replayed.bound.to_bits(), recorded.bound.to_bits());
    assert_eq!(
        replayed.stats.what_if_calls, recorded.stats.what_if_calls,
        "what-if call accounting must be preserved across the backend swap"
    );
}

#[test]
fn replay_fixture_drives_the_advisor_stack_without_a_live_optimizer() {
    // CI's backend-swap smoke: no `WhatIfOptimizer` is ever constructed.
    let replay = TraceReplay::parse(TpchGen::default().schema(), TRACE).expect("fixture parses");
    let w = smoke_workload(&replay);
    let rec = smoke_tune(&replay, &w);
    assert!(rec.estimated_improvement() > 0.0, "replayed tune must still find improvements");
    assert!(rec.stats.what_if_calls > 0, "the stack must have probed the trace");
}

/// Regenerate `tests/data/smoke.trace` after an intentional backend or
/// format change:
/// `cargo test -p cophy-integration --test backend_replay regenerate -- --ignored`.
#[test]
#[ignore = "writes the trace fixture; run explicitly after backend/format changes"]
fn regenerate_smoke_trace() {
    let live = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let recorder = TraceRecorder::new(&live);
    let w = smoke_workload(&recorder);
    let _ = smoke_tune(&recorder, &w);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/smoke.trace");
    std::fs::write(path, recorder.serialize()).expect("write fixture");
}
