//! Test-only crate: see `tests/`.
