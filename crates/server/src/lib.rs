//! # cophy-server — the advisor as a service
//!
//! CoPhy's §4.2 pitch is an *interactive* advisor: open a session once, pay
//! CGen + INUM once, then answer every refinement — re-tunes, budget
//! sweeps, pins/bans, what-if probes — at solver speed.  This crate lifts
//! that surface behind a daemon so many DBAs (or bots) share one advisor
//! process:
//!
//! * **Transport** — `std::net::TcpListener` + OS threads, line-delimited
//!   text ([`protocol`]); no async runtime, nothing outside the workspace.
//! * **Sharing** — sessions opened over the same workload spec share one
//!   [`cophy_inum::InumCache`] `Arc`: N concurrent sessions cost the probes
//!   of one ([`manager`]).
//! * **Isolation** — per-tenant probe quotas ([`quota`]), a bounded solver
//!   pool (`err busy` instead of collapse), cooperative cancellation when a
//!   client disconnects mid-solve ([`server`]), and a memory-capped LRU
//!   that demotes cold sessions to a compact form they rebuild from
//!   bit-identically.
//! * **Streaming** — `tune`/`sweep` forward every anytime
//!   [`cophy_bip::SolveProgress`] event as a `progress` line the moment the
//!   solver emits it; the `server_smoke` gate checks the wire stream equals
//!   an in-process run event for event.
//!
//! Quick start (the README "Advisor as a service" snippet):
//!
//! ```no_run
//! use cophy_server::{Client, Server, ServerConfig};
//!
//! let handle = Server::bind("127.0.0.1:0", ServerConfig::default(), None).unwrap().spawn();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.open("s1", "hom:7:24", 0.5).unwrap(); // budget = 0.5 x data size
//! let rec = client.tune("s1", |p| println!("gap {:.1}%", p.gap * 100.0)).unwrap();
//! println!("{} indexes, objective {}", rec.indexes.len(), rec.objective);
//! client.close("s1").unwrap();
//! handle.stop();
//! ```

pub mod breaker;
pub mod client;
pub mod manager;
pub mod protocol;
pub mod quota;
pub mod server;

pub use breaker::{BreakerState, CircuitBreaker};
pub use client::{Client, ClientError};
pub use manager::{
    parse_spec, parse_spec_source, OpenReply, PointReply, ServerConfig, SessionManager, StatsReply,
    TuneReply, WhatIfReply,
};
pub use protocol::{DegradedLine, ErrCode, ProgressLine, Request, WireError};
pub use quota::MeteredBackend;
pub use server::{Server, ServerHandle};
