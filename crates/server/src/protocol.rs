//! The line-delimited advisor protocol.
//!
//! One request per line, space-delimited tokens; every response is one or
//! more lines, and multi-line responses end with a `done` line so clients
//! never guess at framing.  Indexes travel in the trace wire format
//! (`{table}/{C|S}/{0|1}/{key-csv|-}/{include-csv|-}`, see
//! [`cophy_optimizer::trace::fmt_index`]), which contains no whitespace, and
//! floats travel through Rust's shortest-roundtrip `{}` formatting, so a
//! parsed reply is **bit-identical** to the server-side value — the
//! `server_smoke` gate compares streamed solver events against an in-process
//! run event for event.
//!
//! ```text
//! request  := open <sid> <spec> <budget>      ; spec = (hom|het|upd):SEED:N
//!           | add <sid> <spec>                ; budget = bytes or fraction<1
//!           | tune <sid>
//!           | sweep <sid> <b1,b2,...>
//!           | pin <sid> <index> | ban <sid> <index> | unfix <sid> <index>
//!           | what_if <sid> <index[+index...]|->  ; '+'-joined (indexes
//!                                                 ; contain commas)
//!           | export_mps <sid>
//!           | evict <sid> | close <sid> | stats | quit
//! response := ok ...                          ; single-line acknowledgements
//!           | progress <pt> <at_us> <inc> <bnd> <gap> <ticks> <pivots>
//!                      [blocks=<done>/<total> outer=<iter>]
//!                                             ; trailing tokens: Lagrangian
//!                                             ; block-decomposition progress
//!           | rec objective=<f> bound=<f> gap=<f> baseline=<f> calls=<n>
//!           | point budget=<n> objective=<f> bound=<f> gap=<f>
//!           | index <wire>                    ; one per selected index
//!           | mps <n-lines>                   ; followed by n raw lines
//!           | done                            ; terminates tune/sweep/mps
//!           | hb                              ; liveness tick, ignore
//!           | degraded coverage=<f> inflation=<f> failed=<n> recovered=<n>
//!                      substituted=<n> statements=<n>/<n>
//!                                             ; precedes ok open / rec when
//!                                             ; INUM prep lost probes
//!           | err <code> <message...>         ; busy|quota|no-session|
//!                                             ; bad-request|backend|internal
//! ```
//!
//! `err busy` replies may carry a `retry_after_ms=<n>` hint in the message
//! (solver-pool saturation, tripped circuit breaker); [`Client`]s honor it
//! as their backoff ([`WireError::retry_after`]).
//!
//! [`Client`]: crate::Client

use cophy_bip::{DecompositionProgress, SolveProgress};
use cophy_catalog::Index;
use cophy_optimizer::trace::{fmt_index, parse_index};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `open <sid> <spec> <budget>` — open a session named `sid` over the
    /// workload `spec`, with a storage budget in bytes (or, below 1, as a
    /// fraction of the base data size).
    Open { sid: String, spec: String, budget: f64 },
    /// `add <sid> <spec>` — absorb more statements into the session (and the
    /// shared cache behind it).
    Add { sid: String, spec: String },
    /// `tune <sid>` — recommend, streaming `progress` events.
    Tune { sid: String },
    /// `sweep <sid> <b1,b2,...>` — warm storage-budget sweep.
    Sweep { sid: String, budgets: Vec<u64> },
    /// `pin <sid> <index>`.
    Pin { sid: String, index: Index },
    /// `ban <sid> <index>`.
    Ban { sid: String, index: Index },
    /// `unfix <sid> <index>`.
    Unfix { sid: String, index: Index },
    /// `what_if <sid> <index[+index...]|->` — cost an explicit
    /// configuration from the session cache (zero optimizer probes).
    WhatIf { sid: String, indexes: Vec<Index> },
    /// `export_mps <sid>` — the session's Theorem-1 BIP as MPS text.
    ExportMps { sid: String },
    /// `evict <sid>` — demote the session to its compact evicted form now
    /// (deterministic trigger for what the LRU cap does under pressure).
    Evict { sid: String },
    /// `close <sid>` — drop the session entirely.
    Close { sid: String },
    /// `stats` — server-wide counters.
    Stats,
    /// `quit` — end this connection (sessions persist).
    Quit,
}

/// Typed error codes carried on `err` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Solver pool saturated (admission control) or connection limit hit.
    Busy,
    /// The tenant's what-if probe quota is exhausted.
    Quota,
    /// No live or evicted session under that id.
    NoSession,
    /// Malformed request line or invalid argument.
    BadRequest,
    /// The what-if backend failed (replay miss, …).
    Backend,
    /// A request handler panicked; the session may have been dropped.
    Internal,
}

impl ErrCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Busy => "busy",
            ErrCode::Quota => "quota",
            ErrCode::NoSession => "no-session",
            ErrCode::BadRequest => "bad-request",
            ErrCode::Backend => "backend",
            ErrCode::Internal => "internal",
        }
    }

    pub fn parse(s: &str) -> Option<ErrCode> {
        Some(match s {
            "busy" => ErrCode::Busy,
            "quota" => ErrCode::Quota,
            "no-session" => ErrCode::NoSession,
            "bad-request" => ErrCode::BadRequest,
            "backend" => ErrCode::Backend,
            "internal" => ErrCode::Internal,
            _ => return None,
        })
    }
}

/// A protocol-level error: code plus human-readable detail.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    pub code: ErrCode,
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "err {} {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    pub fn new(code: ErrCode, message: impl Into<String>) -> WireError {
        WireError { code, message: message.into() }
    }

    /// The server's backoff hint, when the message carries one
    /// (`retry_after_ms=<n>`); `err busy` replies from the solver pool and
    /// the circuit breaker do.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        let ms: u64 = field(&self.message, "retry_after_ms").ok()?.parse().ok()?;
        Some(std::time::Duration::from_millis(ms))
    }
}

fn sid_ok(sid: &str) -> bool {
    !sid.is_empty() && sid.chars().all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c))
}

fn bad(msg: impl Into<String>) -> WireError {
    WireError::new(ErrCode::BadRequest, msg)
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let mut it = line.split_ascii_whitespace();
        let verb = it.next().ok_or_else(|| bad("empty request"))?;
        let toks: Vec<&str> = it.collect();
        let sid = |i: usize| -> Result<String, WireError> {
            let s = *toks.get(i).ok_or_else(|| bad(format!("{verb}: missing session id")))?;
            if sid_ok(s) {
                Ok(s.to_string())
            } else {
                Err(bad(format!("{verb}: bad session id {s:?}")))
            }
        };
        let index = |i: usize| -> Result<Index, WireError> {
            let s = *toks.get(i).ok_or_else(|| bad(format!("{verb}: missing index")))?;
            parse_index(s).map_err(|e| bad(format!("{verb}: {e}")))
        };
        let req = match verb {
            "open" => {
                let budget = toks
                    .get(2)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|b| b.is_finite() && *b > 0.0)
                    .ok_or_else(|| bad("open: budget must be a positive number"))?;
                Request::Open {
                    sid: sid(0)?,
                    spec: toks.get(1).ok_or_else(|| bad("open: missing spec"))?.to_string(),
                    budget,
                }
            }
            "add" => Request::Add {
                sid: sid(0)?,
                spec: toks.get(1).ok_or_else(|| bad("add: missing spec"))?.to_string(),
            },
            "tune" => Request::Tune { sid: sid(0)? },
            "sweep" => {
                let list = *toks.get(1).ok_or_else(|| bad("sweep: missing budget list"))?;
                let budgets = list
                    .split(',')
                    .map(|s| s.parse::<u64>().map_err(|e| bad(format!("sweep: {s:?}: {e}"))))
                    .collect::<Result<Vec<u64>, WireError>>()?;
                if budgets.is_empty() {
                    return Err(bad("sweep: empty budget list"));
                }
                Request::Sweep { sid: sid(0)?, budgets }
            }
            "pin" => Request::Pin { sid: sid(0)?, index: index(1)? },
            "ban" => Request::Ban { sid: sid(0)?, index: index(1)? },
            "unfix" => Request::Unfix { sid: sid(0)?, index: index(1)? },
            "what_if" => {
                let list = *toks.get(1).ok_or_else(|| bad("what_if: missing index list"))?;
                let indexes = if list == "-" {
                    Vec::new()
                } else {
                    list.split('+')
                        .map(|s| parse_index(s).map_err(|e| bad(format!("what_if: {e}"))))
                        .collect::<Result<Vec<Index>, WireError>>()?
                };
                Request::WhatIf { sid: sid(0)?, indexes }
            }
            "export_mps" => Request::ExportMps { sid: sid(0)? },
            "evict" => Request::Evict { sid: sid(0)? },
            "close" => Request::Close { sid: sid(0)? },
            "stats" => Request::Stats,
            "quit" => Request::Quit,
            _ => return Err(bad(format!("unknown verb {verb:?}"))),
        };
        Ok(req)
    }

    /// Format the request as its wire line (inverse of [`Request::parse`]).
    pub fn to_line(&self) -> String {
        match self {
            Request::Open { sid, spec, budget } => format!("open {sid} {spec} {budget}"),
            Request::Add { sid, spec } => format!("add {sid} {spec}"),
            Request::Tune { sid } => format!("tune {sid}"),
            Request::Sweep { sid, budgets } => {
                let list: Vec<String> = budgets.iter().map(u64::to_string).collect();
                format!("sweep {sid} {}", list.join(","))
            }
            Request::Pin { sid, index } => format!("pin {sid} {}", fmt_index(index)),
            Request::Ban { sid, index } => format!("ban {sid} {}", fmt_index(index)),
            Request::Unfix { sid, index } => format!("unfix {sid} {}", fmt_index(index)),
            Request::WhatIf { sid, indexes } => {
                if indexes.is_empty() {
                    format!("what_if {sid} -")
                } else {
                    let list: Vec<String> = indexes.iter().map(fmt_index).collect();
                    format!("what_if {sid} {}", list.join("+"))
                }
            }
            Request::ExportMps { sid } => format!("export_mps {sid}"),
            Request::Evict { sid } => format!("evict {sid}"),
            Request::Close { sid } => format!("close {sid}"),
            Request::Stats => "stats".into(),
            Request::Quit => "quit".into(),
        }
    }
}

/// One streamed solver event: the sweep-point ordinal (0 for `tune`) plus
/// the anytime [`SolveProgress`] fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressLine {
    pub point: usize,
    pub at_us: u128,
    pub incumbent: f64,
    pub bound: f64,
    pub gap: f64,
    pub ticks: usize,
    pub pivots: usize,
    /// Block-decomposition progress of the Lagrangian backend, when the
    /// event carries it: travels as trailing `blocks=<done>/<total>
    /// outer=<iter>` tokens, absent on B&B events and the pre-decomposition
    /// greedy incumbent.  Unknown trailing `key=value` tokens are ignored on
    /// parse, so older clients read new servers (and vice versa).
    pub decomposition: Option<DecompositionProgress>,
}

impl ProgressLine {
    pub fn from_event(point: usize, p: &SolveProgress) -> ProgressLine {
        ProgressLine {
            point,
            at_us: p.at.as_micros(),
            incumbent: p.incumbent,
            bound: p.bound,
            gap: p.gap,
            ticks: p.ticks,
            pivots: p.pivots,
            decomposition: p.decomposition,
        }
    }

    /// The solver-state portion (everything except the wall-clock stamp):
    /// what the `server_smoke` gate compares event for event, bit for bit.
    /// Decomposition progress is deliberately excluded — it is derived from
    /// `ticks` on the Lagrangian backend, and keeping the key shape stable
    /// lets recorded gate baselines survive protocol extensions.
    pub fn state_key(&self) -> (usize, u64, u64, u64, usize, usize) {
        (
            self.point,
            self.incumbent.to_bits(),
            self.bound.to_bits(),
            self.gap.to_bits(),
            self.ticks,
            self.pivots,
        )
    }

    pub fn to_line(&self) -> String {
        let mut line = format!(
            "progress {} {} {} {} {} {} {}",
            self.point, self.at_us, self.incumbent, self.bound, self.gap, self.ticks, self.pivots
        );
        if let Some(d) = self.decomposition {
            line.push_str(&format!(
                " blocks={}/{} outer={}",
                d.blocks_done, d.blocks_total, d.outer_iter
            ));
        }
        line
    }

    pub fn parse(line: &str) -> Result<ProgressLine, WireError> {
        let t: Vec<&str> = line.split_ascii_whitespace().collect();
        if t.len() < 8 {
            return Err(bad(format!("bad progress line {line:?}")));
        }
        let [_, point, at_us, incumbent, bound, gap, ticks, pivots] = t[..8] else {
            return Err(bad(format!("bad progress line {line:?}")));
        };
        let e = |what: &str| bad(format!("bad progress field {what}"));
        let mut blocks: Option<(usize, usize)> = None;
        let mut outer: Option<usize> = None;
        for tok in &t[8..] {
            if let Some(v) = tok.strip_prefix("blocks=") {
                let (done, total) = v.split_once('/').ok_or_else(|| e("blocks"))?;
                blocks = Some((
                    done.parse().map_err(|_| e("blocks"))?,
                    total.parse().map_err(|_| e("blocks"))?,
                ));
            } else if let Some(v) = tok.strip_prefix("outer=") {
                outer = Some(v.parse().map_err(|_| e("outer"))?);
            }
            // other trailing key=value tokens: forward-compatible, ignored
        }
        let decomposition = match (blocks, outer) {
            (Some((blocks_done, blocks_total)), Some(outer_iter)) => {
                Some(DecompositionProgress { blocks_done, blocks_total, outer_iter })
            }
            _ => None,
        };
        Ok(ProgressLine {
            point: point.parse().map_err(|_| e("point"))?,
            at_us: at_us.parse().map_err(|_| e("at_us"))?,
            incumbent: incumbent.parse().map_err(|_| e("incumbent"))?,
            bound: bound.parse().map_err(|_| e("bound"))?,
            gap: gap.parse().map_err(|_| e("gap"))?,
            ticks: ticks.parse().map_err(|_| e("ticks"))?,
            pivots: pivots.parse().map_err(|_| e("pivots"))?,
            decomposition,
        })
    }
}

/// The wire form of a [`cophy::DegradationReport`]: emitted before the
/// `ok open` / `rec` line whenever the session's INUM preparation lost
/// what-if probes to exhausted retries, so clients can see how much of the
/// workload was degraded and by how much the reported cost bound may be
/// inflated.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedLine {
    /// Weighted fraction of the workload prepared fully (1.0 = nothing lost).
    pub coverage: f64,
    /// Worst-case relative inflation of the reported cost bound.
    pub inflation: f64,
    /// Probes that failed at least once.
    pub failed: u64,
    /// Probes recovered by a retry (their answers are exact).
    pub recovered: u64,
    /// Probes lost for good (templates skipped or substituted).
    pub substituted: u64,
    /// Statements with at least one lost probe.
    pub degraded_statements: u64,
    /// Statements prepared in total.
    pub total_statements: u64,
}

impl DegradedLine {
    pub fn from_report(d: &cophy::DegradationReport) -> DegradedLine {
        DegradedLine {
            coverage: d.coverage,
            inflation: d.worst_case_inflation,
            failed: d.probes_failed,
            recovered: d.probes_recovered,
            substituted: d.probes_substituted,
            degraded_statements: d.statements_degraded as u64,
            total_statements: d.statements_total as u64,
        }
    }

    pub fn to_line(&self) -> String {
        format!(
            "degraded coverage={} inflation={} failed={} recovered={} substituted={} \
             statements={}/{}",
            self.coverage,
            self.inflation,
            self.failed,
            self.recovered,
            self.substituted,
            self.degraded_statements,
            self.total_statements
        )
    }

    pub fn parse(line: &str) -> Result<DegradedLine, WireError> {
        let stmts = field(line, "statements")?;
        let (deg, total) = stmts
            .split_once('/')
            .ok_or_else(|| bad(format!("bad statements field in {line:?}")))?;
        let count = |s: &str| -> Result<u64, WireError> {
            s.parse().map_err(|_| bad(format!("bad statements field in {line:?}")))
        };
        Ok(DegradedLine {
            coverage: field_f64(line, "coverage")?,
            inflation: field_f64(line, "inflation")?,
            failed: field_u64(line, "failed")?,
            recovered: field_u64(line, "recovered")?,
            substituted: field_u64(line, "substituted")?,
            degraded_statements: count(deg)?,
            total_statements: count(total)?,
        })
    }
}

/// Extract `key=value` fields from a response line.
pub(crate) fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, WireError> {
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| bad(format!("missing field {key}= in {line:?}")))
}

pub(crate) fn field_f64(line: &str, key: &str) -> Result<f64, WireError> {
    field(line, key)?.parse().map_err(|_| bad(format!("bad float field {key}= in {line:?}")))
}

pub(crate) fn field_u64(line: &str, key: &str) -> Result<u64, WireError> {
    field(line, key)?.parse().map_err(|_| bad(format!("bad int field {key}= in {line:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::{ColumnId, TableId};

    #[test]
    fn request_lines_round_trip() {
        let ix = Index::secondary(TableId(3), vec![ColumnId(1), ColumnId(4)]);
        let reqs = [
            Request::Open { sid: "s1".into(), spec: "hom:7:24".into(), budget: 0.5 },
            Request::Add { sid: "s1".into(), spec: "upd:9:4".into() },
            Request::Tune { sid: "s1".into() },
            Request::Sweep { sid: "s1".into(), budgets: vec![1000, 2000] },
            Request::Pin { sid: "s1".into(), index: ix.clone() },
            Request::Ban { sid: "s1".into(), index: ix.clone() },
            Request::Unfix { sid: "s1".into(), index: ix.clone() },
            Request::WhatIf { sid: "s1".into(), indexes: vec![ix.clone(), ix] },
            Request::WhatIf { sid: "s1".into(), indexes: vec![] },
            Request::ExportMps { sid: "s1".into() },
            Request::Evict { sid: "s1".into() },
            Request::Close { sid: "s1".into() },
            Request::Stats,
            Request::Quit,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.to_line()).unwrap(), r, "line {:?}", r.to_line());
        }
    }

    #[test]
    fn malformed_requests_are_bad_request() {
        for line in
            ["", "frobnicate s1", "open s1", "open s!d hom:1:2 0.5", "sweep s1 1,x", "pin s1 zz"]
        {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrCode::BadRequest, "line {line:?} -> {err}");
        }
    }

    #[test]
    fn progress_lines_round_trip_bit_exact() {
        let p = ProgressLine {
            point: 2,
            at_us: 12345,
            incumbent: 1.0 / 3.0,
            bound: f64::NEG_INFINITY,
            gap: f64::INFINITY,
            ticks: 7,
            pivots: 99,
            decomposition: None,
        };
        let back = ProgressLine::parse(&p.to_line()).unwrap();
        assert_eq!(back.state_key(), p.state_key());
        assert_eq!(back, p);
    }

    #[test]
    fn progress_lines_carry_typed_decomposition_fields() {
        let p = ProgressLine {
            point: 0,
            at_us: 77,
            incumbent: 10.5,
            bound: 9.25,
            gap: 0.125,
            ticks: 12,
            pivots: 0,
            decomposition: Some(DecompositionProgress {
                blocks_done: 36,
                blocks_total: 3,
                outer_iter: 12,
            }),
        };
        let line = p.to_line();
        assert!(line.ends_with("blocks=36/3 outer=12"), "{line}");
        let back = ProgressLine::parse(&line).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.state_key(), p.state_key());
        // Forward compatibility: unknown trailing key=value tokens are
        // ignored; partial decomposition tokens degrade to None.
        let extended = ProgressLine::parse(&format!("{line} shard=4/8")).unwrap();
        assert_eq!(extended, p);
        let partial = ProgressLine::parse("progress 0 77 10.5 9.25 0.125 12 0 outer=3").unwrap();
        assert_eq!(partial.decomposition, None);
        assert!(ProgressLine::parse("progress 0 77 10.5 9.25 0.125 12 0 blocks=4").is_err());
    }

    #[test]
    fn degraded_lines_round_trip_bit_exact() {
        let d = DegradedLine {
            coverage: 11.0 / 13.0,
            inflation: 1.0 / 7.0,
            failed: 9,
            recovered: 6,
            substituted: 3,
            degraded_statements: 2,
            total_statements: 24,
        };
        let back = DegradedLine::parse(&d.to_line()).unwrap();
        assert_eq!(back.coverage.to_bits(), d.coverage.to_bits());
        assert_eq!(back.inflation.to_bits(), d.inflation.to_bits());
        assert_eq!(back, d);
        assert!(DegradedLine::parse("degraded coverage=0.5").is_err());
    }

    #[test]
    fn busy_errors_carry_a_parsable_retry_after_hint() {
        let e = WireError::new(ErrCode::Busy, "solver pool saturated retry_after_ms=250");
        assert_eq!(e.retry_after(), Some(std::time::Duration::from_millis(250)));
        let plain = WireError::new(ErrCode::Busy, "solver pool saturated");
        assert_eq!(plain.retry_after(), None);
    }

    #[test]
    fn err_codes_round_trip() {
        for c in [
            ErrCode::Busy,
            ErrCode::Quota,
            ErrCode::NoSession,
            ErrCode::BadRequest,
            ErrCode::Backend,
            ErrCode::Internal,
        ] {
            assert_eq!(ErrCode::parse(c.as_str()), Some(c));
        }
        assert_eq!(ErrCode::parse("nope"), None);
    }
}
