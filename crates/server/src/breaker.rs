//! Per-tenant circuit breaker over the what-if backend.
//!
//! A tenant whose backend keeps faulting (transient storms, replay misses)
//! should not grind every request through a doomed INUM preparation: after
//! `threshold` *consecutive* backend failures the breaker **opens** and the
//! tenant's probe-spending verbs (`open`, `add`) are rejected immediately
//! with `err busy … retry_after_ms=<n>` — the client backs off instead of
//! hammering a sick backend.  After `cooldown` the breaker **half-opens**:
//! exactly one trial request is admitted, and its outcome decides — success
//! closes the breaker, another backend fault re-opens it for a fresh
//! cooldown.  Non-backend failures (bad requests, quota exhaustion) never
//! trip it; they say nothing about backend health.
//!
//! The breaker is deliberately per-tenant: one tenant's chaos-injected
//! backend tripping must not reject its neighbours, whose backends are fine.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Observable breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counts consecutive backend failures.
    Closed,
    /// Rejecting everything until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial request in flight decides the outcome.
    HalfOpen,
}

#[derive(Debug)]
enum Inner {
    Closed { consecutive: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// A three-state circuit breaker: trip on repeated backend faults, reject
/// fast while open, half-open on a timer.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Trip after `threshold` consecutive failures; half-open a trial
    /// request after `cooldown`.  A zero threshold disables the breaker.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker { threshold, cooldown, inner: Mutex::new(Inner::Closed { consecutive: 0 }) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current state, transitioning `Open → HalfOpen` if the cooldown has
    /// elapsed (observation is what arms the trial request).
    pub fn state(&self) -> BreakerState {
        let mut g = self.lock();
        if let Inner::Open { since } = *g {
            if since.elapsed() >= self.cooldown {
                *g = Inner::HalfOpen;
            }
        }
        match *g {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Admit or reject a request.  `Err(retry_after)` means the breaker is
    /// open and the caller should come back after the hinted wait.
    pub fn admit(&self) -> Result<(), Duration> {
        if self.threshold == 0 {
            return Ok(());
        }
        let mut g = self.lock();
        match *g {
            Inner::Closed { .. } | Inner::HalfOpen => Ok(()),
            Inner::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.cooldown {
                    *g = Inner::HalfOpen;
                    Ok(())
                } else {
                    Err(self.cooldown - elapsed)
                }
            }
        }
    }

    /// Record a request that reached the backend and succeeded: closes the
    /// breaker and clears the failure streak.
    pub fn record_success(&self) {
        *self.lock() = Inner::Closed { consecutive: 0 };
    }

    /// Record a backend fault.  In `Closed`, extends the streak and trips at
    /// the threshold; in `HalfOpen`, the failed trial re-opens immediately.
    pub fn record_failure(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut g = self.lock();
        match *g {
            Inner::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                *g = if consecutive >= self.threshold {
                    Inner::Open { since: Instant::now() }
                } else {
                    Inner::Closed { consecutive }
                };
            }
            Inner::HalfOpen => *g = Inner::Open { since: Instant::now() },
            Inner::Open { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_rejects_fast_and_half_opens_on_timer() {
        let b = CircuitBreaker::new(3, Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert!(b.admit().is_ok(), "below the threshold the breaker stays closed");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "third consecutive failure trips");
        let retry_after = b.admit().expect_err("open breaker must reject");
        assert!(retry_after <= Duration::from_millis(30), "hint bounded by the cooldown");
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(b.state(), BreakerState::HalfOpen, "cooldown elapsed: trial time");
        assert!(b.admit().is_ok(), "half-open admits the trial request");
    }

    #[test]
    fn half_open_trial_outcome_decides() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.admit().is_ok());
        // Failed trial: straight back to open, fresh cooldown.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit().is_err());
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.admit().is_ok());
        // Successful trial: closed, and the streak is gone.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit().is_ok());
    }

    #[test]
    fn successes_reset_the_streak_and_zero_threshold_disables() {
        let b = CircuitBreaker::new(2, Duration::from_secs(1));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak must reset on success");

        let off = CircuitBreaker::new(0, Duration::from_secs(1));
        for _ in 0..10 {
            off.record_failure();
        }
        assert!(off.admit().is_ok(), "zero threshold disables the breaker");
    }
}
