//! `cophy-serve` — run the advisor daemon, or drive a scripted session
//! against one (the CI smoke client).
//!
//! ```text
//! cophy-serve serve  --addr 127.0.0.1:7171 [--log FILE] [--quota N]
//!                    [--pool N] [--mem-cap BYTES] [--time-limit SECS]
//!                    [--chaos SEED]
//! cophy-serve script --addr 127.0.0.1:7171 [--expect-degraded]
//! ```
//!
//! `serve` blocks forever.  `--chaos SEED` wraps every tenant's backend in
//! a seeded [`FaultPlan::chaos`] fault injector — the CI robustness smoke
//! runs a daemon in this mode to prove `degraded`/`err` replies end to end.
//! `script` runs the canonical round trip — open, streamed tune, pin, warm
//! re-tune, what-if, close — asserting a finite proven gap, and exits
//! non-zero on any protocol or acceptance failure; with `--expect-degraded`
//! it additionally requires the server to have reported degradation.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use cophy_optimizer::FaultPlan;
use cophy_server::{Client, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args),
        Some("script") => script(&args),
        _ => {
            eprintln!("usage: cophy-serve serve|script --addr HOST:PORT [options]");
            ExitCode::FAILURE
        }
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn serve(args: &[String]) -> ExitCode {
    let flag = |name: &str| flag(args, name);
    let addr = flag("--addr").unwrap_or("127.0.0.1:7171").to_string();
    let mut config = ServerConfig::default();
    if let Some(q) = flag("--quota").and_then(|v| v.parse().ok()) {
        config.quota = q;
    }
    if let Some(p) = flag("--pool").and_then(|v| v.parse().ok()) {
        config.solver_slots = p;
    }
    if let Some(m) = flag("--mem-cap").and_then(|v| v.parse().ok()) {
        config.mem_cap_bytes = m;
    }
    if let Some(t) = flag("--time-limit").and_then(|v| v.parse().ok()) {
        config.budget = config.budget.with_time(Duration::from_secs(t));
    }
    if let Some(seed) = flag("--chaos").and_then(|v| v.parse().ok()) {
        config.fault_plan = Some(FaultPlan::chaos(seed));
    }
    let log = flag("--log").map(std::path::PathBuf::from);
    let server = match Server::bind(&addr, config, log) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cophy-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("cophy-serve: listening on {}", server.local_addr());
    server.run(Arc::new(AtomicBool::new(false)));
    ExitCode::SUCCESS
}

fn script(args: &[String]) -> ExitCode {
    let addr = flag(args, "--addr").unwrap_or("127.0.0.1:7171").to_string();
    let expect_degraded = args.iter().any(|a| a == "--expect-degraded");
    match run_script(&addr, expect_degraded) {
        Ok(()) => {
            println!("script: PASS");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("script: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The canonical smoke session; every step's reply is checked.
fn run_script(addr: &str, expect_degraded: bool) -> Result<(), Box<dyn std::error::Error>> {
    let mut c = Client::connect(addr)?;
    let sid = "ci-smoke";
    let spec = "hom:7:24";

    // `retry_busy` honors the server's retry_after_ms hints, so the script
    // survives a saturated pool or a half-open circuit breaker.
    let open = c.retry_busy(5, |c| c.open(sid, spec, 0.5))?;
    println!(
        "open: statements={} candidates={} probes={}",
        open.statements, open.candidates, open.probes
    );
    if open.statements != 24 {
        return Err(format!("expected 24 statements, got {}", open.statements).into());
    }
    if let Some(d) = &open.degraded {
        println!(
            "degraded: coverage={} inflation={} failed={} recovered={} substituted={}",
            d.coverage, d.inflation, d.failed, d.recovered, d.substituted
        );
    }
    if expect_degraded && open.degraded.is_none() {
        return Err("expected a degraded line on open (chaos daemon), got none".into());
    }

    let mut events = 0usize;
    let cold = c.retry_busy(5, |c| c.tune(sid, |_| events += 1))?;
    println!(
        "tune: objective={} bound={} gap={} events={} indexes={}",
        cold.objective,
        cold.bound,
        cold.gap,
        events,
        cold.indexes.len()
    );
    if !cold.gap.is_finite() {
        return Err("cold tune did not prove a finite gap".into());
    }
    if events == 0 {
        return Err("cold tune streamed no progress events".into());
    }
    if cold.indexes.is_empty() {
        return Err("cold tune recommended no indexes".into());
    }

    // Pin the first recommended index; the warm re-tune must keep it.
    let pinned = cold.indexes[0].clone();
    c.pin(sid, &pinned)?;
    let warm = c.tune(sid, |_| {})?;
    println!("warm tune: objective={} gap={}", warm.objective, warm.gap);
    if !warm.gap.is_finite() {
        return Err("warm tune did not prove a finite gap".into());
    }
    if !warm.indexes.contains(&pinned) {
        return Err("warm tune dropped the pinned index".into());
    }

    // What-if the warm recommendation: memo-lookup, must match objective.
    let wi = c.what_if(sid, &warm.indexes)?;
    println!("what_if: cost={} improvement={}", wi.cost, wi.improvement);
    if !(wi.cost.is_finite() && wi.cost > 0.0) {
        return Err("what_if returned a non-finite cost".into());
    }

    let stats = c.stats()?;
    println!(
        "stats: live={} probes={} cache_entries={}",
        stats.live, stats.probes, stats.cache_entries
    );
    c.close(sid)?;
    c.quit()?;
    Ok(())
}
