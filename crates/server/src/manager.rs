//! Concurrent session management: the daemon's state machine.
//!
//! The [`SessionManager`] owns every tuning session the daemon serves and
//! enforces the three resource disciplines of the service:
//!
//! * **Shared INUM caches.**  Workloads are named by canonical specs
//!   (`hom:SEED:N`), and the first `open` of a spec pays CGen + INUM once;
//!   every later session over the same spec shares the [`InumCache`] `Arc`
//!   and a clone of the candidate set — zero further optimizer probes
//!   (`cache=hit`), exactly the in-process
//!   [`cophy::CoPhy::try_session_shared`] pattern lifted behind TCP.
//! * **Admission control.**  Solver work (`tune`, `sweep`) must win a slot
//!   from a bounded [`SolverPool`]; when every slot is busy past the
//!   configured wait, the request is rejected with `err busy` instead of
//!   queueing unboundedly.
//! * **Memory-capped LRU.**  Each session's private solve state is metered
//!   by [`cophy::TuningSession::approx_state_bytes`]; when the sum passes
//!   the cap, the least-recently-touched sessions are demoted to a compact
//!   [`EvictedState`] (spec + candidates + constraints + sticky fixings).
//!   The shared cache `Arc` is *retained*, so a later touch rebuilds the
//!   session with zero probes, and — the solves being deterministic — a
//!   rebuilt session's cold recommendation is bit-identical to the one it
//!   would have given before eviction.
//!
//! Lock order is `manager state → session`, never the reverse, and session
//! mutexes are only held by one request at a time (per-session
//! serialization); solves run with the manager lock *released*, which is
//! what lets eight clients stream eight solves concurrently.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use cophy::{CoPhy, CoPhyOptions, ConstraintSet, TuningSession};
use cophy_bip::{CancelToken, SolveBudget};
use cophy_catalog::{Configuration, Index, Schema, TpchGen};
use cophy_inum::InumCache;
use cophy_optimizer::{
    FaultInjectingBackend, FaultPlan, RetryPolicy, SystemProfile, WhatIfBackend, WhatIfOptimizer,
};
use cophy_workload::{
    drain_to_workload, HetGen, HomGen, UpdateGen, Workload, WorkloadSource, DEFAULT_CHUNK,
};

use crate::breaker::CircuitBreaker;
use crate::protocol::{DegradedLine, ErrCode, ProgressLine, WireError};
use crate::quota::MeteredBackend;

/// Daemon-wide tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cost-model parameterization of the synthetic what-if optimizer.
    pub profile: SystemProfile,
    /// Per-tenant what-if probe quota (`u64::MAX` = unmetered).
    pub quota: u64,
    /// Maximum distinct tenants (a tenant's metered backend is alive for
    /// the daemon's lifetime, so this bounds that footprint).
    pub max_tenants: usize,
    /// Concurrent solver slots (admission control for `tune`/`sweep`).
    pub solver_slots: usize,
    /// How long a request waits for a slot before `err busy`.
    pub solver_wait: Duration,
    /// Cap on the summed private session state before LRU eviction.
    pub mem_cap_bytes: usize,
    /// Solve budget applied to every session solve.
    pub budget: SolveBudget,
    /// Retry/backoff policy for what-if probes during INUM preparation.  The
    /// default retries transient backend faults; against a fault-free
    /// backend the retry path is bit-identical to the plain one and spends
    /// zero extra probes.
    pub retry: RetryPolicy,
    /// Chaos mode: wrap every tenant's backend in a
    /// [`FaultInjectingBackend`] with this plan (`None` = faults off).  The
    /// CI daemon smoke uses it to prove `degraded`/`err` replies end to end.
    pub fault_plan: Option<FaultPlan>,
    /// Consecutive backend faults before a tenant's circuit breaker trips
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
    /// How long a tripped breaker rejects before half-opening one trial.
    pub breaker_cooldown: Duration,
    /// Per-request deadline on solver verbs (`tune`, `sweep`): past it the
    /// watchdog fires the solve's cancel token and the request completes
    /// with its best incumbent (time-limit semantics).
    pub request_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            profile: SystemProfile::A,
            quota: u64::MAX,
            max_tenants: 64,
            solver_slots: 8,
            solver_wait: Duration::from_secs(10),
            mem_cap_bytes: 64 << 20,
            budget: SolveBudget::within(0.05).with_time(Duration::from_secs(60)),
            retry: RetryPolicy::default(),
            fault_plan: None,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(500),
            request_deadline: Duration::from_secs(300),
        }
    }
}

/// A counting semaphore over solver slots (std-only: Mutex + Condvar).
#[derive(Debug)]
pub struct SolverPool {
    free: Mutex<usize>,
    cv: Condvar,
    wait: Duration,
}

impl SolverPool {
    fn new(slots: usize, wait: Duration) -> SolverPool {
        SolverPool { free: Mutex::new(slots.max(1)), cv: Condvar::new(), wait }
    }

    /// Wait up to the configured bound for a slot; `err busy` past it, with
    /// a `retry_after_ms` hint the client backoff honors.
    fn acquire(&self) -> Result<PoolGuard<'_>, WireError> {
        let saturated = || busy_with_hint("solver pool saturated", self.wait);
        let mut free = lock(&self.free);
        let deadline = std::time::Instant::now() + self.wait;
        while *free == 0 {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(saturated());
            }
            let (g, timeout) = self.cv.wait_timeout(free, left).unwrap_or_else(|e| {
                let (g, t) = e.into_inner();
                (g, t)
            });
            free = g;
            if timeout.timed_out() && *free == 0 {
                return Err(saturated());
            }
        }
        *free -= 1;
        Ok(PoolGuard(self))
    }
}

struct PoolGuard<'a>(&'a SolverPool);

impl Drop for PoolGuard<'_> {
    fn drop(&mut self) {
        *lock(&self.0.free) += 1;
        self.0.cv.notify_one();
    }
}

/// Poison-tolerant locking: a panicked request must not brick the daemon.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An `err busy` with the backoff hint clients parse
/// ([`WireError::retry_after`]).
fn busy_with_hint(msg: &str, wait: Duration) -> WireError {
    WireError::new(ErrCode::Busy, format!("{msg} retry_after_ms={}", wait.as_millis().max(1)))
}

/// One tenant: a leaked quota-metered backend plus the advisor over it and
/// the tenant's circuit breaker.  Leaking keeps
/// `TuningSession<'static, 'static>` storable in the daemon's maps; the
/// footprint is bounded by [`ServerConfig::max_tenants`].
#[derive(Clone, Copy)]
struct Tenant {
    backend: &'static MeteredBackend,
    cophy: &'static CoPhy<'static>,
    breaker: &'static CircuitBreaker,
}

/// The prepared artifacts of one workload spec, shared by all its sessions.
struct CacheEntry {
    cache: Arc<InumCache>,
    candidates: cophy::CandidateSet,
}

/// A live session plus its LRU/footprint bookkeeping (readable without
/// taking the session's own mutex, which a long solve may hold).
struct SessionMeta {
    session: Arc<Mutex<TuningSession<'static, 'static>>>,
    spec: String,
    last_touch: AtomicU64,
    state_bytes: AtomicUsize,
}

/// The compact demoted form of a session: everything needed to rebuild it
/// over the retained shared cache with zero optimizer probes.
struct EvictedState {
    spec: String,
    candidates: cophy::CandidateSet,
    constraints: ConstraintSet,
    fixings: Vec<(Index, bool)>,
}

#[derive(Default)]
struct ManagerState {
    tenants: HashMap<String, Tenant>,
    caches: HashMap<String, CacheEntry>,
    /// Specs whose first session is preparing right now: concurrent opens
    /// of the same spec wait for the build instead of duplicating the INUM
    /// probes (cold-stampede guard; see [`SessionManager::open`]).
    building: std::collections::HashSet<String>,
    live: HashMap<String, Arc<SessionMeta>>,
    evicted: HashMap<String, EvictedState>,
}

/// Server-wide counters surfaced by the `stats` verb.
#[derive(Debug, Default)]
pub struct Counters {
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub evictions: AtomicU64,
    pub rebuilds: AtomicU64,
    pub tunes: AtomicU64,
}

/// Reply payload of `open`/`add`.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenReply {
    pub sid: String,
    pub statements: usize,
    pub candidates: usize,
    pub cache_hit: bool,
    pub probes: u64,
    /// Present when the opening INUM preparation lost probes to exhausted
    /// retries (streamed as a `degraded` line before `ok open`).
    pub degraded: Option<DegradedLine>,
}

/// Reply payload of `tune`.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReply {
    pub objective: f64,
    pub bound: f64,
    pub gap: f64,
    pub baseline: f64,
    pub what_if_calls: u64,
    pub indexes: Vec<Index>,
    /// Present when the session's preparation was degraded (streamed as a
    /// `degraded` line before `rec`).
    pub degraded: Option<DegradedLine>,
}

/// Reply payload of one `sweep` point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReply {
    pub budget_bytes: u64,
    pub objective: f64,
    pub bound: f64,
    pub gap: f64,
    pub indexes: Vec<Index>,
}

/// Reply payload of `what_if`.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfReply {
    pub cost: f64,
    pub baseline: f64,
    pub improvement: f64,
    pub size_bytes: u64,
    pub violation: Option<String>,
}

/// Reply payload of `stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    pub live: usize,
    pub evicted: usize,
    pub cache_entries: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub evictions: u64,
    pub rebuilds: u64,
    pub probes: u64,
    pub state_bytes: usize,
}

/// The daemon's state machine; all methods are `&self` and thread-safe.
pub struct SessionManager {
    config: ServerConfig,
    schema: Schema,
    state: Mutex<ManagerState>,
    /// Signals completion of an in-flight cold-spec build (`building`).
    build_cv: Condvar,
    pool: SolverPool,
    clock: AtomicU64,
    pub counters: Counters,
}

/// Parse a canonical workload spec `(hom|het|upd):SEED:N` into a
/// **streaming** source: statements are generated on demand, chunk by
/// chunk, so ingestion never materializes the workload (`add` routes every
/// chunk through [`cophy::TuningSession::try_add_source`]).
pub fn parse_spec_source<'a>(
    spec: &str,
    schema: &'a Schema,
) -> Result<Box<dyn WorkloadSource + 'a>, WireError> {
    let bad = |m: String| WireError::new(ErrCode::BadRequest, m);
    let parts: Vec<&str> = spec.split(':').collect();
    let [kind, seed, n] = parts[..] else {
        return Err(bad(format!("bad workload spec {spec:?} (want kind:seed:n)")));
    };
    let seed: u64 = seed.parse().map_err(|e| bad(format!("bad seed in {spec:?}: {e}")))?;
    let n: usize = n.parse().map_err(|e| bad(format!("bad size in {spec:?}: {e}")))?;
    if n == 0 || n > 10_000 {
        return Err(bad(format!("workload size {n} out of range 1..=10000")));
    }
    Ok(match kind {
        "hom" => Box::new(HomGen::new(seed).stream(schema, n)),
        "het" => Box::new(HetGen::new(seed).stream(schema, n)),
        "upd" => Box::new(UpdateGen::new(seed).stream(schema, n)),
        other => return Err(bad(format!("unknown workload kind {other:?}"))),
    })
}

/// Parse a canonical workload spec `(hom|het|upd):SEED:N` into a
/// materialized [`Workload`] (the cold-`open` path, which hands the whole
/// workload to CGen + INUM at once).  Bit-identical to draining
/// [`parse_spec_source`]: the batch generators are defined as drains of
/// their streams.
pub fn parse_spec(spec: &str, schema: &Schema) -> Result<Workload, WireError> {
    Ok(drain_to_workload(&mut *parse_spec_source(spec, schema)?))
}

/// Map a session-layer error string onto the protocol's typed codes.  The
/// quota and replay paths produce stable [`cophy_optimizer::BackendError`]
/// Display strings (their variants are the *typed* source of truth; by the
/// time the error has flowed through `try_add_statements` it is a String,
/// so the daemon keys on those stable phrases).
fn classify(message: String) -> WireError {
    let code = if message.contains("quota exceeded") {
        ErrCode::Quota
    } else if message.contains("unrecorded")
        || message.contains("transient what-if failure")
        || message.contains("timed out")
        || message.contains("coverage")
    {
        ErrCode::Backend
    } else {
        ErrCode::BadRequest
    };
    WireError::new(code, message)
}

impl SessionManager {
    pub fn new(config: ServerConfig) -> Arc<SessionManager> {
        let schema = TpchGen::default().schema();
        Arc::new(SessionManager {
            pool: SolverPool::new(config.solver_slots, config.solver_wait),
            config,
            schema,
            state: Mutex::new(ManagerState::default()),
            build_cv: Condvar::new(),
            clock: AtomicU64::new(1),
            counters: Counters::default(),
        })
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn tenant(&self, st: &mut ManagerState, sid: &str) -> Result<Tenant, WireError> {
        if let Some(t) = st.tenants.get(sid) {
            return Ok(*t);
        }
        if st.tenants.len() >= self.config.max_tenants {
            return Err(WireError::new(
                ErrCode::Busy,
                format!("tenant limit {} reached", self.config.max_tenants),
            ));
        }
        let live = WhatIfOptimizer::new(self.schema.clone(), self.config.profile);
        // Chaos mode: the fault layer sits *inside* the meter, so injected
        // faults never consume quota (they perform no real probe).
        let inner: Box<dyn WhatIfBackend> = match &self.config.fault_plan {
            Some(plan) => Box::new(FaultInjectingBackend::new(Box::new(live), plan.clone())),
            None => Box::new(live),
        };
        let backend: &'static MeteredBackend =
            Box::leak(Box::new(MeteredBackend::new(inner, self.config.quota)));
        let options = CoPhyOptions {
            budget: self.config.budget,
            retry: self.config.retry.clone(),
            ..Default::default()
        };
        let cophy: &'static CoPhy<'static> = Box::leak(Box::new(CoPhy::new(backend, options)));
        let breaker: &'static CircuitBreaker = Box::leak(Box::new(CircuitBreaker::new(
            self.config.breaker_threshold,
            self.config.breaker_cooldown,
        )));
        let t = Tenant { backend, cophy, breaker };
        st.tenants.insert(sid.to_string(), t);
        Ok(t)
    }

    /// `open`: build or share the spec's prepared cache, register the
    /// session, and report how it was satisfied.
    pub fn open(&self, sid: &str, spec: &str, budget: f64) -> Result<OpenReply, WireError> {
        let constraints = if budget < 1.0 {
            ConstraintSet::storage_fraction(&self.schema, budget)
        } else {
            ConstraintSet::none().with(cophy::Constraint::Storage { budget_bytes: budget as u64 })
        };

        let mut st = lock(&self.state);
        if st.live.contains_key(sid) || st.evicted.contains_key(sid) {
            return Err(WireError::new(ErrCode::BadRequest, format!("session {sid} exists")));
        }
        let tenant = self.tenant(&mut st, sid)?;
        // Cold-stampede guard: if another open is preparing this spec right
        // now, wait for its build instead of probing the optimizer twice.
        while st.building.contains(spec) {
            st = self.build_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if !st.caches.contains_key(spec) {
            // Cold spec: pay CGen + INUM once, with the manager lock
            // *released* (preparation probes the optimizer many times).
            // Probe-spending work is what the tenant's breaker guards.
            if let Err(wait) = tenant.breaker.admit() {
                return Err(busy_with_hint("backend circuit open", wait));
            }
            st.building.insert(spec.to_string());
            drop(st);
            let before = tenant.backend.spent();
            let built = parse_spec(spec, &self.schema)
                .and_then(|w| tenant.cophy.try_session(&w, constraints.clone()).map_err(classify));
            let mut st = lock(&self.state);
            st.building.remove(spec);
            self.build_cv.notify_all();
            let session = match built {
                Ok(s) => {
                    tenant.breaker.record_success();
                    s
                }
                Err(e) => {
                    if e.code == ErrCode::Backend {
                        tenant.breaker.record_failure();
                    }
                    return Err(e);
                }
            };
            let probes = tenant.backend.spent() - before;
            st.caches.entry(spec.to_string()).or_insert_with(|| CacheEntry {
                cache: session.cache(),
                candidates: session.candidates().clone(),
            });
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            let reply = OpenReply {
                sid: sid.to_string(),
                statements: session.n_statements(),
                candidates: session.candidates().len(),
                cache_hit: false,
                probes,
                degraded: session.degradation().map(DegradedLine::from_report),
            };
            self.install(&mut st, sid, spec, session);
            drop(st);
            self.enforce_cap(sid);
            return Ok(reply);
        }
        let entry = &st.caches[spec];
        let (cache, candidates) = (entry.cache.clone(), entry.candidates.clone());
        let session =
            tenant.cophy.try_session_shared(cache, candidates, constraints).map_err(classify)?;
        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        let reply = OpenReply {
            sid: sid.to_string(),
            statements: session.n_statements(),
            candidates: session.candidates().len(),
            cache_hit: true,
            probes: 0,
            degraded: None,
        };
        self.install(&mut st, sid, spec, session);
        drop(st);
        self.enforce_cap(sid);
        Ok(reply)
    }

    fn install(
        &self,
        st: &mut ManagerState,
        sid: &str,
        spec: &str,
        session: TuningSession<'static, 'static>,
    ) {
        let bytes = session.approx_state_bytes();
        st.live.insert(
            sid.to_string(),
            Arc::new(SessionMeta {
                session: Arc::new(Mutex::new(session)),
                spec: spec.to_string(),
                last_touch: AtomicU64::new(self.now()),
                state_bytes: AtomicUsize::new(bytes),
            }),
        );
    }

    /// Look up a session, transparently rebuilding it from its evicted form
    /// (shared cache + retained candidates/constraints/fixings, zero
    /// optimizer probes).
    fn resolve(&self, sid: &str) -> Result<Arc<SessionMeta>, WireError> {
        let mut st = lock(&self.state);
        if let Some(meta) = st.live.get(sid) {
            meta.last_touch.store(self.now(), Ordering::Relaxed);
            return Ok(meta.clone());
        }
        let Some(ev) = st.evicted.remove(sid) else {
            return Err(WireError::new(ErrCode::NoSession, format!("no session {sid}")));
        };
        // Both invariants hold by construction (close/drop remove all three
        // maps together), but a daemon must answer `err`, not die, if one is
        // ever violated.
        let Some(tenant) = st.tenants.get(sid).copied() else {
            return Err(WireError::new(
                ErrCode::Internal,
                format!("evicted session {sid} lost its tenant"),
            ));
        };
        let Some(cache) = st.caches.get(&ev.spec) else {
            return Err(WireError::new(
                ErrCode::Internal,
                format!("evicted session {sid} lost its cache entry for {}", ev.spec),
            ));
        };
        let mut session = tenant
            .cophy
            .try_session_shared(cache.cache.clone(), ev.candidates, ev.constraints)
            .map_err(classify)?;
        for (ix, pinned) in &ev.fixings {
            if *pinned {
                session.pin_index(ix);
            } else {
                session.ban_index(ix);
            }
        }
        self.counters.rebuilds.fetch_add(1, Ordering::Relaxed);
        self.install(&mut st, sid, &ev.spec, session);
        Ok(st.live[sid].clone())
    }

    /// Run `f` under the session's mutex, then refresh its LRU/footprint
    /// bookkeeping and enforce the memory cap.
    fn with_session<R>(
        &self,
        sid: &str,
        f: impl FnOnce(&mut TuningSession<'static, 'static>) -> Result<R, WireError>,
    ) -> Result<R, WireError> {
        let meta = self.resolve(sid)?;
        let out = {
            let mut session = lock(&meta.session);
            let out = f(&mut session)?;
            meta.state_bytes.store(session.approx_state_bytes(), Ordering::Relaxed);
            out
        };
        meta.last_touch.store(self.now(), Ordering::Relaxed);
        self.enforce_cap(sid);
        Ok(out)
    }

    /// `add`: absorb more statements via the chunked streaming-ingestion
    /// path — the spec's generator feeds the session chunk by chunk, so the
    /// delta is never materialized (quota-charged; chunk-granular rollback
    /// on failure keeps the shared cache consistent, with fully-ingested
    /// chunks committed).
    pub fn add(&self, sid: &str, spec: &str) -> Result<OpenReply, WireError> {
        let mut source = parse_spec_source(spec, &self.schema)?;
        let tenant = *lock(&self.state)
            .tenants
            .get(sid)
            .ok_or_else(|| WireError::new(ErrCode::NoSession, format!("no session {sid}")))?;
        if let Err(wait) = tenant.breaker.admit() {
            return Err(busy_with_hint("backend circuit open", wait));
        }
        let out = self.with_session(sid, |session| {
            let before = tenant.backend.spent();
            session.try_add_source(source.as_mut(), DEFAULT_CHUNK).map_err(classify)?;
            Ok(OpenReply {
                sid: sid.to_string(),
                statements: session.n_statements(),
                candidates: session.candidates().len(),
                cache_hit: false,
                probes: tenant.backend.spent() - before,
                degraded: None,
            })
        });
        match &out {
            Ok(_) => tenant.breaker.record_success(),
            Err(e) if e.code == ErrCode::Backend => tenant.breaker.record_failure(),
            Err(_) => {}
        }
        out
    }

    /// `tune`: a solver-pool slot, cooperative cancellation, and the anytime
    /// event stream surfaced through `on_progress`.
    pub fn tune(
        &self,
        sid: &str,
        cancel: Option<CancelToken>,
        mut on_progress: impl FnMut(ProgressLine),
    ) -> Result<TuneReply, WireError> {
        self.counters.tunes.fetch_add(1, Ordering::Relaxed);
        self.with_session(sid, |session| {
            let _slot = self.pool.acquire()?;
            session.set_cancel(cancel);
            let rec =
                session.recommend_with_progress(|p| on_progress(ProgressLine::from_event(0, p)));
            session.set_cancel(None);
            Ok(TuneReply {
                objective: rec.objective,
                bound: rec.bound,
                gap: rec.gap,
                baseline: rec.baseline_cost,
                what_if_calls: rec.stats.what_if_calls,
                indexes: sorted_indexes(&rec.configuration),
                degraded: rec.degradation.as_ref().map(DegradedLine::from_report),
            })
        })
    }

    /// `sweep`: the warm budget-sweep chain, one slot for the whole chain.
    pub fn sweep(
        &self,
        sid: &str,
        budgets: &[u64],
        cancel: Option<CancelToken>,
        mut on_progress: impl FnMut(ProgressLine),
    ) -> Result<Vec<PointReply>, WireError> {
        self.with_session(sid, |session| {
            let _slot = self.pool.acquire()?;
            session.set_cancel(cancel);
            let points = session.try_sweep_storage_with_progress(budgets, |i, p| {
                on_progress(ProgressLine::from_event(i, p))
            });
            session.set_cancel(None);
            Ok(points
                .map_err(classify)?
                .iter()
                .map(|pt| PointReply {
                    budget_bytes: pt.budget_bytes,
                    objective: pt.objective,
                    bound: pt.bound,
                    gap: pt.gap,
                    indexes: sorted_indexes(&pt.configuration),
                })
                .collect())
        })
    }

    pub fn pin(&self, sid: &str, ix: &Index) -> Result<(), WireError> {
        self.with_session(sid, |s| {
            s.pin_index(ix);
            Ok(())
        })
    }

    pub fn ban(&self, sid: &str, ix: &Index) -> Result<(), WireError> {
        self.with_session(sid, |s| {
            s.ban_index(ix);
            Ok(())
        })
    }

    pub fn unfix(&self, sid: &str, ix: &Index) -> Result<(), WireError> {
        self.with_session(sid, |s| {
            s.unfix_index(ix);
            Ok(())
        })
    }

    /// `what_if`: memo-lookup costing of an explicit configuration — no
    /// probes, no solver slot.
    pub fn what_if(&self, sid: &str, indexes: &[Index]) -> Result<WhatIfReply, WireError> {
        let cfg = Configuration::from_indexes(indexes.iter().cloned());
        self.with_session(sid, |s| {
            let a = s.what_if(&cfg);
            Ok(WhatIfReply {
                cost: a.cost,
                baseline: a.baseline_cost,
                improvement: a.improvement(),
                size_bytes: a.size_bytes,
                violation: a.constraint_violation.clone(),
            })
        })
    }

    pub fn export_mps(&self, sid: &str) -> Result<String, WireError> {
        self.with_session(sid, |s| Ok(s.export_mps()))
    }

    /// `evict`: demote now (the deterministic handle on the LRU machinery).
    pub fn evict(&self, sid: &str) -> Result<usize, WireError> {
        let meta = {
            let mut st = lock(&self.state);
            st.live.remove(sid).ok_or_else(|| {
                WireError::new(ErrCode::NoSession, format!("no live session {sid}"))
            })?
        };
        Ok(self.demote(sid, meta))
    }

    /// Demote one removed-from-live session to its evicted form; returns the
    /// private bytes released.  Called with the manager lock *not* held —
    /// extracting the fixings must wait for any in-flight request on the
    /// session to finish.
    fn demote(&self, sid: &str, meta: Arc<SessionMeta>) -> usize {
        let (constraints, fixings, candidates) = {
            let session = lock(&meta.session);
            (
                session.constraints().clone(),
                session.fixings().to_vec(),
                session.candidates().clone(),
            )
        };
        let bytes = meta.state_bytes.load(Ordering::Relaxed);
        let ev = EvictedState { spec: meta.spec.clone(), candidates, constraints, fixings };
        lock(&self.state).evicted.insert(sid.to_string(), ev);
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        bytes
    }

    /// LRU-evict cold sessions (never `current`) until the summed private
    /// state fits the cap.
    fn enforce_cap(&self, current: &str) {
        loop {
            let victim = {
                let st = lock(&self.state);
                let total: usize =
                    st.live.values().map(|m| m.state_bytes.load(Ordering::Relaxed)).sum();
                if total <= self.config.mem_cap_bytes || st.live.len() <= 1 {
                    return;
                }
                let Some(sid) = st
                    .live
                    .iter()
                    .filter(|(sid, _)| sid.as_str() != current)
                    .min_by_key(|(_, m)| m.last_touch.load(Ordering::Relaxed))
                    .map(|(sid, _)| sid.clone())
                else {
                    return;
                };
                sid
            };
            let Some(meta) = lock(&self.state).live.remove(&victim) else { continue };
            self.demote(&victim, meta);
        }
    }

    /// `close`: drop the session's live and evicted state (the tenant's
    /// quota ledger survives on purpose).
    pub fn close(&self, sid: &str) -> Result<(), WireError> {
        let mut st = lock(&self.state);
        let had = st.live.remove(sid).is_some() | st.evicted.remove(sid).is_some();
        if had {
            Ok(())
        } else {
            Err(WireError::new(ErrCode::NoSession, format!("no session {sid}")))
        }
    }

    /// Drop a session whose request handler panicked (its state may be
    /// arbitrarily torn); the client sees `err internal`.
    pub fn drop_session(&self, sid: &str) {
        let mut st = lock(&self.state);
        st.live.remove(sid);
        st.evicted.remove(sid);
    }

    pub fn stats(&self) -> StatsReply {
        let st = lock(&self.state);
        StatsReply {
            live: st.live.len(),
            evicted: st.evicted.len(),
            cache_entries: st.caches.len(),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            rebuilds: self.counters.rebuilds.load(Ordering::Relaxed),
            probes: st.tenants.values().map(|t| t.backend.spent()).sum(),
            state_bytes: st.live.values().map(|m| m.state_bytes.load(Ordering::Relaxed)).sum(),
        }
    }
}

/// Deterministic wire order for a configuration's indexes (by their wire
/// encoding — `Index` itself is not `Ord`).
fn sorted_indexes(cfg: &Configuration) -> Vec<Index> {
    let mut out: Vec<Index> = cfg.iter().cloned().collect();
    out.sort_by_cached_key(cophy_optimizer::trace::fmt_index);
    out
}
