//! The TCP face of the daemon: `std::net` + OS threads, no async runtime.
//!
//! One thread per connection reads line-delimited requests and answers
//! through a shared, mutex-guarded writer.  Long-running solves stream
//! their anytime events through that writer as they happen, and a
//! **heartbeat watchdog** thread writes `hb` ticks while a solve is in
//! flight: the moment a write fails (client gone), the watchdog fires the
//! solve's [`CancelToken`], which the solver observes between iterations
//! and stops with time-limit semantics — cooperative cancellation wired
//! through the solve budget's deadline, no thread killing.
//!
//! Every request is wrapped in `catch_unwind`: a panicking handler drops
//! the (possibly torn) session, answers `err internal`, and the daemon
//! keeps serving every other connection.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use cophy_bip::CancelToken;

use crate::manager::{ServerConfig, SessionManager};
use crate::protocol::{ErrCode, Request, WireError};

/// How often the watchdog proves connection liveness during a solve.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(50);

/// A bound listener plus the manager it serves.
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    log: Option<Arc<Mutex<std::fs::File>>>,
}

/// Handle to a spawned server: address, stop switch, join.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<thread::JoinHandle<()>>,
    manager: Arc<SessionManager>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Stop accepting and join the accept loop (live connections finish
    /// their current request and then see closed sockets).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// Write one protocol line; `false` means the client is gone.
fn send(w: &SharedWriter, line: &str) -> bool {
    let mut w = lock(w);
    w.write_all(line.as_bytes()).and_then(|()| w.write_all(b"\n")).and_then(|()| w.flush()).is_ok()
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(
        addr: &str,
        config: ServerConfig,
        log_path: Option<PathBuf>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let log = match log_path {
            Some(p) => Some(Arc::new(Mutex::new(
                std::fs::OpenOptions::new().create(true).append(true).open(p)?,
            ))),
            None => None,
        };
        Ok(Server { listener, manager: SessionManager::new(config), log })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    fn log(&self, line: &str) {
        if let Some(f) = &self.log {
            let mut f = lock(f);
            let _ = writeln!(f, "{line}");
        }
    }

    /// Accept loop on the calling thread until `stop` flips.
    pub fn run(self, stop: Arc<AtomicBool>) {
        let me = Arc::new(self);
        for conn in me.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let me = me.clone();
            thread::spawn(move || me.serve_connection(stream));
        }
    }

    /// Spawn the accept loop on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let manager = self.manager.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let join = thread::spawn(move || self.run(flag));
        ServerHandle { addr, stop, join: Some(join), manager }
    }

    fn serve_connection(&self, stream: TcpStream) {
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        let Ok(read_half) = stream.try_clone() else { return };
        let writer: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream)));
        let mut reader = BufReader::new(read_half);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            self.log(&format!("{peer} <- {trimmed}"));
            let req = match Request::parse(trimmed) {
                Ok(req) => req,
                Err(e) => {
                    self.log(&format!("{peer} -> {e}"));
                    if !send(&writer, &e.to_string()) {
                        return;
                    }
                    continue;
                }
            };
            if req == Request::Quit {
                let _ = send(&writer, "ok bye");
                return;
            }
            let sid = request_sid(&req).map(str::to_string);
            let outcome =
                std::panic::catch_unwind(AssertUnwindSafe(|| self.dispatch(&req, &writer)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    self.log(&format!("{peer} -> {e}"));
                    if !send(&writer, &e.to_string()) {
                        return;
                    }
                }
                Err(_) => {
                    // The handler panicked: the session state may be torn —
                    // drop it so no later request sees it half-mutated.
                    if let Some(sid) = &sid {
                        self.manager.drop_session(sid);
                    }
                    let e = WireError::new(
                        ErrCode::Internal,
                        "request handler panicked; session dropped",
                    );
                    self.log(&format!("{peer} -> {e}"));
                    if !send(&writer, &e.to_string()) {
                        return;
                    }
                }
            }
        }
    }

    /// Handle one request, writing its reply lines; `Err` becomes one `err`
    /// line upstream.
    fn dispatch(&self, req: &Request, writer: &SharedWriter) -> Result<(), WireError> {
        let gone = || WireError::new(ErrCode::Internal, "client disconnected");
        let m = &self.manager;
        match req {
            Request::Open { sid, spec, budget } => {
                let r = m.open(sid, spec, *budget)?;
                let hit = if r.cache_hit { "hit" } else { "miss" };
                let mut ok = true;
                if let Some(d) = &r.degraded {
                    ok = send(writer, &d.to_line());
                }
                let line = format!(
                    "ok open {} statements={} candidates={} cache={} probes={}",
                    r.sid, r.statements, r.candidates, hit, r.probes
                );
                (ok && send(writer, &line)).then_some(()).ok_or_else(gone)
            }
            Request::Add { sid, spec } => {
                let r = m.add(sid, spec)?;
                let line = format!(
                    "ok add {} statements={} candidates={} probes={}",
                    r.sid, r.statements, r.candidates, r.probes
                );
                send(writer, &line).then_some(()).ok_or_else(gone)
            }
            Request::Tune { sid } => {
                let (cancel, watchdog) = Watchdog::arm(writer.clone(), m.config().request_deadline);
                let r = m.tune(sid, Some(cancel), |p| {
                    let _ = send(writer, &p.to_line());
                });
                watchdog.disarm();
                let r = r?;
                let mut ok = true;
                if let Some(d) = &r.degraded {
                    ok = send(writer, &d.to_line());
                }
                ok = ok
                    && send(
                        writer,
                        &format!(
                            "rec objective={} bound={} gap={} baseline={} calls={}",
                            r.objective, r.bound, r.gap, r.baseline, r.what_if_calls
                        ),
                    );
                for ix in &r.indexes {
                    ok = ok
                        && send(
                            writer,
                            &format!("index {}", cophy_optimizer::trace::fmt_index(ix)),
                        );
                }
                (ok && send(writer, "done")).then_some(()).ok_or_else(gone)
            }
            Request::Sweep { sid, budgets } => {
                let (cancel, watchdog) = Watchdog::arm(writer.clone(), m.config().request_deadline);
                let r = m.sweep(sid, budgets, Some(cancel), |p| {
                    let _ = send(writer, &p.to_line());
                });
                watchdog.disarm();
                let mut ok = true;
                for pt in r? {
                    ok = ok
                        && send(
                            writer,
                            &format!(
                                "point budget={} objective={} bound={} gap={}",
                                pt.budget_bytes, pt.objective, pt.bound, pt.gap
                            ),
                        );
                    for ix in &pt.indexes {
                        ok = ok
                            && send(
                                writer,
                                &format!("index {}", cophy_optimizer::trace::fmt_index(ix)),
                            );
                    }
                }
                (ok && send(writer, "done")).then_some(()).ok_or_else(gone)
            }
            Request::Pin { sid, index } => {
                m.pin(sid, index)?;
                send(writer, &format!("ok pin {sid}")).then_some(()).ok_or_else(gone)
            }
            Request::Ban { sid, index } => {
                m.ban(sid, index)?;
                send(writer, &format!("ok ban {sid}")).then_some(()).ok_or_else(gone)
            }
            Request::Unfix { sid, index } => {
                m.unfix(sid, index)?;
                send(writer, &format!("ok unfix {sid}")).then_some(()).ok_or_else(gone)
            }
            Request::WhatIf { sid, indexes } => {
                let r = m.what_if(sid, indexes)?;
                let violation =
                    r.violation.as_deref().map_or_else(|| "-".to_string(), |v| v.replace(' ', "_"));
                let line = format!(
                    "ok what_if cost={} baseline={} improvement={} size={} violation={}",
                    r.cost, r.baseline, r.improvement, r.size_bytes, violation
                );
                send(writer, &line).then_some(()).ok_or_else(gone)
            }
            Request::ExportMps { sid } => {
                let mps = m.export_mps(sid)?;
                let lines: Vec<&str> = mps.lines().collect();
                let mut ok = send(writer, &format!("mps {}", lines.len()));
                for l in lines {
                    ok = ok && send(writer, l);
                }
                (ok && send(writer, "done")).then_some(()).ok_or_else(gone)
            }
            Request::Evict { sid } => {
                let bytes = m.evict(sid)?;
                send(writer, &format!("ok evict {sid} bytes={bytes}"))
                    .then_some(())
                    .ok_or_else(gone)
            }
            Request::Close { sid } => {
                m.close(sid)?;
                send(writer, &format!("ok close {sid}")).then_some(()).ok_or_else(gone)
            }
            Request::Stats => {
                let s = m.stats();
                let line = format!(
                    "ok stats live={} evicted={} cache_entries={} cache_hits={} \
                     cache_misses={} evictions={} rebuilds={} probes={} state_bytes={}",
                    s.live,
                    s.evicted,
                    s.cache_entries,
                    s.cache_hits,
                    s.cache_misses,
                    s.evictions,
                    s.rebuilds,
                    s.probes,
                    s.state_bytes
                );
                send(writer, &line).then_some(()).ok_or_else(gone)
            }
            Request::Quit => Ok(()),
        }
    }
}

/// The per-solve liveness prober: writes `hb` ticks while armed, fires the
/// solve's [`CancelToken`] the moment a tick cannot be delivered (client
/// gone), and again when the per-request deadline passes — the solve then
/// completes with its best incumbent under time-limit semantics instead of
/// holding a connection and a solver slot indefinitely.
struct Watchdog {
    done: Arc<AtomicBool>,
    join: thread::JoinHandle<()>,
}

impl Watchdog {
    fn arm(writer: SharedWriter, deadline: Duration) -> (CancelToken, Watchdog) {
        let token = CancelToken::new();
        let done = Arc::new(AtomicBool::new(false));
        let (t, d) = (token.clone(), done.clone());
        let join = thread::spawn(move || {
            let started = std::time::Instant::now();
            while !d.load(Ordering::SeqCst) {
                if !send(&writer, "hb") || started.elapsed() >= deadline {
                    t.cancel();
                    return;
                }
                thread::park_timeout(HEARTBEAT_EVERY);
            }
        });
        (token, Watchdog { done, join })
    }

    fn disarm(self) {
        self.done.store(true, Ordering::SeqCst);
        self.join.thread().unpark();
        let _ = self.join.join();
    }
}

fn request_sid(req: &Request) -> Option<&str> {
    match req {
        Request::Open { sid, .. }
        | Request::Add { sid, .. }
        | Request::Tune { sid }
        | Request::Sweep { sid, .. }
        | Request::Pin { sid, .. }
        | Request::Ban { sid, .. }
        | Request::Unfix { sid, .. }
        | Request::WhatIf { sid, .. }
        | Request::ExportMps { sid }
        | Request::Evict { sid }
        | Request::Close { sid } => Some(sid),
        Request::Stats | Request::Quit => None,
    }
}
