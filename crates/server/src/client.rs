//! Blocking client for the advisor protocol.
//!
//! A thin typed veneer over one TCP connection: every method writes one
//! request line and parses the reply frames back into the same structs the
//! server side produces, so round-tripped floats compare bit-for-bit.
//! Heartbeat (`hb`) ticks are consumed transparently.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cophy_catalog::Index;
use cophy_optimizer::trace::{fmt_index, parse_index};

use crate::manager::{OpenReply, PointReply, StatsReply, TuneReply, WhatIfReply};
use crate::protocol::{
    field, field_f64, field_u64, DegradedLine, ErrCode, ProgressLine, Request, WireError,
};

/// Client-side failure: transport, a server `err` reply, or a reply the
/// client could not parse.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server answered `err <code> <message>`.
    Server(WireError),
    /// The reply violated the protocol grammar.
    Parse(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Parse(e) => write!(f, "bad reply: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> ClientError {
    ClientError::Parse(WireError::new(ErrCode::BadRequest, msg))
}

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(read_half), writer: BufWriter::new(stream) })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.writer.write_all(req.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Next protocol line, heartbeats skipped; `err` lines become errors.
    fn next_line(&mut self) -> Result<String, ClientError> {
        loop {
            let line = self.raw_line()?;
            if line == "hb" {
                continue;
            }
            if let Some(rest) = line.strip_prefix("err ") {
                let (code, msg) = rest.split_once(' ').unwrap_or((rest, ""));
                let code = ErrCode::parse(code)
                    .ok_or_else(|| parse_err(format!("unknown err code in {line:?}")))?;
                return Err(ClientError::Server(WireError::new(code, msg)));
            }
            return Ok(line);
        }
    }

    fn raw_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line.trim_end().to_string())
    }

    pub fn open(&mut self, sid: &str, spec: &str, budget: f64) -> Result<OpenReply, ClientError> {
        self.send(&Request::Open { sid: sid.into(), spec: spec.into(), budget })?;
        let mut degraded = None;
        let line = loop {
            let line = self.next_line()?;
            if line.starts_with("degraded ") {
                degraded = Some(DegradedLine::parse(&line).map_err(ClientError::Parse)?);
            } else {
                break line;
            }
        };
        if !line.starts_with("ok open ") {
            return Err(parse_err(format!("expected ok open, got {line:?}")));
        }
        Ok(OpenReply {
            sid: sid.to_string(),
            statements: field_u64(&line, "statements").map_err(ClientError::Parse)? as usize,
            candidates: field_u64(&line, "candidates").map_err(ClientError::Parse)? as usize,
            cache_hit: field(&line, "cache").map_err(ClientError::Parse)? == "hit",
            probes: field_u64(&line, "probes").map_err(ClientError::Parse)?,
            degraded,
        })
    }

    pub fn add(&mut self, sid: &str, spec: &str) -> Result<OpenReply, ClientError> {
        self.send(&Request::Add { sid: sid.into(), spec: spec.into() })?;
        let line = self.next_line()?;
        if !line.starts_with("ok add ") {
            return Err(parse_err(format!("expected ok add, got {line:?}")));
        }
        Ok(OpenReply {
            sid: sid.to_string(),
            statements: field_u64(&line, "statements").map_err(ClientError::Parse)? as usize,
            candidates: field_u64(&line, "candidates").map_err(ClientError::Parse)? as usize,
            cache_hit: false,
            probes: field_u64(&line, "probes").map_err(ClientError::Parse)?,
            degraded: None,
        })
    }

    /// `tune`, streaming every solver event into `on_progress` as it
    /// arrives over the wire.
    pub fn tune(
        &mut self,
        sid: &str,
        mut on_progress: impl FnMut(&ProgressLine),
    ) -> Result<TuneReply, ClientError> {
        self.send(&Request::Tune { sid: sid.into() })?;
        let mut degraded = None;
        let header = loop {
            let line = self.next_line()?;
            if line.starts_with("progress ") {
                on_progress(&ProgressLine::parse(&line).map_err(ClientError::Parse)?);
            } else if line.starts_with("degraded ") {
                degraded = Some(DegradedLine::parse(&line).map_err(ClientError::Parse)?);
            } else if line.starts_with("rec ") {
                break line;
            } else {
                return Err(parse_err(format!("expected progress/rec, got {line:?}")));
            }
        };
        let mut reply = TuneReply {
            objective: field_f64(&header, "objective").map_err(ClientError::Parse)?,
            bound: field_f64(&header, "bound").map_err(ClientError::Parse)?,
            gap: field_f64(&header, "gap").map_err(ClientError::Parse)?,
            baseline: field_f64(&header, "baseline").map_err(ClientError::Parse)?,
            what_if_calls: field_u64(&header, "calls").map_err(ClientError::Parse)?,
            indexes: Vec::new(),
            degraded,
        };
        loop {
            let line = self.next_line()?;
            if line == "done" {
                return Ok(reply);
            }
            let wire = line
                .strip_prefix("index ")
                .ok_or_else(|| parse_err(format!("expected index/done, got {line:?}")))?;
            reply.indexes.push(parse_index(wire).map_err(parse_err)?);
        }
    }

    /// `sweep`, streaming `(point, event)` pairs.
    pub fn sweep(
        &mut self,
        sid: &str,
        budgets: &[u64],
        mut on_progress: impl FnMut(&ProgressLine),
    ) -> Result<Vec<PointReply>, ClientError> {
        self.send(&Request::Sweep { sid: sid.into(), budgets: budgets.to_vec() })?;
        let mut points: Vec<PointReply> = Vec::new();
        loop {
            let line = self.next_line()?;
            if line == "done" {
                return Ok(points);
            } else if line.starts_with("progress ") {
                on_progress(&ProgressLine::parse(&line).map_err(ClientError::Parse)?);
            } else if line.starts_with("point ") {
                points.push(PointReply {
                    budget_bytes: field_u64(&line, "budget").map_err(ClientError::Parse)?,
                    objective: field_f64(&line, "objective").map_err(ClientError::Parse)?,
                    bound: field_f64(&line, "bound").map_err(ClientError::Parse)?,
                    gap: field_f64(&line, "gap").map_err(ClientError::Parse)?,
                    indexes: Vec::new(),
                });
            } else if let Some(wire) = line.strip_prefix("index ") {
                let pt = points
                    .last_mut()
                    .ok_or_else(|| parse_err("index line before any point line"))?;
                pt.indexes.push(parse_index(wire).map_err(parse_err)?);
            } else {
                return Err(parse_err(format!("unexpected sweep line {line:?}")));
            }
        }
    }

    pub fn pin(&mut self, sid: &str, ix: &Index) -> Result<(), ClientError> {
        self.simple_ok(&Request::Pin { sid: sid.into(), index: ix.clone() }, "ok pin")
    }

    pub fn ban(&mut self, sid: &str, ix: &Index) -> Result<(), ClientError> {
        self.simple_ok(&Request::Ban { sid: sid.into(), index: ix.clone() }, "ok ban")
    }

    pub fn unfix(&mut self, sid: &str, ix: &Index) -> Result<(), ClientError> {
        self.simple_ok(&Request::Unfix { sid: sid.into(), index: ix.clone() }, "ok unfix")
    }

    pub fn what_if(&mut self, sid: &str, indexes: &[Index]) -> Result<WhatIfReply, ClientError> {
        self.send(&Request::WhatIf { sid: sid.into(), indexes: indexes.to_vec() })?;
        let line = self.next_line()?;
        if !line.starts_with("ok what_if ") {
            return Err(parse_err(format!("expected ok what_if, got {line:?}")));
        }
        let violation = field(&line, "violation").map_err(ClientError::Parse)?;
        Ok(WhatIfReply {
            cost: field_f64(&line, "cost").map_err(ClientError::Parse)?,
            baseline: field_f64(&line, "baseline").map_err(ClientError::Parse)?,
            improvement: field_f64(&line, "improvement").map_err(ClientError::Parse)?,
            size_bytes: field_u64(&line, "size").map_err(ClientError::Parse)?,
            violation: (violation != "-").then(|| violation.replace('_', " ")),
        })
    }

    pub fn export_mps(&mut self, sid: &str) -> Result<String, ClientError> {
        self.send(&Request::ExportMps { sid: sid.into() })?;
        let header = self.next_line()?;
        let n: usize = header
            .strip_prefix("mps ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| parse_err(format!("expected mps <n>, got {header:?}")))?;
        let mut out = String::new();
        for _ in 0..n {
            // Raw body lines: no hb/err framing inside an MPS payload.
            out.push_str(&self.raw_line()?);
            out.push('\n');
        }
        let tail = self.next_line()?;
        if tail != "done" {
            return Err(parse_err(format!("expected done after mps body, got {tail:?}")));
        }
        Ok(out)
    }

    pub fn evict(&mut self, sid: &str) -> Result<u64, ClientError> {
        self.send(&Request::Evict { sid: sid.into() })?;
        let line = self.next_line()?;
        if !line.starts_with("ok evict ") {
            return Err(parse_err(format!("expected ok evict, got {line:?}")));
        }
        field_u64(&line, "bytes").map_err(ClientError::Parse)
    }

    pub fn close(&mut self, sid: &str) -> Result<(), ClientError> {
        self.simple_ok(&Request::Close { sid: sid.into() }, "ok close")
    }

    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.send(&Request::Stats)?;
        let line = self.next_line()?;
        if !line.starts_with("ok stats ") {
            return Err(parse_err(format!("expected ok stats, got {line:?}")));
        }
        let u = |k: &str| field_u64(&line, k).map_err(ClientError::Parse);
        Ok(StatsReply {
            live: u("live")? as usize,
            evicted: u("evicted")? as usize,
            cache_entries: u("cache_entries")? as usize,
            cache_hits: u("cache_hits")?,
            cache_misses: u("cache_misses")?,
            evictions: u("evictions")?,
            rebuilds: u("rebuilds")?,
            probes: u("probes")?,
            state_bytes: u("state_bytes")? as usize,
        })
    }

    pub fn quit(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Quit)?;
        let line = self.next_line()?;
        if line != "ok bye" {
            return Err(parse_err(format!("expected ok bye, got {line:?}")));
        }
        Ok(())
    }

    /// Run `f` with up to `attempts` tries, backing off on `err busy`
    /// replies.  The sleep honors the server's `retry_after_ms` hint when
    /// the reply carries one (solver-pool saturation, tripped circuit
    /// breaker), falling back to a doubling backoff from 25ms otherwise.
    /// Every other error — and busy on the final attempt — passes through.
    pub fn retry_busy<R>(
        &mut self,
        attempts: u32,
        mut f: impl FnMut(&mut Self) -> Result<R, ClientError>,
    ) -> Result<R, ClientError> {
        let mut fallback = std::time::Duration::from_millis(25);
        for attempt in 1.. {
            match f(self) {
                Err(ClientError::Server(e)) if e.code == ErrCode::Busy && attempt < attempts => {
                    std::thread::sleep(e.retry_after().unwrap_or(fallback));
                    fallback = (fallback * 2).min(std::time::Duration::from_secs(2));
                }
                out => return out,
            }
        }
        unreachable!("the loop returns on success, non-busy errors, or the final attempt")
    }

    fn simple_ok(&mut self, req: &Request, prefix: &str) -> Result<(), ClientError> {
        self.send(req)?;
        let line = self.next_line()?;
        if line.starts_with(prefix) {
            Ok(())
        } else {
            Err(parse_err(format!("expected {prefix}, got {line:?}")))
        }
    }
}

/// Format an index for a protocol argument (re-export for callers that
/// build requests by hand, e.g. the CI `script` subcommand).
pub fn index_wire(ix: &Index) -> String {
    fmt_index(ix)
}
