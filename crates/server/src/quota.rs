//! Per-tenant what-if probe metering.
//!
//! The daemon charges every optimizer probe a tenant's sessions trigger —
//! INUM preparation on a cold `open`, statement deltas via `add` — against a
//! configurable quota.  [`MeteredBackend`] wraps any [`WhatIfBackend`] and
//! turns the probe that would exceed the quota into a typed
//! [`BackendError::QuotaExceeded`] instead of performing it, so the whole
//! fallible pipeline (`try_prepare_*`, `TuningSession::try_add_source`)
//! unwinds cleanly: the session's chunk-granular rollback restores the
//! shared cache (fully-ingested chunks stay committed) and the client sees
//! `err quota …` while every other tenant keeps working.
//!
//! Metering rides on the backend's own call counter (the PR-6
//! `what_if_calls` accounting): `spent` is exactly the number of probes the
//! inner backend performed, so the ledger can never drift from the costs it
//! gates.

use std::sync::atomic::{AtomicU64, Ordering};

use cophy_catalog::{Configuration, Index, Schema};
use cophy_optimizer::{BackendError, CostModel, ProbeAnswer, SystemProfile, WhatIfBackend};
use cophy_workload::{Query, Statement};

/// A quota-enforcing wrapper around a what-if backend.
///
/// One instance per tenant; all of the tenant's sessions share it, so the
/// quota covers the tenant's total probe spend, not per-session slices.
#[derive(Debug)]
pub struct MeteredBackend {
    inner: Box<dyn WhatIfBackend>,
    limit: AtomicU64,
}

impl MeteredBackend {
    /// Wrap `inner`, allowing at most `limit` probes (`u64::MAX` = unmetered).
    pub fn new(inner: Box<dyn WhatIfBackend>, limit: u64) -> Self {
        MeteredBackend { inner, limit: AtomicU64::new(limit) }
    }

    /// Probes the tenant has spent so far.
    pub fn spent(&self) -> u64 {
        self.inner.what_if_calls()
    }

    /// The current probe limit.
    pub fn limit(&self) -> u64 {
        self.limit.load(Ordering::Relaxed)
    }

    /// Raise (or lower) the tenant's quota at run time.
    pub fn set_limit(&self, limit: u64) {
        self.limit.store(limit, Ordering::Relaxed);
    }
}

impl WhatIfBackend for MeteredBackend {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn profile(&self) -> SystemProfile {
        self.inner.profile()
    }

    fn cost_model(&self) -> &CostModel {
        self.inner.cost_model()
    }

    fn try_probe(&self, q: &Query, config: &Configuration) -> Result<ProbeAnswer, BackendError> {
        let spent = self.inner.what_if_calls();
        let limit = self.limit.load(Ordering::Relaxed);
        if spent >= limit {
            return Err(BackendError::QuotaExceeded { spent, limit });
        }
        self.inner.try_probe(q, config)
    }

    fn what_if_calls(&self) -> u64 {
        self.inner.what_if_calls()
    }

    fn reset_call_counter(&self) {
        self.inner.reset_call_counter()
    }

    fn try_relevant_indexes(&self, stmt: &Statement) -> Result<Vec<Index>, BackendError> {
        self.inner.try_relevant_indexes(stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_optimizer::WhatIfOptimizer;
    use cophy_workload::HomGen;

    fn metered(limit: u64) -> (MeteredBackend, cophy_workload::Workload) {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(5).generate(o.schema(), 4);
        (MeteredBackend::new(Box::new(o), limit), w)
    }

    #[test]
    fn probes_below_the_quota_pass_through() {
        let (b, w) = metered(10);
        let q = w.iter().next().unwrap().1.read_shell().clone();
        assert!(b.try_probe(&q, &Configuration::empty()).is_ok());
        assert_eq!(b.spent(), 1);
    }

    #[test]
    fn the_probe_that_would_exceed_the_quota_is_rejected_typed() {
        let (b, w) = metered(2);
        let q = w.iter().next().unwrap().1.read_shell().clone();
        assert!(b.try_probe(&q, &Configuration::empty()).is_ok());
        assert!(b.try_probe(&q, &Configuration::empty()).is_ok());
        match b.try_probe(&q, &Configuration::empty()) {
            Err(BackendError::QuotaExceeded { spent: 2, limit: 2 }) => {}
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // The rejected probe was never performed: the ledger holds at 2.
        assert_eq!(b.spent(), 2);
    }

    #[test]
    fn raising_the_limit_unblocks_the_tenant() {
        let (b, w) = metered(0);
        let q = w.iter().next().unwrap().1.read_shell().clone();
        assert!(b.try_probe(&q, &Configuration::empty()).is_err());
        b.set_limit(5);
        assert!(b.try_probe(&q, &Configuration::empty()).is_ok());
    }
}
