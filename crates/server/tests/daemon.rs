//! End-to-end daemon tests: the full TCP round trip, shared-cache probe
//! accounting, quota rejection, the evict-then-rebuild reproduction
//! guarantee, and the robustness surface (degraded replies, circuit
//! breaker, busy retry-after hints).

use std::time::Duration;

use cophy_bip::SolveBudget;
use cophy_optimizer::{FaultPlan, RetryPolicy};
use cophy_server::{Client, ClientError, ErrCode, Server, ServerConfig, SessionManager};

fn smoke_config() -> ServerConfig {
    ServerConfig {
        budget: SolveBudget::within(0.05).with_time(Duration::from_secs(20)),
        ..Default::default()
    }
}

#[test]
fn tcp_round_trip_open_tune_pin_retune_whatif_close() {
    let handle = Server::bind("127.0.0.1:0", smoke_config(), None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();

    let open = c.open("s1", "hom:7:24", 0.5).unwrap();
    assert!(!open.cache_hit);
    assert_eq!(open.statements, 24);
    assert!(open.probes > 0, "cold open pays INUM probes");
    assert!(open.candidates > 0);

    let mut events = Vec::new();
    let cold = c.tune("s1", |p| events.push(p.state_key())).unwrap();
    assert!(cold.gap.is_finite());
    assert!(!cold.indexes.is_empty());
    assert!(!events.is_empty(), "tune streams anytime events");
    assert!(cold.objective <= cold.baseline);

    // Pin the top index: the warm re-tune keeps it and stays finite.
    let pinned = cold.indexes[0].clone();
    c.pin("s1", &pinned).unwrap();
    let warm = c.tune("s1", |_| {}).unwrap();
    assert!(warm.indexes.contains(&pinned));
    assert!(warm.gap.is_finite());

    // what_if of the warm answer costs it from the cache (no probes).
    let before = c.stats().unwrap().probes;
    let wi = c.what_if("s1", &warm.indexes).unwrap();
    assert!(wi.cost.is_finite() && wi.cost > 0.0);
    assert!(wi.improvement > 0.0);
    assert_eq!(c.stats().unwrap().probes, before, "what_if is memo-lookup only");

    // The exported model is lintable MPS.
    let mps = c.export_mps("s1").unwrap();
    cophy_bip::lint_mps(&mps).expect("exported MPS lints");

    c.close("s1").unwrap();
    let err = c.tune("s1", |_| {}).unwrap_err();
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrCode::NoSession),
        other => panic!("expected no-session, got {other}"),
    }
    c.quit().unwrap();
    handle.stop();
}

#[test]
fn tune_streams_typed_decomposition_progress_to_the_client() {
    let handle = Server::bind("127.0.0.1:0", smoke_config(), None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();
    let open = c.open("s1", "hom:11:12", 0.5).unwrap();
    assert_eq!(open.statements, 12);

    // `add` routes through the chunked streaming-ingestion path.
    let added = c.add("s1", "upd:3:6").unwrap();
    assert_eq!(added.statements, 18);

    let mut events = Vec::new();
    c.tune("s1", |p| events.push(p.clone())).unwrap();
    // The Lagrangian backend decomposes per statement block: the client
    // sees the typed fields parsed back off the wire.
    let decomposed: Vec<_> = events.iter().filter_map(|p| p.decomposition).collect();
    assert!(!decomposed.is_empty(), "tune events must carry decomposition progress");
    for d in &decomposed {
        assert_eq!(d.blocks_total, 18, "one block per statement");
        assert_eq!(d.blocks_done, d.outer_iter * d.blocks_total, "cumulative block count");
    }
    c.quit().unwrap();
    handle.stop();
}

#[test]
fn sessions_over_one_spec_share_the_cache() {
    let handle = Server::bind("127.0.0.1:0", smoke_config(), None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();

    let first = c.open("a", "hom:9:16", 0.5).unwrap();
    assert!(!first.cache_hit);
    let probes_single = c.stats().unwrap().probes;
    assert_eq!(probes_single, first.probes);

    for sid in ["b", "c", "d"] {
        let r = c.open(sid, "hom:9:16", 0.5).unwrap();
        assert!(r.cache_hit, "session {sid} should share the prepared cache");
        assert_eq!(r.probes, 0);
        assert_eq!(r.candidates, first.candidates);
    }
    // Sharing: four sessions, still exactly one session's worth of probes.
    let stats = c.stats().unwrap();
    assert_eq!(stats.probes, probes_single);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 3);
    assert_eq!(stats.live, 4);

    // Shared cache ⇒ identical answers: all four agree bit-for-bit.
    let r_a = c.tune("a", |_| {}).unwrap();
    for sid in ["b", "c", "d"] {
        let r = c.tune(sid, |_| {}).unwrap();
        assert_eq!(r.indexes, r_a.indexes);
        assert_eq!(r.objective.to_bits(), r_a.objective.to_bits());
        assert_eq!(r.bound.to_bits(), r_a.bound.to_bits());
    }
    c.quit().unwrap();
    handle.stop();
}

#[test]
fn quota_rejects_the_cold_open_with_a_typed_error() {
    let config = ServerConfig { quota: 3, ..smoke_config() };
    let handle = Server::bind("127.0.0.1:0", config, None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();

    match c.open("starved", "hom:5:16", 0.5).unwrap_err() {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrCode::Quota, "message: {}", e.message);
            assert!(e.message.contains("quota exceeded"));
        }
        other => panic!("expected quota error, got {other}"),
    }
    // The failed open left nothing behind.
    let stats = c.stats().unwrap();
    assert_eq!(stats.live, 0);
    assert_eq!(stats.cache_entries, 0);
    c.quit().unwrap();
    handle.stop();
}

#[test]
fn evicted_session_rebuilds_and_reproduces_its_recommendation() {
    let handle = Server::bind("127.0.0.1:0", smoke_config(), None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();

    // Builder session pays the probes; the test subject shares the cache.
    c.open("builder", "hom:11:16", 0.5).unwrap();
    let open = c.open("subject", "hom:11:16", 0.5).unwrap();
    assert!(open.cache_hit);

    // Fix intent, then take the pre-eviction recommendation (cold solve
    // under the fixings).
    let probe = c.tune("builder", |_| {}).unwrap();
    let pin = probe.indexes[0].clone();
    let ban = probe.indexes[probe.indexes.len() - 1].clone();
    c.pin("subject", &pin).unwrap();
    if ban != pin {
        c.ban("subject", &ban).unwrap();
    }
    let before = c.tune("subject", |_| {}).unwrap();
    assert!(before.indexes.contains(&pin));
    assert!(ban == pin || !before.indexes.contains(&ban));

    // Evict: private state drops, shared cache and fixings are retained.
    let released = c.evict("subject").unwrap();
    assert!(released > 0, "evicting a solved session releases state bytes");
    let stats = c.stats().unwrap();
    assert_eq!(stats.evicted, 1);

    // Retouch: rebuilt over the retained cache with zero probes, and the
    // recommendation reproduces bit-for-bit.
    let probes_before = c.stats().unwrap().probes;
    let after = c.tune("subject", |_| {}).unwrap();
    assert_eq!(c.stats().unwrap().probes, probes_before, "rebuild costs no probes");
    assert_eq!(after.indexes, before.indexes);
    assert_eq!(after.objective.to_bits(), before.objective.to_bits());
    assert_eq!(after.bound.to_bits(), before.bound.to_bits());
    assert_eq!(after.gap.to_bits(), before.gap.to_bits());
    assert_eq!(c.stats().unwrap().rebuilds, 1);

    c.quit().unwrap();
    handle.stop();
}

#[test]
fn sweep_streams_point_tagged_events() {
    let handle = Server::bind("127.0.0.1:0", smoke_config(), None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.open("s", "hom:13:12", 0.8).unwrap();

    let schema_bytes = handle.manager().schema().data_bytes();
    let budgets = [schema_bytes, schema_bytes / 2, schema_bytes / 4];
    let mut seen_points = Vec::new();
    let points = c.sweep("s", &budgets, |p| seen_points.push(p.point)).unwrap();
    assert_eq!(points.len(), 3);
    for (pt, budget) in points.iter().zip(budgets) {
        assert_eq!(pt.budget_bytes, budget);
        assert!(pt.gap.is_finite());
    }
    // Tighter budgets can only raise the optimum (monotone chain).
    assert!(points[1].objective + 1e-9 >= points[0].objective);
    assert!(points[2].objective + 1e-9 >= points[1].objective);
    c.quit().unwrap();
    handle.stop();
}

#[test]
fn malformed_and_unknown_session_requests_are_typed_errors() {
    let handle = Server::bind("127.0.0.1:0", smoke_config(), None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();
    match c.tune("ghost", |_| {}).unwrap_err() {
        ClientError::Server(e) => assert_eq!(e.code, ErrCode::NoSession),
        other => panic!("expected no-session, got {other}"),
    }
    match c.open("s", "bogus:1:1", 0.5).unwrap_err() {
        ClientError::Server(e) => assert_eq!(e.code, ErrCode::BadRequest),
        other => panic!("expected bad-request, got {other}"),
    }
    c.quit().unwrap();
    handle.stop();
}

fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(50),
        ..Default::default()
    }
}

#[test]
fn transient_chaos_daemon_reports_degraded_and_matches_the_clean_daemon() {
    let clean = Server::bind("127.0.0.1:0", smoke_config(), None).unwrap().spawn();
    let chaotic_config = ServerConfig {
        fault_plan: Some(FaultPlan::transient_only(0xC0FFEE, 0.35, 2)),
        retry: fast_retry(4),
        ..smoke_config()
    };
    let chaotic = Server::bind("127.0.0.1:0", chaotic_config, None).unwrap().spawn();

    let mut cc = Client::connect(clean.addr()).unwrap();
    let mut cf = Client::connect(chaotic.addr()).unwrap();
    let clean_open = cc.open("s", "hom:21:12", 0.5).unwrap();
    let chaos_open = cf.open("s", "hom:21:12", 0.5).unwrap();

    assert!(clean_open.degraded.is_none(), "fault-free daemon must not report degradation");
    let d = chaos_open.degraded.as_ref().expect("chaos daemon must stream a degraded line");
    assert!(d.recovered > 0, "the transient schedule must have fired");
    assert_eq!(d.substituted, 0, "all-transient faults recover fully under retries");
    assert_eq!(d.coverage, 1.0);
    assert_eq!(d.inflation, 0.0);
    // Injected faults never consume a real probe: same bill as the clean
    // daemon.
    assert_eq!(chaos_open.probes, clean_open.probes);

    // Recovered prep ⇒ the recommendation is bit-identical.
    let clean_rec = cc.tune("s", |_| {}).unwrap();
    let chaos_rec = cf.tune("s", |_| {}).unwrap();
    assert_eq!(chaos_rec.objective.to_bits(), clean_rec.objective.to_bits());
    assert_eq!(chaos_rec.bound.to_bits(), clean_rec.bound.to_bits());
    assert_eq!(chaos_rec.indexes, clean_rec.indexes);
    assert!(chaos_rec.degraded.is_some(), "tune must carry the session's degradation");

    cc.quit().unwrap();
    cf.quit().unwrap();
    clean.stop();
    chaotic.stop();
}

#[test]
fn breaker_trips_on_repeated_backend_faults_rejects_fast_and_half_opens() {
    // Every pair fails permanently: each cold open burns its retries, loses
    // every probe, and dies on the coverage floor — a backend-classified
    // error that feeds the tenant's breaker.
    let config = ServerConfig {
        fault_plan: Some(FaultPlan { permanent_rate: 1.0, ..FaultPlan::transient_only(7, 0.0, 1) }),
        retry: fast_retry(2),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(50),
        ..smoke_config()
    };
    let handle = Server::bind("127.0.0.1:0", config, None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();

    for attempt in 0..2 {
        match c.open("t", "hom:5:8", 0.5).unwrap_err() {
            ClientError::Server(e) => {
                assert_eq!(e.code, ErrCode::Backend, "attempt {attempt}: {}", e.message);
                assert!(e.message.contains("coverage"), "attempt {attempt}: {}", e.message);
            }
            other => panic!("expected backend error, got {other}"),
        }
    }
    // Two consecutive backend faults: the breaker is open and rejects fast,
    // with a parsable backoff hint.
    match c.open("t", "hom:5:8", 0.5).unwrap_err() {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrCode::Busy, "{}", e.message);
            let hint = e.retry_after().expect("busy from the breaker carries retry_after_ms");
            assert!(hint <= Duration::from_millis(50));
        }
        other => panic!("expected busy, got {other}"),
    }
    // After the cooldown the breaker half-opens: the trial request reaches
    // the backend again (and fails on the backend, not on the breaker).
    std::thread::sleep(Duration::from_millis(60));
    match c.open("t", "hom:5:8", 0.5).unwrap_err() {
        ClientError::Server(e) => assert_eq!(e.code, ErrCode::Backend, "{}", e.message),
        other => panic!("expected backend error, got {other}"),
    }
    // The failed trial re-opened the breaker; other tenants are unaffected.
    match c.open("t", "hom:5:8", 0.5).unwrap_err() {
        ClientError::Server(e) => assert_eq!(e.code, ErrCode::Busy, "{}", e.message),
        other => panic!("expected busy, got {other}"),
    }
    c.quit().unwrap();
    handle.stop();
}

#[test]
fn client_retry_busy_honors_the_hint_and_recovers() {
    // Same doomed backend, but a breaker that recovers nothing: retry_busy
    // itself must ride the open/half-open cycle and surface the final
    // backend error (not busy) once a trial is admitted.
    let config = ServerConfig {
        fault_plan: Some(FaultPlan { permanent_rate: 1.0, ..FaultPlan::transient_only(7, 0.0, 1) }),
        retry: fast_retry(2),
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_millis(20),
        ..smoke_config()
    };
    let handle = Server::bind("127.0.0.1:0", config, None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();

    // Trip the breaker.
    assert!(c.open("t", "hom:5:8", 0.5).is_err());
    // retry_busy sleeps through the busy rejection (honoring the hint) and
    // reaches the backend on the half-open trial.
    match c.retry_busy(3, |c| c.open("t", "hom:5:8", 0.5)).unwrap_err() {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrCode::Backend, "retry_busy must outlast busy: {}", e.message);
        }
        other => panic!("expected backend error, got {other}"),
    }
    c.quit().unwrap();
    handle.stop();
}

#[test]
fn infeasible_sweep_is_a_typed_error_not_a_dropped_session() {
    let handle = Server::bind("127.0.0.1:0", smoke_config(), None).unwrap().spawn();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.open("s", "hom:13:12", 0.8).unwrap();
    let rec = c.tune("s", |_| {}).unwrap();
    // Pin the whole recommendation, then sweep to a budget it cannot fit.
    for ix in &rec.indexes {
        c.pin("s", ix).unwrap();
    }
    match c.sweep("s", &[1], |_| {}).unwrap_err() {
        ClientError::Server(e) => {
            assert!(e.message.contains("infeasible"), "{}", e.message);
        }
        other => panic!("expected server error, got {other}"),
    }
    // The session survived the infeasible sweep: it still answers, and the
    // pinned recommendation stays feasible (warm incumbent carried over).
    let again = c.tune("s", |_| {}).unwrap();
    assert!(again.gap.is_finite());
    assert!(again.objective <= rec.objective + 1e-6);
    c.quit().unwrap();
    handle.stop();
}

#[test]
fn manager_lru_cap_evicts_cold_sessions() {
    // A cap small enough that two solved sessions cannot both stay live.
    let config = ServerConfig { mem_cap_bytes: 1, ..smoke_config() };
    let manager = SessionManager::new(config);
    manager.open("hot", "hom:17:8", 0.5).unwrap();
    manager.open("cold", "hom:17:8", 0.5).unwrap();
    manager.tune("cold", None, |_| {}).unwrap();
    // Touching `hot` makes `cold` the LRU victim once the cap bites.
    manager.tune("hot", None, |_| {}).unwrap();
    let stats = manager.stats();
    assert!(stats.evictions >= 1, "cap of 1 byte must evict, stats: {stats:?}");
    // Both sessions still answer — eviction is transparent.
    manager.tune("cold", None, |_| {}).unwrap();
    manager.tune("hot", None, |_| {}).unwrap();
}
