//! # cophy-compress
//!
//! Workload compression: cluster a large workload and tune a *weighted
//! representative set* instead of every statement, with bounded quality
//! loss.
//!
//! CoPhy's pipeline pays one INUM preparation (a handful of what-if
//! optimizer calls) and one BIP block per statement, so what-if budget and
//! model size grow linearly with `|W|`.  Production workloads, however, are
//! dominated by statements that differ only in their constants; compressing
//! them first is the standard scalability lever of every production tuner.
//! This crate implements that stage:
//!
//! 1. **Exact dedup by shell** — statements with identical shells (constants
//!    included) merge losslessly, summing weights.
//! 2. **Greedy ε-bounded agglomeration** — statements whose structural
//!    template matches an existing representative and whose
//!    [`StatementFeatures::distance`] (largest selectivity deviation /
//!    relative update-footprint deviation) is within `ε` merge onto the
//!    nearest representative.  The nearest-representative query runs against
//!    a per-template **feature-quantile bucket index** (cell width ε per
//!    selectivity dimension, `−ln(1−ε)` on the log update footprint), so
//!    the scan touches only the 3^d neighbor cells of the query point
//!    instead of every representative of the template — an exact
//!    replacement for the linear scan
//!    ([`CompressedWorkload::compress_unindexed`] keeps the baseline for
//!    the `fig_compress` before/after timing).
//!
//! The result is a [`CompressedWorkload`]: a weighted representative
//! [`Workload`] plus the full original→representative assignment.  Cluster
//! weights **conserve total workload weight**, so a cost computed over the
//! representatives (`Σ_r w_r · cost(rep_r, X)`) *is* the expansion of the
//! estimated full-workload cost — each original statement is approximated by
//! its representative at its own weight.
//!
//! [`CompressedWorkload::absorb`] routes statement deltas through
//! *incremental re-clustering*: a nudged workload usually lands its new
//! statements in existing clusters (a weight bump, zero new what-if calls)
//! instead of forcing a new representative per nudge.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cophy_catalog::Schema;
use cophy_workload::{QueryId, ShellKey, Statement, StatementFeatures, TemplateKey, Workload};

/// How aggressively to compress a workload before INUM preparation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CompressionPolicy {
    /// No compression: every statement is its own representative and the
    /// pipeline behaves bit-for-bit as if this subsystem did not exist.
    Off,
    /// Merge exact duplicates only (identical shells, constants included).
    /// The compressed tune is *exactly* equivalent to the full tune.
    Lossless,
    /// Lossless merging plus greedy ε-bounded agglomeration: statements of
    /// the same structural template whose feature distance is at most `ε`
    /// share a representative.  `Epsilon(0.0)` is equivalent to `Lossless`.
    Epsilon(f64),
}

impl CompressionPolicy {
    /// The default agglomeration threshold: the largest selectivity
    /// deviation tolerated inside one cluster.  Chosen so that `W_hom`-style
    /// template workloads compress by well over the 4× acceptance floor
    /// while recommendations stay within a few percent of the uncompressed
    /// tune (see the `fig_compress` experiment).
    pub const DEFAULT_EPSILON: f64 = 0.25;

    /// `Epsilon` at the default threshold.
    pub fn default_epsilon() -> CompressionPolicy {
        CompressionPolicy::Epsilon(Self::DEFAULT_EPSILON)
    }

    pub fn is_off(&self) -> bool {
        matches!(self, CompressionPolicy::Off)
    }

    /// Check an `Epsilon` threshold for validity.  `Result`-returning
    /// callers (e.g. `CoPhy::try_tune`) surface this as an error before any
    /// clustering runs; [`CompressedWorkload::compress`] panics on it.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            CompressionPolicy::Epsilon(e) if !(e.is_finite() && e >= 0.0) => {
                Err(format!("invalid compression ε {e}: must be a finite, non-negative number"))
            }
            _ => Ok(()),
        }
    }

    /// The merge threshold, or `None` when compression is off.
    ///
    /// Panics on an invalid `Epsilon` threshold (validate with
    /// [`CompressionPolicy::validate`] first to handle it gracefully).
    pub fn merge_threshold(&self) -> Option<f64> {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        match *self {
            CompressionPolicy::Off => None,
            CompressionPolicy::Lossless => Some(0.0),
            CompressionPolicy::Epsilon(e) => Some(e),
        }
    }
}

impl std::fmt::Display for CompressionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressionPolicy::Off => write!(f, "off"),
            CompressionPolicy::Lossless => write!(f, "lossless"),
            CompressionPolicy::Epsilon(e) => write!(f, "epsilon({e})"),
        }
    }
}

/// What happened to one absorbed statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Absorption {
    /// The statement merged onto an existing representative (weight bump —
    /// no new INUM preparation needed).
    Merged(QueryId),
    /// The statement opened a new cluster and is its representative.
    NewRepresentative(QueryId),
}

impl Absorption {
    /// The representative the statement was assigned to.
    pub fn representative(&self) -> QueryId {
        match *self {
            Absorption::Merged(id) | Absorption::NewRepresentative(id) => id,
        }
    }
}

/// Summary statistics of a compression, attached to recommendations so the
/// expansion back to the full workload stays auditable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionSummary {
    pub policy: CompressionPolicy,
    pub n_original: usize,
    pub n_representatives: usize,
    /// Conserved total workload weight `Σ_q f_q`.
    pub total_weight: f64,
}

impl CompressionSummary {
    /// Compression ratio `|W| / |representatives|` (≥ 1).
    pub fn ratio(&self) -> f64 {
        self.n_original as f64 / self.n_representatives.max(1) as f64
    }
}

/// Feature dimensionality cap for the bucket index: enumerating the 3^d
/// neighbor cells of a query point must stay cheaper than the linear scan it
/// replaces, so high-dimensional templates keep the plain scan.
const MAX_INDEXED_DIMS: usize = 6;

/// Representative count below which the linear scan is used even on an
/// indexed template — hashing 3^d neighbor cells only pays once the
/// template has accumulated more representatives than that.
const LINEAR_SCAN_CUTOFF: usize = 16;

/// Per-template representative index: the insertion-ordered list (the
/// ε-agglomeration scan baseline) plus, for low-dimensional templates under
/// an indexable ε, a coarse feature-quantile bucket grid.  Cell widths are
/// chosen so any two points within ε land in the same or an adjacent cell
/// per dimension, which makes the 3^d neighbor enumeration an exact
/// candidate superset of the linear scan.
#[derive(Debug, Clone)]
struct TemplateIndex {
    reps: Vec<QueryId>,
    cells: Option<HashMap<Vec<i64>, Vec<QueryId>>>,
}

/// Quantization cell widths `(cell_sel, cell_rows)` of the bucket grid.
/// Selectivities quantize at width ε (|Δsel| ≤ ε ⟹ adjacent cells); the
/// update-row footprint quantizes `ln(max(rows, 1))` at width `−ln(1 − ε)`
/// (relative deviation ≤ ε ⟹ adjacent cells).  `None` disables the grid:
/// indexing off, ε = 0 (exact-dedup only), or ε ≥ 1 (every same-template
/// pair is within ε anyway).
type Grid = Option<(f64, f64)>;

fn make_grid(policy: CompressionPolicy, indexed: bool) -> Grid {
    match policy.merge_threshold() {
        Some(eps) if indexed && eps > 0.0 && eps < 1.0 => Some((eps, -(1.0 - eps).ln())),
        _ => None,
    }
}

/// The grid cell of a feature point: quantized selectivities plus the
/// quantized log update footprint.
fn cell_key(f: &StatementFeatures, cell_sel: f64, cell_rows: f64) -> Vec<i64> {
    let mut key = Vec::with_capacity(f.selectivities.len() + 1);
    for &s in &f.selectivities {
        key.push((s / cell_sel).floor() as i64);
    }
    key.push((f.update_rows.max(1.0).ln() / cell_rows).floor() as i64);
    key
}

/// A compressed workload: weighted representatives + assignment.
#[derive(Debug, Clone)]
pub struct CompressedWorkload {
    representatives: Workload,
    rep_features: Vec<StatementFeatures>,
    /// Exact-shell index: every shell ever absorbed → its representative.
    by_shell: HashMap<ShellKey, QueryId>,
    /// Template index over representatives, for the ε-agglomeration scan.
    by_template: HashMap<TemplateKey, TemplateIndex>,
    /// Bucket-grid cell widths (see [`Grid`]).
    grid: Grid,
    /// Original statement position → representative id.  Empty in streaming
    /// mode, where holding one entry per absorbed statement would defeat the
    /// bounded-memory contract.
    assignment: Vec<QueryId>,
    /// Count of absorbed statements (`assignment.len()` in batch mode).
    n_absorbed: usize,
    /// Streaming mode: drop the per-statement assignment and re-center each
    /// representative's feature point online (weighted running mean of its
    /// members) so clusters track the stream instead of their first member.
    streaming: bool,
    original_weight: f64,
    policy: CompressionPolicy,
}

impl CompressedWorkload {
    /// Compress `w` under `policy`.  Statement order is preserved among
    /// representatives (each cluster is represented by its first member),
    /// and cluster weights sum to the original total workload weight.
    pub fn compress(
        schema: &Schema,
        w: &Workload,
        policy: CompressionPolicy,
    ) -> CompressedWorkload {
        Self::compress_with_indexing(schema, w, policy, true)
    }

    /// [`CompressedWorkload::compress`] with the bucket index disabled —
    /// every ε-agglomeration runs the linear scan over same-template
    /// representatives.  Produces an identical clustering; kept as the
    /// timing baseline of the `fig_compress` study.
    pub fn compress_unindexed(
        schema: &Schema,
        w: &Workload,
        policy: CompressionPolicy,
    ) -> CompressedWorkload {
        Self::compress_with_indexing(schema, w, policy, false)
    }

    fn compress_with_indexing(
        schema: &Schema,
        w: &Workload,
        policy: CompressionPolicy,
        indexed: bool,
    ) -> CompressedWorkload {
        // Validate ε eagerly, even for empty workloads (`make_grid` calls
        // `merge_threshold`, which panics on an invalid ε).
        let grid = make_grid(policy, indexed);
        let mut cw = CompressedWorkload {
            representatives: Workload::new(),
            rep_features: Vec::new(),
            by_shell: HashMap::new(),
            by_template: HashMap::new(),
            grid,
            assignment: Vec::with_capacity(w.len()),
            n_absorbed: 0,
            streaming: false,
            original_weight: 0.0,
            policy,
        };
        for (_, stmt, weight) in w.iter() {
            cw.absorb(schema, stmt, weight);
        }
        cw
    }

    /// An empty compressed workload in **streaming mode**, for chunked
    /// ingestion of workloads too large to materialize:
    ///
    /// * the per-statement `assignment` vector is not kept, so resident state
    ///   is proportional to the number of *representatives*, not `|W|`;
    /// * on every merge the representative's feature point is re-centered to
    ///   the weighted running mean of its members (the online medoid-update
    ///   follow-up to greedy agglomeration), re-bucketing its grid cell when
    ///   the quantized key moves — so clusters track the stream instead of
    ///   being pinned to their first member.
    ///
    /// Batch compression ([`CompressedWorkload::compress`]) keeps the
    /// first-member semantics unchanged.
    pub fn streaming(policy: CompressionPolicy) -> CompressedWorkload {
        let grid = make_grid(policy, true);
        CompressedWorkload {
            representatives: Workload::new(),
            rep_features: Vec::new(),
            by_shell: HashMap::new(),
            by_template: HashMap::new(),
            grid,
            assignment: Vec::new(),
            n_absorbed: 0,
            streaming: true,
            original_weight: 0.0,
            policy,
        }
    }

    /// The weighted representative workload INUM should prepare.
    pub fn representatives(&self) -> &Workload {
        &self.representatives
    }

    /// Original statement position → representative id, in absorption order.
    /// Empty in streaming mode.
    pub fn assignment(&self) -> &[QueryId] {
        &self.assignment
    }

    /// The representative of the `i`-th absorbed statement.
    ///
    /// Panics in streaming mode, which does not retain the assignment.
    pub fn representative_of(&self, original: usize) -> QueryId {
        self.assignment[original]
    }

    pub fn policy(&self) -> CompressionPolicy {
        self.policy
    }

    /// Whether this workload was built via [`CompressedWorkload::streaming`].
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// The current (possibly re-centered) feature point of a representative,
    /// when features were extracted for it (`Epsilon`/`Lossless` policies).
    pub fn representative_features(&self, rep: QueryId) -> Option<&StatementFeatures> {
        self.rep_features.get(rep.0 as usize)
    }

    pub fn n_original(&self) -> usize {
        self.n_absorbed
    }

    pub fn n_representatives(&self) -> usize {
        self.representatives.len()
    }

    /// Conserved total weight `Σ_q f_q` of the original workload.
    pub fn total_weight(&self) -> f64 {
        self.original_weight
    }

    pub fn summary(&self) -> CompressionSummary {
        CompressionSummary {
            policy: self.policy,
            n_original: self.n_original(),
            n_representatives: self.n_representatives(),
            total_weight: self.original_weight,
        }
    }

    /// Absorb one statement: exact-shell dedup first, then (for `Epsilon`)
    /// the greedy scan over same-template representatives, else a new
    /// cluster.  This is the incremental re-clustering entry point used by
    /// interactive sessions — a `Merged` outcome costs zero what-if calls.
    pub fn absorb(&mut self, schema: &Schema, stmt: &Statement, weight: f64) -> Absorption {
        self.original_weight += weight;
        self.n_absorbed += 1;
        let Some(eps) = self.policy.merge_threshold() else {
            return self.open_cluster(stmt, weight, None);
        };
        let f = StatementFeatures::extract(schema, stmt);
        if let Some(&rep) = self.by_shell.get(&f.shell) {
            return self.merge_into(rep, weight, Some(&f));
        }
        if eps > 0.0 {
            if let Some(rep) = self.nearest_within(&f, eps) {
                // Index this (novel) shell so later exact duplicates of it
                // take the O(1) path onto the same representative.
                self.by_shell.insert(f.shell.clone(), rep);
                return self.merge_into(rep, weight, Some(&f));
            }
        }
        self.open_cluster(stmt, weight, Some(f))
    }

    /// Absorb one chunk of a stream; returns how many opened new clusters.
    pub fn absorb_chunk(&mut self, schema: &Schema, chunk: &[(Statement, f64)]) -> usize {
        chunk
            .iter()
            .filter(|(stmt, weight)| {
                matches!(self.absorb(schema, stmt, *weight), Absorption::NewRepresentative(_))
            })
            .count()
    }

    /// The nearest same-template representative within `eps`, ties broken
    /// toward the oldest representative (deterministic).  Uses the bucket
    /// grid when the template is indexed — any representative within `eps`
    /// lies in the query point's cell or an adjacent one per dimension, so
    /// scanning the 3^d neighbor cells is an exact replacement for the
    /// linear scan.
    fn nearest_within(&self, f: &StatementFeatures, eps: f64) -> Option<QueryId> {
        let idx = self.by_template.get(&f.template)?;
        let mut best: Option<(f64, QueryId)> = None;
        let consider = |rep: QueryId, best: &mut Option<(f64, QueryId)>| {
            let d = f.distance(&self.rep_features[rep.0 as usize]);
            if d <= eps && best.is_none_or(|(bd, br)| d < bd || (d == bd && rep < br)) {
                *best = Some((d, rep));
            }
        };
        match (&idx.cells, self.grid) {
            (Some(cells), Some((cs, cr))) if idx.reps.len() > LINEAR_SCAN_CUTOFF => {
                let center = cell_key(f, cs, cr);
                let dims = center.len() as u32;
                for mut code in 0..3usize.pow(dims) {
                    let mut key = center.clone();
                    for slot in &mut key {
                        *slot += (code % 3) as i64 - 1;
                        code /= 3;
                    }
                    for &rep in cells.get(&key).map(Vec::as_slice).unwrap_or_default() {
                        consider(rep, &mut best);
                    }
                }
            }
            _ => {
                for &rep in &idx.reps {
                    consider(rep, &mut best);
                }
            }
        }
        best.map(|(_, rep)| rep)
    }

    fn merge_into(
        &mut self,
        rep: QueryId,
        weight: f64,
        f: Option<&StatementFeatures>,
    ) -> Absorption {
        self.representatives.add_weight(rep, weight);
        if self.streaming {
            if let Some(f) = f {
                self.recenter(rep, weight, f);
            }
        } else {
            self.assignment.push(rep);
        }
        Absorption::Merged(rep)
    }

    /// Online re-centering (streaming mode only): shift the representative's
    /// stored feature point toward the weighted running mean of its members,
    /// `c ← c + (w / W) · (x − c)` with `W` the cluster's cumulative weight.
    /// The representative *statement* stays the first member — only the
    /// feature point used by the nearest-within-ε scan moves.  When the
    /// quantized grid key changes, the representative migrates cells so the
    /// 3^d neighbor enumeration stays an exact superset of the linear scan.
    fn recenter(&mut self, rep: QueryId, weight: f64, f: &StatementFeatures) {
        let total = self.representatives.weight(rep);
        if !total.is_finite()
            || total <= 0.0
            || f.selectivities.len() != self.rep_features[rep.0 as usize].selectivities.len()
        {
            return;
        }
        let alpha = weight / total;
        let old_key =
            self.grid.map(|(cs, cr)| cell_key(&self.rep_features[rep.0 as usize], cs, cr));
        {
            let rf = &mut self.rep_features[rep.0 as usize];
            for (c, &x) in rf.selectivities.iter_mut().zip(&f.selectivities) {
                *c += alpha * (x - *c);
            }
            rf.update_rows += alpha * (f.update_rows - rf.update_rows);
        }
        if let (Some((cs, cr)), Some(old_key)) = (self.grid, old_key) {
            let rf = &self.rep_features[rep.0 as usize];
            let new_key = cell_key(rf, cs, cr);
            if new_key != old_key {
                if let Some(cells) =
                    self.by_template.get_mut(&rf.template).and_then(|idx| idx.cells.as_mut())
                {
                    if let Some(v) = cells.get_mut(&old_key) {
                        v.retain(|r| *r != rep);
                    }
                    cells.entry(new_key).or_default().push(rep);
                }
            }
        }
    }

    fn open_cluster(
        &mut self,
        stmt: &Statement,
        weight: f64,
        features: Option<StatementFeatures>,
    ) -> Absorption {
        let rep = self.representatives.push_weighted(stmt.clone(), weight);
        let keep_assignment = !self.streaming;
        if let Some(f) = features {
            self.by_shell.insert(f.shell.clone(), rep);
            let grid = self.grid;
            let idx = self.by_template.entry(f.template.clone()).or_insert_with(|| {
                // Index the template only when enumerating neighbor cells
                // beats scanning its representative list.
                let indexable = grid.is_some() && f.selectivities.len() < MAX_INDEXED_DIMS;
                TemplateIndex { reps: Vec::new(), cells: indexable.then(HashMap::new) }
            });
            idx.reps.push(rep);
            if let (Some(cells), Some((cs, cr))) = (&mut idx.cells, grid) {
                cells.entry(cell_key(&f, cs, cr)).or_default().push(rep);
            }
            self.rep_features.push(f);
        }
        if keep_assignment {
            self.assignment.push(rep);
        }
        Absorption::NewRepresentative(rep)
    }

    /// Check the subsystem invariants: weight conservation, a complete
    /// assignment into the representative range, and positive cluster
    /// weights.
    pub fn validate(&self) -> Result<(), String> {
        let rep_weight = self.representatives.total_weight();
        if (rep_weight - self.original_weight).abs() > 1e-6 * self.original_weight.max(1.0) {
            return Err(format!(
                "weight not conserved: representatives carry {rep_weight}, original {}",
                self.original_weight
            ));
        }
        let n_reps = self.representatives.len() as u32;
        if let Some(bad) = self.assignment.iter().find(|r| r.0 >= n_reps) {
            return Err(format!("assignment targets unknown representative {bad:?}"));
        }
        if self.streaming {
            if !self.assignment.is_empty() {
                return Err("streaming mode must not retain an assignment".into());
            }
            if self.n_absorbed < self.representatives.len() {
                return Err(format!(
                    "absorbed {} statements but hold {} representatives",
                    self.n_absorbed,
                    self.representatives.len()
                ));
            }
        } else if self.assignment.len() != self.n_absorbed {
            return Err(format!(
                "assignment covers {} of {} absorbed statements",
                self.assignment.len(),
                self.n_absorbed
            ));
        }
        for id in self.representatives.ids() {
            if self.representatives.weight(id) <= 0.0 {
                return Err(format!("representative {id:?} has non-positive weight"));
            }
        }
        self.representatives.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_workload::{HetGen, HomGen, Predicate, Query, UpdateGen};

    fn schema() -> Schema {
        TpchGen::default().schema()
    }

    fn mixed(seed: u64, n: usize) -> Workload {
        let s = schema();
        let base = HomGen::new(seed).generate(&s, n);
        UpdateGen::new(seed ^ 0xA5).mix_into(&s, &base, 0.2)
    }

    #[test]
    fn off_is_the_identity() {
        let s = schema();
        let w = mixed(1, 30);
        let cw = CompressedWorkload::compress(&s, &w, CompressionPolicy::Off);
        assert_eq!(cw.n_representatives(), w.len());
        assert_eq!(cw.n_original(), w.len());
        for (i, (id, stmt, weight)) in w.iter().enumerate() {
            assert_eq!(cw.representative_of(i), id);
            assert_eq!(cw.representatives().statement(id), stmt);
            assert_eq!(cw.representatives().weight(id), weight);
        }
        cw.validate().unwrap();
    }

    #[test]
    fn lossless_merges_exact_duplicates_only() {
        let s = schema();
        let w = HomGen::new(2).generate(&s, 20);
        let mut twice = Workload::new();
        for (_, stmt, weight) in w.iter() {
            twice.push_weighted(stmt.clone(), weight);
        }
        for (_, stmt, weight) in w.iter() {
            twice.push_weighted(stmt.clone(), weight);
        }
        let cw = CompressedWorkload::compress(&s, &twice, CompressionPolicy::Lossless);
        assert_eq!(cw.n_representatives(), w.dedup_by_shell().len());
        assert_eq!(cw.n_original(), 2 * w.len());
        // Second copy maps onto the first copy's representatives.
        for i in 0..w.len() {
            assert_eq!(cw.representative_of(i), cw.representative_of(w.len() + i));
        }
        cw.validate().unwrap();
    }

    #[test]
    fn epsilon_zero_equals_lossless() {
        let s = schema();
        for w in [mixed(3, 60), HetGen::new(4).generate(&s, 60)] {
            let a = CompressedWorkload::compress(&s, &w, CompressionPolicy::Lossless);
            let b = CompressedWorkload::compress(&s, &w, CompressionPolicy::Epsilon(0.0));
            assert_eq!(a.assignment(), b.assignment());
            assert_eq!(a.n_representatives(), b.n_representatives());
            for id in a.representatives().ids() {
                assert_eq!(a.representatives().weight(id), b.representatives().weight(id));
                assert_eq!(a.representatives().statement(id), b.representatives().statement(id));
            }
        }
    }

    #[test]
    fn epsilon_compresses_template_workloads_hard() {
        let s = schema();
        let w = HomGen::new(0xC0FFEE).generate(&s, 200);
        let cw = CompressedWorkload::compress(&s, &w, CompressionPolicy::default_epsilon());
        assert!(
            cw.summary().ratio() >= 4.0,
            "W_hom200 must compress ≥ 4× at the default ε: {} reps",
            cw.n_representatives()
        );
        cw.validate().unwrap();
        // Larger ε never yields more representatives... not guaranteed
        // point-wise by greedy clustering, but the extremes must order.
        let lossless = CompressedWorkload::compress(&s, &w, CompressionPolicy::Lossless);
        assert!(cw.n_representatives() <= lossless.n_representatives());
        let coarse = CompressedWorkload::compress(&s, &w, CompressionPolicy::Epsilon(1.0));
        // At ε = 1 every same-template statement merges: 15 templates.
        assert_eq!(coarse.n_representatives(), HomGen::TEMPLATES);
    }

    #[test]
    fn members_stay_within_epsilon_of_their_representative() {
        let s = schema();
        let eps = 0.2;
        let w = mixed(5, 120);
        let cw = CompressedWorkload::compress(&s, &w, CompressionPolicy::Epsilon(eps));
        for (i, (_, stmt, _)) in w.iter().enumerate() {
            let rep = cw.representative_of(i);
            let f = StatementFeatures::extract(&s, stmt);
            let rf = StatementFeatures::extract(&s, cw.representatives().statement(rep));
            let d = f.distance(&rf);
            assert!(d <= eps, "member {i} at distance {d} > ε from its representative");
        }
    }

    #[test]
    fn absorb_is_incremental_and_consistent_with_batch() {
        let s = schema();
        let w = mixed(6, 80);
        let batch = CompressedWorkload::compress(&s, &w, CompressionPolicy::default_epsilon());
        let mut inc = CompressedWorkload::compress(
            &s,
            &Workload::new(),
            CompressionPolicy::default_epsilon(),
        );
        for (_, stmt, weight) in w.iter() {
            inc.absorb(&s, stmt, weight);
        }
        assert_eq!(batch.assignment(), inc.assignment());
        assert_eq!(batch.n_representatives(), inc.n_representatives());
        inc.validate().unwrap();
    }

    #[test]
    fn absorb_duplicate_merges_novel_opens() {
        let s = schema();
        let w = HomGen::new(7).generate(&s, 40);
        let mut cw = CompressedWorkload::compress(&s, &w, CompressionPolicy::Lossless);
        let reps_before = cw.n_representatives();
        // A statement already in the workload merges…
        let (_, dup, _) = w.iter().next().unwrap();
        let a = cw.absorb(&s, dup, 3.0);
        assert!(matches!(a, Absorption::Merged(_)));
        assert_eq!(cw.n_representatives(), reps_before);
        // …while a brand-new shape opens a cluster.
        let li = s.table_by_name("lineitem").unwrap().id;
        let tax = s.resolve("lineitem.l_tax").unwrap();
        let mut q = Query::scan(li);
        q.predicates.push(Predicate::gt(tax, 0.07));
        let b = cw.absorb(&s, &cophy_workload::Statement::Select(q), 1.0);
        assert!(matches!(b, Absorption::NewRepresentative(_)));
        assert_eq!(cw.n_representatives(), reps_before + 1);
        cw.validate().unwrap();
    }

    #[test]
    fn bucket_index_matches_linear_scan() {
        let s = schema();
        for seed in [9u64, 10, 11] {
            for w in [mixed(seed, 150), HetGen::new(seed).generate(&s, 150)] {
                for eps in [0.05, 0.25, 0.6, 1.5] {
                    let policy = CompressionPolicy::Epsilon(eps);
                    let a = CompressedWorkload::compress(&s, &w, policy);
                    let b = CompressedWorkload::compress_unindexed(&s, &w, policy);
                    assert_eq!(
                        a.assignment(),
                        b.assignment(),
                        "seed {seed} ε {eps}: index must reproduce the linear scan"
                    );
                    assert_eq!(a.n_representatives(), b.n_representatives());
                    for id in a.representatives().ids() {
                        assert_eq!(a.representatives().weight(id), b.representatives().weight(id));
                    }
                    a.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn bucket_index_engages_past_the_cutoff_and_stays_exact() {
        // One template, many distinct constants, tiny ε: the template
        // accumulates far more representatives than LINEAR_SCAN_CUTOFF, so
        // the cell enumeration path actually runs — and must keep matching
        // the linear scan exactly.
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let mut w = Workload::new();
        for i in 0..400u32 {
            let mut q = Query::scan(li);
            q.predicates.push(Predicate::lt(sd, 1.0 + i as f64 * 6.1));
            w.push_weighted(Statement::Select(q), 1.0);
        }
        for eps in [0.002, 0.01, 0.08] {
            let policy = CompressionPolicy::Epsilon(eps);
            let a = CompressedWorkload::compress(&s, &w, policy);
            let b = CompressedWorkload::compress_unindexed(&s, &w, policy);
            assert_eq!(a.assignment(), b.assignment(), "ε {eps}");
            assert_eq!(a.n_representatives(), b.n_representatives());
            a.validate().unwrap();
        }
        // Sanity: the tightest ε really produced a deep-template workload.
        let tight = CompressedWorkload::compress(&s, &w, CompressionPolicy::Epsilon(0.002));
        assert!(
            tight.n_representatives() > super::LINEAR_SCAN_CUTOFF,
            "test must exercise the indexed path: {} reps",
            tight.n_representatives()
        );
    }

    #[test]
    fn bucket_index_absorb_matches_batch() {
        let s = schema();
        let w = mixed(12, 100);
        let batch = CompressedWorkload::compress(&s, &w, CompressionPolicy::default_epsilon());
        let mut inc = CompressedWorkload::compress(
            &s,
            &Workload::new(),
            CompressionPolicy::default_epsilon(),
        );
        for (_, stmt, weight) in w.iter() {
            inc.absorb(&s, stmt, weight);
        }
        assert_eq!(batch.assignment(), inc.assignment());
    }

    #[test]
    fn streaming_lossless_matches_batch_representatives() {
        // With Lossless every merge is an exact duplicate, so online
        // re-centering is a mathematical no-op and streaming must reproduce
        // the batch representatives bit for bit — while retaining no
        // assignment.
        let s = schema();
        let w = mixed(14, 90);
        let batch = CompressedWorkload::compress(&s, &w, CompressionPolicy::Lossless);
        let mut stream = CompressedWorkload::streaming(CompressionPolicy::Lossless);
        let mut src = w.source();
        let mut buf = Vec::new();
        while {
            buf.clear();
            cophy_workload::WorkloadSource::next_chunk(&mut src, 17, &mut buf) > 0
        } {
            stream.absorb_chunk(&s, &buf);
        }
        assert!(stream.is_streaming());
        assert!(stream.assignment().is_empty());
        assert_eq!(stream.n_original(), w.len());
        assert_eq!(stream.n_representatives(), batch.n_representatives());
        for id in batch.representatives().ids() {
            assert_eq!(
                batch.representatives().statement(id),
                stream.representatives().statement(id)
            );
            assert_eq!(batch.representatives().weight(id), stream.representatives().weight(id));
        }
        stream.validate().unwrap();
    }

    #[test]
    fn streaming_recenters_toward_member_mean() {
        // Two same-template points within ε: the second merges and must pull
        // the representative's feature point toward the weighted mean.
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let probe = |v: f64| {
            let mut q = Query::scan(li);
            q.predicates.push(Predicate::lt(sd, v));
            cophy_workload::Statement::Select(q)
        };
        let mut cw = CompressedWorkload::streaming(CompressionPolicy::Epsilon(0.5));
        let a = cw.absorb(&s, &probe(500.0), 1.0);
        let rep = a.representative();
        let sel0 = cw.representative_features(rep).unwrap().selectivities[0];
        let b = cw.absorb(&s, &probe(1500.0), 1.0);
        assert!(matches!(b, Absorption::Merged(_)), "points within ε must merge: {b:?}");
        let sel1 = cw.representative_features(rep).unwrap().selectivities[0];
        let member = StatementFeatures::extract(&s, &probe(1500.0)).selectivities[0];
        let mean = (sel0 + member) / 2.0;
        assert!((sel1 - mean).abs() < 1e-12, "centroid {sel1} != member mean {mean}");
        // The representative *statement* stays the first member.
        assert_eq!(cw.representatives().statement(rep), &probe(500.0));
        cw.validate().unwrap();
    }

    #[test]
    fn streaming_grid_stays_consistent_under_recentering() {
        // Deep single-template stream with a tight ε: representatives drift
        // and re-bucket.  Every representative must sit in exactly the cell
        // matching its *current* feature point, or the neighbor enumeration
        // would silently miss merges.
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let mut cw = CompressedWorkload::streaming(CompressionPolicy::Epsilon(0.01));
        for i in 0..400u32 {
            let mut q = Query::scan(li);
            q.predicates.push(Predicate::lt(sd, 1.0 + (i as f64 * 37.0) % 2400.0));
            cw.absorb(&s, &Statement::Select(q), 1.0);
        }
        assert!(
            cw.n_representatives() > LINEAR_SCAN_CUTOFF,
            "test must exercise the indexed path: {} reps",
            cw.n_representatives()
        );
        let (cs, cr) = cw.grid.expect("tight ε must build a grid");
        for (_, idx) in cw.by_template.iter() {
            let cells = idx.cells.as_ref().expect("low-dim template must be indexed");
            for rep in &idx.reps {
                let key = cell_key(&cw.rep_features[rep.0 as usize], cs, cr);
                let home = cells.get(&key).map(Vec::as_slice).unwrap_or_default();
                assert!(home.contains(rep), "{rep:?} missing from its current cell");
                let listings: usize =
                    cells.values().map(|v| v.iter().filter(|r| *r == rep).count()).sum();
                assert_eq!(listings, 1, "{rep:?} listed {listings} times across cells");
            }
        }
        cw.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid compression ε")]
    fn negative_epsilon_rejected() {
        let s = schema();
        let w = HomGen::new(8).generate(&s, 2);
        let _ = CompressedWorkload::compress(&s, &w, CompressionPolicy::Epsilon(-0.1));
    }

    #[test]
    fn policy_validation() {
        assert!(CompressionPolicy::Off.validate().is_ok());
        assert!(CompressionPolicy::Lossless.validate().is_ok());
        assert!(CompressionPolicy::Epsilon(0.0).validate().is_ok());
        assert!(CompressionPolicy::default_epsilon().validate().is_ok());
        assert!(CompressionPolicy::Epsilon(-0.1).validate().is_err());
        assert!(CompressionPolicy::Epsilon(f64::NAN).validate().is_err());
        assert!(CompressionPolicy::Epsilon(f64::INFINITY).validate().is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_workload::{HetGen, HomGen, UpdateGen};
    use proptest::prelude::*;

    fn policy_from(sel: u8, eps: f64) -> CompressionPolicy {
        match sel % 4 {
            0 => CompressionPolicy::Off,
            1 => CompressionPolicy::Lossless,
            2 => CompressionPolicy::Epsilon(0.0),
            _ => CompressionPolicy::Epsilon(eps),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Total workload weight is conserved under every policy, on every
        /// generator family, and the assignment is always complete.
        #[test]
        fn weights_conserved_under_any_policy(
            seed in any::<u64>(),
            n in 1usize..60,
            sel in any::<u8>(),
            eps in 0.0f64..0.8,
        ) {
            let s = TpchGen::default().schema();
            let policy = policy_from(sel, eps);
            for w in [
                HomGen::new(seed).generate(&s, n),
                HetGen::new(seed).generate(&s, n),
                UpdateGen::new(seed).generate(&s, n),
            ] {
                let cw = CompressedWorkload::compress(&s, &w, policy);
                prop_assert!(cw.validate().is_ok(), "{:?}", cw.validate());
                prop_assert_eq!(cw.n_original(), w.len());
                prop_assert!((cw.total_weight() - w.total_weight()).abs() < 1e-9);
                prop_assert!(cw.n_representatives() <= w.len());
            }
        }

        /// `Epsilon(0.0)` and `Lossless` produce identical clusterings.
        #[test]
        fn epsilon_zero_is_lossless(seed in any::<u64>(), n in 1usize..50) {
            let s = TpchGen::default().schema();
            let w = UpdateGen::new(seed).mix_into(&s, &HomGen::new(seed).generate(&s, n), 0.25);
            let a = CompressedWorkload::compress(&s, &w, CompressionPolicy::Lossless);
            let b = CompressedWorkload::compress(&s, &w, CompressionPolicy::Epsilon(0.0));
            prop_assert_eq!(a.assignment(), b.assignment());
        }
    }
}
