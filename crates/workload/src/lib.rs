//! # cophy-workload
//!
//! The workload substrate: a structured query IR (SELECT and UPDATE
//! statements, §2 of the paper) plus the two synthetic workload families of
//! the evaluation:
//!
//! * [`HomGen`] — the *homogeneous* workload `W_hom`: random instantiations of
//!   fifteen TPC-H-like query templates (the paper uses the TPC-H query
//!   generator on fifteen templates);
//! * [`HetGen`] — the *heterogeneous* workload `W_het`: structurally diverse
//!   SPJ queries with group-by and aggregation, modeled on the online
//!   index-selection benchmark's C2 suite [17];
//! * [`UpdateGen`] — UPDATE statements, modeled as a query shell plus an
//!   update shell with per-index maintenance costs (§2).
//!
//! Statements observe the paper's simplifying assumption that each statement
//! references a table at most once; generators enforce it by construction and
//! [`Query::validate`] checks it.

pub mod features;
pub mod gen_het;
pub mod gen_hom;
pub mod gen_update;
pub mod query;
pub mod source;
pub mod sql;
pub mod workload;

pub use features::{shell_key, template_key, ShellKey, StatementFeatures, TemplateKey};
pub use gen_het::{HetGen, HetStream};
pub use gen_hom::{HomGen, HomStream};
pub use gen_update::{UpdateGen, UpdateStream};
pub use query::{AggFunc, Aggregate, Join, PredOp, Predicate, Query, Statement, UpdateStatement};
pub use source::{drain_to_workload, WorkloadCursor, WorkloadSource, DEFAULT_CHUNK};
pub use workload::{QueryId, Workload};
