//! The heterogeneous workload generator `W_het`.
//!
//! The paper's `W_het` comes from an index-tuning benchmark [17] (the C2 suite
//! with the most complex templates): SPJ queries with group-by and
//! aggregation, spanning *many more distinct templates* than `W_hom`.  We
//! reproduce the property that matters — structural diversity — by sampling
//! random connected subgraphs of the TPC-H foreign-key join graph and
//! attaching random sargable predicates, projections, group-bys and
//! order-bys.  With the default knobs, a 1000-query workload contains several
//! hundred structurally distinct shapes, which defeats sampling-based
//! workload compression (Figure 9 / Table 1).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use cophy_catalog::{ColumnId, ColumnRef, ColumnType, Schema, TableId};

use crate::query::{AggFunc, Aggregate, Join, Predicate, Query, Statement};
use crate::workload::Workload;

/// A foreign-key edge of the TPC-H join graph, by column names.
const FK_EDGES: &[(&str, &str)] = &[
    ("nation.n_regionkey", "region.r_regionkey"),
    ("supplier.s_nationkey", "nation.n_nationkey"),
    ("customer.c_nationkey", "nation.n_nationkey"),
    ("partsupp.ps_partkey", "part.p_partkey"),
    ("partsupp.ps_suppkey", "supplier.s_suppkey"),
    ("orders.o_custkey", "customer.c_custkey"),
    ("lineitem.l_orderkey", "orders.o_orderkey"),
    ("lineitem.l_partkey", "part.p_partkey"),
    ("lineitem.l_suppkey", "supplier.s_suppkey"),
];

/// Generator for the heterogeneous SPJ/aggregate workload.
#[derive(Debug, Clone, Copy)]
pub struct HetGen {
    pub seed: u64,
    /// Maximum number of joined tables per query (≥ 1).
    pub max_tables: usize,
    /// Maximum number of predicates per referenced table.
    pub max_preds_per_table: usize,
}

impl HetGen {
    pub fn new(seed: u64) -> Self {
        HetGen { seed, max_tables: 4, max_preds_per_table: 2 }
    }

    /// Generate `n` SELECT statements over the TPC-H `schema`.
    ///
    /// Equivalent to draining [`HetGen::stream`]; the two are bit-identical.
    pub fn generate(&self, schema: &Schema, n: usize) -> Workload {
        crate::source::drain_to_workload(&mut self.stream(schema, n))
    }

    /// Stream `n` SELECT statements lazily, chunk by chunk.
    pub fn stream<'a>(&self, schema: &'a Schema, n: usize) -> HetStream<'a> {
        let edges: Vec<(ColumnRef, ColumnRef)> = FK_EDGES
            .iter()
            .map(|(a, b)| {
                (
                    schema.resolve(a).unwrap_or_else(|| panic!("missing {a}")),
                    schema.resolve(b).unwrap_or_else(|| panic!("missing {b}")),
                )
            })
            .collect();
        HetStream {
            gen: *self,
            schema,
            edges,
            rng: SmallRng::seed_from_u64(self.seed),
            produced: 0,
            n,
        }
    }

    /// Sample one random SPJ/aggregate query.
    fn random_query(
        &self,
        schema: &Schema,
        edges: &[(ColumnRef, ColumnRef)],
        rng: &mut SmallRng,
    ) -> Query {
        // 1. Grow a connected table set along FK edges.
        let n_tables = rng.gen_range(1..=self.max_tables.max(1));
        let start = TableId(rng.gen_range(0..schema.n_tables() as u32));
        let mut tables = vec![start];
        let mut joins: Vec<Join> = Vec::new();
        while tables.len() < n_tables {
            let mut frontier: Vec<(ColumnRef, ColumnRef)> = edges
                .iter()
                .filter(|(a, b)| tables.contains(&a.table) != tables.contains(&b.table))
                .copied()
                .collect();
            if frontier.is_empty() {
                break;
            }
            frontier.shuffle(rng);
            let (a, b) = frontier[0];
            let newcomer = if tables.contains(&a.table) { b.table } else { a.table };
            tables.push(newcomer);
            joins.push(Join::new(a, b));
        }

        // 2. Random sargable predicates per table; the biggest table always
        //    gets at least one (a fact-table filter, as in the C2 suite).
        let mut predicates = Vec::new();
        let biggest =
            tables.iter().copied().max_by_key(|t| schema.table(*t).rows).expect("non-empty");
        for &t in &tables {
            let table = schema.table(t);
            let min_preds = usize::from(t == biggest);
            let n_preds = rng.gen_range(min_preds..=self.max_preds_per_table.max(min_preds));
            for _ in 0..n_preds {
                let col = ColumnId(rng.gen_range(0..table.columns.len() as u32));
                // Skip wide comment columns: real generators don't filter them.
                if matches!(table.column(col).ty, ColumnType::Varchar(n) if n > 60) {
                    continue;
                }
                let stats = &table.column(col).stats;
                let cref = ColumnRef::new(t, col);
                // The C2 benchmark suite this mirrors uses *selective*
                // predicates — that is what makes index tuning worthwhile.
                let p = if rng.gen_bool(0.45) && stats.ndv >= 50 {
                    let v = rng.gen_range(stats.min..=stats.max.max(stats.min + 1e-9));
                    Predicate::eq(cref, v.floor())
                } else {
                    let span = (stats.max - stats.min).max(1e-9);
                    let width = span * rng.gen_range(0.002..0.06);
                    let lo = rng.gen_range(stats.min..=(stats.max - width).max(stats.min));
                    Predicate::between(cref, lo, lo + width)
                };
                predicates.push(p);
            }
        }

        // 3. Projections: a few narrow columns from random tables.
        let mut projections = Vec::new();
        for &t in &tables {
            let table = schema.table(t);
            if rng.gen_bool(0.7) {
                let col = ColumnId(rng.gen_range(0..table.columns.len() as u32));
                let cref = ColumnRef::new(t, col);
                if !projections.contains(&cref) {
                    projections.push(cref);
                }
            }
        }

        // 4. Group-by + aggregates (C2-suite style) or plain order-by.
        let mut group_by = Vec::new();
        let mut aggregates = Vec::new();
        let mut order_by = Vec::new();
        if rng.gen_bool(0.6) {
            let t = *tables.choose(rng).expect("non-empty");
            let table = schema.table(t);
            // group on a low-cardinality column when possible
            let mut cands: Vec<ColumnId> = (0..table.columns.len() as u32)
                .map(ColumnId)
                .filter(|c| table.column(*c).stats.ndv <= 10_000)
                .collect();
            if cands.is_empty() {
                cands.push(ColumnId(0));
            }
            let g = *cands.choose(rng).expect("non-empty");
            group_by.push(ColumnRef::new(t, g));
            let funcs = [AggFunc::Sum, AggFunc::Avg, AggFunc::Count, AggFunc::Min, AggFunc::Max];
            let f = *funcs.choose(rng).expect("non-empty");
            let agg_col = if matches!(f, AggFunc::Count) {
                None
            } else {
                let t2 = *tables.choose(rng).expect("non-empty");
                let table2 = schema.table(t2);
                let numeric: Vec<ColumnId> = (0..table2.columns.len() as u32)
                    .map(ColumnId)
                    .filter(|c| {
                        matches!(
                            table2.column(*c).ty,
                            ColumnType::Int | ColumnType::Decimal | ColumnType::Float
                        )
                    })
                    .collect();
                numeric.choose(rng).map(|c| ColumnRef::new(t2, *c))
            };
            if agg_col.is_some() || matches!(f, AggFunc::Count) {
                aggregates.push(Aggregate { func: f, column: agg_col });
            } else {
                aggregates.push(Aggregate { func: AggFunc::Count, column: None });
            }
        } else if rng.gen_bool(0.65) {
            let t = tables[0];
            let table = schema.table(t);
            let col = ColumnId(rng.gen_range(0..table.columns.len() as u32));
            order_by.push(ColumnRef::new(t, col));
        }

        Query { tables, projections, predicates, joins, group_by, aggregates, order_by }
    }
}

/// Lazy [`WorkloadSource`](crate::source::WorkloadSource) over [`HetGen`]:
/// produces the exact statement sequence of `generate(schema, n)` without
/// materializing the workload.
#[derive(Debug)]
pub struct HetStream<'a> {
    gen: HetGen,
    schema: &'a Schema,
    edges: Vec<(ColumnRef, ColumnRef)>,
    rng: SmallRng,
    produced: usize,
    n: usize,
}

impl crate::source::WorkloadSource for HetStream<'_> {
    fn next_chunk(&mut self, max: usize, out: &mut Vec<(Statement, f64)>) -> usize {
        let take = max.min(self.n - self.produced);
        for _ in 0..take {
            let q = self.gen.random_query(self.schema, &self.edges, &mut self.rng);
            debug_assert!(q.validate().is_ok(), "{:?}", q.validate());
            out.push((Statement::Select(q), 1.0));
            self.produced += 1;
        }
        take
    }

    fn remaining(&self) -> Option<usize> {
        Some(self.n - self.produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use std::collections::BTreeSet;

    #[test]
    fn generates_and_validates() {
        let s = TpchGen::default().schema();
        let w = HetGen::new(5).generate(&s, 200);
        assert_eq!(w.len(), 200);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        let s = TpchGen::default().schema();
        let a = HetGen::new(5).generate(&s, 40);
        let b = HetGen::new(5).generate(&s, 40);
        for (id, stmt, _) in a.iter() {
            assert_eq!(stmt, b.statement(id));
        }
    }

    #[test]
    fn much_more_diverse_than_hom() {
        let s = TpchGen::default().schema();
        let shape = |w: &Workload| -> BTreeSet<String> {
            w.iter()
                .map(|(_, stmt, _)| {
                    let q = stmt.read_shell();
                    // structural fingerprint: tables + predicate columns + group/order
                    format!(
                        "{:?}|{:?}|{:?}|{:?}",
                        q.tables,
                        q.predicates.iter().map(|p| p.column).collect::<Vec<_>>(),
                        q.group_by,
                        q.order_by
                    )
                })
                .collect()
        };
        let hom = shape(&crate::gen_hom::HomGen::new(1).generate(&s, 300));
        let het = shape(&HetGen::new(1).generate(&s, 300));
        assert!(het.len() > 2 * hom.len(), "het {} shapes vs hom {} shapes", het.len(), hom.len());
    }

    #[test]
    fn join_graphs_are_connected() {
        let s = TpchGen::default().schema();
        let w = HetGen::new(17).generate(&s, 100);
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            if q.tables.len() <= 1 {
                continue;
            }
            // BFS over join edges must reach every referenced table.
            let mut seen = vec![q.tables[0]];
            let mut frontier = vec![q.tables[0]];
            while let Some(t) = frontier.pop() {
                for j in q.joins_on(t) {
                    let (_, remote) = j.side(t).unwrap();
                    if !seen.contains(&remote.table) {
                        seen.push(remote.table);
                        frontier.push(remote.table);
                    }
                }
            }
            assert_eq!(seen.len(), q.tables.len(), "disconnected join graph: {q:?}");
        }
    }
}
