//! Per-statement feature extraction for workload compression.
//!
//! Large workloads are dominated by *statements that differ only in their
//! constants* (the paper's `W_hom` is fifteen templates instantiated
//! thousands of times).  Compression clusters such statements and tunes a
//! weighted representative set; this module provides the signal it clusters
//! on:
//!
//! * [`TemplateKey`] — the structural shell of a statement with constants
//!   erased: tables touched, sargable columns and their comparison shapes,
//!   join edges, GROUP BY / ORDER BY interesting orders, projections,
//!   aggregates, and the update footprint (SET columns).  Two statements with
//!   different template keys never cluster together.
//! * [`ShellKey`] — the exact shell *including* constants (bit-exact), used
//!   for lossless exact-duplicate merging.
//! * [`StatementFeatures`] — both keys plus the numeric features that vary
//!   within a template: per-predicate selectivities against the catalog
//!   statistics and the estimated update row footprint.
//!
//! [`StatementFeatures::distance`] is the template-aware metric the greedy
//! ε-bounded agglomeration uses: `∞` across different templates, `0` exactly
//! for identical shells, and otherwise the largest absolute selectivity
//! deviation (plus the relative update-footprint deviation), clamped
//! positive so that `ε = 0` merges nothing but exact duplicates.

use serde::{Deserialize, Serialize};

use cophy_catalog::{ColumnRef, Schema};

use crate::query::{Aggregate, PredOp, Query, Statement};

/// Structural shell signature of a statement with constants erased.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateKey(Vec<u64>);

/// Exact shell signature of a statement, constants included (bit-exact).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShellKey(Vec<u64>);

/// The clustering features of one statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatementFeatures {
    pub template: TemplateKey,
    pub shell: ShellKey,
    /// Per-predicate selectivities of the read shell, in predicate order
    /// (statements with equal [`TemplateKey`]s have aligned predicate lists).
    pub selectivities: Vec<f64>,
    /// Estimated rows touched by the update shell (0 for SELECTs).
    pub update_rows: f64,
}

impl StatementFeatures {
    /// Extract the features of `stmt` against the catalog statistics.
    pub fn extract(schema: &Schema, stmt: &Statement) -> StatementFeatures {
        let q = stmt.read_shell();
        let selectivities = q.predicates.iter().map(|p| p.selectivity(schema)).collect();
        let update_rows = match stmt {
            Statement::Select(_) => 0.0,
            Statement::Update(u) => {
                let t = schema.table(u.table());
                (q.local_selectivity(schema, u.table()) * t.rows as f64).max(1.0)
            }
        };
        let (template, shell) = keys(stmt);
        StatementFeatures { template, shell, selectivities, update_rows }
    }

    /// Template-aware clustering distance.
    ///
    /// * `∞` if the structural templates differ (never cluster),
    /// * `0` exactly when the shells are identical (exact duplicates),
    /// * otherwise `max(largest |Δselectivity|, relative Δupdate-rows)`,
    ///   clamped to a positive value — so a threshold of `0` merges exact
    ///   duplicates and nothing else.
    pub fn distance(&self, other: &StatementFeatures) -> f64 {
        if self.template != other.template {
            return f64::INFINITY;
        }
        if self.shell == other.shell {
            return 0.0;
        }
        debug_assert_eq!(
            self.selectivities.len(),
            other.selectivities.len(),
            "equal templates must have aligned predicate lists"
        );
        let mut d = 0.0f64;
        for (a, b) in self.selectivities.iter().zip(other.selectivities.iter()) {
            d = d.max((a - b).abs());
        }
        let rows = self.update_rows.max(other.update_rows);
        if rows > 0.0 {
            d = d.max((self.update_rows - other.update_rows).abs() / rows.max(1.0));
        }
        // Distinct shells are never at distance zero.
        d.max(f64::MIN_POSITIVE)
    }
}

impl Statement {
    /// The clustering features of this statement (see [`StatementFeatures`]).
    pub fn features(&self, schema: &Schema) -> StatementFeatures {
        StatementFeatures::extract(schema, self)
    }
}

/// Both keys of `stmt` in one traversal (the hot path of compression —
/// called once per absorbed statement).
pub fn keys(stmt: &Statement) -> (TemplateKey, ShellKey) {
    let e = encode(stmt);
    (TemplateKey(e.template), ShellKey(e.shell))
}

/// The structural template key of `stmt` (constants erased).
pub fn template_key(stmt: &Statement) -> TemplateKey {
    keys(stmt).0
}

/// The exact shell key of `stmt` (constants included, bit-exact).
pub fn shell_key(stmt: &Statement) -> ShellKey {
    keys(stmt).1
}

/// Word-stream encoder emitting both key streams in one pass: structural
/// words go to both, constants only to the shell stream.  Every section is
/// tagged and length-prefixed so that sections cannot alias each other.
struct Enc {
    template: Vec<u64>,
    shell: Vec<u64>,
}

impl Enc {
    fn new() -> Enc {
        Enc { template: Vec::with_capacity(24), shell: Vec::with_capacity(32) }
    }

    fn word(&mut self, w: u64) {
        self.template.push(w);
        self.shell.push(w);
    }

    fn section(&mut self, tag: u64, len: usize) {
        self.word((tag << 32) | len as u64);
    }

    fn col(&mut self, c: &ColumnRef) {
        self.word(((c.table.0 as u64) << 32) | c.column.0 as u64);
    }

    /// A constant: part of the shell, erased from the template.
    fn constant(&mut self, v: f64) {
        self.shell.push(v.to_bits());
    }
}

fn encode_query(e: &mut Enc, q: &Query) {
    e.section(1, q.tables.len());
    for t in &q.tables {
        e.word(t.0 as u64);
    }
    e.section(2, q.predicates.len());
    for p in &q.predicates {
        e.col(&p.column);
        match p.op {
            PredOp::Eq(v) => {
                e.word(0);
                e.constant(v);
            }
            PredOp::Lt(v) => {
                e.word(1);
                e.constant(v);
            }
            PredOp::Gt(v) => {
                e.word(2);
                e.constant(v);
            }
            PredOp::Between(a, b) => {
                e.word(3);
                e.constant(a);
                e.constant(b);
            }
        }
    }
    e.section(3, q.joins.len());
    for j in &q.joins {
        e.col(&j.left);
        e.col(&j.right);
    }
    e.section(4, q.projections.len());
    for c in &q.projections {
        e.col(c);
    }
    e.section(5, q.group_by.len());
    for c in &q.group_by {
        e.col(c);
    }
    e.section(6, q.order_by.len());
    for c in &q.order_by {
        e.col(c);
    }
    e.section(7, q.aggregates.len());
    for Aggregate { func, column } in &q.aggregates {
        e.word(*func as u64);
        match column {
            Some(c) => e.col(c),
            None => e.word(u64::MAX),
        }
    }
}

fn encode(stmt: &Statement) -> Enc {
    let mut e = Enc::new();
    match stmt {
        Statement::Select(q) => {
            e.section(0, 0);
            encode_query(&mut e, q);
        }
        Statement::Update(u) => {
            e.section(8, u.set_columns.len());
            for c in &u.set_columns {
                e.word(c.0 as u64);
            }
            encode_query(&mut e, &u.shell);
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_hom::HomGen;
    use crate::query::{Predicate, UpdateStatement};
    use cophy_catalog::TpchGen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        TpchGen::default().schema()
    }

    #[test]
    fn same_template_different_constants_share_template_key() {
        let s = schema();
        let gen = HomGen::new(5);
        let mut rng = SmallRng::seed_from_u64(1);
        for t in 0..HomGen::TEMPLATES {
            let a = Statement::Select(gen.instantiate(&s, t, &mut rng));
            let b = Statement::Select(gen.instantiate(&s, t, &mut rng));
            assert_eq!(template_key(&a), template_key(&b), "template {t}");
        }
    }

    #[test]
    fn different_templates_have_different_keys_and_infinite_distance() {
        let s = schema();
        let gen = HomGen::new(5);
        let mut rng = SmallRng::seed_from_u64(2);
        let stmts: Vec<Statement> = (0..HomGen::TEMPLATES)
            .map(|t| Statement::Select(gen.instantiate(&s, t, &mut rng)))
            .collect();
        for i in 0..stmts.len() {
            for j in (i + 1)..stmts.len() {
                assert_ne!(template_key(&stmts[i]), template_key(&stmts[j]), "{i} vs {j}");
                let fi = stmts[i].features(&s);
                let fj = stmts[j].features(&s);
                assert!(fi.distance(&fj).is_infinite());
            }
        }
    }

    #[test]
    fn shell_key_separates_constants_distance_is_positive_and_bounded() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let mk = |v: f64| {
            let mut q = Query::scan(li);
            q.predicates.push(Predicate::lt(sd, v));
            Statement::Select(q)
        };
        let (a, b) = (mk(100.0), mk(900.0));
        assert_eq!(template_key(&a), template_key(&b));
        assert_ne!(shell_key(&a), shell_key(&b));
        let (fa, fb) = (a.features(&s), b.features(&s));
        let d = fa.distance(&fb);
        assert!(d > 0.0 && d <= 1.0, "selectivity distance in (0, 1]: {d}");
        assert_eq!(fa.distance(&fa), 0.0, "identical shells are at distance 0");
    }

    #[test]
    fn update_set_columns_split_templates() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let ok = s.resolve("lineitem.l_orderkey").unwrap();
        let mk = |set: Vec<cophy_catalog::ColumnId>| {
            let mut shell = Query::scan(li);
            shell.predicates.push(Predicate::eq(ok, 7.0));
            Statement::Update(UpdateStatement { shell, set_columns: set })
        };
        let a = mk(vec![cophy_catalog::ColumnId(4)]);
        let b = mk(vec![cophy_catalog::ColumnId(6)]);
        assert_ne!(template_key(&a), template_key(&b));
        // An update and its read shell are different templates too.
        let sel = {
            let mut q = Query::scan(li);
            q.predicates.push(Predicate::eq(ok, 7.0));
            Statement::Select(q)
        };
        assert_ne!(template_key(&a), template_key(&sel));
    }

    #[test]
    fn update_rows_feature_tracks_selectivity() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let ok = s.resolve("lineitem.l_orderkey").unwrap();
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let point = {
            let mut shell = Query::scan(li);
            shell.predicates.push(Predicate::eq(ok, 7.0));
            Statement::Update(UpdateStatement { shell, set_columns: vec![ok.column] })
        };
        let range = {
            let mut shell = Query::scan(li);
            shell.predicates.push(Predicate::between(sd, 0.0, 1000.0));
            Statement::Update(UpdateStatement { shell, set_columns: vec![ok.column] })
        };
        let fp = point.features(&s);
        let fr = range.features(&s);
        assert!(fp.update_rows >= 1.0);
        assert!(fr.update_rows > fp.update_rows, "range update touches more rows");
        // SELECTs carry no update footprint.
        let sel = Statement::Select(Query::scan(li)).features(&s);
        assert_eq!(sel.update_rows, 0.0);
    }
}
