//! SQL pretty-printing for the query IR.
//!
//! Purely for human consumption: examples, logs and the bench harness print
//! statements in a familiar form.  Numeric constants that stand for
//! dictionary-encoded strings/dates are printed as-is.

use std::fmt::Write as _;

use cophy_catalog::{ColumnRef, Schema};

use crate::query::{AggFunc, PredOp, Query, Statement, UpdateStatement};

fn col(schema: &Schema, c: ColumnRef) -> String {
    let t = schema.table(c.table);
    format!("{}.{}", t.name, t.column(c.column).name)
}

/// Render a SELECT query as SQL text.
pub fn format_query(schema: &Schema, q: &Query) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("SELECT ");
    let mut items: Vec<String> = q.projections.iter().map(|c| col(schema, *c)).collect();
    for g in &q.group_by {
        let g = col(schema, *g);
        if !items.contains(&g) {
            items.push(g);
        }
    }
    for a in &q.aggregates {
        let f = match a.func {
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Count => "COUNT",
        };
        match &a.column {
            Some(c) => items.push(format!("{f}({})", col(schema, *c))),
            None => items.push("COUNT(*)".to_string()),
        }
    }
    if items.is_empty() {
        items.push("*".to_string());
    }
    out.push_str(&items.join(", "));

    out.push_str("\nFROM ");
    let tables: Vec<&str> = q.tables.iter().map(|t| schema.table(*t).name.as_str()).collect();
    out.push_str(&tables.join(", "));

    let mut conds: Vec<String> = Vec::new();
    for j in &q.joins {
        conds.push(format!("{} = {}", col(schema, j.left), col(schema, j.right)));
    }
    for p in &q.predicates {
        let c = col(schema, p.column);
        match p.op {
            PredOp::Eq(v) => conds.push(format!("{c} = {v}")),
            PredOp::Lt(v) => conds.push(format!("{c} < {v}")),
            PredOp::Gt(v) => conds.push(format!("{c} > {v}")),
            PredOp::Between(a, b) => conds.push(format!("{c} BETWEEN {a} AND {b}")),
        }
    }
    if !conds.is_empty() {
        let _ = write!(out, "\nWHERE {}", conds.join("\n  AND "));
    }
    if !q.group_by.is_empty() {
        let g: Vec<String> = q.group_by.iter().map(|c| col(schema, *c)).collect();
        let _ = write!(out, "\nGROUP BY {}", g.join(", "));
    }
    if !q.order_by.is_empty() {
        let o: Vec<String> = q.order_by.iter().map(|c| col(schema, *c)).collect();
        let _ = write!(out, "\nORDER BY {}", o.join(", "));
    }
    out
}

/// Render an UPDATE statement as SQL text.
pub fn format_update(schema: &Schema, u: &UpdateStatement) -> String {
    let t = schema.table(u.table());
    let sets: Vec<String> =
        u.set_columns.iter().map(|c| format!("{} = ?", t.column(*c).name)).collect();
    let mut out = format!("UPDATE {}\nSET {}", t.name, sets.join(", "));
    let conds: Vec<String> = u
        .shell
        .predicates
        .iter()
        .map(|p| {
            let c = col(schema, p.column);
            match p.op {
                PredOp::Eq(v) => format!("{c} = {v}"),
                PredOp::Lt(v) => format!("{c} < {v}"),
                PredOp::Gt(v) => format!("{c} > {v}"),
                PredOp::Between(a, b) => format!("{c} BETWEEN {a} AND {b}"),
            }
        })
        .collect();
    if !conds.is_empty() {
        let _ = write!(out, "\nWHERE {}", conds.join(" AND "));
    }
    out
}

/// Render any statement.
pub fn format_statement(schema: &Schema, s: &Statement) -> String {
    match s {
        Statement::Select(q) => format_query(schema, q),
        Statement::Update(u) => format_update(schema, u),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_hom::HomGen;
    use crate::gen_update::UpdateGen;
    use cophy_catalog::TpchGen;

    #[test]
    fn select_contains_clauses() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(1).generate(&s, 15);
        let mut saw_group = false;
        let mut saw_order = false;
        for (_, stmt, _) in w.iter() {
            let sql = format_statement(&s, stmt);
            assert!(sql.starts_with("SELECT"));
            assert!(sql.contains("FROM"));
            saw_group |= sql.contains("GROUP BY");
            saw_order |= sql.contains("ORDER BY");
        }
        assert!(saw_group && saw_order);
    }

    #[test]
    fn update_format() {
        let s = TpchGen::default().schema();
        let w = UpdateGen::new(1).generate(&s, 5);
        for (_, stmt, _) in w.iter() {
            let sql = format_statement(&s, stmt);
            assert!(sql.starts_with("UPDATE"));
            assert!(sql.contains("SET"));
            assert!(sql.contains("WHERE"));
        }
    }

    #[test]
    fn empty_projection_prints_star() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let q = Query::scan(li);
        let sql = format_query(&s, &q);
        assert!(sql.contains('*'));
    }
}
