//! The query IR.
//!
//! A deliberately small relational core — selections, equi-joins, group-by
//! with aggregates, order-by, projections — which is exactly the fragment the
//! INUM template-plan model covers (template plans fix the internal operators
//! and leave per-table *access* slots open).  Everything is resolved to
//! catalog ids; there is no name resolution at optimization time.

use serde::{Deserialize, Serialize};

use cophy_catalog::{ColumnId, ColumnRef, Schema, TableId};

/// Comparison operator of a local (single-table) predicate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredOp {
    /// `col = v`
    Eq(f64),
    /// `col < v`
    Lt(f64),
    /// `col > v`
    Gt(f64),
    /// `a <= col <= b`
    Between(f64, f64),
}

/// A sargable predicate on one column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    pub column: ColumnRef,
    pub op: PredOp,
}

impl Predicate {
    pub fn eq(column: ColumnRef, v: f64) -> Self {
        Predicate { column, op: PredOp::Eq(v) }
    }

    pub fn lt(column: ColumnRef, v: f64) -> Self {
        Predicate { column, op: PredOp::Lt(v) }
    }

    pub fn gt(column: ColumnRef, v: f64) -> Self {
        Predicate { column, op: PredOp::Gt(v) }
    }

    pub fn between(column: ColumnRef, a: f64, b: f64) -> Self {
        Predicate { column, op: PredOp::Between(a, b) }
    }

    /// Is this an equality predicate (binds one key column exactly)?
    pub fn is_eq(&self) -> bool {
        matches!(self.op, PredOp::Eq(_))
    }

    /// Estimated selectivity against the catalog statistics.
    pub fn selectivity(&self, schema: &Schema) -> f64 {
        let stats = &schema.table(self.column.table).column(self.column.column).stats;
        let sel = match self.op {
            PredOp::Eq(v) => stats.eq_selectivity_at(v).max(stats.eq_selectivity() * 0.1),
            PredOp::Lt(v) => stats.lt_selectivity(v),
            PredOp::Gt(v) => 1.0 - stats.lt_selectivity(v),
            PredOp::Between(a, b) => stats.range_selectivity(a, b),
        };
        sel.clamp(1e-9, 1.0)
    }
}

/// An equi-join edge between two table references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Join {
    pub left: ColumnRef,
    pub right: ColumnRef,
}

impl Join {
    pub fn new(left: ColumnRef, right: ColumnRef) -> Self {
        Join { left, right }
    }

    /// Does this edge touch `table`? Returns the local and remote column.
    pub fn side(&self, table: TableId) -> Option<(ColumnRef, ColumnRef)> {
        if self.left.table == table {
            Some((self.left, self.right))
        } else if self.right.table == table {
            Some((self.right, self.left))
        } else {
            None
        }
    }
}

/// Aggregate functions supported by the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    Sum,
    Avg,
    Min,
    Max,
    Count,
}

/// One aggregate in the SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    pub func: AggFunc,
    /// `None` means `COUNT(*)`.
    pub column: Option<ColumnRef>,
}

/// A SELECT query (or the *query shell* `q_r` of an UPDATE).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Referenced tables; per the paper's assumption each appears once.
    pub tables: Vec<TableId>,
    /// Plain projected columns (columns an index must cover to avoid heap
    /// lookups); aggregate inputs are tracked separately.
    pub projections: Vec<ColumnRef>,
    /// Local sargable predicates.
    pub predicates: Vec<Predicate>,
    /// Equi-join edges; the join graph must be connected over `tables`.
    pub joins: Vec<Join>,
    pub group_by: Vec<ColumnRef>,
    pub aggregates: Vec<Aggregate>,
    /// ORDER BY columns, ascending.
    pub order_by: Vec<ColumnRef>,
}

impl Query {
    /// A single-table scan query.
    pub fn scan(table: TableId) -> Self {
        Query { tables: vec![table], ..Default::default() }
    }

    /// Check IR invariants: unique table refs, all column refs on referenced
    /// tables, join edges between two distinct referenced tables.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.tables.iter().enumerate() {
            if self.tables[i + 1..].contains(t) {
                return Err(format!("table {t:?} referenced more than once"));
            }
        }
        let on_ref = |c: &ColumnRef| self.tables.contains(&c.table);
        for c in self.projections.iter().chain(self.group_by.iter()).chain(self.order_by.iter()) {
            if !on_ref(c) {
                return Err(format!("column {c:?} not on a referenced table"));
            }
        }
        for p in &self.predicates {
            if !on_ref(&p.column) {
                return Err(format!("predicate column {:?} not referenced", p.column));
            }
        }
        for a in &self.aggregates {
            if let Some(c) = &a.column {
                if !on_ref(c) {
                    return Err(format!("aggregate column {c:?} not referenced"));
                }
            }
        }
        for j in &self.joins {
            if j.left.table == j.right.table {
                return Err("self-join edge".into());
            }
            if !on_ref(&j.left) || !on_ref(&j.right) {
                return Err("join edge touches unreferenced table".into());
            }
        }
        Ok(())
    }

    /// Local predicates on `table`.
    pub fn predicates_on(&self, table: TableId) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(move |p| p.column.table == table)
    }

    /// Columns of `table` bound by equality predicates.
    pub fn eq_columns_on(&self, table: TableId) -> Vec<ColumnId> {
        self.predicates_on(table).filter(|p| p.is_eq()).map(|p| p.column.column).collect()
    }

    /// Combined selectivity of the local predicates on `table`
    /// (independence assumption).
    pub fn local_selectivity(&self, schema: &Schema, table: TableId) -> f64 {
        self.predicates_on(table).map(|p| p.selectivity(schema)).product::<f64>().clamp(1e-12, 1.0)
    }

    /// Every column of `table` the query touches in any clause — the set an
    /// index must cover for an index-only access of this table.
    pub fn columns_used_on(&self, table: TableId) -> Vec<ColumnId> {
        let mut cols: Vec<ColumnId> = Vec::new();
        let mut push = |c: &ColumnRef| {
            if c.table == table && !cols.contains(&c.column) {
                cols.push(c.column);
            }
        };
        for c in &self.projections {
            push(c);
        }
        for p in &self.predicates {
            push(&p.column);
        }
        for j in &self.joins {
            push(&j.left);
            push(&j.right);
        }
        for c in self.group_by.iter().chain(self.order_by.iter()) {
            push(c);
        }
        for a in &self.aggregates {
            if let Some(c) = &a.column {
                push(c);
            }
        }
        cols
    }

    /// Join edges incident to `table`.
    pub fn joins_on(&self, table: TableId) -> impl Iterator<Item = &Join> {
        self.joins.iter().filter(move |j| j.side(table).is_some())
    }

    /// Interesting orders for `table` in this query: per-table prefixes of
    /// ORDER BY / GROUP BY lists plus join columns (useful for merge joins).
    /// Each entry is an ordered column list an access path could deliver.
    pub fn interesting_orders_on(&self, table: TableId) -> Vec<Vec<ColumnId>> {
        let mut orders: Vec<Vec<ColumnId>> = Vec::new();
        let mut add = |o: Vec<ColumnId>| {
            if !o.is_empty() && !orders.contains(&o) {
                orders.push(o);
            }
        };
        // ORDER BY prefix belonging to this table (only a *leading* prefix of
        // the ORDER BY can be satisfied by a single table's access order).
        let ob: Vec<ColumnId> =
            self.order_by.iter().take_while(|c| c.table == table).map(|c| c.column).collect();
        add(ob);
        // GROUP BY columns on this table (any order helps sort-based grouping;
        // we use catalog order for determinism).
        let gb: Vec<ColumnId> =
            self.group_by.iter().filter(|c| c.table == table).map(|c| c.column).collect();
        add(gb);
        // Join columns, one order per incident edge.
        for j in self.joins_on(table) {
            let (local, _) = j.side(table).expect("edge is incident");
            add(vec![local.column]);
        }
        orders
    }

    /// Is this a point/selective lookup query shape (single table, equality
    /// predicate)? Used by candidate-generation heuristics.
    pub fn is_single_table(&self) -> bool {
        self.tables.len() == 1
    }
}

/// An UPDATE statement, modeled per §2 as query shell + update shell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStatement {
    /// The query shell `q_r`: selects the rows to be updated (single table).
    pub shell: Query,
    /// Columns assigned by the SET clause.
    pub set_columns: Vec<ColumnId>,
}

impl UpdateStatement {
    pub fn table(&self) -> TableId {
        self.shell.tables[0]
    }

    /// Is index `ix` affected by this update (must be maintained)?
    ///
    /// An index on the updated table pays maintenance if it materializes any
    /// SET column (entry re-write) — clustered indexes always pay because the
    /// row itself is stored in them.
    pub fn affects(&self, ix: &cophy_catalog::Index) -> bool {
        ix.table == self.table()
            && (ix.is_clustered() || self.set_columns.iter().any(|c| ix.contains(*c)))
    }

    pub fn validate(&self) -> Result<(), String> {
        self.shell.validate()?;
        if self.shell.tables.len() != 1 {
            return Err("update shell must reference exactly one table".into());
        }
        if self.set_columns.is_empty() {
            return Err("update must set at least one column".into());
        }
        Ok(())
    }
}

/// A workload statement: SELECT or UPDATE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    Select(Query),
    Update(UpdateStatement),
}

impl Statement {
    /// The SELECT body or the UPDATE's query shell — the part INUM processes.
    pub fn read_shell(&self) -> &Query {
        match self {
            Statement::Select(q) => q,
            Statement::Update(u) => &u.shell,
        }
    }

    pub fn is_update(&self) -> bool {
        matches!(self, Statement::Update(_))
    }

    pub fn validate(&self) -> Result<(), String> {
        match self {
            Statement::Select(q) => q.validate(),
            Statement::Update(u) => u.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;

    fn schema() -> Schema {
        TpchGen::default().schema()
    }

    fn cr(s: &Schema, q: &str) -> ColumnRef {
        s.resolve(q).unwrap()
    }

    #[test]
    fn validate_rejects_duplicate_tables() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let q = Query { tables: vec![li, li], ..Default::default() };
        assert!(q.validate().is_err());
    }

    #[test]
    fn validate_rejects_foreign_columns() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let q = Query {
            tables: vec![li],
            projections: vec![cr(&s, "orders.o_orderdate")],
            ..Default::default()
        };
        assert!(q.validate().is_err());
    }

    #[test]
    fn join_query_validates() {
        let s = schema();
        let q = Query {
            tables: vec![
                s.table_by_name("orders").unwrap().id,
                s.table_by_name("lineitem").unwrap().id,
            ],
            projections: vec![cr(&s, "orders.o_orderdate")],
            predicates: vec![Predicate::lt(cr(&s, "lineitem.l_shipdate"), 100.0)],
            joins: vec![Join::new(cr(&s, "orders.o_orderkey"), cr(&s, "lineitem.l_orderkey"))],
            ..Default::default()
        };
        assert!(q.validate().is_ok());
        let li = s.table_by_name("lineitem").unwrap().id;
        assert_eq!(q.predicates_on(li).count(), 1);
        assert_eq!(q.joins_on(li).count(), 1);
    }

    #[test]
    fn selectivity_product_and_bounds() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let q = Query {
            tables: vec![li],
            predicates: vec![
                Predicate::between(cr(&s, "lineitem.l_shipdate"), 0.0, 365.0),
                Predicate::eq(cr(&s, "lineitem.l_returnflag"), 1.0),
            ],
            ..Default::default()
        };
        let sel = q.local_selectivity(&s, li);
        assert!(sel > 0.0 && sel < 1.0);
        let each: f64 = q.predicates_on(li).map(|p| p.selectivity(&s)).product();
        assert!((sel - each).abs() < 1e-12);
    }

    #[test]
    fn columns_used_deduplicates() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let sd = cr(&s, "lineitem.l_shipdate");
        let q = Query {
            tables: vec![li],
            projections: vec![sd],
            predicates: vec![Predicate::lt(sd, 10.0)],
            order_by: vec![sd],
            ..Default::default()
        };
        assert_eq!(q.columns_used_on(li), vec![sd.column]);
    }

    #[test]
    fn interesting_orders_cover_order_group_join() {
        let s = schema();
        let ord = s.table_by_name("orders").unwrap().id;
        let li = s.table_by_name("lineitem").unwrap().id;
        let q = Query {
            tables: vec![ord, li],
            joins: vec![Join::new(cr(&s, "orders.o_orderkey"), cr(&s, "lineitem.l_orderkey"))],
            group_by: vec![cr(&s, "lineitem.l_returnflag")],
            order_by: vec![cr(&s, "orders.o_orderdate")],
            ..Default::default()
        };
        let io_ord = q.interesting_orders_on(ord);
        // order-by prefix + join column
        assert!(io_ord.contains(&vec![cr(&s, "orders.o_orderdate").column]));
        assert!(io_ord.contains(&vec![cr(&s, "orders.o_orderkey").column]));
        let io_li = q.interesting_orders_on(li);
        assert!(io_li.contains(&vec![cr(&s, "lineitem.l_returnflag").column]));
        assert!(io_li.contains(&vec![cr(&s, "lineitem.l_orderkey").column]));
        // ORDER BY belongs to orders, so lineitem gets no order-by entry.
        assert_eq!(io_li.len(), 2);
    }

    #[test]
    fn update_affects_indexes_with_set_columns() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let qty = cr(&s, "lineitem.l_quantity").column;
        let tax = cr(&s, "lineitem.l_tax").column;
        let upd = UpdateStatement {
            shell: Query {
                tables: vec![li],
                predicates: vec![Predicate::eq(cr(&s, "lineitem.l_orderkey"), 42.0)],
                ..Default::default()
            },
            set_columns: vec![qty],
        };
        assert!(upd.validate().is_ok());
        let with_qty = cophy_catalog::Index::secondary(li, vec![qty]);
        let with_tax = cophy_catalog::Index::secondary(li, vec![tax]);
        let clustered = cophy_catalog::Index::clustered(li, vec![tax]);
        assert!(upd.affects(&with_qty));
        assert!(!upd.affects(&with_tax));
        assert!(upd.affects(&clustered));
        // index on a different table is never affected
        let other =
            cophy_catalog::Index::secondary(s.table_by_name("orders").unwrap().id, vec![qty]);
        assert!(!upd.affects(&other));
    }

    #[test]
    fn statement_shell_access() {
        let s = schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let q = Query::scan(li);
        let sel = Statement::Select(q.clone());
        assert!(!sel.is_update());
        assert_eq!(sel.read_shell(), &q);
    }
}
