//! The homogeneous workload generator `W_hom`.
//!
//! The paper generates `W_hom` with the TPC-H query generator restricted to
//! fifteen templates (the other seven were unsupported by their SQL parser).
//! We hand-translate fifteen TPC-H-inspired templates into the IR; each
//! generated statement picks a template round-robin-with-jitter and binds the
//! template's parameters to random constants drawn from the column domains.
//! The result: thousands of statements but only fifteen *structural* shapes —
//! the property that makes workload compression (Tool-B) effective on `W_hom`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cophy_catalog::tpch::DATE_DOMAIN_DAYS;
use cophy_catalog::{ColumnRef, Schema};

use crate::query::{AggFunc, Aggregate, Join, Predicate, Query, Statement};
use crate::workload::Workload;

/// Generator for the homogeneous TPC-H-like workload.
#[derive(Debug, Clone, Copy)]
pub struct HomGen {
    pub seed: u64,
}

impl HomGen {
    pub fn new(seed: u64) -> Self {
        HomGen { seed }
    }

    /// Number of distinct templates.
    pub const TEMPLATES: usize = 15;

    /// Generate `n` SELECT statements over the TPC-H `schema`.
    ///
    /// Panics if `schema` is not TPC-H-shaped (missing tables/columns).
    ///
    /// Equivalent to draining [`HomGen::stream`]; the two are bit-identical.
    pub fn generate(&self, schema: &Schema, n: usize) -> Workload {
        crate::source::drain_to_workload(&mut self.stream(schema, n))
    }

    /// Stream `n` SELECT statements lazily, chunk by chunk.
    pub fn stream<'a>(&self, schema: &'a Schema, n: usize) -> HomStream<'a> {
        HomStream { gen: *self, schema, rng: SmallRng::seed_from_u64(self.seed), produced: 0, n }
    }

    /// Instantiate template `t ∈ [0, TEMPLATES)` with fresh random parameters.
    pub fn instantiate(&self, s: &Schema, t: usize, rng: &mut SmallRng) -> Query {
        let c = |q: &str| -> ColumnRef {
            s.resolve(q).unwrap_or_else(|| panic!("TPC-H column missing: {q}"))
        };
        let tid = |name: &str| s.table_by_name(name).unwrap_or_else(|| panic!("{name}")).id;
        let date = |rng: &mut SmallRng, width: f64| -> (f64, f64) {
            let lo = rng.gen_range(0.0..(DATE_DOMAIN_DAYS as f64 - width));
            (lo, lo + width)
        };

        match t {
            // Q1: pricing summary report.
            0 => {
                let (_, hi) = date(rng, 90.0);
                Query {
                    tables: vec![tid("lineitem")],
                    predicates: vec![Predicate::lt(c("lineitem.l_shipdate"), hi)],
                    group_by: vec![c("lineitem.l_returnflag"), c("lineitem.l_linestatus")],
                    aggregates: vec![
                        Aggregate { func: AggFunc::Sum, column: Some(c("lineitem.l_quantity")) },
                        Aggregate {
                            func: AggFunc::Sum,
                            column: Some(c("lineitem.l_extendedprice")),
                        },
                        Aggregate { func: AggFunc::Avg, column: Some(c("lineitem.l_discount")) },
                        Aggregate { func: AggFunc::Count, column: None },
                    ],
                    order_by: vec![c("lineitem.l_returnflag"), c("lineitem.l_linestatus")],
                    ..Default::default()
                }
            }
            // Q3: shipping priority.
            1 => {
                let (lo, _) = date(rng, 0.0);
                let seg = rng.gen_range(0..5) as f64;
                Query {
                    tables: vec![tid("customer"), tid("orders"), tid("lineitem")],
                    projections: vec![c("orders.o_shippriority")],
                    predicates: vec![
                        Predicate::eq(c("customer.c_mktsegment"), seg),
                        Predicate::lt(c("orders.o_orderdate"), lo),
                        Predicate::gt(c("lineitem.l_shipdate"), lo),
                    ],
                    joins: vec![
                        Join::new(c("customer.c_custkey"), c("orders.o_custkey")),
                        Join::new(c("orders.o_orderkey"), c("lineitem.l_orderkey")),
                    ],
                    group_by: vec![c("lineitem.l_orderkey"), c("orders.o_orderdate")],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Sum,
                        column: Some(c("lineitem.l_extendedprice")),
                    }],
                    order_by: vec![c("orders.o_orderdate")],
                }
            }
            // Q4: order priority checking.
            2 => {
                let (lo, hi) = date(rng, 90.0);
                Query {
                    tables: vec![tid("orders"), tid("lineitem")],
                    predicates: vec![Predicate::between(c("orders.o_orderdate"), lo, hi)],
                    joins: vec![Join::new(c("orders.o_orderkey"), c("lineitem.l_orderkey"))],
                    group_by: vec![c("orders.o_orderpriority")],
                    aggregates: vec![Aggregate { func: AggFunc::Count, column: None }],
                    order_by: vec![c("orders.o_orderpriority")],
                    ..Default::default()
                }
            }
            // Q5: local supplier volume (6-way join).
            3 => {
                let (lo, hi) = date(rng, 365.0);
                let region = rng.gen_range(0..5) as f64;
                Query {
                    tables: vec![
                        tid("customer"),
                        tid("orders"),
                        tid("lineitem"),
                        tid("supplier"),
                        tid("nation"),
                        tid("region"),
                    ],
                    predicates: vec![
                        Predicate::eq(c("region.r_name"), region),
                        Predicate::between(c("orders.o_orderdate"), lo, hi),
                    ],
                    joins: vec![
                        Join::new(c("customer.c_custkey"), c("orders.o_custkey")),
                        Join::new(c("orders.o_orderkey"), c("lineitem.l_orderkey")),
                        Join::new(c("lineitem.l_suppkey"), c("supplier.s_suppkey")),
                        Join::new(c("supplier.s_nationkey"), c("nation.n_nationkey")),
                        Join::new(c("nation.n_regionkey"), c("region.r_regionkey")),
                    ],
                    group_by: vec![c("nation.n_name")],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Sum,
                        column: Some(c("lineitem.l_extendedprice")),
                    }],
                    ..Default::default()
                }
            }
            // Q6: forecasting revenue change.
            4 => {
                let (lo, hi) = date(rng, 365.0);
                let disc = rng.gen_range(0.02..0.09);
                let qty = rng.gen_range(24.0..26.0);
                Query {
                    tables: vec![tid("lineitem")],
                    predicates: vec![
                        Predicate::between(c("lineitem.l_shipdate"), lo, hi),
                        Predicate::between(c("lineitem.l_discount"), disc - 0.01, disc + 0.01),
                        Predicate::lt(c("lineitem.l_quantity"), qty),
                    ],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Sum,
                        column: Some(c("lineitem.l_extendedprice")),
                    }],
                    ..Default::default()
                }
            }
            // Q7-ish: volume shipping between a nation's suppliers and orders.
            5 => {
                let (lo, hi) = date(rng, 730.0);
                let nat = rng.gen_range(0..25) as f64;
                Query {
                    tables: vec![tid("supplier"), tid("lineitem"), tid("orders"), tid("nation")],
                    predicates: vec![
                        Predicate::eq(c("nation.n_name"), nat),
                        Predicate::between(c("lineitem.l_shipdate"), lo, hi),
                    ],
                    joins: vec![
                        Join::new(c("supplier.s_suppkey"), c("lineitem.l_suppkey")),
                        Join::new(c("lineitem.l_orderkey"), c("orders.o_orderkey")),
                        Join::new(c("supplier.s_nationkey"), c("nation.n_nationkey")),
                    ],
                    group_by: vec![c("lineitem.l_shipmode")],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Sum,
                        column: Some(c("lineitem.l_extendedprice")),
                    }],
                    ..Default::default()
                }
            }
            // Q10: returned item reporting.
            6 => {
                let (lo, hi) = date(rng, 90.0);
                Query {
                    tables: vec![tid("customer"), tid("orders"), tid("lineitem"), tid("nation")],
                    projections: vec![c("customer.c_acctbal"), c("nation.n_name")],
                    predicates: vec![
                        Predicate::between(c("orders.o_orderdate"), lo, hi),
                        Predicate::eq(c("lineitem.l_returnflag"), 2.0),
                    ],
                    joins: vec![
                        Join::new(c("customer.c_custkey"), c("orders.o_custkey")),
                        Join::new(c("orders.o_orderkey"), c("lineitem.l_orderkey")),
                        Join::new(c("customer.c_nationkey"), c("nation.n_nationkey")),
                    ],
                    group_by: vec![c("customer.c_custkey")],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Sum,
                        column: Some(c("lineitem.l_extendedprice")),
                    }],
                    ..Default::default()
                }
            }
            // Q12: shipping modes and order priority.
            7 => {
                let (lo, hi) = date(rng, 365.0);
                let mode = rng.gen_range(0..6) as f64;
                Query {
                    tables: vec![tid("orders"), tid("lineitem")],
                    predicates: vec![
                        Predicate::between(c("lineitem.l_shipmode"), mode, mode + 1.0),
                        Predicate::between(c("lineitem.l_receiptdate"), lo, hi),
                    ],
                    joins: vec![Join::new(c("orders.o_orderkey"), c("lineitem.l_orderkey"))],
                    group_by: vec![c("lineitem.l_shipmode")],
                    aggregates: vec![Aggregate { func: AggFunc::Count, column: None }],
                    ..Default::default()
                }
            }
            // Q14: promotion effect.
            8 => {
                let (lo, hi) = date(rng, 30.0);
                Query {
                    tables: vec![tid("lineitem"), tid("part")],
                    predicates: vec![Predicate::between(c("lineitem.l_shipdate"), lo, hi)],
                    joins: vec![Join::new(c("lineitem.l_partkey"), c("part.p_partkey"))],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Sum,
                        column: Some(c("lineitem.l_extendedprice")),
                    }],
                    ..Default::default()
                }
            }
            // Q17: small-quantity-order revenue.
            9 => {
                let brand = rng.gen_range(0..25) as f64;
                let container = rng.gen_range(0..40) as f64;
                Query {
                    tables: vec![tid("lineitem"), tid("part")],
                    predicates: vec![
                        Predicate::eq(c("part.p_brand"), brand),
                        Predicate::eq(c("part.p_container"), container),
                        Predicate::lt(c("lineitem.l_quantity"), rng.gen_range(2.0..8.0)),
                    ],
                    joins: vec![Join::new(c("lineitem.l_partkey"), c("part.p_partkey"))],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Avg,
                        column: Some(c("lineitem.l_extendedprice")),
                    }],
                    ..Default::default()
                }
            }
            // Q18-ish: large volume customers.
            10 => {
                let price = rng.gen_range(400_000.0..550_000.0);
                Query {
                    tables: vec![tid("customer"), tid("orders"), tid("lineitem")],
                    projections: vec![c("customer.c_name"), c("orders.o_totalprice")],
                    predicates: vec![Predicate::gt(c("orders.o_totalprice"), price)],
                    joins: vec![
                        Join::new(c("customer.c_custkey"), c("orders.o_custkey")),
                        Join::new(c("orders.o_orderkey"), c("lineitem.l_orderkey")),
                    ],
                    group_by: vec![c("orders.o_orderkey")],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Sum,
                        column: Some(c("lineitem.l_quantity")),
                    }],
                    order_by: vec![c("orders.o_totalprice")],
                }
            }
            // Q19-ish: discounted revenue for brand/quantity bands.
            11 => {
                let brand = rng.gen_range(0..25) as f64;
                let q0 = rng.gen_range(1.0..30.0);
                let mode = rng.gen_range(0..6) as f64;
                Query {
                    tables: vec![tid("lineitem"), tid("part")],
                    predicates: vec![
                        Predicate::eq(c("part.p_brand"), brand),
                        Predicate::between(c("lineitem.l_quantity"), q0, q0 + 10.0),
                        Predicate::eq(c("lineitem.l_shipmode"), mode),
                    ],
                    joins: vec![Join::new(c("lineitem.l_partkey"), c("part.p_partkey"))],
                    aggregates: vec![Aggregate {
                        func: AggFunc::Sum,
                        column: Some(c("lineitem.l_extendedprice")),
                    }],
                    ..Default::default()
                }
            }
            // Q21-ish: suppliers who kept orders waiting.
            12 => {
                let nat = rng.gen_range(0..25) as f64;
                Query {
                    tables: vec![tid("supplier"), tid("lineitem"), tid("orders"), tid("nation")],
                    projections: vec![c("supplier.s_name")],
                    predicates: vec![
                        Predicate::eq(c("orders.o_orderstatus"), 0.0),
                        Predicate::eq(c("nation.n_name"), nat),
                    ],
                    joins: vec![
                        Join::new(c("supplier.s_suppkey"), c("lineitem.l_suppkey")),
                        Join::new(c("lineitem.l_orderkey"), c("orders.o_orderkey")),
                        Join::new(c("supplier.s_nationkey"), c("nation.n_nationkey")),
                    ],
                    group_by: vec![c("supplier.s_suppkey")],
                    aggregates: vec![Aggregate { func: AggFunc::Count, column: None }],
                    ..Default::default()
                }
            }
            // Point lookup on orders (order-status style query).
            13 => {
                let t = s.table_by_name("orders").unwrap();
                let key = rng.gen_range(0.0..t.rows as f64);
                Query {
                    tables: vec![tid("orders")],
                    projections: vec![
                        c("orders.o_orderstatus"),
                        c("orders.o_totalprice"),
                        c("orders.o_orderdate"),
                    ],
                    predicates: vec![Predicate::eq(c("orders.o_custkey"), key % 150_000.0)],
                    order_by: vec![c("orders.o_orderdate")],
                    ..Default::default()
                }
            }
            // Q2-ish: minimum-cost supplier over partsupp.
            14 => {
                let size: f64 = rng.gen_range(1.0..50.0);
                Query {
                    tables: vec![tid("partsupp"), tid("part"), tid("supplier")],
                    projections: vec![c("supplier.s_name"), c("partsupp.ps_supplycost")],
                    predicates: vec![
                        Predicate::eq(c("part.p_size"), size.floor()),
                        Predicate::lt(c("partsupp.ps_supplycost"), rng.gen_range(100.0..900.0)),
                    ],
                    joins: vec![
                        Join::new(c("partsupp.ps_partkey"), c("part.p_partkey")),
                        Join::new(c("partsupp.ps_suppkey"), c("supplier.s_suppkey")),
                    ],
                    order_by: vec![c("partsupp.ps_supplycost")],
                    ..Default::default()
                }
            }
            _ => panic!("template index out of range: {t}"),
        }
    }
}

/// Lazy [`WorkloadSource`](crate::source::WorkloadSource) over [`HomGen`]:
/// produces the exact statement sequence of `generate(schema, n)` without
/// materializing the workload.
#[derive(Debug)]
pub struct HomStream<'a> {
    gen: HomGen,
    schema: &'a Schema,
    rng: SmallRng,
    produced: usize,
    n: usize,
}

impl crate::source::WorkloadSource for HomStream<'_> {
    fn next_chunk(&mut self, max: usize, out: &mut Vec<(Statement, f64)>) -> usize {
        let take = max.min(self.n - self.produced);
        for _ in 0..take {
            // Rotate templates so every size-250 prefix covers all fifteen.
            let t = (self.produced + self.rng.gen_range(0..3)) % HomGen::TEMPLATES;
            let q = self.gen.instantiate(self.schema, t, &mut self.rng);
            debug_assert!(q.validate().is_ok(), "template {t} invalid: {:?}", q.validate());
            out.push((Statement::Select(q), 1.0));
            self.produced += 1;
        }
        take
    }

    fn remaining(&self) -> Option<usize> {
        Some(self.n - self.produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;

    #[test]
    fn generates_requested_size_and_validates() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(7).generate(&s, 100);
        assert_eq!(w.len(), 100);
        assert!(w.validate().is_ok());
        assert_eq!(w.update_ids().count(), 0);
    }

    #[test]
    fn stream_matches_generate_across_chunk_boundaries() {
        use crate::source::WorkloadSource;
        let s = TpchGen::default().schema();
        let batch = HomGen::new(13).generate(&s, 53);
        let mut stream = HomGen::new(13).stream(&s, 53);
        let mut streamed = Workload::new();
        let mut buf = Vec::new();
        // A chunk size that does not divide 53: exercises a ragged last chunk.
        while stream.next_chunk(7, &mut buf) > 0 {
            for (stmt, w) in buf.drain(..) {
                streamed.push_weighted(stmt, w);
            }
        }
        assert_eq!(streamed.len(), batch.len());
        for (id, stmt, _) in batch.iter() {
            assert_eq!(stmt, streamed.statement(id));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let s = TpchGen::default().schema();
        let a = HomGen::new(42).generate(&s, 50);
        let b = HomGen::new(42).generate(&s, 50);
        for (id, stmt, _) in a.iter() {
            assert_eq!(stmt, b.statement(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = TpchGen::default().schema();
        let a = HomGen::new(1).generate(&s, 30);
        let b = HomGen::new(2).generate(&s, 30);
        let same = a.iter().filter(|(id, stmt, _)| *stmt == b.statement(*id)).count();
        assert!(same < 30);
    }

    #[test]
    fn all_templates_instantiate_and_validate() {
        let s = TpchGen::default().schema();
        let gen = HomGen::new(3);
        let mut rng = SmallRng::seed_from_u64(9);
        for t in 0..HomGen::TEMPLATES {
            let q = gen.instantiate(&s, t, &mut rng);
            assert!(q.validate().is_ok(), "template {t}: {:?}", q.validate());
            assert!(!q.tables.is_empty());
        }
    }

    #[test]
    fn covers_all_templates_in_modest_prefix() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(11).generate(&s, 60);
        let mut table_counts = std::collections::BTreeSet::new();
        for (_, stmt, _) in w.iter() {
            table_counts.insert(stmt.read_shell().tables.len());
        }
        // Templates span 1..=6 tables; a 60-query prefix must see variety.
        assert!(table_counts.len() >= 3, "{table_counts:?}");
    }
}
