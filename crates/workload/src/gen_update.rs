//! UPDATE statement generator.
//!
//! §2 models an update as a query shell `q_r` (selecting the affected rows)
//! plus an update shell `q_u` that rewrites the base tuples and maintains
//! every affected index at cost `ucost(a, q)`.  The generator produces
//! single-table updates on the four frequently-written TPC-H tables with
//! selective WHERE clauses (key equality or a narrow date range) and one or
//! two SET columns.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use cophy_catalog::{ColumnId, ColumnRef, Schema};

use crate::query::{Predicate, Query, Statement, UpdateStatement};
use crate::workload::Workload;

/// (table, filter column, settable columns) — mirrors the write patterns of
/// TPC-C-style maintenance on a TPC-H schema.
const UPDATE_SHAPES: &[(&str, &str, &[&str])] = &[
    ("lineitem", "lineitem.l_orderkey", &["l_quantity", "l_discount", "l_tax"]),
    ("orders", "orders.o_orderkey", &["o_orderstatus", "o_totalprice"]),
    ("customer", "customer.c_custkey", &["c_acctbal", "c_address"]),
    ("partsupp", "partsupp.ps_partkey", &["ps_availqty", "ps_supplycost"]),
];

/// Generator for UPDATE statements.
#[derive(Debug, Clone, Copy)]
pub struct UpdateGen {
    pub seed: u64,
}

impl UpdateGen {
    pub fn new(seed: u64) -> Self {
        UpdateGen { seed }
    }

    /// Generate `n` UPDATE statements.
    ///
    /// Equivalent to draining [`UpdateGen::stream`]; the two are bit-identical.
    pub fn generate(&self, schema: &Schema, n: usize) -> Workload {
        crate::source::drain_to_workload(&mut self.stream(schema, n))
    }

    /// Stream `n` UPDATE statements lazily, chunk by chunk.
    pub fn stream<'a>(&self, schema: &'a Schema, n: usize) -> UpdateStream<'a> {
        UpdateStream { gen: *self, schema, rng: SmallRng::seed_from_u64(self.seed), produced: 0, n }
    }

    /// Mix `frac_updates` of updates into `base` (e.g. 0.2 → 20% updates),
    /// interleaved deterministically.
    pub fn mix_into(&self, schema: &Schema, base: &Workload, frac_updates: f64) -> Workload {
        assert!((0.0..1.0).contains(&frac_updates));
        let n_upd = ((base.len() as f64 * frac_updates) / (1.0 - frac_updates)).round() as usize;
        let updates = self.generate(schema, n_upd);
        let mut out = Workload::new();
        let stride = if n_upd == 0 { usize::MAX } else { base.len().div_ceil(n_upd).max(1) };
        let mut u = updates.iter();
        for (i, (_, stmt, weight)) in base.iter().enumerate() {
            out.push_weighted(stmt.clone(), weight);
            if (i + 1) % stride == 0 {
                if let Some((_, us, uw)) = u.next() {
                    out.push_weighted(us.clone(), uw);
                }
            }
        }
        for (_, us, uw) in u {
            out.push_weighted(us.clone(), uw);
        }
        out
    }

    fn random_update(&self, schema: &Schema, rng: &mut SmallRng) -> UpdateStatement {
        let (tname, filter, settable) = UPDATE_SHAPES.choose(rng).expect("non-empty");
        let table = schema.table_by_name(tname).unwrap_or_else(|| panic!("{tname}"));
        let fcol = schema.resolve(filter).expect("filter column");
        let key = rng.gen_range(0.0..table.rows as f64).floor();

        // Either a point update (key equality) or a small-range update.
        let pred = if rng.gen_bool(0.7) {
            Predicate::eq(fcol, key)
        } else {
            let width = (table.rows as f64 * 0.0005).max(1.0);
            Predicate::between(fcol, key, key + width)
        };

        let mut set_columns: Vec<ColumnId> = Vec::new();
        let n_set = rng.gen_range(1..=2.min(settable.len()));
        let mut cols: Vec<&&str> = settable.iter().collect();
        cols.shuffle(rng);
        for c in cols.into_iter().take(n_set) {
            set_columns.push(table.column_by_name(c).unwrap_or_else(|| panic!("{c}")));
        }

        UpdateStatement {
            shell: Query {
                tables: vec![table.id],
                projections: set_columns.iter().map(|c| ColumnRef::new(table.id, *c)).collect(),
                predicates: vec![pred],
                ..Default::default()
            },
            set_columns,
        }
    }
}

/// Lazy [`WorkloadSource`](crate::source::WorkloadSource) over [`UpdateGen`]:
/// produces the exact statement sequence of `generate(schema, n)` without
/// materializing the workload.
#[derive(Debug)]
pub struct UpdateStream<'a> {
    gen: UpdateGen,
    schema: &'a Schema,
    rng: SmallRng,
    produced: usize,
    n: usize,
}

impl crate::source::WorkloadSource for UpdateStream<'_> {
    fn next_chunk(&mut self, max: usize, out: &mut Vec<(Statement, f64)>) -> usize {
        let take = max.min(self.n - self.produced);
        for _ in 0..take {
            let u = self.gen.random_update(self.schema, &mut self.rng);
            out.push((Statement::Update(u), 1.0));
            self.produced += 1;
        }
        take
    }

    fn remaining(&self) -> Option<usize> {
        Some(self.n - self.produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_hom::HomGen;
    use cophy_catalog::TpchGen;

    #[test]
    fn generates_valid_updates() {
        let s = TpchGen::default().schema();
        let w = UpdateGen::new(3).generate(&s, 50);
        assert_eq!(w.len(), 50);
        assert!(w.validate().is_ok());
        assert_eq!(w.update_ids().count(), 50);
    }

    #[test]
    fn updates_are_single_table_with_set_columns() {
        let s = TpchGen::default().schema();
        let w = UpdateGen::new(4).generate(&s, 20);
        for (_, stmt, _) in w.iter() {
            match stmt {
                Statement::Update(u) => {
                    assert_eq!(u.shell.tables.len(), 1);
                    assert!(!u.set_columns.is_empty() && u.set_columns.len() <= 2);
                }
                _ => panic!("expected update"),
            }
        }
    }

    #[test]
    fn mix_hits_requested_fraction() {
        let s = TpchGen::default().schema();
        let base = HomGen::new(1).generate(&s, 200);
        let mixed = UpdateGen::new(2).mix_into(&s, &base, 0.2);
        let frac = mixed.update_ids().count() as f64 / mixed.len() as f64;
        assert!((0.15..=0.25).contains(&frac), "frac={frac}");
        assert!(mixed.validate().is_ok());
    }

    #[test]
    fn mix_zero_is_identity() {
        let s = TpchGen::default().schema();
        let base = HomGen::new(1).generate(&s, 30);
        let mixed = UpdateGen::new(2).mix_into(&s, &base, 0.0);
        assert_eq!(mixed.len(), 30);
        assert_eq!(mixed.update_ids().count(), 0);
    }
}
