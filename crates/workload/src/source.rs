//! Streaming workload ingestion: the [`WorkloadSource`] trait and adapters.
//!
//! CoPhy's scalability story (§5) treats the workload as a *stream*, not a
//! batch: statements arrive in chunks, compression absorbs each chunk into a
//! bounded set of representatives, and only the representatives are ever
//! prepared by the what-if layer.  `WorkloadSource` is the seam that makes
//! this possible without holding `|W|` statements in memory.
//!
//! Three kinds of sources exist:
//!
//! * [`WorkloadCursor`] — a cursor over an in-memory [`Workload`]
//!   (via [`Workload::source`]); this is how the legacy batch entry points
//!   are expressed as one-chunk streams.
//! * Generator streams — [`crate::gen_hom::HomStream`],
//!   [`crate::gen_het::HetStream`], [`crate::gen_update::UpdateStream`] —
//!   which produce statements lazily from a seeded RNG, bit-identical to the
//!   corresponding `generate(schema, n)` call (the batch generators are now
//!   thin drains over these streams).
//! * Anything downstream crates implement: the trait is object-safe, so
//!   `&mut dyn WorkloadSource` travels through `TuningSession::try_add_source`
//!   and `CoPhy::try_tune_source` without generics.

use crate::query::Statement;
use crate::workload::Workload;

/// Default number of statements pulled per chunk by streaming consumers.
///
/// Large enough to amortize per-chunk bookkeeping (cache write locks,
/// snapshot clones), small enough that resident statements stay bounded by
/// `reps + DEFAULT_CHUNK` rather than `|W|`.
pub const DEFAULT_CHUNK: usize = 256;

/// A pull-based stream of weighted statements.
///
/// Consumers repeatedly call [`next_chunk`](WorkloadSource::next_chunk) with a
/// scratch buffer; a return of `0` means the source is exhausted.  Sources are
/// single-pass: once drained they stay empty.
pub trait WorkloadSource {
    /// Append up to `max` `(statement, weight)` pairs to `out` and return how
    /// many were appended.  `out` is *not* cleared — the caller owns buffer
    /// reuse.  Returning `0` signals exhaustion.
    fn next_chunk(&mut self, max: usize, out: &mut Vec<(Statement, f64)>) -> usize;

    /// Number of statements left to produce, when the source knows it.
    fn remaining(&self) -> Option<usize>;
}

/// Cursor adapter turning an in-memory [`Workload`] into a [`WorkloadSource`].
///
/// Statements are cloned out in id order with their weights, so draining the
/// cursor reproduces the workload exactly.
#[derive(Debug)]
pub struct WorkloadCursor<'a> {
    workload: &'a Workload,
    pos: usize,
}

impl<'a> WorkloadCursor<'a> {
    pub fn new(workload: &'a Workload) -> Self {
        WorkloadCursor { workload, pos: 0 }
    }
}

impl WorkloadSource for WorkloadCursor<'_> {
    fn next_chunk(&mut self, max: usize, out: &mut Vec<(Statement, f64)>) -> usize {
        let end = (self.pos + max).min(self.workload.len());
        let produced = end - self.pos;
        for i in self.pos..end {
            let id = crate::workload::QueryId(i as u32);
            out.push((self.workload.statement(id).clone(), self.workload.weight(id)));
        }
        self.pos = end;
        produced
    }

    fn remaining(&self) -> Option<usize> {
        Some(self.workload.len() - self.pos)
    }
}

/// Drain `source` completely into a fresh [`Workload`].
///
/// This is the bridge back from the streaming world to the batch world; it is
/// what the legacy `generate(schema, n)` entry points use, which is why a
/// stream and its batch twin are bit-identical by construction.
pub fn drain_to_workload(source: &mut dyn WorkloadSource) -> Workload {
    let mut w = Workload::new();
    let mut buf: Vec<(Statement, f64)> = Vec::new();
    loop {
        buf.clear();
        if source.next_chunk(DEFAULT_CHUNK, &mut buf) == 0 {
            break;
        }
        for (stmt, weight) in buf.drain(..) {
            w.push_weighted(stmt, weight);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_hom::HomGen;
    use cophy_catalog::TpchGen;

    #[test]
    fn cursor_roundtrips_workload() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(9).generate(&s, 37);
        let mut cur = WorkloadCursor::new(&w);
        assert_eq!(cur.remaining(), Some(37));
        let drained = drain_to_workload(&mut cur);
        assert_eq!(drained.len(), w.len());
        for (id, stmt, weight) in w.iter() {
            assert_eq!(stmt, drained.statement(id));
            assert_eq!(weight, drained.weight(id));
        }
        assert_eq!(cur.remaining(), Some(0));
        let mut buf = Vec::new();
        assert_eq!(cur.next_chunk(8, &mut buf), 0);
    }

    #[test]
    fn cursor_respects_chunk_size() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(9).generate(&s, 10);
        let mut cur = w.source();
        let mut buf = Vec::new();
        assert_eq!(cur.next_chunk(4, &mut buf), 4);
        assert_eq!(cur.next_chunk(4, &mut buf), 4);
        assert_eq!(cur.next_chunk(4, &mut buf), 2);
        assert_eq!(buf.len(), 10, "next_chunk appends, never clears");
    }
}
