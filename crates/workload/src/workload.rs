//! Workloads: weighted statement collections.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::features::{shell_key, ShellKey};
use crate::query::Statement;

/// Dense identifier of a statement within a [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u32);

/// A representative workload `W`: statements with weights `f_q` (frequency or
/// DBA-assigned importance, §2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Workload {
    statements: Vec<Statement>,
    weights: Vec<f64>,
}

impl Workload {
    pub fn new() -> Self {
        Workload::default()
    }

    pub fn push(&mut self, stmt: Statement) -> QueryId {
        self.push_weighted(stmt, 1.0)
    }

    pub fn push_weighted(&mut self, stmt: Statement, weight: f64) -> QueryId {
        debug_assert!(weight > 0.0, "weights must be positive");
        let id = QueryId(self.statements.len() as u32);
        self.statements.push(stmt);
        self.weights.push(weight);
        id
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    pub fn statement(&self, id: QueryId) -> &Statement {
        &self.statements[id.0 as usize]
    }

    pub fn weight(&self, id: QueryId) -> f64 {
        self.weights[id.0 as usize]
    }

    pub fn ids(&self) -> impl Iterator<Item = QueryId> {
        (0..self.statements.len() as u32).map(QueryId)
    }

    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &Statement, f64)> {
        self.statements
            .iter()
            .zip(self.weights.iter())
            .enumerate()
            .map(|(i, (s, w))| (QueryId(i as u32), s, *w))
    }

    /// Ids of SELECT statements and query shells (`W_r` in §2: the read side).
    pub fn read_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.ids() // every statement has a read shell
    }

    /// Ids of UPDATE statements (`W_u`).
    pub fn update_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.iter().filter(|(_, s, _)| s.is_update()).map(|(id, _, _)| id)
    }

    /// Take the first `n` statements (used to build the 250/500/1000-query
    /// variants from one generated pool, as the paper does).
    pub fn truncate(&self, n: usize) -> Workload {
        Workload {
            statements: self.statements.iter().take(n).cloned().collect(),
            weights: self.weights.iter().take(n).copied().collect(),
        }
    }

    /// Bump the weight of an existing statement by `delta` (used when a
    /// merged duplicate is routed onto its representative).
    pub fn add_weight(&mut self, id: QueryId, delta: f64) {
        debug_assert!(delta > 0.0, "weight deltas must be positive");
        self.weights[id.0 as usize] += delta;
    }

    /// Merge exact duplicates — statements with identical shells, constants
    /// included — by summing their weights (first occurrence kept, order
    /// preserved).  This is the lossless fast path of workload compression:
    /// the merged workload has bit-identical total cost under every
    /// configuration.
    pub fn dedup_by_shell(&self) -> Workload {
        let mut seen: HashMap<ShellKey, QueryId> = HashMap::new();
        let mut out = Workload::new();
        for (_, stmt, weight) in self.iter() {
            match seen.entry(shell_key(stmt)) {
                std::collections::hash_map::Entry::Occupied(e) => out.add_weight(*e.get(), weight),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(out.push_weighted(stmt.clone(), weight));
                }
            }
        }
        out
    }

    /// Total workload weight `Σ_q f_q`.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// A [`WorkloadSource`](crate::source::WorkloadSource) cursor over this
    /// workload: statements stream out in id order with their weights.
    pub fn source(&self) -> crate::source::WorkloadCursor<'_> {
        crate::source::WorkloadCursor::new(self)
    }

    /// Validate every statement's IR invariants.
    pub fn validate(&self) -> Result<(), String> {
        for (id, s, _) in self.iter() {
            s.validate().map_err(|e| format!("statement {}: {e}", id.0))?;
        }
        Ok(())
    }
}

impl FromIterator<Statement> for Workload {
    fn from_iter<T: IntoIterator<Item = Statement>>(iter: T) -> Self {
        let mut w = Workload::new();
        for s in iter {
            w.push(s);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, Statement, UpdateStatement};
    use cophy_catalog::{ColumnId, TpchGen};

    #[test]
    fn push_iterate_weights() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut w = Workload::new();
        let a = w.push(Statement::Select(Query::scan(li)));
        let b = w.push_weighted(Statement::Select(Query::scan(li)), 3.5);
        assert_eq!(w.len(), 2);
        assert_eq!(w.weight(a), 1.0);
        assert_eq!(w.weight(b), 3.5);
        assert_eq!(w.iter().count(), 2);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn read_and_update_partition() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut w = Workload::new();
        w.push(Statement::Select(Query::scan(li)));
        w.push(Statement::Update(UpdateStatement {
            shell: Query::scan(li),
            set_columns: vec![ColumnId(4)],
        }));
        assert_eq!(w.read_ids().count(), 2); // every statement has a read shell
        assert_eq!(w.update_ids().count(), 1);
    }

    /// Interleave `w` with itself: every statement appears exactly twice.
    fn doubled(w: &Workload) -> Workload {
        let mut out = Workload::new();
        for (_, s, wt) in w.iter() {
            out.push_weighted(s.clone(), wt);
            out.push_weighted(s.clone(), wt * 2.0);
        }
        out
    }

    #[test]
    fn dedup_by_shell_merges_duplicates_on_every_generator() {
        let s = TpchGen::default().schema();
        for w in [
            crate::HomGen::new(21).generate(&s, 40),
            crate::HetGen::new(22).generate(&s, 40),
            crate::UpdateGen::new(23).generate(&s, 40),
        ] {
            let twice = doubled(&w);
            let merged = twice.dedup_by_shell();
            // Every duplicated statement collapses onto its first occurrence
            // (the generators themselves may also repeat shells).
            assert!(merged.len() <= w.len(), "{} > {}", merged.len(), w.len());
            assert!((merged.total_weight() - twice.total_weight()).abs() < 1e-9);
            assert!(merged.validate().is_ok());
            // Merging is idempotent.
            assert_eq!(merged.dedup_by_shell().len(), merged.len());
        }
    }

    #[test]
    fn dedup_by_shell_keeps_distinct_constants_apart() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let mut w = Workload::new();
        for v in [10.0, 20.0, 10.0] {
            let mut q = Query::scan(li);
            q.predicates.push(crate::Predicate::lt(sd, v));
            w.push(Statement::Select(q));
        }
        let merged = w.dedup_by_shell();
        assert_eq!(merged.len(), 2, "10.0 duplicates merge; 20.0 stays separate");
        assert_eq!(merged.weight(QueryId(0)), 2.0);
        assert_eq!(merged.weight(QueryId(1)), 1.0);
    }

    #[test]
    fn add_weight_accumulates() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut w = Workload::new();
        let id = w.push_weighted(Statement::Select(Query::scan(li)), 1.5);
        w.add_weight(id, 2.5);
        assert_eq!(w.weight(id), 4.0);
        assert_eq!(w.total_weight(), 4.0);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut w = Workload::new();
        for i in 0..10 {
            w.push_weighted(Statement::Select(Query::scan(li)), 1.0 + i as f64);
        }
        let t = w.truncate(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.weight(QueryId(3)), 4.0);
    }
}
