//! Workloads: weighted statement collections.

use serde::{Deserialize, Serialize};

use crate::query::Statement;

/// Dense identifier of a statement within a [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u32);

/// A representative workload `W`: statements with weights `f_q` (frequency or
/// DBA-assigned importance, §2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Workload {
    statements: Vec<Statement>,
    weights: Vec<f64>,
}

impl Workload {
    pub fn new() -> Self {
        Workload::default()
    }

    pub fn push(&mut self, stmt: Statement) -> QueryId {
        self.push_weighted(stmt, 1.0)
    }

    pub fn push_weighted(&mut self, stmt: Statement, weight: f64) -> QueryId {
        debug_assert!(weight > 0.0, "weights must be positive");
        let id = QueryId(self.statements.len() as u32);
        self.statements.push(stmt);
        self.weights.push(weight);
        id
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    pub fn statement(&self, id: QueryId) -> &Statement {
        &self.statements[id.0 as usize]
    }

    pub fn weight(&self, id: QueryId) -> f64 {
        self.weights[id.0 as usize]
    }

    pub fn ids(&self) -> impl Iterator<Item = QueryId> {
        (0..self.statements.len() as u32).map(QueryId)
    }

    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &Statement, f64)> {
        self.statements
            .iter()
            .zip(self.weights.iter())
            .enumerate()
            .map(|(i, (s, w))| (QueryId(i as u32), s, *w))
    }

    /// Ids of SELECT statements and query shells (`W_r` in §2: the read side).
    pub fn read_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.ids() // every statement has a read shell
    }

    /// Ids of UPDATE statements (`W_u`).
    pub fn update_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.iter().filter(|(_, s, _)| s.is_update()).map(|(id, _, _)| id)
    }

    /// Take the first `n` statements (used to build the 250/500/1000-query
    /// variants from one generated pool, as the paper does).
    pub fn truncate(&self, n: usize) -> Workload {
        Workload {
            statements: self.statements.iter().take(n).cloned().collect(),
            weights: self.weights.iter().take(n).copied().collect(),
        }
    }

    /// Validate every statement's IR invariants.
    pub fn validate(&self) -> Result<(), String> {
        for (id, s, _) in self.iter() {
            s.validate().map_err(|e| format!("statement {}: {e}", id.0))?;
        }
        Ok(())
    }
}

impl FromIterator<Statement> for Workload {
    fn from_iter<T: IntoIterator<Item = Statement>>(iter: T) -> Self {
        let mut w = Workload::new();
        for s in iter {
            w.push(s);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, Statement, UpdateStatement};
    use cophy_catalog::{ColumnId, TpchGen};

    #[test]
    fn push_iterate_weights() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut w = Workload::new();
        let a = w.push(Statement::Select(Query::scan(li)));
        let b = w.push_weighted(Statement::Select(Query::scan(li)), 3.5);
        assert_eq!(w.len(), 2);
        assert_eq!(w.weight(a), 1.0);
        assert_eq!(w.weight(b), 3.5);
        assert_eq!(w.iter().count(), 2);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn read_and_update_partition() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut w = Workload::new();
        w.push(Statement::Select(Query::scan(li)));
        w.push(Statement::Update(UpdateStatement {
            shell: Query::scan(li),
            set_columns: vec![ColumnId(4)],
        }));
        assert_eq!(w.read_ids().count(), 2); // every statement has a read shell
        assert_eq!(w.update_ids().count(), 1);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut w = Workload::new();
        for i in 0..10 {
            w.push_weighted(Statement::Select(Query::scan(li)), 1.0 + i as f64);
        }
        let t = w.truncate(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.weight(QueryId(3)), 4.0);
    }
}
