//! Tool-A: a relaxation-based advisor in the style of Bruno & Chaudhuri [3].
//!
//! The real technique starts from the per-query *optimal* configurations
//! (what the optimizer would pick with every candidate available) and
//! repeatedly applies **relaxations** — drop an index, merge two indexes,
//! shrink one to a prefix — choosing at each step the transformation with
//! the lowest cost-increase per byte freed, until the storage budget is met.
//! Every evaluation is a *direct what-if optimization* of the workload: the
//! optimizer is a black box.
//!
//! That black-box coupling is exactly what the paper's Figure 4/Table 1
//! exposes: per-step costs scale with `|W|`, so large workloads force an
//! iteration cap and quality collapses (Tool-A times out on `W_het_1000`
//! with z = 2 in Table 1).  The cap below reproduces that trade-off.

use std::time::Instant;

use cophy::{ConstraintSet, SolveProgress};
use cophy_catalog::{Configuration, Index, Schema};
use cophy_optimizer::WhatIfBackend;
use cophy_workload::Workload;

use crate::Advisor;

/// Anytime stream for a black-box advisor: intermediate configurations are
/// incumbents (the technique proves no bound, so `bound = −∞`), but only
/// *feasible, improving* ones are emitted — the same contract the shared
/// solve driver enforces.
pub(crate) struct BlackboxStream<'cb> {
    started: Instant,
    best: f64,
    ticks: usize,
    on_progress: &'cb mut dyn FnMut(&SolveProgress),
}

impl<'cb> BlackboxStream<'cb> {
    pub(crate) fn new(on_progress: &'cb mut dyn FnMut(&SolveProgress)) -> Self {
        BlackboxStream { started: Instant::now(), best: f64::INFINITY, ticks: 0, on_progress }
    }

    /// Count one unit of work (a relaxation/greedy/refinement step).
    pub(crate) fn tick(&mut self) {
        self.ticks += 1;
    }

    /// Offer a configuration cost; emits only if `feasible` and improving.
    pub(crate) fn offer(&mut self, cost: f64, feasible: bool) {
        if !feasible || cost >= self.best - 1e-9 {
            return;
        }
        self.best = cost;
        (self.on_progress)(&SolveProgress {
            at: self.started.elapsed(),
            incumbent: cost,
            bound: f64::NEG_INFINITY,
            gap: f64::INFINITY,
            ticks: self.ticks,
            pivots: 0,
            decomposition: None,
        });
    }
}

/// The relaxation-based advisor.
#[derive(Debug, Clone)]
pub struct ToolA {
    /// Maximum relaxation steps (each step re-costs the whole workload).
    pub max_steps: usize,
    /// Queries costed per evaluation (whole workload if `None`); the real
    /// tool evaluates everything, which is why it is slow.
    pub eval_cap: Option<usize>,
    /// Relaxation candidates evaluated per step (drops of the largest
    /// indexes first, then merges/shrinks).  Still `cap × |W|` optimizer
    /// calls per step — the black-box coupling the paper measures.
    pub relaxations_per_step: usize,
}

impl Default for ToolA {
    fn default() -> Self {
        ToolA { max_steps: 40, eval_cap: None, relaxations_per_step: 32 }
    }
}

impl ToolA {
    /// Workload cost by direct what-if optimization (the expensive part).
    fn direct_cost(&self, o: &dyn WhatIfBackend, w: &Workload, cfg: &Configuration) -> f64 {
        match self.eval_cap {
            None => o.cost_workload(w, cfg),
            Some(cap) => {
                w.iter().take(cap).map(|(_, stmt, f)| f * o.cost_statement(stmt, cfg)).sum()
            }
        }
    }

    /// Initial configuration: per-query ideal single-table indexes (the
    /// "optimal per-query configuration" seed of [3]).
    fn seed(&self, schema: &Schema, w: &Workload) -> Configuration {
        let mut cfg = Configuration::empty();
        for (_, stmt, _) in w.iter() {
            let q = stmt.read_shell();
            for &t in &q.tables {
                let ix = cophy_inum::ideal_index(schema, q, t, &[]);
                cfg.insert(ix);
            }
        }
        cfg
    }

    /// Candidate relaxations of one configuration (capped at
    /// `relaxations_per_step`, largest-index drops prioritized).
    fn relaxations(&self, cfg: &Configuration) -> Vec<(Configuration, u64)> {
        let mut out = Vec::new();
        let mut indexes: Vec<&Index> = cfg.iter().collect();
        indexes.sort_by_key(|ix| std::cmp::Reverse(ix.n_columns()));
        indexes.truncate(self.relaxations_per_step);
        // 1. Drop any one index.
        for ix in &indexes {
            let mut c = cfg.clone();
            c.remove(ix);
            out.push((c, 0));
        }
        // 2. Shrink: drop the INCLUDE payload, or truncate the key.
        for ix in &indexes {
            if !ix.include.is_empty() {
                let mut c = cfg.clone();
                c.remove(ix);
                c.insert(Index::secondary(ix.table, ix.key.clone()));
                out.push((c, 0));
            } else if ix.key.len() > 1 {
                let mut c = cfg.clone();
                c.remove(ix);
                c.insert(Index::secondary(ix.table, ix.key[..ix.key.len() - 1].to_vec()));
                out.push((c, 0));
            }
        }
        // 3. Merge two same-table indexes: first key + union payload.
        for (i, a) in indexes.iter().enumerate() {
            for b in indexes.iter().skip(i + 1) {
                if a.table != b.table || a.is_clustered() || b.is_clustered() {
                    continue;
                }
                let key = a.key.clone();
                let mut include = a.include.clone();
                for c in b.key.iter().chain(b.include.iter()) {
                    if !key.contains(c) && !include.contains(c) {
                        include.push(*c);
                    }
                }
                include.truncate(8);
                let mut c = cfg.clone();
                c.remove(a);
                c.remove(b);
                c.insert(Index::covering(a.table, key.clone(), include));
                out.push((c, 0));
                if out.len() >= 3 * self.relaxations_per_step {
                    out.truncate(3 * self.relaxations_per_step);
                    return out;
                }
            }
        }
        out.truncate(3 * self.relaxations_per_step);
        out
    }
}

impl Advisor for ToolA {
    fn name(&self) -> &'static str {
        "Tool-A"
    }

    fn recommend(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        constraints: &ConstraintSet,
    ) -> Configuration {
        self.recommend_with_progress(optimizer, w, constraints, &mut |_| {})
    }

    fn recommend_with_progress(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        constraints: &ConstraintSet,
        on_progress: &mut dyn FnMut(&SolveProgress),
    ) -> Configuration {
        let mut stream = BlackboxStream::new(on_progress);
        let schema = optimizer.schema();
        let budget = constraints.storage_budget().unwrap_or(u64::MAX);
        let mut current = self.seed(schema, w);
        let mut current_cost = self.direct_cost(optimizer, w, &current);
        stream.offer(current_cost, current.size_bytes(schema) <= budget);

        let mut steps = 0;
        while steps < self.max_steps {
            let size = current.size_bytes(schema);
            let over_budget = size > budget;
            // Pick the relaxation with the best (cost increase)/(bytes
            // saved); when within budget, only accept strict improvements.
            let mut best: Option<(Configuration, f64, f64)> = None; // cfg, cost, score
            for (cand, _) in self.relaxations(&current) {
                let cand_size = cand.size_bytes(schema);
                if !over_budget && cand_size >= size {
                    continue;
                }
                let saved = size.saturating_sub(cand_size).max(1) as f64;
                let cost = self.direct_cost(optimizer, w, &cand);
                let score = (cost - current_cost) / saved;
                if best.as_ref().is_none_or(|(_, _, s)| score < *s) {
                    best = Some((cand, cost, score));
                }
            }
            let Some((cand, cost, _)) = best else { break };
            steps += 1;
            stream.tick();
            if over_budget || cost < current_cost {
                current = cand;
                current_cost = cost;
                stream.offer(current_cost, current.size_bytes(schema) <= budget);
            } else {
                break; // within budget and no improving relaxation
            }
        }

        // If the cap hit before reaching the budget, shed the worst indexes
        // by size until feasible (this is where quality collapses at scale).
        while current.size_bytes(schema) > budget {
            let Some(victim) = current.iter().max_by_key(|ix| ix.size_bytes(schema)).cloned()
            else {
                break;
            };
            current.remove(&victim);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::HomGen;

    #[test]
    fn tool_a_respects_budget_and_helps() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(3).generate(o.schema(), 8);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let cfg = ToolA { max_steps: 30, ..Default::default() }.recommend(&o, &w, &constraints);
        assert!(constraints.check_configuration(o.schema(), &cfg).is_ok());
        assert!(o.perf(&w, &cfg) > 0.0, "Tool-A should still help on small workloads");
    }

    #[test]
    fn tool_a_spends_many_what_if_calls() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(4).generate(o.schema(), 6);
        o.reset_call_counter();
        let _ = ToolA { max_steps: 10, ..Default::default() }.recommend(
            &o,
            &w,
            &ConstraintSet::storage_fraction(o.schema(), 0.5),
        );
        // Black-box coupling: every relaxation step re-costs the workload.
        assert!(
            o.what_if_calls() > 6 * 10,
            "expected heavy optimizer traffic, saw {}",
            o.what_if_calls()
        );
    }

    #[test]
    fn streams_feasible_improving_costs() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(6).generate(o.schema(), 6);
        // A loose budget keeps the seed feasible, so the stream is non-empty.
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let mut events: Vec<SolveProgress> = Vec::new();
        let cfg = ToolA { max_steps: 10, ..Default::default() }.recommend_with_progress(
            &o,
            &w,
            &constraints,
            &mut |p| events.push(*p),
        );
        assert!(!events.is_empty(), "feasible improving steps must stream");
        let mut prev = f64::INFINITY;
        for p in &events {
            assert!(p.incumbent.is_finite());
            assert!(p.incumbent < prev, "black-box stream must only improve");
            assert!(p.bound == f64::NEG_INFINITY, "black box proves no bound");
            prev = p.incumbent;
        }
        assert!(constraints.check_configuration(o.schema(), &cfg).is_ok());
    }

    #[test]
    fn tight_budget_forces_small_configuration() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(5).generate(o.schema(), 6);
        let tight = ConstraintSet::storage_fraction(o.schema(), 0.01);
        let cfg = ToolA { max_steps: 15, ..Default::default() }.recommend(&o, &w, &tight);
        assert!(cfg.size_bytes(o.schema()) <= o.schema().data_bytes() / 100 + 1);
    }
}
