//! The ILP baseline [14]: one variable per *atomic configuration*.
//!
//! For every query the advisor enumerates atomic configurations — one
//! candidate (or `I∅`) per referenced table — costs each with INUM, prunes
//! the space to the most promising `P` configurations per query ([13]'s
//! pruning; without it the space is `Π_i (1+|S_i|)`), and builds a BIP with
//! variables `y_{q,A}` coupled to the per-index `z_a`.  The BIP is then
//! solved by the *same* solver machinery as CoPhy (here: the Lagrangian
//! engine, by encoding each atomic configuration as an alternative whose
//! slots force its member indexes).
//!
//! The point the reproduction must preserve (Figures 5 & 10): ILP's **build
//! time** — enumeration + pruning — dominates and grows steeply with the
//! candidate count, whereas CoPhy's build is linear; solution quality is
//! comparable (CoPhy is slightly better because it does not prune).

use std::time::{Duration, Instant};

use cophy::{CGen, CandidateSet, ConstraintSet, SolveProgress};
use cophy_bip::{Alt, Block, BlockProblem, LagrangianSolver, SlotChoices, SolveBudget};
use cophy_catalog::{Configuration, IndexId};
use cophy_inum::{Inum, PreparedQuery, PreparedWorkload};
use cophy_optimizer::WhatIfBackend;
use cophy_workload::Workload;

use crate::Advisor;

/// Per-query atomic-configuration cap (the pruning knob of [13]).
pub const DEFAULT_CONFIGS_PER_QUERY: usize = 64;

/// Per-slot candidate short-list length used during enumeration.
pub const SLOT_SHORTLIST: usize = 4;

/// The ILP advisor.
#[derive(Debug, Clone)]
pub struct IlpAdvisor {
    pub configs_per_query: usize,
    /// Solve budget handed to the shared engine (same semantics as CoPhy's).
    pub budget: SolveBudget,
}

impl Default for IlpAdvisor {
    fn default() -> Self {
        IlpAdvisor {
            configs_per_query: DEFAULT_CONFIGS_PER_QUERY,
            budget: SolveBudget::within(0.05).with_nodes(300),
        }
    }
}

/// Timing breakdown mirroring the paper's INUM / build / solve split.
#[derive(Debug, Clone, Default)]
pub struct IlpStats {
    pub inum_time: Duration,
    pub build_time: Duration,
    pub solve_time: Duration,
    /// Atomic configurations enumerated before pruning.
    pub configs_enumerated: usize,
    /// Atomic configurations kept after pruning.
    pub configs_kept: usize,
}

/// One atomic configuration: chosen candidate per slot (None = `I∅`),
/// plus its INUM cost.
#[derive(Debug, Clone)]
struct AtomicCfg {
    choices: Vec<Option<IndexId>>,
    cost: f64,
}

impl IlpAdvisor {
    /// Full run with stats (the bench harness uses this entry point).
    pub fn recommend_with_stats(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
    ) -> (Configuration, IlpStats) {
        self.recommend_with_stats_progress(optimizer, w, candidates, constraints, &mut |_| {})
    }

    /// [`IlpAdvisor::recommend_with_stats`] streaming the solver's anytime
    /// [`SolveProgress`] events — the same stream CoPhy's backends emit, so
    /// Figure-5/10 runs can compare trajectories directly.
    pub fn recommend_with_stats_progress(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
        on_progress: &mut dyn FnMut(&SolveProgress),
    ) -> (Configuration, IlpStats) {
        let mut stats = IlpStats::default();
        let t0 = Instant::now();
        let inum = Inum::new(optimizer);
        let prepared = inum.prepare_workload(w);
        stats.inum_time = t0.elapsed();

        let tb = Instant::now();
        let block = self.build_block(optimizer, &prepared, candidates, constraints, &mut stats);
        stats.build_time = tb.elapsed();

        let ts = Instant::now();
        let solver = LagrangianSolver { budget: self.budget, ..Default::default() };
        let (r, _) = solver.solve_warm_with_progress(&block, None, |p, _| on_progress(p));
        stats.solve_time = ts.elapsed();

        let cfg = Configuration::from_indexes(
            candidates.iter().filter(|(id, _)| r.selected[id.0 as usize]).map(|(_, ix)| ix.clone()),
        );
        (cfg, stats)
    }

    /// Enumerate + prune atomic configurations for one prepared query.
    fn enumerate_query(
        &self,
        optimizer: &dyn WhatIfBackend,
        pq: &PreparedQuery,
        candidates: &CandidateSet,
        stats: &mut IlpStats,
    ) -> Vec<AtomicCfg> {
        let schema = optimizer.schema();
        let cm = optimizer.cost_model();
        let n_slots = pq.query.tables.len();

        // Short-list per slot: the best few candidates by γ in *any*
        // template, plus the `I∅` option.
        let mut shortlists: Vec<Vec<Option<IndexId>>> = Vec::with_capacity(n_slots);
        for s in 0..n_slots {
            let mut scored: Vec<(f64, IndexId)> = Vec::new();
            for (id, ix) in candidates.iter() {
                if ix.table != pq.query.tables[s] {
                    continue;
                }
                let best_gamma = pq
                    .templates
                    .iter()
                    .filter_map(|tpl| tpl.gamma(schema, cm, &pq.query, s, ix))
                    .fold(f64::INFINITY, f64::min);
                if best_gamma.is_finite() {
                    scored.push((best_gamma, id));
                }
            }
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut slot: Vec<Option<IndexId>> = vec![None];
            slot.extend(scored.into_iter().take(SLOT_SHORTLIST).map(|(_, id)| Some(id)));
            shortlists.push(slot);
        }

        // Cartesian product of the short lists (this is the multiplicative
        // blow-up the formulation suffers from).
        let mut configs: Vec<AtomicCfg> = vec![AtomicCfg { choices: Vec::new(), cost: 0.0 }];
        for slot in &shortlists {
            let mut next = Vec::with_capacity(configs.len() * slot.len());
            for c in &configs {
                for choice in slot {
                    let mut cc = c.choices.clone();
                    cc.push(*choice);
                    next.push(AtomicCfg { choices: cc, cost: 0.0 });
                }
            }
            configs = next;
        }
        stats.configs_enumerated += configs.len();

        // Cost each configuration with INUM: min over templates of icost.
        for cfg in &mut configs {
            let atomic: Vec<Option<&cophy_catalog::Index>> =
                cfg.choices.iter().map(|c| c.map(|id| candidates.get(id))).collect();
            cfg.cost = pq
                .templates
                .iter()
                .filter_map(|tpl| tpl.icost(schema, cm, &pq.query, &atomic))
                .fold(f64::INFINITY, f64::min);
        }
        configs.retain(|c| c.cost.is_finite());

        // [13]-style pruning: keep the cheapest P configurations (always
        // keeping the all-I∅ fallback so every selection stays feasible).
        configs.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        let fallback_pos = configs
            .iter()
            .position(|c| c.choices.iter().all(|x| x.is_none()))
            .expect("all-I∅ configuration always instantiable");
        if fallback_pos >= self.configs_per_query {
            let fb = configs[fallback_pos].clone();
            configs.truncate(self.configs_per_query.saturating_sub(1).max(1));
            configs.push(fb);
        } else {
            configs.truncate(self.configs_per_query.max(1));
        }
        stats.configs_kept += configs.len();
        configs
    }

    /// Encode the per-configuration BIP as a block problem: each atomic
    /// configuration is an alternative whose slots *force* its indexes
    /// (`fallback: None`, a single zero-γ choice), so the alternative is
    /// usable iff all members are selected — exactly `y_{q,A} ≤ z_a`.
    fn build_block(
        &self,
        optimizer: &dyn WhatIfBackend,
        prepared: &PreparedWorkload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
        stats: &mut IlpStats,
    ) -> BlockProblem {
        let schema = optimizer.schema();
        let cm = optimizer.cost_model();
        let n = candidates.len();
        let mut item_cost = vec![0.0f64; n];
        for pq in &prepared.queries {
            if pq.update.is_none() {
                continue;
            }
            for (id, ix) in candidates.iter() {
                item_cost[id.0 as usize] += pq.weight * pq.ucost(schema, cm, ix);
            }
        }
        let item_size: Vec<f64> =
            candidates.iter().map(|(id, _)| candidates.size_bytes(id) as f64).collect();

        let mut blocks = Vec::with_capacity(prepared.queries.len());
        for pq in &prepared.queries {
            let configs = self.enumerate_query(optimizer, pq, candidates, stats);
            let alts = configs
                .into_iter()
                .map(|cfg| {
                    let slots: Vec<SlotChoices> = cfg
                        .choices
                        .iter()
                        .filter_map(|c| {
                            c.map(|id| SlotChoices { fallback: None, choices: vec![(id.0, 0.0)] })
                        })
                        .collect();
                    Alt { base: pq.weight * cfg.cost, slots }
                })
                .collect();
            blocks.push(Block { alts });
        }

        BlockProblem {
            n_items: n,
            item_cost,
            item_size,
            budget: constraints.storage_budget().map(|b| b as f64),
            blocks,
        }
    }
}

impl Advisor for IlpAdvisor {
    fn name(&self) -> &'static str {
        "ILP"
    }

    fn recommend(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        constraints: &ConstraintSet,
    ) -> Configuration {
        let candidates = CGen::default().generate(optimizer.schema(), w);
        self.recommend_with_stats(optimizer, w, &candidates, constraints).0
    }

    fn recommend_with_progress(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        constraints: &ConstraintSet,
        on_progress: &mut dyn FnMut(&SolveProgress),
    ) -> Configuration {
        let candidates = CGen::default().generate(optimizer.schema(), w);
        self.recommend_with_stats_progress(optimizer, w, &candidates, constraints, on_progress).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy::{CoPhy, CoPhyOptions};
    use cophy_catalog::TpchGen;
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::HomGen;

    fn setup(n: usize) -> (WhatIfOptimizer, Workload) {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(5).generate(o.schema(), n);
        (o, w)
    }

    #[test]
    fn ilp_recommends_useful_configuration() {
        let (o, w) = setup(15);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let cfg = IlpAdvisor::default().recommend(&o, &w, &constraints);
        assert!(!cfg.is_empty());
        assert!(constraints.check_configuration(o.schema(), &cfg).is_ok());
        assert!(o.perf(&w, &cfg) > 0.0);
    }

    #[test]
    fn ilp_build_enumerates_multiplicatively() {
        let (o, w) = setup(10);
        let candidates = CGen::default().generate(o.schema(), &w);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let (_, stats) =
            IlpAdvisor::default().recommend_with_stats(&o, &w, &candidates, &constraints);
        assert!(stats.configs_enumerated > stats.configs_kept);
        // Multi-table queries alone guarantee well over 5 configs/query.
        assert!(stats.configs_enumerated >= 10 * 5);
    }

    #[test]
    fn ilp_streams_real_anytime_progress() {
        let (o, w) = setup(8);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let mut events = 0usize;
        let mut prev_gap = f64::INFINITY;
        let cfg = IlpAdvisor::default().recommend_with_progress(&o, &w, &constraints, &mut |p| {
            events += 1;
            assert!(p.gap <= prev_gap + 1e-12, "solver-backed stream must not regress");
            prev_gap = p.gap;
        });
        assert!(events > 0);
        assert!(prev_gap.is_finite(), "ILP's solver must prove a finite gap");
        assert!(!cfg.is_empty());
    }

    #[test]
    fn cophy_quality_at_least_matches_ilp() {
        let (o, w) = setup(12);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let candidates = CGen::default().generate(o.schema(), &w);
        let (ilp_cfg, _) =
            IlpAdvisor::default().recommend_with_stats(&o, &w, &candidates, &constraints);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let rec = cophy.tune_with_candidates(&w, &candidates, &constraints);
        let perf_ilp = o.perf(&w, &ilp_cfg);
        let perf_cophy = o.perf(&w, &rec.configuration);
        // §5.3: "the perf metric is very similar… CoPhy slightly better".
        assert!(
            perf_cophy >= perf_ilp - 0.02,
            "CoPhy {perf_cophy} should not lose to ILP {perf_ilp}"
        );
    }
}
