//! Tool-B: a DB2-Design-Advisor-style greedy with workload compression [20].
//!
//! The defining traits reproduced from the paper's description:
//!
//! 1. **workload compression by random sampling** — the advisor tunes a
//!    fixed-size random sample of the workload.  On the homogeneous `W_hom`
//!    (fifteen templates) a sample loses almost nothing; on the
//!    heterogeneous `W_het` it misses many query shapes, and quality drops
//!    (Figure 9, Table 1);
//! 2. **benefit/size greedy selection** — candidates are proposed per
//!    sampled query, benefits estimated via what-if optimization of the
//!    sample, then indexes enter in benefit-per-byte order until the budget
//!    is full;
//! 3. **iterative refinement** — a few drop/swap passes re-costed on the
//!    sample.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use cophy::{CGen, ConstraintSet, SolveProgress};
use cophy_catalog::{Configuration, Index};
use cophy_optimizer::WhatIfBackend;
use cophy_workload::Workload;

use crate::tool_a::BlackboxStream;
use crate::Advisor;

/// The sampling-compression greedy advisor.
#[derive(Debug, Clone)]
pub struct ToolB {
    /// Compressed workload size (the random sample the tool actually tunes).
    pub sample_size: usize,
    /// Candidates proposed per sampled query (keeps `|S|` small, as the
    /// paper observed: Tool-B examined ~45 candidates vs CoPhy's 1933).
    pub candidates_cap: usize,
    /// Refinement passes.
    pub refine_passes: usize,
    pub seed: u64,
}

impl Default for ToolB {
    fn default() -> Self {
        ToolB { sample_size: 30, candidates_cap: 48, refine_passes: 2, seed: 0x0db2 }
    }
}

impl ToolB {
    /// Compress the workload by uniform random sampling.
    fn compress(&self, w: &Workload) -> Workload {
        if w.len() <= self.sample_size {
            return w.truncate(w.len());
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut ids: Vec<u32> = (0..w.len() as u32).collect();
        ids.shuffle(&mut rng);
        ids.truncate(self.sample_size);
        ids.sort_unstable();
        let scale = w.len() as f64 / self.sample_size as f64;
        let mut out = Workload::new();
        for id in ids {
            let qid = cophy_workload::QueryId(id);
            out.push_weighted(w.statement(qid).clone(), w.weight(qid) * scale);
        }
        out
    }

    /// Benefit of one index on the compressed workload, by what-if calls.
    fn benefit(
        &self,
        o: &dyn WhatIfBackend,
        sample: &Workload,
        base: &Configuration,
        base_cost: f64,
        ix: &Index,
    ) -> f64 {
        let mut with_ix = base.clone();
        with_ix.insert(ix.clone());
        base_cost - o.cost_workload(sample, &with_ix)
    }
}

impl Advisor for ToolB {
    fn name(&self) -> &'static str {
        "Tool-B"
    }

    fn recommend(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        constraints: &ConstraintSet,
    ) -> Configuration {
        self.recommend_with_progress(optimizer, w, constraints, &mut |_| {})
    }

    fn recommend_with_progress(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        constraints: &ConstraintSet,
        on_progress: &mut dyn FnMut(&SolveProgress),
    ) -> Configuration {
        let mut stream = BlackboxStream::new(on_progress);
        let schema = optimizer.schema();
        let budget = constraints.storage_budget().unwrap_or(u64::MAX);
        let sample = self.compress(w);

        // Candidate proposal from the sample only.
        let gen = CGen { max_key_columns: 2, max_include_columns: 4 };
        let mut candidates: Vec<Index> =
            gen.generate(schema, &sample).iter().map(|(_, ix)| ix.clone()).collect();
        candidates.truncate(self.candidates_cap);

        // Greedy by benefit per byte (every intermediate config fits the
        // budget by construction).
        let mut cfg = Configuration::empty();
        let mut cfg_cost = optimizer.cost_workload(&sample, &cfg);
        stream.offer(cfg_cost, true);
        let mut remaining = budget;
        loop {
            let mut best: Option<(usize, f64, u64)> = None;
            for (i, ix) in candidates.iter().enumerate() {
                if cfg.contains(ix) {
                    continue;
                }
                let size = ix.size_bytes(schema);
                if size > remaining {
                    continue;
                }
                let b = self.benefit(optimizer, &sample, &cfg, cfg_cost, ix);
                if b <= 0.0 {
                    continue;
                }
                let per_byte = b / size as f64;
                if best.is_none_or(|(_, s, _)| per_byte > s) {
                    best = Some((i, per_byte, size));
                }
            }
            let Some((i, _, size)) = best else { break };
            cfg.insert(candidates[i].clone());
            cfg_cost = optimizer.cost_workload(&sample, &cfg);
            remaining -= size;
            stream.tick();
            stream.offer(cfg_cost, true);
        }

        // Refinement: drop anything whose removal does not hurt the sample.
        for _ in 0..self.refine_passes {
            let mut improved = false;
            for ix in cfg.indexes().to_vec() {
                let mut without = cfg.clone();
                without.remove(&ix);
                let c = optimizer.cost_workload(&sample, &without);
                if c <= cfg_cost * 1.001 {
                    cfg = without;
                    cfg_cost = c;
                    improved = true;
                    stream.tick();
                    stream.offer(cfg_cost, true);
                }
            }
            if !improved {
                break;
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::{HetGen, HomGen};

    #[test]
    fn tool_b_improves_homogeneous_workloads() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::B);
        let w = HomGen::new(6).generate(o.schema(), 60);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let cfg = ToolB { sample_size: 15, ..Default::default() }.recommend(&o, &w, &constraints);
        assert!(constraints.check_configuration(o.schema(), &cfg).is_ok());
        assert!(o.perf(&w, &cfg) > 0.0);
    }

    #[test]
    fn compression_keeps_sample_size_and_reweights() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::B);
        let w = HomGen::new(7).generate(o.schema(), 100);
        let tool = ToolB { sample_size: 20, ..Default::default() };
        let sample = tool.compress(&w);
        assert_eq!(sample.len(), 20);
        // weights scaled by 5 so totals stay comparable
        let (_, _, weight) = sample.iter().next().unwrap();
        assert!((weight - 5.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_workloads_hurt_tool_b_more_than_homogeneous() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::B);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let tool = ToolB { sample_size: 10, ..Default::default() };

        let hom = HomGen::new(8).generate(o.schema(), 80);
        let het = HetGen::new(8).generate(o.schema(), 80);
        let perf_hom = o.perf(&hom, &tool.recommend(&o, &hom, &constraints));
        let perf_het = o.perf(&het, &tool.recommend(&o, &het, &constraints));
        // The defining failure mode: sampling loses little on W_hom, a lot
        // on W_het.
        assert!(perf_hom > perf_het, "expected hom {perf_hom} > het {perf_het} under compression");
    }
}
