//! # cophy-advisors
//!
//! The competitor techniques of the paper's evaluation (§5.1), rebuilt so the
//! comparisons can be reproduced:
//!
//! * [`IlpAdvisor`] — the BIP-per-atomic-configuration formulation of
//!   Papadomanolakis & Ailamaki [14], with the candidate-configuration
//!   pruning of [13].  Interfaced with INUM and solved by the same solver as
//!   CoPhy — exactly the paper's setup — so the measured difference is the
//!   *formulation*: ILP's build phase enumerates (and must prune) a
//!   multiplicative space of atomic configurations, while CoPhy's stays
//!   linear in the candidates.
//! * [`ToolA`] — a relaxation-based advisor in the style of Bruno &
//!   Chaudhuri [3] (the technique behind the paper's commercial Tool-A):
//!   start from per-query optimal candidate sets, then repeatedly *relax*
//!   (drop/merge/shrink), re-costing against the what-if optimizer until the
//!   storage budget holds.
//! * [`ToolB`] — a DB2-Design-Advisor-style greedy [20] (the paper's
//!   Tool-B): workload compression by random sampling, benefit/size greedy
//!   selection, iterative refinement.
//!
//! All advisors implement [`Advisor`] and are measured with the same
//! ground-truth metric `perf(X*, W)` as CoPhy.

pub mod ilp;
pub mod tool_a;
pub mod tool_b;

use cophy::{ConstraintSet, SolveProgress};
use cophy_catalog::Configuration;
use cophy_optimizer::WhatIfBackend;
use cophy_workload::Workload;

pub use ilp::IlpAdvisor;
pub use tool_a::ToolA;
pub use tool_b::ToolB;

/// A baseline index advisor.
pub trait Advisor {
    /// Human-readable name for harness output.
    fn name(&self) -> &'static str;

    /// Recommend a configuration for `w` under `constraints`.
    fn recommend(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        constraints: &ConstraintSet,
    ) -> Configuration;

    /// [`Advisor::recommend`] streaming anytime progress through the same
    /// [`SolveProgress`] contract as CoPhy's solve engine, so the bench
    /// harness can plot identical gap-vs-time series for every technique.
    ///
    /// BIP-backed advisors stream real incumbent/bound pairs; black-box
    /// greedy tools stream the costs of their *feasible, improving*
    /// intermediate configurations with an unknown (`−∞`) bound (emitting
    /// nothing while still over budget).  The default implementation emits
    /// nothing.
    fn recommend_with_progress(
        &self,
        optimizer: &dyn WhatIfBackend,
        w: &Workload,
        constraints: &ConstraintSet,
        on_progress: &mut dyn FnMut(&SolveProgress),
    ) -> Configuration {
        let _ = on_progress;
        self.recommend(optimizer, w, constraints)
    }
}
