//! Example host crate: the runnable examples live in `examples/` at the workspace root.
