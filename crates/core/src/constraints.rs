//! The constraint language (paper §3.2 and Appendix E).
//!
//! Every constraint class reported by Bruno & Chaudhuri's constrained
//! physical design study translates into *linear* rows over the BIP
//! variables:
//!
//! * **index constraints** (E.1): `Σ_{a ∈ Sc} w_a z_a <=> V` over a
//!   declaratively filtered candidate subset;
//! * **storage** (§3.2): the weighted case with `w_a = size(a)`;
//! * **query-cost constraints** (E.2): `cost(q, X) ≤ factor · cost(q, X0)` —
//!   linear because the cost function itself is linear in `y`/`x`;
//! * **generators** (E.3): FOR-loops over tables/queries, unrolled at
//!   translation time, e.g. at most one clustered index per table;
//! * **soft constraints** (§4.1) are *not* rows — they reshape the objective
//!   and are handled by [`crate::soft`].

use cophy_catalog::{ColumnId, Schema, TableId};
use cophy_workload::QueryId;
use serde::{Deserialize, Serialize};

use crate::cgen::CandidateSet;

/// Comparison operator of an index constraint (`<=>` in the paper's E.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    Le,
    Ge,
    Eq,
}

/// One linear constraint row over candidate positions, as consumed by the
/// BIP generator: `(terms, cmp, rhs)` with terms `(candidate position,
/// coefficient)`.
pub type LinearRow = (Vec<(usize, f64)>, Cmp, f64);

/// A declarative filter selecting the candidate subset `Sc ⊂ S` a constraint
/// applies to (the paper's Filters, E.3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IndexFilter {
    /// Restrict to one table.
    pub table: Option<TableId>,
    /// Only indexes with at least this many columns (key + include).
    pub min_columns: Option<usize>,
    /// Only indexes with at most this many columns.
    pub max_columns: Option<usize>,
    /// Only indexes whose key contains this column.
    pub key_contains: Option<(TableId, ColumnId)>,
    /// Only clustered indexes.
    pub clustered_only: bool,
}

impl IndexFilter {
    pub fn all() -> Self {
        IndexFilter::default()
    }

    pub fn on_table(table: TableId) -> Self {
        IndexFilter { table: Some(table), ..Default::default() }
    }

    /// Does `ix` pass the filter?
    pub fn matches(&self, ix: &cophy_catalog::Index) -> bool {
        if let Some(t) = self.table {
            if ix.table != t {
                return false;
            }
        }
        if let Some(n) = self.min_columns {
            if ix.n_columns() < n {
                return false;
            }
        }
        if let Some(n) = self.max_columns {
            if ix.n_columns() > n {
                return false;
            }
        }
        if let Some((t, c)) = self.key_contains {
            if ix.table != t || !ix.key.contains(&c) {
                return false;
            }
        }
        if self.clustered_only && !ix.is_clustered() {
            return false;
        }
        true
    }
}

/// One hard constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// `Σ size(a) · z_a ≤ budget` (bytes).
    Storage { budget_bytes: u64 },
    /// `Σ_{a ∈ filter} z_a <=> value` — e.g. "at most 2 wide indexes on T".
    IndexCount { filter: IndexFilter, cmp: Cmp, value: u32 },
    /// `Σ_{a ∈ filter} size(a) · z_a <=> value` (bytes).
    IndexSize { filter: IndexFilter, cmp: Cmp, value: u64 },
    /// Unrolled generator (E.3): at most one clustered index per table.
    OneClusteredPerTable,
    /// E.2: `cost(q, X) ≤ factor · baseline_cost(q)` for one query.
    QueryCost { query: QueryId, factor: f64 },
    /// Unrolled generator over all queries: every query within `factor` of
    /// its baseline cost.
    AllQueryCosts { factor: f64 },
}

impl Constraint {
    /// Linear rows of *this* constraint over the candidate positions — the
    /// per-constraint building block of [`ConstraintSet::z_rows`], exposed
    /// so the BIP generator can tag which model row came from which
    /// constraint (the interactive session mutates the storage row's RHS in
    /// place for budget sweeps).  Query-cost constraints translate to rows
    /// over `y`/`x` variables instead and return nothing here.
    pub fn z_rows(&self, schema: &Schema, candidates: &CandidateSet) -> Vec<LinearRow> {
        let mut rows = Vec::new();
        match self {
            Constraint::Storage { budget_bytes } => {
                let terms: Vec<(usize, f64)> = candidates
                    .iter()
                    .map(|(id, _)| (id.0 as usize, candidates.size_bytes(id) as f64))
                    .collect();
                rows.push((terms, Cmp::Le, *budget_bytes as f64));
            }
            Constraint::IndexCount { filter, cmp, value } => {
                let terms: Vec<(usize, f64)> = candidates
                    .iter()
                    .filter(|(_, ix)| filter.matches(ix))
                    .map(|(id, _)| (id.0 as usize, 1.0))
                    .collect();
                rows.push((terms, *cmp, f64::from(*value)));
            }
            Constraint::IndexSize { filter, cmp, value } => {
                let terms: Vec<(usize, f64)> = candidates
                    .iter()
                    .filter(|(_, ix)| filter.matches(ix))
                    .map(|(id, _)| (id.0 as usize, candidates.size_bytes(id) as f64))
                    .collect();
                rows.push((terms, *cmp, *value as f64));
            }
            Constraint::OneClusteredPerTable => {
                for t in schema.tables() {
                    let terms: Vec<(usize, f64)> = candidates
                        .iter()
                        .filter(|(_, ix)| ix.is_clustered() && ix.table == t.id)
                        .map(|(id, _)| (id.0 as usize, 1.0))
                        .collect();
                    if terms.len() > 1 {
                        rows.push((terms, Cmp::Le, 1.0));
                    }
                }
            }
            Constraint::QueryCost { .. } | Constraint::AllQueryCosts { .. } => {
                // handled by BipGen (needs the y/x variables)
            }
        }
        rows
    }
}

/// The constraint set `C = C_hard` handed to the Solver.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    pub hard: Vec<Constraint>,
}

impl ConstraintSet {
    pub fn none() -> Self {
        ConstraintSet::default()
    }

    /// The common case: a storage budget expressed as a fraction `M` of the
    /// database size (the paper's default experiment uses `M = 1`).
    pub fn storage_fraction(schema: &Schema, m: f64) -> Self {
        let budget = (schema.data_bytes() as f64 * m) as u64;
        ConstraintSet { hard: vec![Constraint::Storage { budget_bytes: budget }] }
    }

    pub fn with(mut self, c: Constraint) -> Self {
        self.hard.push(c);
        self
    }

    /// The storage budget if one is present.
    pub fn storage_budget(&self) -> Option<u64> {
        self.hard.iter().find_map(|c| match c {
            Constraint::Storage { budget_bytes } => Some(*budget_bytes),
            _ => None,
        })
    }

    /// True when the set is a plain storage budget (or empty) — the shape the
    /// Lagrangian backend handles natively; anything richer routes to the
    /// generic B&B backend.
    pub fn is_storage_only(&self) -> bool {
        self.hard.iter().all(|c| matches!(c, Constraint::Storage { .. }))
    }

    /// Check a concrete configuration against the z-only constraints
    /// (storage, counts, clustered rules).  Query-cost constraints need the
    /// cost function and are verified by the Solver.
    pub fn check_configuration(
        &self,
        schema: &Schema,
        cfg: &cophy_catalog::Configuration,
    ) -> Result<(), String> {
        for c in &self.hard {
            match c {
                Constraint::Storage { budget_bytes } => {
                    let used = cfg.size_bytes(schema);
                    if used > *budget_bytes {
                        return Err(format!("storage {used} exceeds budget {budget_bytes}"));
                    }
                }
                Constraint::IndexCount { filter, cmp, value } => {
                    let count = cfg.iter().filter(|ix| filter.matches(ix)).count() as u32;
                    let ok = match cmp {
                        Cmp::Le => count <= *value,
                        Cmp::Ge => count >= *value,
                        Cmp::Eq => count == *value,
                    };
                    if !ok {
                        return Err(format!("index count {count} violates {cmp:?} {value}"));
                    }
                }
                Constraint::IndexSize { filter, cmp, value } => {
                    let sz: u64 = cfg
                        .iter()
                        .filter(|ix| filter.matches(ix))
                        .map(|ix| ix.size_bytes(schema))
                        .sum();
                    let ok = match cmp {
                        Cmp::Le => sz <= *value,
                        Cmp::Ge => sz >= *value,
                        Cmp::Eq => sz == *value,
                    };
                    if !ok {
                        return Err(format!("filtered size {sz} violates {cmp:?} {value}"));
                    }
                }
                Constraint::OneClusteredPerTable => {
                    let bad = cfg.clustered_violations();
                    if !bad.is_empty() {
                        return Err(format!("tables with >1 clustered index: {bad:?}"));
                    }
                }
                Constraint::QueryCost { .. } | Constraint::AllQueryCosts { .. } => {}
            }
        }
        Ok(())
    }

    /// Translate the z-only constraints into linear rows over the candidate
    /// set: `(terms, cmp, rhs)` with terms `(candidate position, coeff)`.
    pub fn z_rows(&self, schema: &Schema, candidates: &CandidateSet) -> Vec<LinearRow> {
        self.hard.iter().flat_map(|c| c.z_rows(schema, candidates)).collect()
    }

    /// Query-cost constraints, normalized to per-query factors.
    pub fn query_cost_bounds(&self) -> Vec<(Option<QueryId>, f64)> {
        self.hard
            .iter()
            .filter_map(|c| match c {
                Constraint::QueryCost { query, factor } => Some((Some(*query), *factor)),
                Constraint::AllQueryCosts { factor } => Some((None, *factor)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::{Configuration, Index, TpchGen};

    #[test]
    fn filter_matching() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let ord = s.table_by_name("orders").unwrap().id;
        let ix = Index::secondary(li, vec![ColumnId(10), ColumnId(4)]);
        assert!(IndexFilter::all().matches(&ix));
        assert!(IndexFilter::on_table(li).matches(&ix));
        assert!(!IndexFilter::on_table(ord).matches(&ix));
        assert!(IndexFilter { min_columns: Some(2), ..Default::default() }.matches(&ix));
        assert!(!IndexFilter { min_columns: Some(3), ..Default::default() }.matches(&ix));
        assert!(!IndexFilter { max_columns: Some(1), ..Default::default() }.matches(&ix));
        assert!(IndexFilter { key_contains: Some((li, ColumnId(10))), ..Default::default() }
            .matches(&ix));
        assert!(!IndexFilter { clustered_only: true, ..Default::default() }.matches(&ix));
    }

    #[test]
    fn storage_fraction_budget() {
        let s = TpchGen::default().schema();
        let c = ConstraintSet::storage_fraction(&s, 0.5);
        assert_eq!(c.storage_budget().unwrap(), s.data_bytes() / 2);
        assert!(c.is_storage_only());
    }

    #[test]
    fn check_configuration_storage_and_count() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let ix = Index::secondary(li, vec![ColumnId(0)]);
        let cfg = Configuration::from_indexes([ix.clone()]);
        let tight =
            ConstraintSet::none().with(Constraint::Storage { budget_bytes: ix.size_bytes(&s) - 1 });
        assert!(tight.check_configuration(&s, &cfg).is_err());
        let loose =
            ConstraintSet::none().with(Constraint::Storage { budget_bytes: ix.size_bytes(&s) + 1 });
        assert!(loose.check_configuration(&s, &cfg).is_ok());

        let count = ConstraintSet::none().with(Constraint::IndexCount {
            filter: IndexFilter::on_table(li),
            cmp: Cmp::Le,
            value: 0,
        });
        assert!(count.check_configuration(&s, &cfg).is_err());
    }

    #[test]
    fn clustered_generator_unrolls() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut cands = CandidateSet::new();
        cands.insert(&s, Index::clustered(li, vec![ColumnId(0)]));
        cands.insert(&s, Index::clustered(li, vec![ColumnId(1)]));
        cands.insert(&s, Index::secondary(li, vec![ColumnId(2)]));
        let cs = ConstraintSet::none().with(Constraint::OneClusteredPerTable);
        let rows = cs.z_rows(&s, &cands);
        assert_eq!(rows.len(), 1, "one row for the one table with 2 clustered candidates");
        let (terms, cmp, rhs) = &rows[0];
        assert_eq!(terms.len(), 2);
        assert_eq!(*cmp, Cmp::Le);
        assert_eq!(*rhs, 1.0);
        assert!(!cs.is_storage_only());
    }

    #[test]
    fn z_rows_storage_has_all_candidates() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let mut cands = CandidateSet::new();
        for c in 0..5u32 {
            cands.insert(&s, Index::secondary(li, vec![ColumnId(c)]));
        }
        let cs = ConstraintSet::storage_fraction(&s, 1.0);
        let rows = cs.z_rows(&s, &cands);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0.len(), 5);
    }
}
